#!/usr/bin/env python
"""Custom evaluation functions via FastPSO's kernel schema (technique iv).

Shows the two user-defined-objective paths from Section 3.2 of the paper:

1. An *element-wise* objective (the CUDA ``evaluation_kernel<L>`` template):
   a per-element lambda plus a row reduction — here a weighted quadratic.
2. A *per-particle* objective: fitting a damped sine wave to noisy
   observations, where each particle encodes (amplitude, decay, frequency,
   phase) and its fitness is the residual sum of squares.
"""

import numpy as np

from repro import FastPSO
from repro.functions.base import EvalProfile


def elementwise_demo() -> None:
    """Minimise sum_j (j+1) * x_j^2 with the element-wise schema."""
    pso = FastPSO(n_particles=1000, seed=11)
    result = pso.minimize_elementwise(
        lambda p, j: (j + 1.0) * p * p,
        dim=30,
        bounds=(-10.0, 10.0),
        max_iter=400,
        reducer="sum",
        pass_index=True,
        profile=EvalProfile(flops_per_elem=2.0),
    )
    print("[element-wise] weighted quadratic")
    print(f"  best value {result.best_value:.4g} (optimum 0)")
    print(f"  simulated time {result.elapsed_seconds * 1e3:.1f} ms")


def curve_fitting_demo() -> None:
    """Fit y = a * exp(-b t) * sin(w t + phi) to noisy samples."""
    rng = np.random.default_rng(0)
    t = np.linspace(0.0, 4.0, 120)
    true = np.array([2.5, 0.7, 3.2, 0.5])  # a, b, w, phi
    y = true[0] * np.exp(-true[1] * t) * np.sin(true[2] * t + true[3])
    y_noisy = y + rng.normal(0.0, 0.02, t.shape)

    def residual(params: np.ndarray) -> np.ndarray:
        """Vectorised objective: (n, 4) parameter matrix -> (n,) RSS."""
        a, b, w, phi = (params[:, i : i + 1] for i in range(4))
        model = a * np.exp(-b * t) * np.sin(w * t + phi)
        return np.sum((model - y_noisy) ** 2, axis=1)

    pso = FastPSO(n_particles=3000, seed=5)
    result = pso.minimize(
        residual,
        dim=4,
        bounds=(0.0, 5.0),
        max_iter=600,
        vectorized=True,
        profile=EvalProfile(flops_per_elem=8.0, sfu_per_elem=2.0),
    )
    print("[per-particle] damped-sine curve fit")
    print(f"  true params   {true}")
    print(f"  fitted params {np.round(result.best_position, 3)}")
    print(f"  residual      {result.best_value:.4g}")
    print(f"  simulated time {result.elapsed_seconds * 1e3:.1f} ms")


if __name__ == "__main__":
    elementwise_demo()
    print()
    curve_fitting_demo()
