#!/usr/bin/env python
"""ThunderGBM thread-configuration tuning (the paper's Section 4.6 case study).

FastPSO searches the 50-dimensional space of (threads-per-block,
elements-per-thread) choices for the 25 simulated ThunderGBM kernels and
reports the training-time improvement over the stock configuration for each
of the paper's four datasets — the Table 5 experiment as a script.
"""

import numpy as np

from repro.threadconf import TgbmSimulator, tune
from repro.threadconf.tuner import _decode_columns


def main() -> None:
    for dataset in ("covtype", "susy", "higgs", "e2006"):
        sim = TgbmSimulator(dataset)
        res = tune(dataset, simulator=sim, n_particles=256, max_iter=60)
        print(
            f"{dataset:8s}  default {res.default_seconds:7.3f}s  "
            f"tuned {res.tuned_seconds:7.3f}s  speedup {res.speedup:.2f}x"
        )

        # Show which kernels the tuner actually changed.
        tpb_idx, ept_idx = _decode_columns(
            res.best_position[np.newaxis, :], sim.n_kernels
        )
        tuned = sim.describe_config(tpb_idx[0], ept_idx[0])
        default = sim.describe_config(*sim.default_indices())
        changed = [
            f"{name}: tpb {d_tpb}->{t_tpb}, ept {d_ept}->{t_ept}"
            for (name, t_tpb, t_ept), (_, d_tpb, d_ept) in zip(tuned, default)
            if (t_tpb, t_ept) != (d_tpb, d_ept)
        ]
        for line in changed[:5]:
            print(f"           {line}")
        if len(changed) > 5:
            print(f"           ... and {len(changed) - 5} more kernels retuned")


if __name__ == "__main__":
    main()
