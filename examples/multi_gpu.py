#!/usr/bin/env python
"""Multi-GPU FastPSO: the two scaling strategies of Section 3.5.

Simulates both extensions on 1-8 V100s for a large swarm:

* particle splitting — independent sub-swarms with asynchronous gbest
  exchange every 50 iterations;
* tile matrix — the element-wise update sharded by rows with a
  per-iteration all-gather.

The particle-split strategy tolerates the interconnect better because it
synchronises 40x less often — the trade-off the paper describes.
"""

from repro.gpusim import KernelSpec, kernel_cost, resource_aware_config, tesla_v100
from repro.gpusim.multigpu import (
    ExchangeCost,
    partition_particles,
    particle_split_time,
    tile_matrix_time,
)

N_PARTICLES = 200_000
DIM = 256
ITERATIONS = 2000


def per_device_iteration_time(spec, shard_particles: int) -> float:
    """Simulated element-wise update cost for one device's shard."""
    update = KernelSpec(
        name="swarm_velocity_update",
        flops_per_elem=12.0,
        bytes_read_per_elem=20.0,
        bytes_written_per_elem=4.0,
    )
    n_elems = shard_particles * DIM
    return kernel_cost(
        spec, update, resource_aware_config(spec, n_elems), n_elems
    ).seconds


def main() -> None:
    spec = tesla_v100()
    exchange = ExchangeCost(spec)
    base = None
    print(f"swarm: n={N_PARTICLES} d={DIM}, {ITERATIONS} iterations\n")
    print(f"{'devices':>8s} {'split (s)':>10s} {'tile (s)':>10s} "
          f"{'split speedup':>14s}")
    for n_dev in (1, 2, 4, 8):
        shards = partition_particles(N_PARTICLES, n_dev)
        iter_times = [per_device_iteration_time(spec, s) for s in shards]
        split = particle_split_time(
            iter_times,
            ITERATIONS,
            exchange_interval=50,
            exchange=exchange,
            gbest_bytes=DIM * 4,
        )
        tile = tile_matrix_time(
            iter_times, ITERATIONS, exchange, shard_bytes=shards[0] * 8
        )
        base = base or split
        print(
            f"{n_dev:>8d} {split:>10.3f} {tile:>10.3f} {base / split:>13.2f}x"
        )


if __name__ == "__main__":
    main()
