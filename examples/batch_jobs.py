#!/usr/bin/env python
"""Batch scheduling: many small PSO jobs sharing the simulated fleet.

Builds a mixed bag of jobs — different functions, dimensions, swarm sizes
and engines — and runs them three ways:

* serially (the sum-of-solo baseline),
* FIFO-packed onto 4 streams of one simulated V100,
* LPT-packed ("packed" policy) onto the same fleet.

The point of the batch layer: small and medium swarms leave most of a
V100 idle, so multiplexing jobs onto streams cuts the fleet makespan by
several-fold while every job's result stays bit-identical to its solo run.
"""

from repro import BatchScheduler, Job

JOBS = [
    Job("sphere", dim=32, n_particles=256, max_iter=100, seed=1),
    Job("rastrigin", dim=16, n_particles=128, max_iter=150, seed=2),
    Job("ackley", dim=64, n_particles=512, max_iter=80, seed=3),
    Job("griewank", dim=32, n_particles=256, max_iter=120, seed=4,
        engine="fastpso-shared"),
    Job("levy", dim=8, n_particles=1024, max_iter=60, seed=5,
        engine="fastpso-tc"),
    Job("schwefel", dim=16, n_particles=256, max_iter=100, seed=6,
        engine="gpu-pso"),
    Job("rosenbrock", dim=32, n_particles=512, max_iter=90, seed=7),
    Job("zakharov", dim=16, n_particles=128, max_iter=140, seed=8),
]


def main() -> None:
    serial = BatchScheduler(streams_per_device=1).run(JOBS)
    print(f"serial (1 stream):  makespan={serial.makespan_seconds:.4f}s\n")

    for policy in ("fifo", "packed"):
        batch = BatchScheduler(streams_per_device=4, policy=policy).run(JOBS)
        print(batch.summary())
        # Bit-identical determinism: same specs, same numbers, any schedule.
        for a, b in zip(serial.outcomes, batch.outcomes):
            assert a.result.best_value == b.result.best_value
        print()

    prof = batch.fleet_profile
    print(
        f"fleet: {sum(k.launches for k in prof.kernels.values())} kernel "
        f"launches, {prof.gflops:.1f} GFLOP/s over active kernel time"
    )


if __name__ == "__main__":
    main()
