#!/usr/bin/env python
"""Quickstart: minimise a built-in benchmark function with FastPSO.

Runs the paper's default optimizer (element-wise GPU engine on a simulated
Tesla V100) on the 50-dimensional Sphere problem and prints the solution,
the simulated GPU time, and the per-step breakdown.
"""

from repro import FastPSO


def main() -> None:
    pso = FastPSO(n_particles=2000, seed=42)
    result = pso.minimize("sphere", dim=50, max_iter=500, record_history=True)

    print(result.summary())
    print(f"best value          : {result.best_value:.6g}")
    print(f"error to optimum    : {result.error:.6g}")
    print(f"simulated GPU time  : {result.elapsed_seconds * 1e3:.2f} ms")
    print(f"per-iteration cost  : {result.iteration_seconds * 1e6:.1f} us")
    print("step breakdown      :")
    for step, seconds in result.step_times.as_dict().items():
        print(f"  {step:6s} {seconds * 1e3:8.3f} ms")

    history = result.history
    assert history is not None
    checkpoints = [0, len(history) // 4, len(history) // 2, len(history) - 1]
    print("convergence         :")
    for i in checkpoints:
        print(f"  iter {i:4d}  gbest = {history.gbest_values[i]:.6g}")


if __name__ == "__main__":
    main()
