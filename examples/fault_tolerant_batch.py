#!/usr/bin/env python
"""Fault-tolerant fleets: checkpoints, injected faults, retry/failover.

Runs the same 8-job batch twice:

* fault-free, as the golden baseline;
* under an injected fault plan (a launch failure, a sticky device loss
  and an allocator OOM on three different jobs) with the default retry
  policy and per-job checkpointing.

Every faulted job recovers — restarted on a fresh simulated device from
its newest checkpoint — and the final results are bit-identical to the
fault-free batch.  The price appears where it should: in the recovery
footer (lost work + backoff, in simulated seconds) and in the stretched
lane occupancy of the retried jobs, never in the numerics.

Equivalent CLI: ``python -m repro.batch --jobs 8 --faults drill --retry 4
--checkpoint-dir ckpts/``.
"""

import tempfile

from repro import BatchScheduler, FaultPlan, FaultSpec, Job, RetryPolicy

JOBS = [
    Job("sphere", dim=32, n_particles=256, max_iter=100, seed=1),
    Job("rastrigin", dim=16, n_particles=128, max_iter=150, seed=2),
    Job("ackley", dim=64, n_particles=512, max_iter=80, seed=3),
    Job("griewank", dim=32, n_particles=256, max_iter=120, seed=4),
    Job("levy", dim=8, n_particles=1024, max_iter=60, seed=5),
    Job("schwefel", dim=16, n_particles=256, max_iter=100, seed=6),
    Job("rosenbrock", dim=32, n_particles=512, max_iter=90, seed=7),
    Job("zakharov", dim=16, n_particles=128, max_iter=140, seed=8),
]

# Faults are assigned per job index and fire at exact launch/alloc
# ordinals, so the drill is perfectly reproducible.
PLAN = FaultPlan(
    {
        1: [FaultSpec("launch_failure", after=25)],
        3: [FaultSpec("device_lost", after=200)],
        6: [FaultSpec("oom", after=40)],
    },
    seed=2024,
)


def main() -> None:
    golden = BatchScheduler(streams_per_device=4).run(JOBS)

    with tempfile.TemporaryDirectory(prefix="fastpso-ckpt-") as ckpt_dir:
        drilled = BatchScheduler(
            streams_per_device=4,
            retry=RetryPolicy(max_attempts=4),
            faults=PLAN,
            checkpoint_dir=ckpt_dir,
            checkpoint_every=10,
        ).run(JOBS)

    print(drilled.summary())
    print()

    assert drilled.all_succeeded, drilled.failure_table()
    for clean, recovered in zip(golden.outcomes, drilled.outcomes):
        assert recovered.result.best_value == clean.result.best_value
        if recovered.attempts > 1:
            print(
                f"{recovered.job.label}: recovered after "
                f"{recovered.attempts} attempts "
                f"(lost {recovered.lost_seconds:.3g}s simulated work, "
                f"backoff {recovered.backoff_seconds:.3g}s) — "
                f"result identical to the fault-free run"
            )
    print(
        f"\nfleet recovery overhead: {drilled.recovery_seconds:.3g}s "
        f"simulated across {drilled.total_retries} retries; "
        f"makespan {golden.makespan_seconds:.4f}s -> "
        f"{drilled.makespan_seconds:.4f}s"
    )


if __name__ == "__main__":
    main()
