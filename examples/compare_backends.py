#!/usr/bin/env python
"""Compare all seven engines and the three FastPSO memory backends.

Mirrors the paper's Table 1 / Figure 6 at a small interactive scale: every
engine runs the same Griewank workload with the same seed, so the fastpso
family's trajectories are identical and only the simulated elapsed times
differ (that is the paper's whole argument in miniature).
"""

from repro.core import PSOParams, Problem
from repro.engines import ENGINE_NAMES, FastPSOEngine, make_engine


def main() -> None:
    problem = Problem.from_benchmark("griewank", 64)
    params = PSOParams(seed=123)

    print(f"problem: {problem.name} d={problem.dim}, n=1024, 300 iterations\n")
    print(f"{'engine':22s} {'best value':>12s} {'sim time':>12s}")
    for name in ENGINE_NAMES:
        result = make_engine(name).optimize(
            problem, n_particles=1024, max_iter=300, params=params
        )
        print(
            f"{name:22s} {result.best_value:12.5g} "
            f"{result.elapsed_seconds * 1e3:10.2f}ms"
        )

    print("\nFastPSO memory backends (Figure 6):")
    for backend in ("global", "shared", "tensorcore"):
        engine = FastPSOEngine(backend=backend)
        result = engine.optimize(
            problem, n_particles=1024, max_iter=300, params=params
        )
        swarm_ms = result.step_times.swarm * 1e3
        print(
            f"{engine.name:22s} {result.best_value:12.5g} "
            f"swarm step {swarm_ms:8.2f}ms"
        )
    print(
        "\n(global and shared are bit-identical; tensorcore differs only by "
        "fp16 rounding of the weight products)"
    )


if __name__ == "__main__":
    main()
