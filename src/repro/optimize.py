"""Alias so ``python -m repro.optimize`` reaches the optimizer CLI."""

from repro.optimize_cli import main

if __name__ == "__main__":
    import sys

    sys.exit(main())
