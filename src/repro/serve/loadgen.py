"""Seeded load generation: replay thousands of client sessions.

A :class:`LoadProfile` describes an open-loop arrival process — session
count, exponential inter-arrival gaps in *virtual* seconds, a tenant mix,
per-session PSO job shape, and an optional fraction of clients that
cancel mid-run after watching their stream.  :func:`build_sessions`
expands it into a concrete, fully deterministic session list (one seeded
``default_rng`` draw per profile), and :func:`replay` drives an
:class:`~repro.serve.service.OptimizationService` through it: submit each
session at its virtual arrival, attach cancel-watchers that consume the
job's stream, then drain.

Everything downstream of the seed is deterministic — the same profile
against the same service configuration reproduces byte-identical event
logs, which is exactly what the CI serve drill and ``BENCH_serve.json``
assert.
"""

from __future__ import annotations

import asyncio
from dataclasses import dataclass

import numpy as np

from repro.batch.job import Job
from repro.errors import AdmissionError, ConfigurationError
from repro.serve.service import JobTicket, OptimizationService

__all__ = [
    "ClientSession",
    "LoadProfile",
    "build_sessions",
    "replay",
    "run_drill",
]


@dataclass(frozen=True)
class LoadProfile:
    """Declarative description of one synthetic client population."""

    n_sessions: int = 1000
    seed: int = 2021
    #: Mean exponential gap between arrivals, in virtual seconds.  The
    #: default sits near the solo duration of the default job shape, so a
    #: single-device fleet queues and an autoscaled fleet grows.
    mean_interarrival: float = 2e-5
    problem: str = "sphere"
    dim: int = 8
    n_particles: int = 32
    max_iter: int = 25
    engine: str = "fastpso"
    #: ``(tenant name, weight)`` mix; weights are normalized.
    tenants: tuple = (("free", 0.7), ("pro", 0.3))
    #: Fraction of sessions whose client cancels mid-run.
    cancel_fraction: float = 0.0
    #: Stream updates a cancelling client consumes before cancelling.
    cancel_after_updates: int = 2
    record_history: bool = False

    def __post_init__(self) -> None:
        if self.n_sessions < 1:
            raise ConfigurationError(
                f"n_sessions must be >= 1, got {self.n_sessions}"
            )
        if not self.mean_interarrival > 0:
            raise ConfigurationError(
                f"mean_interarrival must be > 0, got {self.mean_interarrival}"
            )
        if not self.tenants:
            raise ConfigurationError("tenants mix must be non-empty")
        if any(w <= 0 for _, w in self.tenants):
            raise ConfigurationError("tenant weights must be positive")
        if not 0.0 <= self.cancel_fraction <= 1.0:
            raise ConfigurationError(
                f"cancel_fraction must be in [0, 1], got {self.cancel_fraction}"
            )
        if self.cancel_after_updates < 1:
            raise ConfigurationError(
                f"cancel_after_updates must be >= 1, "
                f"got {self.cancel_after_updates}"
            )


@dataclass(frozen=True)
class ClientSession:
    """One concrete client: when it arrives, who it is, what it runs."""

    index: int
    arrival: float
    tenant: str
    seed: int
    #: Updates to consume before cancelling (``None`` = never cancels).
    cancel_after_updates: int | None

    def job(self, profile: LoadProfile) -> Job:
        return Job(
            problem=profile.problem,
            dim=profile.dim,
            n_particles=profile.n_particles,
            max_iter=profile.max_iter,
            engine=profile.engine,
            seed=self.seed,
            name=f"session{self.index:05d}",
            record_history=profile.record_history,
        )


def build_sessions(profile: LoadProfile) -> list[ClientSession]:
    """Expand a profile into its deterministic session list."""
    rng = np.random.default_rng(profile.seed)
    gaps = rng.exponential(
        profile.mean_interarrival, size=profile.n_sessions
    )
    arrivals = np.cumsum(gaps)
    names = [name for name, _ in profile.tenants]
    weights = np.array([w for _, w in profile.tenants], dtype=np.float64)
    weights /= weights.sum()
    tenant_picks = rng.choice(len(names), size=profile.n_sessions, p=weights)
    seeds = rng.integers(0, 2**31, size=profile.n_sessions)
    cancels = rng.random(profile.n_sessions) < profile.cancel_fraction
    return [
        ClientSession(
            index=i,
            arrival=float(arrivals[i]),
            tenant=names[int(tenant_picks[i])],
            seed=int(seeds[i]),
            cancel_after_updates=(
                profile.cancel_after_updates if cancels[i] else None
            ),
        )
        for i in range(profile.n_sessions)
    ]


async def _cancel_watcher(ticket: JobTicket, after_updates: int) -> None:
    """Consume the job's stream; cancel after *after_updates* updates.

    If the job finishes before the threshold (or already finished before
    the watcher ran), the cancel lands post-completion and is a no-op —
    exactly the race a real client loses.
    """
    seen = 0
    async for _ in ticket.stream():
        seen += 1
        if seen >= after_updates:
            ticket.cancel()
            return


async def replay(
    service: OptimizationService,
    profile: LoadProfile,
    *,
    start_index: int = 0,
) -> list[JobTicket]:
    """Drive *service* through the profile's sessions; returns tickets.

    Strict-admission refusals are absorbed (the shed is on the event log;
    the refused session simply has no ticket in the returned list).

    *start_index* skips the first N sessions — the crash-recovery driver:
    a recovered service already replayed every journaled submit, so the
    drill resumes at ``start_index=len(service.status())`` and the merged
    event log lines up with the uninterrupted run.
    """
    if not 0 <= start_index <= profile.n_sessions:
        raise ConfigurationError(
            f"start_index must be in [0, {profile.n_sessions}], "
            f"got {start_index}"
        )
    sessions = build_sessions(profile)[start_index:]
    tickets: list[JobTicket] = []
    watchers: list[asyncio.Task] = []
    for session in sessions:
        try:
            ticket = await service.submit(
                session.job(profile),
                tenant=session.tenant,
                at=session.arrival,
            )
        except AdmissionError:
            continue
        tickets.append(ticket)
        if (
            session.cancel_after_updates is not None
            and not ticket.finished
        ):
            watchers.append(
                asyncio.ensure_future(
                    _cancel_watcher(ticket, session.cancel_after_updates)
                )
            )
    await service.drain()
    for watcher in watchers:
        watcher.cancel()
        try:
            await watcher
        except asyncio.CancelledError:
            pass
    return tickets


def run_drill(
    profile: LoadProfile | None = None, **service_kwargs
) -> OptimizationService:
    """Synchronous one-call drill: build a service, replay, return it.

    The returned service carries the full event log
    (:meth:`~repro.serve.service.OptimizationService.events_json`) and
    metrics (:meth:`~repro.serve.service.OptimizationService.report`).
    """
    profile = profile if profile is not None else LoadProfile()
    service = OptimizationService(**service_kwargs)
    asyncio.run(replay(service, profile))
    return service
