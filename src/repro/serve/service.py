"""The asyncio serving front-end: PSO optimization as a service.

:class:`OptimizationService` puts an async job API — submit, stream,
cancel, status — in front of the batch/reliability machinery.  Where
:class:`~repro.batch.scheduler.BatchScheduler` plans a *closed* batch,
the service runs an *open* system: jobs arrive over (virtual) time, are
gated by per-tenant quotas and the admission memory ladder, dispatched
onto a :class:`~repro.batch.dispatch.FleetTimeline` that an autoscaler
grows and shrinks, streamed while in flight, and cancellable at any
phase.

Determinism model — discrete-event simulation on two time axes
--------------------------------------------------------------
Every latency, timestamp and scaling decision lives in **virtual time**
(simulated seconds, the same axis the engines' ``SimClock`` uses); host
wall-clock never enters any decision.  Execution is host-sequential: one
job actually computes at a time (on the
:class:`~repro.batch.dispatch.RunningJob` stepped protocol, so results
are bit-identical to solo runs), and its measured simulated duration is
committed to the fleet timeline at the virtual start the dispatcher
reserved.  Arrivals must be submitted in non-decreasing virtual order
(``at=``); the service advances virtual time only as far as the latest
known arrival, so a later high-priority arrival can still overtake
queued work — and a seeded replay of the same arrival sequence
reproduces byte-identical event logs.

Durability — the write-ahead journal
------------------------------------
With ``journal_dir`` set, every state transition is appended to a
:class:`~repro.serve.journal.ServiceJournal` **before** it takes effect:
submits (with the full job spec), admission verdicts, dispatches,
progress watermarks, checkpoint references, retries, cancellations and
completions (with the exact committed duration and the full result).
The write-ahead ordering gives crash recovery its invariant — *journaled
means it happened; not journaled means it never happened* — so
:meth:`OptimizationService.recover` rebuilds the exact service state
after SIGKILL: queued tickets re-enter admission in their original
order, the in-flight job resumes bit-identically from its newest
checkpoint, finished results are served from the journal without
re-running, and the post-recovery event log is byte-identical to an
uninterrupted run.  If the journal directory becomes unwritable the
service degrades to **read-only mode**: status and streaming keep
working, submissions are refused with a structured
:class:`~repro.errors.JournalError` row.

Fault tolerance — retry, watchdog, CPU failover
-----------------------------------------------
``retry`` wires a :class:`~repro.reliability.retry.RetryPolicy` into
dispatch: a failed attempt banks the newest checkpoint, charges the lost
simulated work plus exponential backoff to the job's overhead, and goes
around on a fresh engine (a fresh simulated device).  On the final
attempt — or when the lane's circuit breaker trips open mid-job — the
run degrades to the policy's CPU fallback, whose bit-identical numerics
keep the trajectory unchanged.  ``watchdog_seconds`` adds a progress
lease on the same loop: an attempt that advances simulated time past the
lease without a progress mark is declared stalled
(:class:`~repro.errors.StalledRunError`) and retried like any transient
fault.  ``faults`` attaches a :class:`~repro.reliability.faults
.FaultPlan`'s injectors to dispatched jobs, the serve-level version of
the batch fault drills.

Who drives execution
--------------------
``submit()`` advances the simulation to the new arrival (dispatching
whatever starts earlier), ``drain()`` runs everything still queued, and
``JobTicket.wait()`` drives until that job finishes.  ``JobTicket.stream()``
only *observes* — it yields best-so-far improvements as some driver
executes the job, and ends at the job's terminal state.
"""

from __future__ import annotations

import asyncio
import math
from dataclasses import dataclass
from pathlib import Path

from repro.batch.dispatch import (
    FleetTimeline,
    LanePlacement,
    RunningJob,
    effective_engine_options,
)
from repro.batch.job import Job
from repro.batch.scheduler import BatchScheduler
from repro.core.budget import Budget
from repro.core.results import OptimizeResult
from repro.errors import (
    AdmissionError,
    CheckpointError,
    ConfigurationError,
    InvalidParameterError,
    JournalError,
    ReproError,
    StalledRunError,
)
from repro.io import result_from_dict, result_to_dict
from repro.reliability.checkpoint import CheckpointManager, read_snapshot
from repro.reliability.faults import FaultPlan
from repro.reliability.retry import RetryPolicy
from repro.reliability.snapshot import ensure_capturable, params_to_spec
from repro.serve.autoscale import AutoscalePolicy, Autoscaler
from repro.serve.events import ServiceEvent, events_to_json
from repro.serve.journal import ServiceJournal, job_from_spec, job_to_spec
from repro.serve.quota import TenantQuota
from repro.utils.stats import percentile

__all__ = [
    "JobTicket",
    "OptimizationService",
    "ProgressUpdate",
    "ServiceReport",
]

@dataclass(frozen=True)
class ProgressUpdate:
    """One streamed improvement of a job's best-so-far value.

    Emitted on the first executed iteration and then whenever the global
    best strictly improves, so a consumer sees a monotonically decreasing
    ``best_value`` sequence that reconstructs the solo run's
    ``History.gbest_values`` trace exactly (carry the last value forward
    over unlisted iterations).
    """

    job_id: int
    iteration: int
    best_value: float
    sim_seconds: float


class JobTicket:
    """Handle to one submitted job: status, streaming, result, cancel.

    Tickets are created by :meth:`OptimizationService.submit`; ``job_id``
    is dense and ascending in submission order.  ``status`` is ``"queued"``
    until dispatch, then a terminal engine status (``"completed"``,
    ``"degraded"``, a budget status, …) or ``"shed"`` / ``"cancelled"`` /
    ``"failed"`` / ``"refused"`` (degraded read-only mode).
    """

    def __init__(
        self, service: "OptimizationService", job_id: int, tenant: str, job: Job
    ) -> None:
        self._service = service
        self.job_id = job_id
        self.tenant = tenant
        #: The job as submitted.
        self.job = job
        #: The job actually executed (admission may degrade it).
        self.effective_job = job
        self.arrival = 0.0
        self.priority = job.priority
        self.status = "queued"
        self.admission_action = ""
        self.admission_reason = ""
        self.placement: LanePlacement | None = None
        self.result: OptimizeResult | None = None
        #: Checkpoint file written by a mid-run cancel (resubmit resumes it).
        self.checkpoint_path: Path | None = None
        #: Ticket this job resumed from (checkpoint-backed requeue).
        self.resumed_from: int | None = None
        self.cancel_requested = False
        self._restore_path: Path | None = None
        self._updates: asyncio.Queue = asyncio.Queue()
        self._done = asyncio.Event()

    # -- views ---------------------------------------------------------------
    @property
    def finished(self) -> bool:
        return self._done.is_set()

    @property
    def latency_seconds(self) -> float | None:
        """Virtual submit-to-finish latency (``None`` until dispatched)."""
        if self.placement is None:
            return None
        return self.placement.end_seconds - self.arrival

    def to_row(self) -> dict:
        """JSON-safe status row (the ``status`` API and CLI output)."""
        return {
            "job_id": self.job_id,
            "tenant": self.tenant,
            "label": self.job.label,
            "status": self.status,
            "priority": self.priority,
            "arrival": self.arrival,
            "start": (
                self.placement.start_seconds if self.placement else None
            ),
            "end": self.placement.end_seconds if self.placement else None,
            "latency": self.latency_seconds,
            "best_value": (
                float(self.result.best_value)
                if self.result is not None
                else None
            ),
            "admission": self.admission_action,
            "resumed_from": self.resumed_from,
        }

    # -- client actions ------------------------------------------------------
    async def stream(self):
        """Async-iterate :class:`ProgressUpdate`\\ s until the job ends.

        Purely observational: some driver (further ``submit()`` calls,
        ``drain()``, or ``wait()`` from another task) must execute the job.
        A single consumer sees every update; the terminal sentinel is
        re-queued so late iterations terminate immediately.
        """
        while True:
            item = await self._updates.get()
            if item is None:
                self._updates.put_nowait(None)
                return
            yield item

    async def wait(self) -> OptimizeResult | None:
        """Drive the service until this job is terminal; return its result.

        ``None`` for jobs that never produced one (shed, queued-cancel,
        failed).  Unlike :meth:`stream`, ``wait()`` *advances* the
        simulation — it runs every job queued ahead of this one.
        """
        await self._service._finish_job(self)
        return self.result

    def cancel(self) -> bool:
        """Request cancellation (see :meth:`OptimizationService.cancel`)."""
        return self._service.cancel(self.job_id)

    # -- service-side hooks --------------------------------------------------
    def _push(self, update: ProgressUpdate) -> None:
        self._updates.put_nowait(update)

    def _finalize(self) -> None:
        self._updates.put_nowait(None)
        self._done.set()


@dataclass(frozen=True)
class ServiceReport:
    """Aggregate service metrics over everything submitted so far.

    Latency percentiles are nearest-rank over *virtual* submit-to-finish
    latencies of jobs that ran (shed and queued-cancelled jobs have no
    latency; they are counted in ``shed_rate`` / ``counts`` instead).
    ``throughput_per_second`` is finished-jobs per simulated second of
    fleet makespan.  A degenerate window — nothing submitted, or every
    job shed/refused — reports zeroed latencies and throughput (and
    ``shed_rate == 1.0`` when jobs were refused) rather than raising.
    """

    n_jobs: int
    counts: dict
    p50_latency_seconds: float
    p99_latency_seconds: float
    mean_latency_seconds: float
    throughput_per_second: float
    shed_rate: float
    makespan_seconds: float
    devices_provisioned: int
    devices_active: int
    scale_ups: int
    scale_downs: int
    retries: int = 0
    stalled: int = 0

    def to_dict(self) -> dict:
        return {
            "n_jobs": self.n_jobs,
            "counts": dict(self.counts),
            "p50_latency_seconds": self.p50_latency_seconds,
            "p99_latency_seconds": self.p99_latency_seconds,
            "mean_latency_seconds": self.mean_latency_seconds,
            "throughput_per_second": self.throughput_per_second,
            "shed_rate": self.shed_rate,
            "makespan_seconds": self.makespan_seconds,
            "devices_provisioned": self.devices_provisioned,
            "devices_active": self.devices_active,
            "scale_ups": self.scale_ups,
            "scale_downs": self.scale_downs,
            "retries": self.retries,
            "stalled": self.stalled,
        }

    def summary(self) -> str:
        p50 = (
            f"{self.p50_latency_seconds:.4g}s"
            if self.p50_latency_seconds is not None
            else "n/a"
        )
        p99 = (
            f"{self.p99_latency_seconds:.4g}s"
            if self.p99_latency_seconds is not None
            else "n/a"
        )
        return (
            f"{self.n_jobs} job(s): p50={p50} p99={p99} "
            f"throughput={self.throughput_per_second:.4g}/s "
            f"shed={self.shed_rate:.2%} "
            f"devices={self.devices_active}/{self.devices_provisioned} "
            f"(+{self.scale_ups}/-{self.scale_downs} scaling)"
        )


class OptimizationService:
    """Async front-end serving PSO jobs on the simulated fleet.

    Parameters mirror :class:`~repro.batch.scheduler.BatchScheduler` where
    the concept carries over (``admission``/``max_queue``/
    ``memory_limit_bytes``, ``deadline``, ``budget``, ``breaker``,
    ``guard``, ``graph``), plus the serving-only knobs:

    quotas:
        ``{tenant name: TenantQuota}``; ``default_quota`` applies to
        tenants not in the mapping (unrestricted when ``None``).
    device:
        Catalog device the base fleet runs on — a name/alias resolved
        through :func:`repro.devices.resolve_device` or a ready
        :class:`~repro.gpusim.device.DeviceSpec`.  GPU jobs execute on
        that spec (trajectories unchanged, simulated seconds move) and
        admission prices memory against it.  ``None`` keeps the
        historical flat V100.
    autoscale:
        ``True`` (default policy), an :class:`AutoscalePolicy`, or
        ``None`` for a fixed fleet.  ``n_devices`` is the starting size
        and must lie within the policy's bounds.  A policy with
        ``grow_device`` set provisions *that* catalog entry on scale-up,
        so a burst fleet can differ from the base fleet's silicon.
    checkpoint_dir:
        Directory for cancellation checkpoints — a mid-run cancel
        snapshots the run there, and :meth:`resubmit` resumes it
        bit-identically.  Also the fallback home for retry/watchdog
        checkpoints when no journal is configured.
    stream_stride:
        Iterations between cooperative yields while a job runs (1 =
        every iteration; larger strides run faster but make streaming
        consumers and mid-run cancels coarser).
    journal_dir:
        Directory for the write-ahead journal (see the module docstring's
        durability section).  ``journal_fsync=False`` trades power-loss
        durability for append speed.
    retry:
        An attempt count or a full :class:`~repro.reliability.retry
        .RetryPolicy`; transient failures and watchdog stalls retry from
        the newest checkpoint, degrading to the policy's CPU fallback on
        the final attempt.
    faults:
        A :class:`~repro.reliability.faults.FaultPlan`; each dispatched
        job gets its injector attached (``plan.injector_for(job_id)``).
    watchdog_seconds:
        Progress lease in simulated seconds — an attempt whose clock
        advances more than this between progress marks is declared
        stalled and retried under ``retry``.
    checkpoint_every:
        Iteration cadence of the per-job checkpoint managers backing
        retry/watchdog recovery and crash resume.
    journal_kill_at / journal_kill_mode:
        Deterministic crash harness (tests/CI only): crash — via SIGKILL
        or an in-process :class:`~repro.serve.journal.JournalKillPoint`
        — immediately after the journal record with that sequence number
        is durable.
    """

    def __init__(
        self,
        *,
        n_devices: int = 1,
        streams_per_device: int = 4,
        device=None,
        quotas: dict | None = None,
        default_quota: TenantQuota | None = None,
        autoscale: AutoscalePolicy | bool | None = None,
        admission=None,
        max_queue: int | None = None,
        memory_limit_bytes: int | None = None,
        deadline: float | None = None,
        budget: Budget | None = None,
        breaker=None,
        guard=None,
        graph: bool | None = None,
        checkpoint_dir: str | Path | None = None,
        stream_stride: int = 1,
        journal_dir: str | Path | None = None,
        journal_fsync: bool = True,
        retry: RetryPolicy | int | None = None,
        faults: FaultPlan | None = None,
        watchdog_seconds: float | None = None,
        checkpoint_every: int = 10,
        journal_kill_at: int | None = None,
        journal_kill_mode: str = "sigkill",
    ) -> None:
        if n_devices < 1:
            raise InvalidParameterError(
                f"need at least one device, got {n_devices}"
            )
        if streams_per_device < 1:
            raise InvalidParameterError(
                f"need at least one stream per device, got {streams_per_device}"
            )
        if stream_stride < 1:
            raise InvalidParameterError(
                f"stream_stride must be >= 1, got {stream_stride}"
            )
        self.streams_per_device = int(streams_per_device)
        self.stream_stride = int(stream_stride)
        self._base_devices = int(n_devices)

        self.device_spec = None
        if device is not None:
            from repro.devices import resolve_device

            self.device_spec = resolve_device(device)

        if autoscale is True:
            autoscale = AutoscalePolicy()
        elif autoscale is False:
            autoscale = None
        if autoscale is not None and not isinstance(autoscale, AutoscalePolicy):
            raise ConfigurationError(
                "autoscale must be True, None or an AutoscalePolicy, got "
                f"{type(autoscale).__name__}"
            )
        if autoscale is not None and not (
            autoscale.min_devices <= n_devices <= autoscale.max_devices
        ):
            raise ConfigurationError(
                f"n_devices ({n_devices}) must lie within the autoscale "
                f"bounds [{autoscale.min_devices}, {autoscale.max_devices}]"
            )
        self._autoscaler = (
            Autoscaler(autoscale) if autoscale is not None else None
        )
        # The spec scale-up provisions (resolved once, bad names fail
        # loudly here); None = grown devices match the base fleet.
        self._grow_spec = (
            autoscale.resolved_grow_spec() if autoscale is not None else None
        )

        self.quotas = dict(quotas or {})
        for tenant, quota in self.quotas.items():
            if not isinstance(quota, TenantQuota):
                raise ConfigurationError(
                    f"quota for tenant {tenant!r} must be a TenantQuota, "
                    f"got {type(quota).__name__}"
                )
        if default_quota is not None and not isinstance(
            default_quota, TenantQuota
        ):
            raise ConfigurationError(
                "default_quota must be a TenantQuota, got "
                f"{type(default_quota).__name__}"
            )
        self.default_quota = default_quota or TenantQuota()

        self.admission = BatchScheduler._build_admission(
            admission, max_queue=max_queue, memory_limit_bytes=memory_limit_bytes
        )
        if deadline is not None and not deadline > 0:
            raise InvalidParameterError(
                f"deadline must be positive seconds, got {deadline!r}"
            )
        self.deadline = deadline
        if budget is not None and not isinstance(budget, Budget):
            raise InvalidParameterError(
                f"budget must be a repro Budget, got {type(budget).__name__}"
            )
        self.budget = budget
        self.graph = graph
        if guard is not None and not hasattr(guard, "inspect"):
            raise InvalidParameterError(
                "guard must provide inspect() (see repro.reliability.guard), "
                f"got {type(guard).__name__}"
            )
        self.guard = guard
        self.checkpoint_dir = (
            Path(checkpoint_dir) if checkpoint_dir is not None else None
        )

        if isinstance(retry, bool):
            raise InvalidParameterError(
                "retry must be an attempt count or a RetryPolicy, got a bool"
            )
        if isinstance(retry, int):
            retry = RetryPolicy(max_attempts=retry)
        if retry is not None and not isinstance(retry, RetryPolicy):
            raise InvalidParameterError(
                "retry must be an attempt count or a RetryPolicy, got "
                f"{type(retry).__name__}"
            )
        self.retry = retry
        if faults is not None and not isinstance(faults, FaultPlan):
            raise InvalidParameterError(
                f"faults must be a FaultPlan, got {type(faults).__name__}"
            )
        self.faults = faults
        if watchdog_seconds is not None and not watchdog_seconds > 0:
            raise InvalidParameterError(
                "watchdog_seconds must be positive simulated seconds, got "
                f"{watchdog_seconds!r}"
            )
        self.watchdog_seconds = watchdog_seconds
        if checkpoint_every < 1:
            raise InvalidParameterError(
                f"checkpoint_every must be >= 1, got {checkpoint_every}"
            )
        self.checkpoint_every = int(checkpoint_every)

        breaker_policy = BatchScheduler._build_breaker(breaker)
        self._health = None
        if breaker_policy is not None:
            from repro.reliability.breaker import FleetHealth

            # Sized for the largest fleet autoscaling may provision, so a
            # scaled-up device has a breaker from the start.
            ceiling = (
                self._autoscaler.policy.max_devices
                if self._autoscaler is not None
                else n_devices
            )
            self._health = FleetHealth(ceiling, policy=breaker_policy)

        self._timeline = FleetTimeline(
            n_devices, streams_per_device=streams_per_device
        )
        self._tickets: list[JobTicket] = []
        self._pending: list[JobTicket] = []
        self._now = 0.0
        self._events: list[ServiceEvent] = []
        self._lock = asyncio.Lock()

        #: Structured refusal rows recorded in degraded read-only mode.
        self.refusals: list[dict] = []
        self.journal_dir = Path(journal_dir) if journal_dir is not None else None
        self._journal: ServiceJournal | None = None
        self._read_only = False
        self._journal_error_row: dict | None = None
        #: Crash-resume state per job id (built by :meth:`recover`).
        self._resume: dict[int, dict] = {}
        if self.journal_dir is not None:
            try:
                self._journal = ServiceJournal(
                    self.journal_dir,
                    fsync=journal_fsync,
                    kill_at=journal_kill_at,
                    kill_mode=journal_kill_mode,
                )
            except OSError as exc:
                self._enter_read_only(exc)

    # -- introspection -------------------------------------------------------
    @property
    def events(self) -> tuple[ServiceEvent, ...]:
        """The decision log (see :mod:`repro.serve.events`)."""
        return tuple(self._events)

    def events_json(self) -> str:
        """Canonical JSON event log (what the CI drill byte-compares)."""
        return events_to_json(self._events)

    @property
    def now(self) -> float:
        """Latest known virtual arrival time."""
        return self._now

    @property
    def n_devices(self) -> int:
        """Devices ever provisioned (retired ones included)."""
        return self._timeline.n_devices

    @property
    def active_devices(self) -> tuple[int, ...]:
        return self._timeline.active_devices

    @property
    def read_only(self) -> bool:
        """Whether the service is in degraded read-only mode (dead journal)."""
        return self._read_only

    @property
    def journal_error(self) -> dict | None:
        """Structured error row describing why the journal died, if it did."""
        return dict(self._journal_error_row) if self._journal_error_row else None

    def status(self, job_id: int | None = None):
        """One job's status row, or every job's (submission order)."""
        if job_id is not None:
            return self._get_ticket(job_id).to_row()
        return [ticket.to_row() for ticket in self._tickets]

    def _get_ticket(self, job_id: int) -> JobTicket:
        if not 0 <= job_id < len(self._tickets):
            raise InvalidParameterError(
                f"unknown job id {job_id} "
                f"({len(self._tickets)} job(s) submitted)"
            )
        return self._tickets[job_id]

    def _quota_for(self, tenant: str) -> TenantQuota:
        return self.quotas.get(tenant, self.default_quota)

    # -- journaling ----------------------------------------------------------
    def _enter_read_only(self, exc: OSError) -> None:
        """Degrade to read-only mode: the journal can no longer be trusted."""
        self._read_only = True
        if self._journal is not None:
            self._journal.close()
            self._journal = None
        error = JournalError(
            f"journal directory {self.journal_dir} is unwritable: {exc}"
        )
        self._journal_error_row = error.to_row()

    def _journal_append(self, record: dict) -> None:
        if self._journal is None:
            return
        try:
            self._journal.append(record)
        except OSError as exc:
            self._enter_read_only(exc)

    def _emit(
        self, kind: str, *, time: float, ticket=None, _extra=None, **detail
    ) -> None:
        event = ServiceEvent(
            ordinal=len(self._events),
            time=float(time),
            kind=kind,
            job_id=ticket.job_id if ticket is not None else None,
            tenant=ticket.tenant if ticket is not None else None,
            detail=detail,
        )
        # Write-ahead: the transition is durable before it takes effect.
        record: dict = {"type": "event", "event": event.to_row()}
        if _extra:
            record["extra"] = _extra
        self._journal_append(record)
        self._events.append(event)

    # -- submission ----------------------------------------------------------
    async def submit(
        self,
        job: Job | None = None,
        /,
        *,
        tenant: str = "default",
        at: float | None = None,
        restore: str | Path | None = None,
        _resumed_from: int | None = None,
        **spec: object,
    ) -> JobTicket:
        """Submit a job arriving at virtual second *at* (default: now).

        Accepts a ready :class:`~repro.batch.job.Job` or its field values
        as keywords.  Arrivals must be non-decreasing — the service is a
        discrete-event simulation and cannot rewrite history.  *restore*
        resumes a cancellation checkpoint file (see :meth:`resubmit`).

        The returned :class:`JobTicket` may already be terminal: quota or
        admission refusals shed synchronously (``status == "shed"``; in
        strict admission mode an :class:`~repro.errors.AdmissionError` is
        raised instead), a read-only service refuses synchronously
        (``status == "refused"``), and a job the idle fleet can run
        immediately is executed before ``submit`` returns.
        """
        if job is None:
            job = Job(**spec)  # type: ignore[arg-type]
        elif spec:
            raise InvalidParameterError(
                "pass either a Job or keyword fields, not both"
            )
        if not isinstance(job, Job):
            raise InvalidParameterError(
                f"expected a Job, got {type(job).__name__}"
            )
        arrival = self._now if at is None else float(at)
        if arrival < self._now:
            raise InvalidParameterError(
                f"arrivals must be non-decreasing: at={arrival} precedes "
                f"the service clock {self._now}"
            )
        if self._read_only:
            return self._refuse(job, tenant, arrival, _resumed_from)

        # Run everything that starts strictly before this arrival, so the
        # queue the new job sees (and quota/admission/autoscale decisions)
        # reflect the fleet state at its arrival instant.
        await self._advance(arrival, exclusive=True)
        self._now = arrival
        if self._read_only:
            # The journal died while earlier work was being dispatched.
            return self._refuse(job, tenant, arrival, _resumed_from)

        ticket = JobTicket(self, len(self._tickets), tenant, job)
        ticket.arrival = arrival
        ticket.resumed_from = _resumed_from
        quota = self._quota_for(tenant)
        ticket.priority = quota.job_priority(job.priority)
        self._tickets.append(ticket)
        submit_detail: dict = {"label": job.label}
        if restore is not None:
            submit_detail["restore"] = str(restore)
        if _resumed_from is not None:
            submit_detail["resumed_from"] = _resumed_from
        submit_extra = None
        if self._journal is not None:
            submit_extra = {"job": job_to_spec(job)}
        self._emit(
            "submit", time=arrival, ticket=ticket, _extra=submit_extra,
            **submit_detail,
        )

        if not self._admission_verdict(ticket):
            return ticket

        ticket._restore_path = Path(restore) if restore is not None else None

        # Autoscaler observation: the queue as this arrival finds it (the
        # new job is not yet counted — idle streaks would otherwise never
        # accumulate under sparse arrivals).
        self._autoscale_tick(now=arrival)
        self._pending.append(ticket)
        self._pending.sort(key=lambda t: (-t.priority, t.job_id))

        # Eagerly run whatever can start at this instant (an idle fleet
        # serves the job before submit() returns).
        await self._advance(arrival)
        return ticket

    def _admission_verdict(self, ticket: JobTicket) -> bool:
        """Run quota + admission for *ticket*, emitting the verdict event.

        Returns whether the ticket remains queued.  Shared by ``submit()``
        and crash recovery: a crash between the journaled submit and its
        verdict resumes here, and the recomputation is deterministic, so
        the recovered verdict matches the one the uninterrupted run made.
        Raises :class:`~repro.errors.AdmissionError` in strict mode (after
        recording the shed).
        """
        job = ticket.job
        arrival = ticket.arrival
        quota = self._quota_for(ticket.tenant)
        refusal = self._quota_refusal(ticket, quota)
        if refusal is not None:
            self._shed(ticket, refusal, source="quota")
            return False

        if self.admission is not None:
            try:
                decision = self.admission.admit_one(
                    job,
                    submit_order=ticket.job_id,
                    streams_per_device=self.streams_per_device,
                    device_mem_bytes=self._device_mem_bytes(),
                    queue_depth=len(self._pending),
                )
            except AdmissionError:
                # Strict mode refuses loudly; the shed still goes on the
                # record so replayed logs show the refusal.
                self._record_shed(ticket, "strict admission refusal", "admission")
                raise
            ticket.admission_action = decision.action
            ticket.admission_reason = decision.reason
            if decision.action == "shed":
                self._shed(ticket, decision.reason, source="admission")
                return False
            if decision.action == "degrade":
                ticket.effective_job = decision.job
                degrade_extra = None
                if self._journal is not None:
                    degrade_extra = {"job": job_to_spec(decision.job)}
                self._emit(
                    "degrade",
                    time=arrival,
                    ticket=ticket,
                    _extra=degrade_extra,
                    reason=decision.reason,
                    n_particles=decision.job.n_particles,
                )
            else:
                self._emit("admit", time=arrival, ticket=ticket)
        else:
            ticket.admission_action = "admit"
            self._emit("admit", time=arrival, ticket=ticket)
        return True

    def _refuse(
        self, job: Job, tenant: str, arrival: float, resumed_from: int | None
    ) -> JobTicket:
        """Refuse a submission in degraded read-only mode."""
        ticket = JobTicket(self, len(self._tickets), tenant, job)
        ticket.arrival = arrival
        ticket.resumed_from = resumed_from
        ticket.priority = self._quota_for(tenant).job_priority(job.priority)
        self._tickets.append(ticket)
        self._now = max(self._now, arrival)
        ticket.status = "refused"
        ticket.admission_action = "refused"
        row = dict(self._journal_error_row or {})
        row["job"] = job.label
        self.refusals.append(row)
        ticket.admission_reason = row.get("message", "journal unwritable")
        # The journal is the thing that broke, so the refusal itself
        # cannot be journaled: this event is memory-only by design.
        self._emit(
            "refused",
            time=arrival,
            ticket=ticket,
            reason=ticket.admission_reason,
            error=row.get("error"),
        )
        ticket._finalize()
        return ticket

    async def resubmit(
        self, job_id: int, *, at: float | None = None
    ) -> JobTicket:
        """Requeue a cancelled job from its cancellation checkpoint.

        The new ticket resumes the run bit-identically from the iteration
        the cancel captured (same effective job, same tenant); its
        ``resumed_from`` points back at *job_id*.
        """
        old = self._get_ticket(job_id)
        if old.status != "cancelled" or old.checkpoint_path is None:
            raise InvalidParameterError(
                f"job {job_id} has no cancellation checkpoint to resume "
                f"(status {old.status!r})"
            )
        return await self.submit(
            old.effective_job,
            tenant=old.tenant,
            at=at,
            restore=old.checkpoint_path,
            _resumed_from=job_id,
        )

    def _device_mem_bytes(self) -> int:
        from repro.gpusim.device import tesla_v100

        base = self.device_spec or tesla_v100()
        if self._grow_spec is not None:
            # A job must fit wherever dispatch lands it, grown devices
            # included, so admission prices against the smaller memory.
            return min(base.global_mem_bytes, self._grow_spec.global_mem_bytes)
        return base.global_mem_bytes

    def _spec_for_device(self, device: int):
        """The catalog spec device *device* runs jobs on (``None`` =
        the engine's own default, the historical flat V100)."""
        if self._grow_spec is not None and device >= self._base_devices:
            return self._grow_spec
        return self.device_spec

    def _quota_refusal(
        self, ticket: JobTicket, quota: TenantQuota
    ) -> str | None:
        """Why the tenant's quota refuses this arrival, or ``None``."""
        if quota.max_queued is not None:
            queued = sum(
                1 for t in self._pending if t.tenant == ticket.tenant
            )
            if queued >= quota.max_queued:
                return (
                    f"tenant {ticket.tenant!r} queued-job quota "
                    f"{quota.max_queued} reached"
                )
        if quota.max_active is not None:
            active = 0
            for t in self._tickets:
                if t is ticket or t.tenant != ticket.tenant:
                    continue
                if t.status == "queued":
                    active += 1
                elif (
                    t.placement is not None
                    and t.placement.end_seconds > ticket.arrival
                ):
                    # Dispatched but still occupying its lane at this
                    # arrival's virtual instant.
                    active += 1
            if active >= quota.max_active:
                return (
                    f"tenant {ticket.tenant!r} active-job quota "
                    f"{quota.max_active} reached"
                )
        return None

    def _record_shed(
        self, ticket: JobTicket, reason: str, source: str
    ) -> None:
        ticket.status = "shed"
        ticket.admission_action = "shed"
        ticket.admission_reason = reason
        self._emit(
            "shed", time=ticket.arrival, ticket=ticket, reason=reason,
            source=source,
        )
        ticket._finalize()

    def _shed(self, ticket: JobTicket, reason: str, *, source: str) -> None:
        mode = self.admission.mode if self.admission is not None else "degrade"
        if source == "quota" and mode == "strict":
            self._record_shed(ticket, reason, source)
            raise AdmissionError(
                f"job {ticket.job.label!r} refused admission: {reason}"
            ).with_context(job=ticket.job.label)
        self._record_shed(ticket, reason, source)

    # -- cancellation --------------------------------------------------------
    def cancel(self, job_id: int) -> bool:
        """Cancel a job; returns whether the request took effect.

        Queued jobs leave the queue immediately (terminal ``"cancelled"``,
        no lane time, like a shed row).  Running jobs are flagged; the run
        stops at its next cooperative yield with a ``"cancelled"`` result
        carrying the best-so-far answer — and, when the service has a
        ``checkpoint_dir``, a resume checkpoint (see :meth:`resubmit`).
        If the run completes before noticing the flag, it stays completed.
        Terminal jobs return ``False`` (cancel-after-completion is a
        no-op).
        """
        ticket = self._get_ticket(job_id)
        if ticket.status == "queued":
            self._pending.remove(ticket)
            ticket.status = "cancelled"
            self._emit(
                "cancel",
                time=self._now,
                ticket=ticket,
                phase="queued",
            )
            ticket._finalize()
            return True
        if ticket.status == "running":
            ticket.cancel_requested = True
            return True
        return False

    # -- driving the simulation ----------------------------------------------
    async def drain(self) -> None:
        """Run every queued job to completion.

        Declares "no further arrivals": the service clock jumps to the
        fleet makespan, so later submissions must arrive after everything
        that drained.
        """
        await self._advance(math.inf)
        self._now = max(self._now, self._timeline.makespan_seconds)

    async def _finish_job(self, ticket: JobTicket) -> None:
        while not ticket._done.is_set():
            await self._advance(math.inf, until=ticket)

    async def _advance(
        self, t: float, *, exclusive: bool = False, until=None
    ) -> None:
        """Dispatch pending jobs whose start time is within *t*.

        Priority order (submission order breaking ties); each dispatched
        job is host-executed to its terminal state before the next starts.
        *exclusive* stops at jobs starting exactly at *t* (used just
        before enqueueing an arrival at *t*, which may overtake them);
        *until* stops as soon as that ticket turns terminal.
        """
        async with self._lock:
            # Crash-resumed in-flight jobs first: pre-crash they were
            # already executing, so their remaining events precede any
            # new dispatch decision — exactly the uninterrupted order.
            while self._resume:
                job_id = next(iter(self._resume))
                info = self._resume[job_id]
                await self._execute(
                    self._tickets[job_id],
                    info["device"],
                    info["stream"],
                    info["start"],
                )
            while self._pending:
                if until is not None and until._done.is_set():
                    return
                ticket = self._pending[0]
                probe = self._timeline.earliest_start(
                    not_before=ticket.arrival
                )
                devices = self._allowed_devices(now=probe)
                device, stream, start = self._timeline.reserve(
                    not_before=ticket.arrival, devices=devices
                )
                if start >= t if exclusive else start > t:
                    return
                self._pending.pop(0)
                await self._execute(ticket, device, stream, start)

    def _allowed_devices(self, *, now: float):
        """Breaker-admitted active devices (``None`` = no restriction)."""
        if self._health is None:
            return None
        active = self._timeline.active_devices
        allowed = tuple(
            d for d in active if self._health.breakers[d].allows(now)
        )
        # Every breaker open: place anywhere rather than deadlock the
        # queue — the breaker log still records the open state.
        return allowed or None

    # -- execution -----------------------------------------------------------
    def _checkpoint_manager_for(
        self, ticket: JobTicket, job: Job
    ) -> CheckpointManager | None:
        """The per-job checkpoint manager backing retry/crash recovery.

        ``None`` when nothing needs mid-run checkpoints, when there is
        nowhere durable to put them, or when the job cannot be captured
        (custom problems/schedules keep their legacy no-checkpoint path).
        """
        if self._journal is not None:
            base = self._journal.checkpoints_dir
        elif (
            self.retry is not None or self.watchdog_seconds is not None
        ) and self.checkpoint_dir is not None:
            base = self.checkpoint_dir
        else:
            return None
        try:
            ensure_capturable(job.resolved_problem())
            params_to_spec(job.resolved_params)
        except CheckpointError:
            return None
        label = f"job{ticket.job_id:06d}"
        try:
            return CheckpointManager(
                base / label,
                every=self.checkpoint_every,
                keep=3,
                label=label,
            )
        except CheckpointError:
            return None

    def _start_attempt(
        self,
        ticket: JobTicket,
        run_job: Job,
        budget,
        device: int,
        manager: CheckpointManager | None,
        injector,
        *,
        on_cpu: bool,
    ) -> RunningJob:
        """Build one attempt's engine/run, restored from the newest state."""
        restore = None
        from_manager = False
        if manager is not None:
            restore = manager.load_latest()
            from_manager = restore is not None
        if restore is None and ticket._restore_path is not None:
            restore = read_snapshot(ticket._restore_path)
        options = effective_engine_options(run_job, self.graph)
        spec = self._spec_for_device(device)
        if spec is not None and not on_cpu:
            from repro.engines import engine_accepts_device

            if engine_accepts_device(run_job.engine):
                options.setdefault("device", spec)
        try:
            return RunningJob(
                run_job,
                engine_options=options,
                budget=budget,
                guard=self.guard,
                checkpoint=manager,
                restore=restore,
                injector=injector,
            )
        except CheckpointError:
            if not from_manager:
                raise
            # The banked checkpoint is incompatible with this attempt's
            # engine: rerun from scratch rather than dying on the
            # recovery path itself (mirrors run_with_recovery).
            return RunningJob(
                run_job,
                engine_options=options,
                budget=budget,
                guard=self.guard,
                checkpoint=manager,
                injector=injector,
            )

    def _journal_checkpoint(
        self, ticket: JobTicket, run: RunningJob, manager, injector
    ) -> None:
        path = manager.latest_path()
        self._journal_append(
            {
                "type": "checkpoint",
                "job_id": ticket.job_id,
                "iteration": run.iterations_run,
                "path": str(path) if path is not None else None,
                "clock_now": float(run.engine.clock.now),
                "injector": (
                    injector.state_dict() if injector is not None else None
                ),
            }
        )

    async def _execute(
        self, ticket: JobTicket, device: int, stream: int, start: float
    ) -> None:
        """Host-run one dispatched job and commit it to the timeline.

        The attempt loop wires the reliability stack into serving: each
        attempt may be watched by the watchdog lease, checkpointed at the
        service cadence, failed over per the retry policy (fresh engine =
        fresh simulated device; CPU fallback on the last attempt or when
        the lane's breaker trips), and every transition is journaled
        before it takes effect.
        """
        job = ticket.effective_job
        ticket.status = "running"
        resume = self._resume.pop(ticket.job_id, None)
        if resume is None:
            self._emit(
                "dispatch",
                time=start,
                ticket=ticket,
                device=device,
                stream=stream,
                queue_wait=start - ticket.arrival,
            )
        quota = self._quota_for(ticket.tenant)
        deadline = (
            Budget(wall_seconds=self.deadline)
            if self.deadline is not None
            else None
        )
        budget = Budget.merge_all(
            job.budget, quota.budget, self.budget, deadline
        )

        injector = (
            self.faults.injector_for(ticket.job_id, job.label)
            if self.faults is not None
            else None
        )
        if injector is not None and resume is not None:
            state = resume.get("injector")
            if state is not None:
                injector.load_state(state)
        policy = self.retry
        attempt = resume["attempt"] if resume is not None else 1
        overhead = resume["overhead"] if resume is not None else 0.0
        skip_stalled = bool(resume and resume.get("skip_stalled"))
        manager = self._checkpoint_manager_for(ticket, job)
        lease = self.watchdog_seconds

        while True:
            fallback = (
                policy.fallback_engine(job.engine)
                if policy is not None
                else None
            )
            on_cpu = bool(
                fallback
                and policy is not None
                and attempt == policy.max_attempts
                and attempt > 1
            )
            if (
                not on_cpu
                and fallback
                and attempt > 1
                and self._health is not None
                and not self._health.breakers[device].allows(start + overhead)
            ):
                # The lane's own breaker tripped open on this job's
                # failures: degrade straight to the CPU substrate.
                on_cpu = True
            run_job = (
                job
                if not on_cpu
                else job.with_overrides(engine=fallback, engine_options={})
            )

            run = None
            failure: ReproError | None = None
            cancelled = stalled = False
            try:
                run = self._start_attempt(
                    ticket, run_job, budget, device, manager, injector,
                    on_cpu=on_cpu,
                )
            except ReproError as exc:
                failure = exc

            if run is not None:
                saves_seen = manager.saves if manager is not None else 0
                last_mark = float(run.engine.clock.now)
                emitted = False
                last = math.inf
                since_yield = 0
                try:
                    for t in range(run.start_iter, run.max_iter):
                        if ticket.cancel_requested:
                            cancelled = True
                            break
                        stopping = run.step(t)
                        now_sim = float(run.engine.clock.now)
                        value = run.gbest_value
                        if not emitted or value < last:
                            ticket._push(
                                ProgressUpdate(
                                    job_id=ticket.job_id,
                                    iteration=t,
                                    best_value=value,
                                    sim_seconds=now_sim,
                                )
                            )
                            self._journal_append(
                                {
                                    "type": "progress",
                                    "job_id": ticket.job_id,
                                    "iteration": t,
                                    "best_value": value,
                                    "sim_seconds": now_sim,
                                }
                            )
                            last = value
                            emitted = True
                        if manager is not None and manager.saves > saves_seen:
                            saves_seen = manager.saves
                            self._journal_checkpoint(
                                ticket, run, manager, injector
                            )
                        if lease is not None and now_sim - last_mark > lease:
                            stalled = True
                            break
                        last_mark = now_sim
                        if stopping:
                            break
                        since_yield += 1
                        if since_yield >= self.stream_stride:
                            since_yield = 0
                            # Cooperative yield: streaming consumers observe
                            # the update and may cancel before the next
                            # iteration.
                            await asyncio.sleep(0)
                except ReproError as exc:
                    failure = exc

            if cancelled:
                self._checkpoint_cancelled(ticket, run)
                result = run.finish(status="cancelled")
                self._complete(
                    ticket, device, stream, start, overhead, result,
                    cancelled=True, attempt=attempt, on_cpu=on_cpu,
                )
                return
            if failure is None and not stalled:
                result = run.finish()
                self._complete(
                    ticket, device, stream, start, overhead, result,
                    cancelled=False, attempt=attempt, on_cpu=on_cpu,
                )
                return

            # The attempt failed (contained error) or outlived its lease.
            fail_sim = float(run.engine.clock.now) if run is not None else 0.0
            fail_time = start + overhead + fail_sim
            if stalled:
                failure = StalledRunError(
                    f"watchdog lease expired: {fail_sim - last_mark:.6g}s "
                    f"simulated since the last progress mark "
                    f"(lease {lease:g}s)"
                )
                failure.with_context(
                    job=job.label, device=device, attempt=attempt
                )
            retryable = policy is not None and (
                stalled or isinstance(failure, policy.retry_on)
            )
            error_text = f"{type(failure).__name__}: {failure}"
            if not retryable or attempt >= policy.max_attempts:
                if stalled and not skip_stalled:
                    self._emit(
                        "stalled",
                        time=fail_time,
                        ticket=ticket,
                        attempt=attempt,
                        lease=lease,
                        error=error_text,
                    )
                skip_stalled = False
                self._fail(
                    ticket, device, stream, start, overhead + fail_sim,
                    failure, attempt=attempt,
                )
                return

            # Bank what the newest checkpoint holds; the rest died with
            # the attempt.  Lost work plus exponential backoff become
            # overhead on this job's lane — run_with_recovery's
            # arithmetic, serve-side.
            snap = manager.load_latest() if manager is not None else None
            banked = (
                float(snap.clock_state["now"]) if snap is not None else 0.0
            )
            lost = max(0.0, fail_sim - banked)
            backoff = policy.backoff_for(attempt - 1)
            if self._health is not None:
                self._health.record_failure(device, now=fail_time)
            if stalled and not skip_stalled:
                self._emit(
                    "stalled",
                    time=fail_time,
                    ticket=ticket,
                    attempt=attempt,
                    lease=lease,
                    error=error_text,
                )
            skip_stalled = False
            overhead += lost + backoff
            retry_extra = None
            if self._journal is not None:
                retry_extra = {
                    "overhead": overhead,
                    "injector": (
                        injector.state_dict() if injector is not None else None
                    ),
                }
            self._emit(
                "retry",
                time=fail_time,
                ticket=ticket,
                _extra=retry_extra,
                attempt=attempt,
                error=error_text,
                lost_seconds=lost,
                backoff_seconds=backoff,
            )
            attempt += 1

    def _checkpoint_cancelled(self, ticket: JobTicket, run: RunningJob) -> None:
        """Snapshot a mid-run cancel so :meth:`resubmit` can resume it."""
        if self.checkpoint_dir is None or run.iterations_run == 0:
            return
        try:
            snapshot = run.snapshot()
        except CheckpointError:
            # Custom-objective problems cannot be rebuilt from a snapshot
            # document; the cancel still returns the best-so-far result.
            return
        manager = CheckpointManager(
            self.checkpoint_dir / f"job{ticket.job_id:06d}",
            label=f"job{ticket.job_id:06d}",
        )
        ticket.checkpoint_path = manager.save(snapshot)

    def _complete(
        self,
        ticket: JobTicket,
        device: int,
        stream: int,
        start: float,
        overhead: float,
        result: OptimizeResult,
        *,
        cancelled: bool,
        attempt: int,
        on_cpu: bool = False,
    ) -> None:
        """Commit a terminal result (recovery overhead included) and emit."""
        duration = overhead + result.elapsed_seconds
        placement = self._timeline.commit(device, stream, start, duration)
        ticket.placement = placement
        ticket.result = result
        if (
            ticket.admission_action == "degrade"
            and result.status == "completed"
        ):
            ticket.status = "degraded"
        else:
            ticket.status = result.status
        if self._health is not None and not on_cpu:
            self._health.record_success(device, now=placement.end_seconds)
        extra = None
        if self._journal is not None:
            # The exact committed duration rides along: IEEE addition is
            # not associative, so replay must commit the same float the
            # live run did, not recompute it from parts.
            extra = {"duration": duration, "result": result_to_dict(result)}
        if cancelled:
            detail: dict = {
                "phase": "running",
                "iterations": result.iterations,
                "best_value": float(result.best_value),
                "checkpoint": (
                    str(ticket.checkpoint_path)
                    if ticket.checkpoint_path is not None
                    else None
                ),
            }
        else:
            detail = {
                "status": ticket.status,
                "best_value": float(result.best_value),
                "iterations": result.iterations,
                "latency": ticket.latency_seconds,
            }
            if attempt > 1:
                detail["attempts"] = attempt
        if on_cpu:
            detail["cpu_fallback"] = True
        self._emit(
            "cancel" if cancelled else "complete",
            time=placement.end_seconds,
            ticket=ticket,
            _extra=extra,
            **detail,
        )
        ticket._finalize()
        self._autoscale_tick(now=placement.end_seconds)

    def _fail(
        self,
        ticket: JobTicket,
        device: int,
        stream: int,
        start: float,
        duration: float,
        exc: ReproError,
        *,
        attempt: int = 1,
    ) -> None:
        """Contain a job failure: record it, never unwind the service."""
        placement = self._timeline.commit(device, stream, start, duration)
        ticket.placement = placement
        ticket.status = "failed"
        if self._health is not None:
            self._health.record_failure(device, now=placement.end_seconds)
        detail = {"error": f"{type(exc).__name__}: {exc}"}
        if attempt > 1:
            detail["attempts"] = attempt
        extra = {"duration": duration} if self._journal is not None else None
        self._emit(
            "failed",
            time=placement.end_seconds,
            ticket=ticket,
            _extra=extra,
            **detail,
        )
        ticket._finalize()
        self._autoscale_tick(now=placement.end_seconds)

    # -- autoscaling ---------------------------------------------------------
    def _autoscale_tick(self, *, now: float) -> None:
        if self._autoscaler is None:
            return
        active = self._timeline.active_devices
        victim = self._shrink_victim(now=now, active=active)
        self._journal_append(
            {
                "type": "scale_obs",
                "now": now,
                "queue_depth": len(self._pending),
                "n_active": len(active),
                "can_shrink": victim is not None,
            }
        )
        decision = self._autoscaler.observe(
            now=now,
            queue_depth=len(self._pending),
            n_active=len(active),
            can_shrink=victim is not None,
        )
        if decision is None:
            return
        self._apply_scale(
            decision,
            now=now,
            queue_depth=len(self._pending),
            n_active=len(active),
            victim=victim,
        )

    def _apply_scale(
        self, decision, *, now: float, queue_depth: int, n_active: int, victim
    ) -> None:
        action, reason = decision
        if action == "up":
            boot_at = now + self._autoscaler.policy.boot_seconds
            index = self._timeline.add_device(at=boot_at)
            self._emit(
                "scale_up",
                time=now,
                device=index,
                lanes_open_at=boot_at,
                queue_depth=queue_depth,
                active_devices=n_active,
                reason=reason,
            )
        else:
            self._timeline.retire_device(victim)
            self._emit(
                "scale_down",
                time=now,
                device=victim,
                active_devices=n_active - 1,
                reason=reason,
            )

    def _shrink_victim(self, *, now: float, active) -> int | None:
        """Highest-indexed device that is idle at *now*, if shrinkable."""
        if self._autoscaler is None:
            return None
        if len(active) <= self._autoscaler.policy.min_devices:
            return None
        for device in reversed(active):
            if self._timeline.device_idle(device, now=now):
                return device
        return None

    # -- crash recovery ------------------------------------------------------
    @classmethod
    def recover(cls, journal_dir: str | Path, **kwargs) -> "OptimizationService":
        """Rebuild a service from its write-ahead journal after a crash.

        *kwargs* must be the same configuration the crashed service ran
        with (quotas, autoscale policy, retry, faults, …) — the journal
        records decisions, not configuration.  Replaying restores every
        ticket and event verbatim, re-commits the fleet timeline and
        breaker history, re-queues still-pending tickets in their
        original order, and stages the in-flight job (if any) for
        bit-identical resume from its newest checkpoint on the next
        ``submit()``/``drain()``.  Raises
        :class:`~repro.errors.JournalError` when the journal cannot be
        opened for append (recovery must be able to continue the log).
        """
        kwargs.pop("journal_dir", None)
        service = cls(journal_dir=journal_dir, **kwargs)
        if service._journal is None:
            row = service._journal_error_row or {}
            raise JournalError(
                row.get("message")
                or f"cannot open journal in {journal_dir} for recovery"
            )
        service._replay_journal()
        return service

    def _replay_journal(self) -> None:
        """Apply every surviving journal record to the fresh service.

        ``submit()`` is a multi-record transaction (submit, verdict,
        autoscale observation); a crash can land between any two of its
        records.  Replay detects a transaction cut short mid-way — a
        ticket whose verdict or autoscale tick never reached the journal,
        or an autoscale observation whose decided scale event did not —
        and resumes it deterministically, so the recovered event log
        continues exactly where the uninterrupted one would be.
        """
        records = self._journal.existing_records
        inflight: dict[int, dict] = {}
        retried: dict[int, dict] = {}
        injector_state: dict[int, dict | None] = {}
        tail_needs_tick = False
        stall_tail_job = None
        for i, record in enumerate(records):
            kind = record.get("type")
            if kind == "event":
                self._replay_event(record, inflight, retried, injector_state)
                if record["event"]["kind"] in ("admit", "degrade"):
                    # A verdict as the journal's final record means the
                    # crash hit before the submit's autoscale tick.
                    tail_needs_tick = i == len(records) - 1
                if (
                    record["event"]["kind"] == "stalled"
                    and i == len(records) - 1
                ):
                    # Crash between "stalled" and its paired "retry"/
                    # "failed": the resumed attempt re-detects the same
                    # stall and must not journal it twice.
                    stall_tail_job = record["event"]["job_id"]
            elif kind == "checkpoint":
                injector_state[record["job_id"]] = record.get("injector")
            elif kind == "scale_obs":
                if self._autoscaler is not None:
                    # Rebuild idle streaks and cooldowns.  The decision is
                    # normally discarded (the journaled scale event that
                    # follows applies it) — unless the crash cut it off,
                    # in which case apply it now, exactly as the
                    # uninterrupted run would have.
                    decision = self._autoscaler.observe(
                        now=record["now"],
                        queue_depth=record["queue_depth"],
                        n_active=record["n_active"],
                        can_shrink=record["can_shrink"],
                    )
                    nxt = records[i + 1] if i + 1 < len(records) else None
                    applied = (
                        nxt is not None
                        and nxt.get("type") == "event"
                        and nxt["event"]["kind"] in ("scale_up", "scale_down")
                    )
                    if decision is not None and not applied:
                        self._apply_scale(
                            decision,
                            now=record["now"],
                            queue_depth=record["queue_depth"],
                            n_active=record["n_active"],
                            victim=self._shrink_victim(
                                now=record["now"],
                                active=self._timeline.active_devices,
                            ),
                        )
            # "progress" watermarks feed live streams only; "recovered"
            # markers from earlier recoveries carry no state.

        # A terminal event as the journal's final record means the crash
        # hit before the post-completion autoscale tick.
        redo_tick_time = None
        if records:
            last = records[-1]
            if last.get("type") == "event":
                last_row = last["event"]
                terminal = last_row["kind"] in ("complete", "failed") or (
                    last_row["kind"] == "cancel"
                    and (last_row.get("detail") or {}).get("phase") == "running"
                )
                if terminal:
                    redo_tick_time = last_row["time"]

        # A submit cut off before its verdict: the last ticket is queued
        # with no admission action on record.
        tail = self._tickets[-1] if self._tickets else None
        redo_verdict = (
            tail is not None
            and not tail._done.is_set()
            and tail.status == "queued"
            and tail.admission_action == ""
            and tail.job_id not in inflight
            and getattr(tail, "_recoverable", True)
        )

        for ticket in self._tickets:
            if ticket._done.is_set() or ticket.status != "queued":
                continue
            if ticket.job_id in inflight:
                continue
            if ticket is tail and (redo_verdict or tail_needs_tick):
                continue  # enqueued below, after its submit tail re-runs
            if not getattr(ticket, "_recoverable", True):
                ticket.status = "failed"
                ticket.admission_reason = (
                    "job spec could not be journaled; not recoverable"
                )
                ticket._finalize()
                continue
            self._pending.append(ticket)
        self._pending.sort(key=lambda t: (-t.priority, t.job_id))

        if redo_tick_time is not None:
            self._autoscale_tick(now=redo_tick_time)

        if tail is not None and (redo_verdict or tail_needs_tick):
            queued = True
            if redo_verdict:
                try:
                    queued = self._admission_verdict(tail)
                except AdmissionError:
                    # Strict-mode sheds raise to the submitter; at
                    # recovery time there is no submitter to tell.
                    queued = False
            if queued:
                self._autoscale_tick(now=tail.arrival)
                self._pending.append(tail)
                self._pending.sort(key=lambda t: (-t.priority, t.job_id))

        for job_id, info in inflight.items():
            ticket = self._tickets[job_id]
            if ticket._done.is_set():
                continue
            if not getattr(ticket, "_recoverable", True):
                ticket.status = "failed"
                ticket.admission_reason = (
                    "job spec could not be journaled; not recoverable"
                )
                ticket._finalize()
                continue
            ticket.status = "running"
            retry = retried.get(job_id)
            self._resume[job_id] = {
                "device": info["device"],
                "stream": info["stream"],
                "start": info["start"],
                "attempt": retry["attempt"] + 1 if retry else 1,
                "overhead": retry["overhead"] if retry else 0.0,
                "injector": injector_state.get(job_id),
                "skip_stalled": job_id == stall_tail_job,
            }
        self._journal_append(
            {"type": "recovered", "n_events": len(self._events)}
        )

    def _replay_event(
        self,
        record: dict,
        inflight: dict,
        retried: dict,
        injector_state: dict,
    ) -> None:
        row = record["event"]
        extra = record.get("extra") or {}
        kind = row["kind"]
        job_id = row["job_id"]
        detail = dict(row.get("detail") or {})
        self._events.append(
            ServiceEvent(
                ordinal=row["ordinal"],
                time=row["time"],
                kind=kind,
                job_id=job_id,
                tenant=row.get("tenant"),
                detail=detail,
            )
        )

        if kind == "submit":
            spec = extra.get("job")
            if spec is not None:
                job = job_from_spec(spec)
            else:
                # The crashed service could not serialize this job; the
                # stub keeps ids/counters aligned but cannot be re-run.
                job = Job(problem="sphere", dim=1, name=detail.get("label"))
            ticket = JobTicket(self, len(self._tickets), row["tenant"], job)
            ticket.arrival = row["time"]
            ticket.resumed_from = detail.get("resumed_from")
            ticket.priority = self._quota_for(row["tenant"]).job_priority(
                job.priority
            )
            if spec is None:
                ticket._recoverable = False
            if "restore" in detail:
                ticket._restore_path = Path(detail["restore"])
            self._tickets.append(ticket)
            self._now = max(self._now, row["time"])
            return
        if kind in ("scale_up", "scale_down"):
            if kind == "scale_up":
                self._timeline.add_device(at=detail["lanes_open_at"])
            else:
                self._timeline.retire_device(detail["device"])
            return
        if job_id is None:
            return

        ticket = self._tickets[job_id]
        if kind == "admit":
            ticket.admission_action = "admit"
        elif kind == "degrade":
            ticket.admission_action = "degrade"
            ticket.admission_reason = detail.get("reason", "")
            spec = extra.get("job")
            if spec is not None:
                ticket.effective_job = job_from_spec(spec)
            else:
                ticket._recoverable = False
        elif kind == "shed":
            ticket.status = "shed"
            ticket.admission_action = "shed"
            ticket.admission_reason = detail.get("reason", "")
            ticket._finalize()
        elif kind == "refused":  # pragma: no cover - never journaled
            ticket.status = "refused"
            ticket._finalize()
        elif kind == "dispatch":
            ticket.status = "running"
            inflight[job_id] = {
                "device": detail["device"],
                "stream": detail["stream"],
                "start": row["time"],
            }
        elif kind == "retry":
            retried[job_id] = {
                "attempt": detail["attempt"],
                "overhead": extra["overhead"],
            }
            injector_state[job_id] = extra.get("injector")
            if self._health is not None:
                self._health.record_failure(
                    inflight[job_id]["device"], now=row["time"]
                )
        elif kind == "complete":
            info = inflight.pop(job_id)
            placement = self._timeline.commit(
                info["device"], info["stream"], info["start"],
                extra["duration"],
            )
            ticket.placement = placement
            ticket.result = result_from_dict(extra["result"])
            ticket.status = detail["status"]
            if self._health is not None and not detail.get("cpu_fallback"):
                self._health.record_success(
                    info["device"], now=placement.end_seconds
                )
            ticket._finalize()
        elif kind == "failed":
            info = inflight.pop(job_id, None)
            if info is not None:
                placement = self._timeline.commit(
                    info["device"], info["stream"], info["start"],
                    extra["duration"],
                )
                ticket.placement = placement
                if self._health is not None:
                    self._health.record_failure(
                        info["device"], now=placement.end_seconds
                    )
            ticket.status = "failed"
            ticket._finalize()
        elif kind == "cancel":
            if detail.get("phase") == "queued":
                ticket.status = "cancelled"
                ticket._finalize()
                return
            info = inflight.pop(job_id)
            placement = self._timeline.commit(
                info["device"], info["stream"], info["start"],
                extra["duration"],
            )
            ticket.placement = placement
            ticket.result = result_from_dict(extra["result"])
            ticket.status = "cancelled"
            if detail.get("checkpoint"):
                ticket.checkpoint_path = Path(detail["checkpoint"])
            if self._health is not None and not detail.get("cpu_fallback"):
                self._health.record_success(
                    info["device"], now=placement.end_seconds
                )
            ticket._finalize()
        # "stalled" carries no state: the paired "retry"/"failed" event
        # holds the breaker and overhead bookkeeping.

    # -- reporting -----------------------------------------------------------
    def report(self) -> ServiceReport:
        """Aggregate metrics over everything submitted so far."""
        counts: dict = {}
        latencies = []
        for ticket in self._tickets:
            counts[ticket.status] = counts.get(ticket.status, 0) + 1
            if ticket.latency_seconds is not None:
                latencies.append(ticket.latency_seconds)
        n_jobs = len(self._tickets)
        shed = counts.get("shed", 0) + counts.get("refused", 0)
        makespan = self._timeline.makespan_seconds
        finished = len(latencies)
        return ServiceReport(
            n_jobs=n_jobs,
            counts=counts,
            p50_latency_seconds=(
                percentile(latencies, 50.0) if latencies else 0.0
            ),
            p99_latency_seconds=(
                percentile(latencies, 99.0) if latencies else 0.0
            ),
            mean_latency_seconds=(
                sum(latencies) / finished if latencies else 0.0
            ),
            throughput_per_second=(
                finished / makespan if makespan > 0 else 0.0
            ),
            shed_rate=shed / n_jobs if n_jobs else 0.0,
            makespan_seconds=makespan,
            devices_provisioned=self._timeline.n_devices,
            devices_active=len(self._timeline.active_devices),
            scale_ups=sum(1 for e in self._events if e.kind == "scale_up"),
            scale_downs=sum(
                1 for e in self._events if e.kind == "scale_down"
            ),
            retries=sum(1 for e in self._events if e.kind == "retry"),
            stalled=sum(1 for e in self._events if e.kind == "stalled"),
        )
