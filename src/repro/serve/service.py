"""The asyncio serving front-end: PSO optimization as a service.

:class:`OptimizationService` puts an async job API — submit, stream,
cancel, status — in front of the batch/reliability machinery.  Where
:class:`~repro.batch.scheduler.BatchScheduler` plans a *closed* batch,
the service runs an *open* system: jobs arrive over (virtual) time, are
gated by per-tenant quotas and the admission memory ladder, dispatched
onto a :class:`~repro.batch.dispatch.FleetTimeline` that an autoscaler
grows and shrinks, streamed while in flight, and cancellable at any
phase.

Determinism model — discrete-event simulation on two time axes
--------------------------------------------------------------
Every latency, timestamp and scaling decision lives in **virtual time**
(simulated seconds, the same axis the engines' ``SimClock`` uses); host
wall-clock never enters any decision.  Execution is host-sequential: one
job actually computes at a time (on the
:class:`~repro.batch.dispatch.RunningJob` stepped protocol, so results
are bit-identical to solo runs), and its measured simulated duration is
committed to the fleet timeline at the virtual start the dispatcher
reserved.  Arrivals must be submitted in non-decreasing virtual order
(``at=``); the service advances virtual time only as far as the latest
known arrival, so a later high-priority arrival can still overtake
queued work — and a seeded replay of the same arrival sequence
reproduces byte-identical event logs.

Who drives execution
--------------------
``submit()`` advances the simulation to the new arrival (dispatching
whatever starts earlier), ``drain()`` runs everything still queued, and
``JobTicket.wait()`` drives until that job finishes.  ``JobTicket.stream()``
only *observes* — it yields best-so-far improvements as some driver
executes the job, and ends at the job's terminal state.
"""

from __future__ import annotations

import asyncio
import math
from dataclasses import dataclass
from pathlib import Path

from repro.batch.dispatch import (
    FleetTimeline,
    LanePlacement,
    RunningJob,
    effective_engine_options,
)
from repro.batch.job import Job
from repro.batch.scheduler import BatchScheduler
from repro.core.budget import Budget
from repro.core.results import OptimizeResult
from repro.errors import (
    AdmissionError,
    CheckpointError,
    ConfigurationError,
    InvalidParameterError,
    ReproError,
)
from repro.serve.autoscale import AutoscalePolicy, Autoscaler
from repro.serve.events import ServiceEvent, events_to_json
from repro.serve.quota import TenantQuota
from repro.utils.stats import percentile

__all__ = [
    "JobTicket",
    "OptimizationService",
    "ProgressUpdate",
    "ServiceReport",
]

@dataclass(frozen=True)
class ProgressUpdate:
    """One streamed improvement of a job's best-so-far value.

    Emitted on the first executed iteration and then whenever the global
    best strictly improves, so a consumer sees a monotonically decreasing
    ``best_value`` sequence that reconstructs the solo run's
    ``History.gbest_values`` trace exactly (carry the last value forward
    over unlisted iterations).
    """

    job_id: int
    iteration: int
    best_value: float
    sim_seconds: float


class JobTicket:
    """Handle to one submitted job: status, streaming, result, cancel.

    Tickets are created by :meth:`OptimizationService.submit`; ``job_id``
    is dense and ascending in submission order.  ``status`` is ``"queued"``
    until dispatch, then a terminal engine status (``"completed"``,
    ``"degraded"``, a budget status, …) or ``"shed"`` / ``"cancelled"`` /
    ``"failed"``.
    """

    def __init__(
        self, service: "OptimizationService", job_id: int, tenant: str, job: Job
    ) -> None:
        self._service = service
        self.job_id = job_id
        self.tenant = tenant
        #: The job as submitted.
        self.job = job
        #: The job actually executed (admission may degrade it).
        self.effective_job = job
        self.arrival = 0.0
        self.priority = job.priority
        self.status = "queued"
        self.admission_action = ""
        self.admission_reason = ""
        self.placement: LanePlacement | None = None
        self.result: OptimizeResult | None = None
        #: Checkpoint file written by a mid-run cancel (resubmit resumes it).
        self.checkpoint_path: Path | None = None
        #: Ticket this job resumed from (checkpoint-backed requeue).
        self.resumed_from: int | None = None
        self.cancel_requested = False
        self._restore_path: Path | None = None
        self._updates: asyncio.Queue = asyncio.Queue()
        self._done = asyncio.Event()

    # -- views ---------------------------------------------------------------
    @property
    def finished(self) -> bool:
        return self._done.is_set()

    @property
    def latency_seconds(self) -> float | None:
        """Virtual submit-to-finish latency (``None`` until dispatched)."""
        if self.placement is None:
            return None
        return self.placement.end_seconds - self.arrival

    def to_row(self) -> dict:
        """JSON-safe status row (the ``status`` API and CLI output)."""
        return {
            "job_id": self.job_id,
            "tenant": self.tenant,
            "label": self.job.label,
            "status": self.status,
            "priority": self.priority,
            "arrival": self.arrival,
            "start": (
                self.placement.start_seconds if self.placement else None
            ),
            "end": self.placement.end_seconds if self.placement else None,
            "latency": self.latency_seconds,
            "best_value": (
                float(self.result.best_value)
                if self.result is not None
                else None
            ),
            "admission": self.admission_action,
            "resumed_from": self.resumed_from,
        }

    # -- client actions ------------------------------------------------------
    async def stream(self):
        """Async-iterate :class:`ProgressUpdate`\\ s until the job ends.

        Purely observational: some driver (further ``submit()`` calls,
        ``drain()``, or ``wait()`` from another task) must execute the job.
        A single consumer sees every update; the terminal sentinel is
        re-queued so late iterations terminate immediately.
        """
        while True:
            item = await self._updates.get()
            if item is None:
                self._updates.put_nowait(None)
                return
            yield item

    async def wait(self) -> OptimizeResult | None:
        """Drive the service until this job is terminal; return its result.

        ``None`` for jobs that never produced one (shed, queued-cancel,
        failed).  Unlike :meth:`stream`, ``wait()`` *advances* the
        simulation — it runs every job queued ahead of this one.
        """
        await self._service._finish_job(self)
        return self.result

    def cancel(self) -> bool:
        """Request cancellation (see :meth:`OptimizationService.cancel`)."""
        return self._service.cancel(self.job_id)

    # -- service-side hooks --------------------------------------------------
    def _push(self, update: ProgressUpdate) -> None:
        self._updates.put_nowait(update)

    def _finalize(self) -> None:
        self._updates.put_nowait(None)
        self._done.set()


@dataclass(frozen=True)
class ServiceReport:
    """Aggregate service metrics over everything submitted so far.

    Latency percentiles are nearest-rank over *virtual* submit-to-finish
    latencies of jobs that ran (shed and queued-cancelled jobs have no
    latency; they are counted in ``shed_rate`` / ``counts`` instead).
    ``throughput_per_second`` is finished-jobs per simulated second of
    fleet makespan.
    """

    n_jobs: int
    counts: dict
    p50_latency_seconds: float | None
    p99_latency_seconds: float | None
    mean_latency_seconds: float | None
    throughput_per_second: float
    shed_rate: float
    makespan_seconds: float
    devices_provisioned: int
    devices_active: int
    scale_ups: int
    scale_downs: int

    def to_dict(self) -> dict:
        return {
            "n_jobs": self.n_jobs,
            "counts": dict(self.counts),
            "p50_latency_seconds": self.p50_latency_seconds,
            "p99_latency_seconds": self.p99_latency_seconds,
            "mean_latency_seconds": self.mean_latency_seconds,
            "throughput_per_second": self.throughput_per_second,
            "shed_rate": self.shed_rate,
            "makespan_seconds": self.makespan_seconds,
            "devices_provisioned": self.devices_provisioned,
            "devices_active": self.devices_active,
            "scale_ups": self.scale_ups,
            "scale_downs": self.scale_downs,
        }

    def summary(self) -> str:
        p50 = (
            f"{self.p50_latency_seconds:.4g}s"
            if self.p50_latency_seconds is not None
            else "n/a"
        )
        p99 = (
            f"{self.p99_latency_seconds:.4g}s"
            if self.p99_latency_seconds is not None
            else "n/a"
        )
        return (
            f"{self.n_jobs} job(s): p50={p50} p99={p99} "
            f"throughput={self.throughput_per_second:.4g}/s "
            f"shed={self.shed_rate:.2%} "
            f"devices={self.devices_active}/{self.devices_provisioned} "
            f"(+{self.scale_ups}/-{self.scale_downs} scaling)"
        )


class OptimizationService:
    """Async front-end serving PSO jobs on the simulated fleet.

    Parameters mirror :class:`~repro.batch.scheduler.BatchScheduler` where
    the concept carries over (``admission``/``max_queue``/
    ``memory_limit_bytes``, ``deadline``, ``budget``, ``breaker``,
    ``guard``, ``graph``), plus the serving-only knobs:

    quotas:
        ``{tenant name: TenantQuota}``; ``default_quota`` applies to
        tenants not in the mapping (unrestricted when ``None``).
    device:
        Catalog device the base fleet runs on — a name/alias resolved
        through :func:`repro.devices.resolve_device` or a ready
        :class:`~repro.gpusim.device.DeviceSpec`.  GPU jobs execute on
        that spec (trajectories unchanged, simulated seconds move) and
        admission prices memory against it.  ``None`` keeps the
        historical flat V100.
    autoscale:
        ``True`` (default policy), an :class:`AutoscalePolicy`, or
        ``None`` for a fixed fleet.  ``n_devices`` is the starting size
        and must lie within the policy's bounds.  A policy with
        ``grow_device`` set provisions *that* catalog entry on scale-up,
        so a burst fleet can differ from the base fleet's silicon.
    checkpoint_dir:
        Directory for cancellation checkpoints — a mid-run cancel
        snapshots the run there, and :meth:`resubmit` resumes it
        bit-identically.
    stream_stride:
        Iterations between cooperative yields while a job runs (1 =
        every iteration; larger strides run faster but make streaming
        consumers and mid-run cancels coarser).
    """

    def __init__(
        self,
        *,
        n_devices: int = 1,
        streams_per_device: int = 4,
        device=None,
        quotas: dict | None = None,
        default_quota: TenantQuota | None = None,
        autoscale: AutoscalePolicy | bool | None = None,
        admission=None,
        max_queue: int | None = None,
        memory_limit_bytes: int | None = None,
        deadline: float | None = None,
        budget: Budget | None = None,
        breaker=None,
        guard=None,
        graph: bool | None = None,
        checkpoint_dir: str | Path | None = None,
        stream_stride: int = 1,
    ) -> None:
        if n_devices < 1:
            raise InvalidParameterError(
                f"need at least one device, got {n_devices}"
            )
        if streams_per_device < 1:
            raise InvalidParameterError(
                f"need at least one stream per device, got {streams_per_device}"
            )
        if stream_stride < 1:
            raise InvalidParameterError(
                f"stream_stride must be >= 1, got {stream_stride}"
            )
        self.streams_per_device = int(streams_per_device)
        self.stream_stride = int(stream_stride)
        self._base_devices = int(n_devices)

        self.device_spec = None
        if device is not None:
            from repro.devices import resolve_device

            self.device_spec = resolve_device(device)

        if autoscale is True:
            autoscale = AutoscalePolicy()
        elif autoscale is False:
            autoscale = None
        if autoscale is not None and not isinstance(autoscale, AutoscalePolicy):
            raise ConfigurationError(
                "autoscale must be True, None or an AutoscalePolicy, got "
                f"{type(autoscale).__name__}"
            )
        if autoscale is not None and not (
            autoscale.min_devices <= n_devices <= autoscale.max_devices
        ):
            raise ConfigurationError(
                f"n_devices ({n_devices}) must lie within the autoscale "
                f"bounds [{autoscale.min_devices}, {autoscale.max_devices}]"
            )
        self._autoscaler = (
            Autoscaler(autoscale) if autoscale is not None else None
        )
        # The spec scale-up provisions (resolved once, bad names fail
        # loudly here); None = grown devices match the base fleet.
        self._grow_spec = (
            autoscale.resolved_grow_spec() if autoscale is not None else None
        )

        self.quotas = dict(quotas or {})
        for tenant, quota in self.quotas.items():
            if not isinstance(quota, TenantQuota):
                raise ConfigurationError(
                    f"quota for tenant {tenant!r} must be a TenantQuota, "
                    f"got {type(quota).__name__}"
                )
        if default_quota is not None and not isinstance(
            default_quota, TenantQuota
        ):
            raise ConfigurationError(
                "default_quota must be a TenantQuota, got "
                f"{type(default_quota).__name__}"
            )
        self.default_quota = default_quota or TenantQuota()

        self.admission = BatchScheduler._build_admission(
            admission, max_queue=max_queue, memory_limit_bytes=memory_limit_bytes
        )
        if deadline is not None and not deadline > 0:
            raise InvalidParameterError(
                f"deadline must be positive seconds, got {deadline!r}"
            )
        self.deadline = deadline
        if budget is not None and not isinstance(budget, Budget):
            raise InvalidParameterError(
                f"budget must be a repro Budget, got {type(budget).__name__}"
            )
        self.budget = budget
        self.graph = graph
        if guard is not None and not hasattr(guard, "inspect"):
            raise InvalidParameterError(
                "guard must provide inspect() (see repro.reliability.guard), "
                f"got {type(guard).__name__}"
            )
        self.guard = guard
        self.checkpoint_dir = (
            Path(checkpoint_dir) if checkpoint_dir is not None else None
        )

        breaker_policy = BatchScheduler._build_breaker(breaker)
        self._health = None
        if breaker_policy is not None:
            from repro.reliability.breaker import FleetHealth

            # Sized for the largest fleet autoscaling may provision, so a
            # scaled-up device has a breaker from the start.
            ceiling = (
                self._autoscaler.policy.max_devices
                if self._autoscaler is not None
                else n_devices
            )
            self._health = FleetHealth(ceiling, policy=breaker_policy)

        self._timeline = FleetTimeline(
            n_devices, streams_per_device=streams_per_device
        )
        self._tickets: list[JobTicket] = []
        self._pending: list[JobTicket] = []
        self._now = 0.0
        self._events: list[ServiceEvent] = []
        self._lock = asyncio.Lock()

    # -- introspection -------------------------------------------------------
    @property
    def events(self) -> tuple[ServiceEvent, ...]:
        """The decision log (see :mod:`repro.serve.events`)."""
        return tuple(self._events)

    def events_json(self) -> str:
        """Canonical JSON event log (what the CI drill byte-compares)."""
        return events_to_json(self._events)

    @property
    def now(self) -> float:
        """Latest known virtual arrival time."""
        return self._now

    @property
    def n_devices(self) -> int:
        """Devices ever provisioned (retired ones included)."""
        return self._timeline.n_devices

    @property
    def active_devices(self) -> tuple[int, ...]:
        return self._timeline.active_devices

    def status(self, job_id: int | None = None):
        """One job's status row, or every job's (submission order)."""
        if job_id is not None:
            return self._get_ticket(job_id).to_row()
        return [ticket.to_row() for ticket in self._tickets]

    def _get_ticket(self, job_id: int) -> JobTicket:
        if not 0 <= job_id < len(self._tickets):
            raise InvalidParameterError(
                f"unknown job id {job_id} "
                f"({len(self._tickets)} job(s) submitted)"
            )
        return self._tickets[job_id]

    def _quota_for(self, tenant: str) -> TenantQuota:
        return self.quotas.get(tenant, self.default_quota)

    def _emit(self, kind: str, *, time: float, ticket=None, **detail) -> None:
        self._events.append(
            ServiceEvent(
                ordinal=len(self._events),
                time=float(time),
                kind=kind,
                job_id=ticket.job_id if ticket is not None else None,
                tenant=ticket.tenant if ticket is not None else None,
                detail=detail,
            )
        )

    # -- submission ----------------------------------------------------------
    async def submit(
        self,
        job: Job | None = None,
        /,
        *,
        tenant: str = "default",
        at: float | None = None,
        restore: str | Path | None = None,
        _resumed_from: int | None = None,
        **spec: object,
    ) -> JobTicket:
        """Submit a job arriving at virtual second *at* (default: now).

        Accepts a ready :class:`~repro.batch.job.Job` or its field values
        as keywords.  Arrivals must be non-decreasing — the service is a
        discrete-event simulation and cannot rewrite history.  *restore*
        resumes a cancellation checkpoint file (see :meth:`resubmit`).

        The returned :class:`JobTicket` may already be terminal: quota or
        admission refusals shed synchronously (``status == "shed"``; in
        strict admission mode an :class:`~repro.errors.AdmissionError` is
        raised instead), and a job the idle fleet can run immediately is
        executed before ``submit`` returns.
        """
        if job is None:
            job = Job(**spec)  # type: ignore[arg-type]
        elif spec:
            raise InvalidParameterError(
                "pass either a Job or keyword fields, not both"
            )
        if not isinstance(job, Job):
            raise InvalidParameterError(
                f"expected a Job, got {type(job).__name__}"
            )
        arrival = self._now if at is None else float(at)
        if arrival < self._now:
            raise InvalidParameterError(
                f"arrivals must be non-decreasing: at={arrival} precedes "
                f"the service clock {self._now}"
            )

        # Run everything that starts strictly before this arrival, so the
        # queue the new job sees (and quota/admission/autoscale decisions)
        # reflect the fleet state at its arrival instant.
        await self._advance(arrival, exclusive=True)
        self._now = arrival

        ticket = JobTicket(self, len(self._tickets), tenant, job)
        ticket.arrival = arrival
        ticket.resumed_from = _resumed_from
        quota = self._quota_for(tenant)
        ticket.priority = quota.job_priority(job.priority)
        self._tickets.append(ticket)
        submit_detail: dict = {"label": job.label}
        if restore is not None:
            submit_detail["restore"] = str(restore)
        if _resumed_from is not None:
            submit_detail["resumed_from"] = _resumed_from
        self._emit("submit", time=arrival, ticket=ticket, **submit_detail)

        refusal = self._quota_refusal(ticket, quota)
        if refusal is not None:
            self._shed(ticket, refusal, source="quota")
            return ticket

        if self.admission is not None:
            try:
                decision = self.admission.admit_one(
                    job,
                    submit_order=ticket.job_id,
                    streams_per_device=self.streams_per_device,
                    device_mem_bytes=self._device_mem_bytes(),
                    queue_depth=len(self._pending),
                )
            except AdmissionError:
                # Strict mode refuses loudly; the shed still goes on the
                # record so replayed logs show the refusal.
                self._record_shed(ticket, "strict admission refusal", "admission")
                raise
            ticket.admission_action = decision.action
            ticket.admission_reason = decision.reason
            if decision.action == "shed":
                self._shed(ticket, decision.reason, source="admission")
                return ticket
            if decision.action == "degrade":
                ticket.effective_job = decision.job
                self._emit(
                    "degrade",
                    time=arrival,
                    ticket=ticket,
                    reason=decision.reason,
                    n_particles=decision.job.n_particles,
                )
            else:
                self._emit("admit", time=arrival, ticket=ticket)
        else:
            ticket.admission_action = "admit"
            self._emit("admit", time=arrival, ticket=ticket)

        ticket._restore_path = Path(restore) if restore is not None else None

        # Autoscaler observation: the queue as this arrival finds it (the
        # new job is not yet counted — idle streaks would otherwise never
        # accumulate under sparse arrivals).
        self._autoscale_tick(now=arrival)
        self._pending.append(ticket)
        self._pending.sort(key=lambda t: (-t.priority, t.job_id))

        # Eagerly run whatever can start at this instant (an idle fleet
        # serves the job before submit() returns).
        await self._advance(arrival)
        return ticket

    async def resubmit(
        self, job_id: int, *, at: float | None = None
    ) -> JobTicket:
        """Requeue a cancelled job from its cancellation checkpoint.

        The new ticket resumes the run bit-identically from the iteration
        the cancel captured (same effective job, same tenant); its
        ``resumed_from`` points back at *job_id*.
        """
        old = self._get_ticket(job_id)
        if old.status != "cancelled" or old.checkpoint_path is None:
            raise InvalidParameterError(
                f"job {job_id} has no cancellation checkpoint to resume "
                f"(status {old.status!r})"
            )
        return await self.submit(
            old.effective_job,
            tenant=old.tenant,
            at=at,
            restore=old.checkpoint_path,
            _resumed_from=job_id,
        )

    def _device_mem_bytes(self) -> int:
        from repro.gpusim.device import tesla_v100

        base = self.device_spec or tesla_v100()
        if self._grow_spec is not None:
            # A job must fit wherever dispatch lands it, grown devices
            # included, so admission prices against the smaller memory.
            return min(base.global_mem_bytes, self._grow_spec.global_mem_bytes)
        return base.global_mem_bytes

    def _spec_for_device(self, device: int):
        """The catalog spec device *device* runs jobs on (``None`` =
        the engine's own default, the historical flat V100)."""
        if self._grow_spec is not None and device >= self._base_devices:
            return self._grow_spec
        return self.device_spec

    def _quota_refusal(
        self, ticket: JobTicket, quota: TenantQuota
    ) -> str | None:
        """Why the tenant's quota refuses this arrival, or ``None``."""
        if quota.max_queued is not None:
            queued = sum(
                1 for t in self._pending if t.tenant == ticket.tenant
            )
            if queued >= quota.max_queued:
                return (
                    f"tenant {ticket.tenant!r} queued-job quota "
                    f"{quota.max_queued} reached"
                )
        if quota.max_active is not None:
            active = 0
            for t in self._tickets:
                if t is ticket or t.tenant != ticket.tenant:
                    continue
                if t.status == "queued":
                    active += 1
                elif (
                    t.placement is not None
                    and t.placement.end_seconds > ticket.arrival
                ):
                    # Dispatched but still occupying its lane at this
                    # arrival's virtual instant.
                    active += 1
            if active >= quota.max_active:
                return (
                    f"tenant {ticket.tenant!r} active-job quota "
                    f"{quota.max_active} reached"
                )
        return None

    def _record_shed(
        self, ticket: JobTicket, reason: str, source: str
    ) -> None:
        ticket.status = "shed"
        ticket.admission_action = "shed"
        ticket.admission_reason = reason
        self._emit(
            "shed", time=ticket.arrival, ticket=ticket, reason=reason,
            source=source,
        )
        ticket._finalize()

    def _shed(self, ticket: JobTicket, reason: str, *, source: str) -> None:
        mode = self.admission.mode if self.admission is not None else "degrade"
        if source == "quota" and mode == "strict":
            self._record_shed(ticket, reason, source)
            raise AdmissionError(
                f"job {ticket.job.label!r} refused admission: {reason}"
            ).with_context(job=ticket.job.label)
        self._record_shed(ticket, reason, source)

    # -- cancellation --------------------------------------------------------
    def cancel(self, job_id: int) -> bool:
        """Cancel a job; returns whether the request took effect.

        Queued jobs leave the queue immediately (terminal ``"cancelled"``,
        no lane time, like a shed row).  Running jobs are flagged; the run
        stops at its next cooperative yield with a ``"cancelled"`` result
        carrying the best-so-far answer — and, when the service has a
        ``checkpoint_dir``, a resume checkpoint (see :meth:`resubmit`).
        If the run completes before noticing the flag, it stays completed.
        Terminal jobs return ``False`` (cancel-after-completion is a
        no-op).
        """
        ticket = self._get_ticket(job_id)
        if ticket.status == "queued":
            self._pending.remove(ticket)
            ticket.status = "cancelled"
            self._emit(
                "cancel",
                time=self._now,
                ticket=ticket,
                phase="queued",
            )
            ticket._finalize()
            return True
        if ticket.status == "running":
            ticket.cancel_requested = True
            return True
        return False

    # -- driving the simulation ----------------------------------------------
    async def drain(self) -> None:
        """Run every queued job to completion.

        Declares "no further arrivals": the service clock jumps to the
        fleet makespan, so later submissions must arrive after everything
        that drained.
        """
        await self._advance(math.inf)
        self._now = max(self._now, self._timeline.makespan_seconds)

    async def _finish_job(self, ticket: JobTicket) -> None:
        while not ticket._done.is_set():
            await self._advance(math.inf, until=ticket)

    async def _advance(
        self, t: float, *, exclusive: bool = False, until=None
    ) -> None:
        """Dispatch pending jobs whose start time is within *t*.

        Priority order (submission order breaking ties); each dispatched
        job is host-executed to its terminal state before the next starts.
        *exclusive* stops at jobs starting exactly at *t* (used just
        before enqueueing an arrival at *t*, which may overtake them);
        *until* stops as soon as that ticket turns terminal.
        """
        async with self._lock:
            while self._pending:
                if until is not None and until._done.is_set():
                    return
                ticket = self._pending[0]
                probe = self._timeline.earliest_start(
                    not_before=ticket.arrival
                )
                devices = self._allowed_devices(now=probe)
                device, stream, start = self._timeline.reserve(
                    not_before=ticket.arrival, devices=devices
                )
                if start >= t if exclusive else start > t:
                    return
                self._pending.pop(0)
                await self._execute(ticket, device, stream, start)

    def _allowed_devices(self, *, now: float):
        """Breaker-admitted active devices (``None`` = no restriction)."""
        if self._health is None:
            return None
        active = self._timeline.active_devices
        allowed = tuple(
            d for d in active if self._health.breakers[d].allows(now)
        )
        # Every breaker open: place anywhere rather than deadlock the
        # queue — the breaker log still records the open state.
        return allowed or None

    async def _execute(
        self, ticket: JobTicket, device: int, stream: int, start: float
    ) -> None:
        """Host-run one dispatched job and commit it to the timeline."""
        job = ticket.effective_job
        ticket.status = "running"
        self._emit(
            "dispatch",
            time=start,
            ticket=ticket,
            device=device,
            stream=stream,
            queue_wait=start - ticket.arrival,
        )
        quota = self._quota_for(ticket.tenant)
        deadline = (
            Budget(wall_seconds=self.deadline)
            if self.deadline is not None
            else None
        )
        budget = Budget.merge_all(
            job.budget, quota.budget, self.budget, deadline
        )
        restore = None
        restore_path = ticket._restore_path
        try:
            if restore_path is not None:
                from repro.reliability.checkpoint import read_snapshot

                restore = read_snapshot(restore_path)
            options = effective_engine_options(job, self.graph)
            spec = self._spec_for_device(device)
            if spec is not None:
                from repro.engines import engine_accepts_device

                if engine_accepts_device(job.engine):
                    options.setdefault("device", spec)
            run = RunningJob(
                job,
                engine_options=options,
                budget=budget,
                guard=self.guard,
                restore=restore,
            )
        except ReproError as exc:
            self._fail(ticket, device, stream, start, 0.0, exc)
            return

        cancelled = False
        emitted = False
        last = math.inf
        since_yield = 0
        try:
            for t in range(run.start_iter, run.max_iter):
                if ticket.cancel_requested:
                    cancelled = True
                    break
                stopping = run.step(t)
                value = run.gbest_value
                if not emitted or value < last:
                    ticket._push(
                        ProgressUpdate(
                            job_id=ticket.job_id,
                            iteration=t,
                            best_value=value,
                            sim_seconds=float(run.engine.clock.now),
                        )
                    )
                    last = value
                    emitted = True
                if stopping:
                    break
                since_yield += 1
                if since_yield >= self.stream_stride:
                    since_yield = 0
                    # Cooperative yield: streaming consumers observe the
                    # update and may cancel before the next iteration.
                    await asyncio.sleep(0)
        except ReproError as exc:
            self._fail(
                ticket, device, stream, start,
                float(run.engine.clock.now), exc,
            )
            return

        if cancelled:
            self._checkpoint_cancelled(ticket, run)
            result = run.finish(status="cancelled")
        else:
            result = run.finish()

        placement = self._timeline.commit(
            device, stream, start, result.elapsed_seconds
        )
        ticket.placement = placement
        ticket.result = result
        if (
            ticket.admission_action == "degrade"
            and result.status == "completed"
        ):
            ticket.status = "degraded"
        else:
            ticket.status = result.status
        if self._health is not None:
            self._health.record_success(device, now=placement.end_seconds)
        if cancelled:
            self._emit(
                "cancel",
                time=placement.end_seconds,
                ticket=ticket,
                phase="running",
                iterations=result.iterations,
                best_value=float(result.best_value),
                checkpoint=(
                    str(ticket.checkpoint_path)
                    if ticket.checkpoint_path is not None
                    else None
                ),
            )
        else:
            self._emit(
                "complete",
                time=placement.end_seconds,
                ticket=ticket,
                status=ticket.status,
                best_value=float(result.best_value),
                iterations=result.iterations,
                latency=ticket.latency_seconds,
            )
        ticket._finalize()
        self._autoscale_tick(now=placement.end_seconds)

    def _checkpoint_cancelled(self, ticket: JobTicket, run: RunningJob) -> None:
        """Snapshot a mid-run cancel so :meth:`resubmit` can resume it."""
        if self.checkpoint_dir is None or run.iterations_run == 0:
            return
        from repro.reliability.checkpoint import CheckpointManager

        try:
            snapshot = run.snapshot()
        except CheckpointError:
            # Custom-objective problems cannot be rebuilt from a snapshot
            # document; the cancel still returns the best-so-far result.
            return
        manager = CheckpointManager(
            self.checkpoint_dir / f"job{ticket.job_id:06d}",
            label=f"job{ticket.job_id:06d}",
        )
        ticket.checkpoint_path = manager.save(snapshot)

    def _fail(
        self,
        ticket: JobTicket,
        device: int,
        stream: int,
        start: float,
        duration: float,
        exc: ReproError,
    ) -> None:
        """Contain a job failure: record it, never unwind the service."""
        placement = self._timeline.commit(device, stream, start, duration)
        ticket.placement = placement
        ticket.status = "failed"
        if self._health is not None:
            self._health.record_failure(device, now=placement.end_seconds)
        self._emit(
            "failed",
            time=placement.end_seconds,
            ticket=ticket,
            error=f"{type(exc).__name__}: {exc}",
        )
        ticket._finalize()
        self._autoscale_tick(now=placement.end_seconds)

    # -- autoscaling ---------------------------------------------------------
    def _autoscale_tick(self, *, now: float) -> None:
        if self._autoscaler is None:
            return
        active = self._timeline.active_devices
        victim = self._shrink_victim(now=now, active=active)
        decision = self._autoscaler.observe(
            now=now,
            queue_depth=len(self._pending),
            n_active=len(active),
            can_shrink=victim is not None,
        )
        if decision is None:
            return
        action, reason = decision
        if action == "up":
            boot_at = now + self._autoscaler.policy.boot_seconds
            index = self._timeline.add_device(at=boot_at)
            self._emit(
                "scale_up",
                time=now,
                device=index,
                lanes_open_at=boot_at,
                queue_depth=len(self._pending),
                active_devices=len(active),
                reason=reason,
            )
        else:
            self._timeline.retire_device(victim)
            self._emit(
                "scale_down",
                time=now,
                device=victim,
                active_devices=len(active) - 1,
                reason=reason,
            )

    def _shrink_victim(self, *, now: float, active) -> int | None:
        """Highest-indexed device that is idle at *now*, if shrinkable."""
        if self._autoscaler is None:
            return None
        if len(active) <= self._autoscaler.policy.min_devices:
            return None
        for device in reversed(active):
            if self._timeline.device_idle(device, now=now):
                return device
        return None

    # -- reporting -----------------------------------------------------------
    def report(self) -> ServiceReport:
        """Aggregate metrics over everything submitted so far."""
        counts: dict = {}
        latencies = []
        for ticket in self._tickets:
            counts[ticket.status] = counts.get(ticket.status, 0) + 1
            if ticket.latency_seconds is not None:
                latencies.append(ticket.latency_seconds)
        n_jobs = len(self._tickets)
        shed = counts.get("shed", 0)
        makespan = self._timeline.makespan_seconds
        finished = len(latencies)
        return ServiceReport(
            n_jobs=n_jobs,
            counts=counts,
            p50_latency_seconds=(
                percentile(latencies, 50.0) if latencies else None
            ),
            p99_latency_seconds=(
                percentile(latencies, 99.0) if latencies else None
            ),
            mean_latency_seconds=(
                sum(latencies) / finished if latencies else None
            ),
            throughput_per_second=(
                finished / makespan if makespan > 0 else 0.0
            ),
            shed_rate=shed / n_jobs if n_jobs else 0.0,
            makespan_seconds=makespan,
            devices_provisioned=self._timeline.n_devices,
            devices_active=len(self._timeline.active_devices),
            scale_ups=sum(1 for e in self._events if e.kind == "scale_up"),
            scale_downs=sum(
                1 for e in self._events if e.kind == "scale_down"
            ),
        )
