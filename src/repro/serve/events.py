"""Structured service events: every decision the service makes, recorded.

The serving layer's determinism contract is *replayability*: two runs of
the same seeded session stream must make byte-identical decisions.  The
event log is how that is asserted (the CI serve drill runs the load
generator twice and ``cmp``'s the logs) and how operators audit what the
service did — every submit, admission verdict, dispatch, completion,
cancellation and autoscaling action lands here with an ordinal and its
*virtual* (simulated) timestamp.  Host wall-clock never appears in an
event, so logs are stable across machines.

Ordinals are the causal order the service made decisions in; ``time`` is
the simulated second the decision refers to.  Times are non-decreasing per
job but not globally monotone — a completion at its (future) end time is
logged as soon as the host finishes the run, which can precede a later
submit with an earlier arrival stamp.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field

__all__ = ["EVENT_KINDS", "ServiceEvent", "events_to_json"]

#: Every kind of event the service emits, in lifecycle order.
EVENT_KINDS = (
    "submit",      # a job arrived (before any admission verdict)
    "admit",       # admission accepted the job as submitted
    "degrade",     # admission accepted a reduced variant (memory ladder)
    "shed",        # admission or a tenant quota refused the job
    "dispatch",    # the job started on a lane (device/stream/start)
    "stalled",     # a running attempt exceeded its watchdog lease
    "retry",       # a failed/stalled attempt will be retried (backoff)
    "complete",    # the job reached a terminal engine status
    "failed",      # the job raised a contained error before completing
    "cancel",      # a client cancelled the job (queued or running phase)
    "refused",     # submission refused in degraded read-only mode
    "scale_up",    # the autoscaler provisioned a device
    "scale_down",  # the autoscaler retired a device
)


@dataclass(frozen=True)
class ServiceEvent:
    """One recorded service decision."""

    ordinal: int
    time: float
    kind: str
    job_id: int | None = None
    tenant: str | None = None
    detail: dict = field(default_factory=dict)

    def to_row(self) -> dict:
        """JSON-safe dict with a stable key order (byte-compare friendly)."""
        return {
            "ordinal": self.ordinal,
            "time": self.time,
            "kind": self.kind,
            "job_id": self.job_id,
            "tenant": self.tenant,
            "detail": dict(self.detail),
        }


def events_to_json(events) -> str:
    """Canonical JSON rendering of an event log.

    The exact string the serve drill byte-compares: stable key order,
    two-space indent, trailing newline.  Floats render via Python's
    shortest-round-trip ``repr``, which is deterministic for the virtual
    times and simulated seconds the events carry.
    """
    rows = [event.to_row() for event in events]
    return json.dumps({"events": rows}, indent=2) + "\n"
