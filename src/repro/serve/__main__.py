"""CLI for the serving layer: ``python -m repro.serve`` / ``repro serve``.

Runs the seeded load-generator drill against an
:class:`~repro.serve.service.OptimizationService`: ``--sessions`` clients
arrive with exponential gaps (``--mean-interarrival``, virtual seconds),
optionally cancelling mid-run (``--cancel-fraction``), against a fleet of
``--devices`` simulated devices that autoscales up to ``--max-devices``
(``--no-autoscale`` pins the fleet).  Prints the latency/throughput/shed
report and optionally writes it (``--out``) and the canonical event log
(``--events-json``) — two runs with the same flags produce byte-identical
event logs, which the CI serve drill asserts with ``cmp``.

Exit code: 1 when any job failed (contained engine error), else 0 —
sheds and cancels are expected under load, not failures.
"""

from __future__ import annotations

import argparse
import json
import sys

from repro.io import atomic_write_text
from repro.serve.autoscale import AutoscalePolicy
from repro.serve.loadgen import LoadProfile, run_drill


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.serve", description=__doc__
    )
    parser.add_argument("--sessions", type=int, default=200)
    parser.add_argument("--seed", type=int, default=2021)
    parser.add_argument(
        "--mean-interarrival",
        type=float,
        default=2e-5,
        metavar="S",
        help="mean exponential gap between arrivals, in virtual seconds",
    )
    parser.add_argument(
        "--cancel-fraction",
        type=float,
        default=0.0,
        help="fraction of clients that cancel mid-run",
    )
    parser.add_argument("--devices", type=int, default=1)
    parser.add_argument("--streams", type=int, default=4)
    parser.add_argument(
        "--no-autoscale",
        action="store_true",
        help="pin the fleet at --devices (autoscaling is on by default)",
    )
    parser.add_argument(
        "--max-devices",
        type=int,
        default=4,
        help="autoscaling ceiling (ignored with --no-autoscale)",
    )
    parser.add_argument(
        "--boot-seconds",
        type=float,
        default=0.0,
        metavar="S",
        help="virtual boot delay before a scaled-up device opens",
    )
    parser.add_argument(
        "--max-queue",
        type=int,
        default=None,
        metavar="N",
        help="admission queue bound: arrivals beyond it are shed",
    )
    parser.add_argument(
        "--deadline",
        type=float,
        default=None,
        metavar="S",
        help="per-job wall-clock deadline in host seconds",
    )
    parser.add_argument(
        "--checkpoint-dir",
        help="write cancellation checkpoints here (enables resubmit)",
    )
    parser.add_argument("--out", help="write the report JSON here")
    parser.add_argument(
        "--events-json",
        metavar="PATH",
        help="write the canonical event log here (byte-stable)",
    )
    args = parser.parse_args(argv)

    profile = LoadProfile(
        n_sessions=args.sessions,
        seed=args.seed,
        mean_interarrival=args.mean_interarrival,
        cancel_fraction=args.cancel_fraction,
    )
    autoscale = None
    if not args.no_autoscale:
        autoscale = AutoscalePolicy(
            min_devices=args.devices,
            max_devices=max(args.max_devices, args.devices),
            boot_seconds=args.boot_seconds,
        )
    service = run_drill(
        profile,
        n_devices=args.devices,
        streams_per_device=args.streams,
        autoscale=autoscale,
        max_queue=args.max_queue,
        deadline=args.deadline,
        checkpoint_dir=args.checkpoint_dir,
    )

    report = service.report()
    print(report.summary())
    if args.out:
        atomic_write_text(
            args.out, json.dumps(report.to_dict(), indent=2) + "\n"
        )
        print(f"wrote {args.out}")
    if args.events_json:
        atomic_write_text(args.events_json, service.events_json())
        print(f"wrote {args.events_json}")
    return 1 if report.counts.get("failed", 0) else 0


if __name__ == "__main__":
    sys.exit(main())
