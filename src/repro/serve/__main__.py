"""CLI for the serving layer: ``python -m repro.serve`` / ``repro serve``.

Runs the seeded load-generator drill against an
:class:`~repro.serve.service.OptimizationService`: ``--sessions`` clients
arrive with exponential gaps (``--mean-interarrival``, virtual seconds),
optionally cancelling mid-run (``--cancel-fraction``), against a fleet of
``--devices`` simulated devices that autoscales up to ``--max-devices``
(``--no-autoscale`` pins the fleet).  Prints the latency/throughput/shed
report and optionally writes it (``--out``) and the canonical event log
(``--events-json``) — two runs with the same flags produce byte-identical
event logs, which the CI serve drill asserts with ``cmp``.

Durability flags: ``--journal-dir`` records every state transition to a
write-ahead journal before it takes effect; ``repro serve recover
--journal-dir DIR [same flags]`` rebuilds the service from that journal
after a crash and finishes the drill — the merged event log is
byte-identical to an uninterrupted run.  ``--kill-at-record N`` SIGKILLs
the process the moment journal record N is durable (the CI crash drill's
deterministic kill point).  ``--retry``/``--watchdog-seconds``/``--faults``
wire the reliability layer into serving.

Exit codes match the batch CLI: ``1`` when any job failed (contained
engine error), ``2`` when jobs were shed/refused or the configuration is
invalid, else ``0``.
"""

from __future__ import annotations

import argparse
import json
import sys

from repro.errors import ConfigurationError, ReproError
from repro.io import atomic_write_text
from repro.serve.autoscale import AutoscalePolicy
from repro.serve.loadgen import LoadProfile, replay, run_drill


def build_parser(prog: str = "python -m repro.serve") -> argparse.ArgumentParser:
    """The serve CLI's argument parser (shared by drill and recover)."""
    parser = argparse.ArgumentParser(prog=prog, description=__doc__)
    parser.add_argument("--sessions", type=int, default=200)
    parser.add_argument("--seed", type=int, default=2021)
    parser.add_argument(
        "--mean-interarrival",
        type=float,
        default=2e-5,
        metavar="S",
        help="mean exponential gap between arrivals, in virtual seconds",
    )
    parser.add_argument(
        "--cancel-fraction",
        type=float,
        default=0.0,
        help="fraction of clients that cancel mid-run",
    )
    parser.add_argument("--devices", type=int, default=1)
    parser.add_argument("--streams", type=int, default=4)
    parser.add_argument(
        "--no-autoscale",
        action="store_true",
        help="pin the fleet at --devices (autoscaling is on by default)",
    )
    parser.add_argument(
        "--max-devices",
        type=int,
        default=4,
        help="autoscaling ceiling (ignored with --no-autoscale)",
    )
    parser.add_argument(
        "--boot-seconds",
        type=float,
        default=0.0,
        metavar="S",
        help="virtual boot delay before a scaled-up device opens",
    )
    parser.add_argument(
        "--max-queue",
        type=int,
        default=None,
        metavar="N",
        help="admission queue bound: arrivals beyond it are shed",
    )
    parser.add_argument(
        "--deadline",
        type=float,
        default=None,
        metavar="S",
        help="per-job wall-clock deadline in host seconds",
    )
    parser.add_argument(
        "--checkpoint-dir",
        help="write cancellation checkpoints here (enables resubmit)",
    )
    parser.add_argument(
        "--journal-dir",
        metavar="DIR",
        help="write-ahead journal directory (enables crash recovery)",
    )
    parser.add_argument(
        "--no-journal-fsync",
        action="store_true",
        help="skip per-record fsync (faster, crash-consistent only)",
    )
    parser.add_argument(
        "--retry",
        type=int,
        default=None,
        metavar="N",
        help="retry failed/stalled attempts up to N times (RetryPolicy)",
    )
    parser.add_argument(
        "--watchdog-seconds",
        type=float,
        default=None,
        metavar="S",
        help="stall lease: max simulated seconds between progress marks",
    )
    parser.add_argument(
        "--faults",
        metavar="PLAN",
        help="fault plan: 'drill' or a FaultPlan JSON file",
    )
    parser.add_argument(
        "--kill-at-record",
        type=int,
        default=None,
        metavar="SEQ",
        help="SIGKILL the process once journal record SEQ is durable",
    )
    parser.add_argument("--out", help="write the report JSON here")
    parser.add_argument(
        "--events-json",
        metavar="PATH",
        help="write the canonical event log here (byte-stable)",
    )
    return parser


def _profile(args: argparse.Namespace) -> LoadProfile:
    return LoadProfile(
        n_sessions=args.sessions,
        seed=args.seed,
        mean_interarrival=args.mean_interarrival,
        cancel_fraction=args.cancel_fraction,
    )


def _service_kwargs(args: argparse.Namespace) -> dict:
    autoscale = None
    if not args.no_autoscale:
        autoscale = AutoscalePolicy(
            min_devices=args.devices,
            max_devices=max(args.max_devices, args.devices),
            boot_seconds=args.boot_seconds,
        )
    faults = None
    if args.faults:
        from repro.reliability import FaultPlan

        if args.faults == "drill":
            faults = FaultPlan.drill(args.sessions, seed=args.seed)
        else:
            faults = FaultPlan.from_json_file(args.faults)
    return dict(
        n_devices=args.devices,
        streams_per_device=args.streams,
        autoscale=autoscale,
        max_queue=args.max_queue,
        deadline=args.deadline,
        checkpoint_dir=args.checkpoint_dir,
        retry=args.retry,
        watchdog_seconds=args.watchdog_seconds,
        faults=faults,
        journal_fsync=not args.no_journal_fsync,
    )


def _finish(service, args: argparse.Namespace) -> int:
    report = service.report()
    print(report.summary())
    if service.read_only:
        row = service.journal_error or {}
        print(
            "service is in degraded read-only mode: "
            f"{row.get('message', 'journal unwritable')}",
            file=sys.stderr,
        )
    if args.out:
        atomic_write_text(
            args.out, json.dumps(report.to_dict(), indent=2) + "\n"
        )
        print(f"wrote {args.out}")
    if args.events_json:
        atomic_write_text(args.events_json, service.events_json())
        print(f"wrote {args.events_json}")
    if report.counts.get("failed", 0):
        return 1
    if report.counts.get("shed", 0) or report.counts.get("refused", 0):
        return 2
    return 0


def main(argv: list[str] | None = None) -> int:
    argv = list(sys.argv[1:] if argv is None else argv)
    recovering = bool(argv) and argv[0] == "recover"
    if recovering:
        argv = argv[1:]
    prog = "python -m repro.serve" + (" recover" if recovering else "")
    parser = build_parser(prog)
    args = parser.parse_args(argv)

    try:
        profile = _profile(args)
        kwargs = _service_kwargs(args)
        if recovering:
            from repro.serve.service import OptimizationService

            if not args.journal_dir:
                raise ConfigurationError(
                    "recover needs --journal-dir pointing at the journal "
                    "of the interrupted run"
                )
            service = OptimizationService.recover(args.journal_dir, **kwargs)
            resume_at = len(service.status())
            print(
                f"recovered {resume_at} journaled session(s) from "
                f"{args.journal_dir}; resuming drill"
            )
            import asyncio

            asyncio.run(replay(service, profile, start_index=resume_at))
        else:
            service = run_drill(
                profile,
                journal_dir=args.journal_dir,
                journal_kill_at=args.kill_at_record,
                **kwargs,
            )
    except ConfigurationError as exc:
        print(f"configuration error: {exc}", file=sys.stderr)
        return 2
    except ReproError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1
    return _finish(service, args)


if __name__ == "__main__":
    sys.exit(main())
