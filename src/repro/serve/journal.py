"""Write-ahead journal for the serving layer: durable state transitions.

Every state transition the service makes — submit, admission verdict,
dispatch, progress watermark, checkpoint reference, retry, cancel,
completion — is appended here **before** it takes effect in memory.  The
resulting invariant is what crash recovery stands on: *journaled means it
happened; not journaled means it never happened*.  After SIGKILL,
:meth:`~repro.serve.service.OptimizationService.recover` replays the
journal to rebuild the exact service state, resumes the in-flight job
from its newest checkpoint, and continues — byte-identical to a run that
was never interrupted.

File format (version 1), one record per line::

    FASTPSO-WAL 1 <crc32-hex8> <payload-bytes> <payload>\\n
    <payload: compact UTF-8 JSON, no embedded newlines>

The framing mirrors the checkpoint header (:mod:`repro.reliability
.checkpoint`): an ASCII magic, a format version, a CRC-32 of the payload
bytes and the payload length — everything needed to validate a record
without parsing it.  Appends are flushed and fsynced per record (the
directory itself is fsynced once at creation via
:func:`repro.io.fsync_directory`), so an acknowledged transition survives
power loss.  The reader is torn-tail tolerant: a record interrupted
mid-write fails its length/CRC check and parsing stops there — by the
write-ahead ordering, the corresponding transition never took effect, so
dropping the tail is exactly correct.

Each record carries a dense ``seq`` number; :class:`ServiceJournal`
truncates any torn tail when it reopens an existing journal for append,
so recovery continues the sequence without gaps.

Deterministic kill points
-------------------------
``kill_at``/``kill_mode`` turn the journal into a crash harness: after
the record with that sequence number is durable, the writer either
SIGKILLs its own process (``"sigkill"``, the CI smoke) or raises
:class:`JournalKillPoint` (``"raise"``, for in-process tests).  Either
way the record *is* on disk and the transition it announces has not yet
been applied — the exact window recovery must handle.
"""

from __future__ import annotations

import json
import os
import signal
import zlib
from pathlib import Path

from repro.batch.job import Job
from repro.core.budget import Budget
from repro.errors import CheckpointError, JournalError
from repro.io import fsync_directory
from repro.reliability.snapshot import (
    ensure_capturable,
    params_from_spec,
    params_to_spec,
)

__all__ = [
    "JOURNAL_SCHEMA_VERSION",
    "JournalKillPoint",
    "ServiceJournal",
    "job_from_spec",
    "job_to_spec",
    "read_journal",
]

_MAGIC = b"FASTPSO-WAL"
#: Version written into every record header.
JOURNAL_SCHEMA_VERSION = 1

_FILENAME = "service.wal"


class JournalKillPoint(BaseException):
    """In-process kill point fired by ``kill_mode="raise"``.

    Derives from :class:`BaseException` on purpose: the service's failure
    containment catches :class:`~repro.errors.ReproError`, and a drill's
    simulated crash must tear through it like SIGKILL would.
    """

    def __init__(self, seq: int) -> None:
        super().__init__(f"journal kill point at record seq {seq}")
        self.seq = seq


def _frame(record: dict) -> bytes:
    payload = json.dumps(record, separators=(",", ":")).encode("utf-8")
    crc = zlib.crc32(payload) & 0xFFFFFFFF
    header = b"%s %d %08x %d " % (
        _MAGIC,
        JOURNAL_SCHEMA_VERSION,
        crc,
        len(payload),
    )
    return header + payload + b"\n"


def _parse_line(line: bytes) -> dict | None:
    """One framed record from *line* (no trailing newline), else ``None``."""
    parts = line.split(b" ", 4)
    if len(parts) != 5 or parts[0] != _MAGIC:
        return None
    try:
        version = int(parts[1])
        expected_crc = int(parts[2], 16)
        expected_len = int(parts[3])
    except ValueError:
        return None
    if version != JOURNAL_SCHEMA_VERSION:
        return None
    payload = parts[4]
    if len(payload) != expected_len:
        return None
    if zlib.crc32(payload) & 0xFFFFFFFF != expected_crc:
        return None
    try:
        record = json.loads(payload.decode("utf-8"))
    except (UnicodeDecodeError, json.JSONDecodeError):
        return None
    return record if isinstance(record, dict) else None


def read_journal(path: str | Path) -> tuple[list[dict], int]:
    """Parse a journal file; returns ``(records, valid_bytes)``.

    Torn-tail tolerant: parsing stops at the first record that fails its
    framing, length or CRC check (or breaks ``seq`` continuity), and
    ``valid_bytes`` is the byte offset of the end of the last valid
    record — the truncation point for reopening the journal.  A missing
    file reads as an empty journal.
    """
    path = Path(path)
    try:
        raw = path.read_bytes()
    except FileNotFoundError:
        return [], 0
    except OSError as exc:
        raise JournalError(f"cannot read journal {path}: {exc}") from exc
    records: list[dict] = []
    offset = 0
    while offset < len(raw):
        newline = raw.find(b"\n", offset)
        if newline < 0:
            break  # torn tail: record never got its terminator
        record = _parse_line(raw[offset:newline])
        if record is None or record.get("seq") != len(records):
            break
        records.append(record)
        offset = newline + 1
    return records, offset


class ServiceJournal:
    """Append-only writer over one service's write-ahead journal.

    Opening an existing journal parses it (the surviving records are kept
    on :attr:`existing_records` for recovery), truncates any torn tail,
    and continues the sequence.  ``fsync=False`` trades power-loss
    durability for speed (process-crash durability remains — the
    benchmark's journal-overhead section measures the difference).
    """

    def __init__(
        self,
        directory: str | Path,
        *,
        fsync: bool = True,
        kill_at: int | None = None,
        kill_mode: str = "sigkill",
    ) -> None:
        if kill_mode not in ("sigkill", "raise"):
            raise JournalError(
                f"kill_mode must be 'sigkill' or 'raise', got {kill_mode!r}"
            )
        self.directory = Path(directory)
        self.path = self.directory / _FILENAME
        self.fsync = bool(fsync)
        self.kill_at = kill_at
        self.kill_mode = kill_mode
        # Any OSError here (read-only dir, permissions) propagates: the
        # service decides whether that means degraded mode or a hard fail.
        self.directory.mkdir(parents=True, exist_ok=True)
        #: Records that survived in an existing journal (crash recovery
        #: replays these).  Empty for a fresh journal.
        self.existing_records, valid_bytes = read_journal(self.path)
        self._fh = open(self.path, "ab")
        if self._fh.tell() != valid_bytes:
            # Torn tail from the crashed writer: drop it before appending,
            # or the next record would be unreadable.
            self._fh.truncate(valid_bytes)
            self._fh.seek(valid_bytes)
        #: Sequence number of the next record (== records written so far).
        self.next_seq = len(self.existing_records)
        fsync_directory(self.directory)

    @property
    def checkpoints_dir(self) -> Path:
        """Where per-job checkpoint managers under this journal live."""
        return self.directory / "checkpoints"

    def append(self, record: dict) -> int:
        """Durably append one record; returns its sequence number.

        The record is written, flushed and (by default) fsynced before
        this returns — the caller may then apply the transition.  Raises
        ``OSError`` when the directory has become unwritable (the service
        turns that into degraded read-only mode).
        """
        seq = self.next_seq
        framed = _frame({"seq": seq, **record})
        self._fh.write(framed)
        self._fh.flush()
        if self.fsync:
            os.fsync(self._fh.fileno())
        self.next_seq = seq + 1
        if self.kill_at is not None and seq == self.kill_at:
            if self.kill_mode == "raise":
                raise JournalKillPoint(seq)
            os.kill(os.getpid(), signal.SIGKILL)  # pragma: no cover
        return seq

    def close(self) -> None:
        try:
            self._fh.close()
        except OSError:  # pragma: no cover - close failures are benign
            pass


# -- job (de)serialization ----------------------------------------------------
def job_to_spec(job: Job) -> dict | None:
    """JSON-safe spec of *job*, or ``None`` when it cannot be serialized.

    Only registry problems, registry inertia schedules and JSON-safe
    engine options survive a journal round-trip (same constraint as
    checkpoints: a journal is a plain versioned document, restoring never
    executes arbitrary code).  Unserializable jobs still run — they just
    cannot be rebuilt by recovery.
    """
    if isinstance(job.problem, str):
        problem = job.problem
    else:
        try:
            ensure_capturable(job.problem)
        except CheckpointError:
            return None
        problem = job.problem.name
    try:
        params = params_to_spec(job.params)
    except CheckpointError:
        return None
    options = dict(job.engine_options)
    try:
        json.dumps(options)
    except (TypeError, ValueError):
        return None
    return {
        "problem": problem,
        "dim": job.dim,
        "n_particles": job.n_particles,
        "max_iter": job.max_iter,
        "engine": job.engine,
        "params": params,
        "seed": job.seed,
        "name": job.name,
        "record_history": job.record_history,
        "engine_options": options,
        "priority": job.priority,
        "budget": job.budget.to_spec() if job.budget is not None else None,
    }


def job_from_spec(spec: dict) -> Job:
    """Inverse of :func:`job_to_spec`."""
    return Job(
        problem=spec["problem"],
        dim=int(spec["dim"]),
        n_particles=int(spec["n_particles"]),
        max_iter=int(spec["max_iter"]),
        engine=spec["engine"],
        params=params_from_spec(spec["params"]),
        seed=spec["seed"],
        name=spec["name"],
        record_history=bool(spec["record_history"]),
        engine_options=dict(spec["engine_options"]),
        priority=int(spec["priority"]),
        budget=(
            Budget.from_spec(spec["budget"])
            if spec.get("budget") is not None
            else None
        ),
    )
