"""Per-tenant quotas for the serving layer.

A tenant is a client identity string; every
:meth:`~repro.serve.service.OptimizationService.submit` names one
(``"default"`` when the caller doesn't care).  A :class:`TenantQuota`
bounds what that identity may do, riding the existing machinery instead of
inventing new enforcement paths:

* ``max_active`` / ``max_queued`` refuse arrivals the same way the
  admission queue bound does (a deterministic ``shed`` event, or an
  :class:`~repro.errors.AdmissionError` in strict mode);
* ``budget`` merges tightest-wins into every job's effective
  :class:`~repro.core.budget.Budget` (job budget, tenant budget,
  service-wide budget and deadline compose via
  :meth:`~repro.core.budget.Budget.merge_all`);
* ``priority`` overrides ``Job.priority`` so a paid tier overtakes the
  free tier in the dispatch queue without clients self-declaring
  priorities.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.budget import Budget
from repro.errors import ConfigurationError

__all__ = ["TenantQuota"]


@dataclass(frozen=True)
class TenantQuota:
    """Limits for one tenant; every field ``None`` means unrestricted.

    ``max_active``
        Most jobs the tenant may have in the system at once — queued plus
        those still occupying a lane at the arrival's virtual time.
    ``max_queued``
        Most jobs the tenant may have waiting (not yet dispatched).
    ``budget``
        A :class:`Budget` merged (tightest-wins) into every job the
        tenant submits.
    ``priority``
        Dispatch priority for the tenant's jobs (higher runs first),
        overriding each job's own ``priority`` field.
    """

    max_active: int | None = None
    max_queued: int | None = None
    budget: Budget | None = None
    priority: int | None = None

    def __post_init__(self) -> None:
        for name in ("max_active", "max_queued"):
            value = getattr(self, name)
            if value is None:
                continue
            if isinstance(value, bool) or not isinstance(value, int):
                raise ConfigurationError(
                    f"quota {name} must be an int, got {value!r}"
                )
            if value < 1:
                raise ConfigurationError(
                    f"quota {name} must be >= 1, got {value}"
                )
        if self.budget is not None and not isinstance(self.budget, Budget):
            raise ConfigurationError(
                f"quota budget must be a repro Budget, got "
                f"{type(self.budget).__name__}"
            )
        if self.priority is not None and (
            isinstance(self.priority, bool)
            or not isinstance(self.priority, int)
        ):
            raise ConfigurationError(
                f"quota priority must be an int, got {self.priority!r}"
            )

    def job_priority(self, job_priority: int) -> int:
        """The dispatch priority a job of this tenant runs at."""
        return self.priority if self.priority is not None else job_priority
