"""Queue-depth autoscaling of the simulated fleet.

The autoscaler grows and shrinks the service's
:class:`~repro.batch.dispatch.FleetTimeline` from *observations* the
service feeds it — queue depth and active device count at each arrival and
each completion, both in virtual time.  Decisions are pure arithmetic over
those observations (no host clocks, no randomness), so a seeded load
replay reproduces the exact same ``scale_up``/``scale_down`` event
sequence — the property the serve drill asserts.

Scale-up: when the queue holds at least ``queue_high`` pending jobs per
active device, a device is provisioned; its lanes open ``boot_seconds``
after the decision (simulated boot, so scaling is not free capacity).
Scale-down: after ``idle_observations`` consecutive observations with an
empty queue, the highest-indexed idle device is retired.  ``cooldown_seconds``
of virtual time must pass between any two actions, damping oscillation.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import ConfigurationError

__all__ = ["AutoscalePolicy", "Autoscaler"]


@dataclass(frozen=True)
class AutoscalePolicy:
    """Configuration of the queue-depth autoscaler."""

    #: Fleet size bounds (the service's initial ``n_devices`` must lie
    #: within them).
    min_devices: int = 1
    max_devices: int = 4
    #: Pending jobs per active device that trigger a scale-up.
    queue_high: float = 4.0
    #: Consecutive empty-queue observations before a scale-down.
    idle_observations: int = 3
    #: Virtual seconds between any two scaling actions.
    cooldown_seconds: float = 0.0
    #: Virtual seconds a new device takes to boot (lanes open late).
    boot_seconds: float = 0.0
    #: Catalog device (name/alias or a ready
    #: :class:`~repro.gpusim.device.DeviceSpec`) that scale-up provisions.
    #: ``None`` keeps grown devices identical to the base fleet.  Lets a
    #: service boot cheap silicon and burst onto faster catalog entries
    #: (jobs landing on a grown device run on its spec).
    grow_device: object | None = None

    def __post_init__(self) -> None:
        if self.min_devices < 1:
            raise ConfigurationError(
                f"min_devices must be >= 1, got {self.min_devices}"
            )
        if self.max_devices < self.min_devices:
            raise ConfigurationError(
                f"max_devices ({self.max_devices}) must be >= min_devices "
                f"({self.min_devices})"
            )
        if not self.queue_high > 0:
            raise ConfigurationError(
                f"queue_high must be > 0, got {self.queue_high}"
            )
        if self.idle_observations < 1:
            raise ConfigurationError(
                f"idle_observations must be >= 1, got {self.idle_observations}"
            )
        if self.cooldown_seconds < 0:
            raise ConfigurationError(
                f"cooldown_seconds must be >= 0, got {self.cooldown_seconds}"
            )
        if self.boot_seconds < 0:
            raise ConfigurationError(
                f"boot_seconds must be >= 0, got {self.boot_seconds}"
            )
        if self.grow_device is not None:
            from repro.gpusim.device import DeviceSpec

            if not isinstance(self.grow_device, (str, DeviceSpec)):
                raise ConfigurationError(
                    "grow_device must be a catalog name or a DeviceSpec, "
                    f"got {type(self.grow_device).__name__}"
                )

    def resolved_grow_spec(self):
        """The :class:`DeviceSpec` scale-up provisions, or ``None``.

        Name resolution happens here (not in ``__post_init__``) so a bad
        name raises :class:`~repro.errors.UnknownDeviceError` with the
        catalog's did-you-mean hint at service construction.
        """
        if self.grow_device is None:
            return None
        from repro.devices import resolve_device

        return resolve_device(self.grow_device)


class Autoscaler:
    """Stateful decision loop over queue-depth observations."""

    def __init__(self, policy: AutoscalePolicy) -> None:
        self.policy = policy
        self._idle_streak = 0
        self._last_action_at: float | None = None

    def observe(
        self,
        *,
        now: float,
        queue_depth: int,
        n_active: int,
        can_shrink: bool,
    ) -> tuple[str, str] | None:
        """One observation; returns ``("up"|"down", reason)`` or ``None``.

        *can_shrink* is the service telling the autoscaler whether an idle
        victim device actually exists right now — a fleet whose devices
        all still hold queued work keeps its size even after the idle
        streak matures.
        """
        policy = self.policy
        if (
            self._last_action_at is not None
            and now - self._last_action_at < policy.cooldown_seconds
        ):
            return None
        if queue_depth > 0:
            self._idle_streak = 0
            if (
                queue_depth >= policy.queue_high * n_active
                and n_active < policy.max_devices
            ):
                self._last_action_at = now
                return (
                    "up",
                    f"queue depth {queue_depth} >= {policy.queue_high:g} x "
                    f"{n_active} active device(s)",
                )
            return None
        self._idle_streak += 1
        if (
            self._idle_streak >= policy.idle_observations
            and n_active > policy.min_devices
            and can_shrink
        ):
            self._idle_streak = 0
            self._last_action_at = now
            return (
                "down",
                f"{policy.idle_observations} consecutive idle observations",
            )
        return None
