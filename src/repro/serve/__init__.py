"""repro.serve: async PSO-as-a-service on the simulated fleet.

The serving layer turns the batch machinery into an *open* system:
:class:`OptimizationService` accepts jobs over virtual time with an async
submit/stream/cancel/status API, gates them with per-tenant
:class:`TenantQuota`\\ s and the admission memory ladder, dispatches onto
a growable fleet under an :class:`AutoscalePolicy`, streams best-so-far
improvements while runs are in flight, and supports checkpoint-backed
cancellation with bit-identical resume.  Every decision lands on a
deterministic event log (:class:`ServiceEvent`) so seeded load replays
(:class:`LoadProfile` / :func:`run_drill`) are byte-for-byte reproducible.

Durability: with a ``journal_dir`` the service records every state
transition to a CRC-guarded write-ahead journal (:class:`ServiceJournal`)
*before* it takes effect, so :meth:`OptimizationService.recover` rebuilds
the exact service state after SIGKILL — queued tickets re-enter admission
in order, mid-run jobs resume bit-identically from their latest
checkpoint, finished results are served from the journal without
re-running.  ``retry``/``faults``/``watchdog_seconds`` wire the
reliability layer (attempt loops, fault drills, stall leases with CPU
failover) into serving.

``python -m repro.serve`` runs the load-generator drill from the command
line (also available as ``repro serve``; ``repro serve recover`` resumes
a crashed drill from its journal).
"""

from __future__ import annotations

from repro.serve.autoscale import AutoscalePolicy, Autoscaler
from repro.serve.events import EVENT_KINDS, ServiceEvent, events_to_json
from repro.serve.journal import (
    JOURNAL_SCHEMA_VERSION,
    JournalKillPoint,
    ServiceJournal,
    job_from_spec,
    job_to_spec,
    read_journal,
)
from repro.serve.loadgen import (
    ClientSession,
    LoadProfile,
    build_sessions,
    replay,
    run_drill,
)
from repro.serve.quota import TenantQuota
from repro.serve.service import (
    JobTicket,
    OptimizationService,
    ProgressUpdate,
    ServiceReport,
)

__all__ = [
    "AutoscalePolicy",
    "Autoscaler",
    "ClientSession",
    "EVENT_KINDS",
    "JOURNAL_SCHEMA_VERSION",
    "JobTicket",
    "JournalKillPoint",
    "LoadProfile",
    "OptimizationService",
    "ProgressUpdate",
    "ServiceEvent",
    "ServiceJournal",
    "ServiceReport",
    "TenantQuota",
    "build_sessions",
    "events_to_json",
    "job_from_spec",
    "job_to_spec",
    "read_journal",
    "replay",
    "run_drill",
]
