"""Deadlines and budgets for time-critical runs.

A :class:`Budget` caps a run along up to four axes — simulated seconds on
the device clock, host wall-clock seconds, iterations, and objective
evaluations.  Low-complexity PSO deployments in time-critical settings need
a *usable best-so-far answer at expiry*, not an exception: when a budget
trips, the engine finishes the current iteration, stops cleanly through the
normal stop-criterion machinery, and returns an ordinary
:class:`~repro.core.results.OptimizeResult` whose ``status`` field names
the axis that expired (``"deadline_exceeded"`` for the two time axes,
``"budget_exhausted"`` for the two count axes).

Budgets compose with checkpoint/resume: :class:`BudgetTracker` snapshots
the wall-clock seconds already consumed, so a resumed run honours the
*remaining* budget rather than restarting the clock.  Everything except
the wall axis is deterministic in simulated time.
"""

from __future__ import annotations

import math
import time
from dataclasses import dataclass

from repro.core.stopping import StopCriterion
from repro.errors import ConfigurationError
from repro.gpusim.clock import SimClock

__all__ = ["Budget", "BudgetTracker"]


def _positive(value: float | int | None, name: str) -> None:
    if value is None:
        return
    if isinstance(value, bool) or not isinstance(value, (int, float)):
        raise ConfigurationError(f"budget {name} must be a number, got {value!r}")
    if not math.isfinite(value) or value <= 0:
        raise ConfigurationError(f"budget {name} must be finite and > 0, got {value!r}")


@dataclass(frozen=True)
class Budget:
    """Caps for one run; ``None`` on an axis means unlimited.

    ``sim_seconds``
        Simulated seconds on the engine's device clock (deterministic).
    ``wall_seconds``
        Host wall-clock seconds (the *deadline* axis; host-dependent).
    ``iterations``
        Maximum iterations, independent of ``max_iter`` — useful when the
        budget is imposed by a scheduler on top of a job's own settings.
    ``evaluations``
        Maximum objective evaluations (``n_particles`` per iteration, plus
        the initial swarm evaluation).
    """

    sim_seconds: float | None = None
    wall_seconds: float | None = None
    iterations: int | None = None
    evaluations: int | None = None

    def __post_init__(self) -> None:
        _positive(self.sim_seconds, "sim_seconds")
        _positive(self.wall_seconds, "wall_seconds")
        _positive(self.iterations, "iterations")
        _positive(self.evaluations, "evaluations")
        for name in ("iterations", "evaluations"):
            value = getattr(self, name)
            if value is not None and int(value) != value:
                raise ConfigurationError(f"budget {name} must be an integer")

    @property
    def is_unlimited(self) -> bool:
        return (
            self.sim_seconds is None
            and self.wall_seconds is None
            and self.iterations is None
            and self.evaluations is None
        )

    def merged(self, other: "Budget | None") -> "Budget":
        """The tighter of two budgets on every axis (``None`` loses)."""
        if other is None:
            return self

        def tight(a, b):
            if a is None:
                return b
            if b is None:
                return a
            return min(a, b)

        return Budget(
            sim_seconds=tight(self.sim_seconds, other.sim_seconds),
            wall_seconds=tight(self.wall_seconds, other.wall_seconds),
            iterations=tight(self.iterations, other.iterations),
            evaluations=tight(self.evaluations, other.evaluations),
        )

    @classmethod
    def merge_all(cls, *budgets: "Budget | None") -> "Budget | None":
        """Tightest-wins merge of any number of budgets (``None`` entries
        are skipped; all-``None`` yields ``None``).

        The serving layer composes up to four sources per job — the job's
        own budget, the tenant quota's, the service-wide budget and the
        deadline shorthand — and merge order never matters: ``min`` per
        axis is associative and commutative.
        """
        merged: Budget | None = None
        for budget in budgets:
            if budget is None:
                continue
            merged = budget if merged is None else merged.merged(budget)
        return merged

    def to_spec(self) -> dict:
        """JSON-safe description, the inverse of :meth:`from_spec`."""
        return {
            "sim_seconds": self.sim_seconds,
            "wall_seconds": self.wall_seconds,
            "iterations": self.iterations,
            "evaluations": self.evaluations,
        }

    @classmethod
    def from_spec(cls, spec: dict) -> "Budget":
        return cls(
            sim_seconds=spec.get("sim_seconds"),
            wall_seconds=spec.get("wall_seconds"),
            iterations=None if spec.get("iterations") is None else int(spec["iterations"]),
            evaluations=None if spec.get("evaluations") is None else int(spec["evaluations"]),
        )

    def start(
        self,
        *,
        clock: SimClock | None = None,
        n_particles: int = 0,
        wall_used: float = 0.0,
    ) -> "BudgetTracker":
        """Bind this budget to a live run and begin the wall timer."""
        return BudgetTracker(
            self, clock=clock, n_particles=n_particles, wall_used=wall_used
        )


class BudgetTracker(StopCriterion):
    """Live enforcement of a :class:`Budget` inside the engine loop.

    Rides the normal stop-criterion protocol: the engine asks
    :meth:`should_stop` after every iteration, and when an axis has
    expired the tracker records *which* axis in :attr:`breach`
    (``"deadline_exceeded"`` or ``"budget_exhausted"``) and :attr:`reason`
    (human-readable), then answers ``True``.  The axes are checked in a
    fixed order — iterations, evaluations, simulated seconds, wall seconds
    — so with a deterministic workload the reported breach is stable.
    """

    def __init__(
        self,
        budget: Budget,
        *,
        clock: SimClock | None = None,
        n_particles: int = 0,
        wall_used: float = 0.0,
    ) -> None:
        self.budget = budget
        self.clock = clock
        self.n_particles = int(n_particles)
        self.breach: str | None = None
        self.reason: str | None = None
        self._wall_used = float(wall_used)
        self._wall_start = time.perf_counter()
        self._sim_start = 0.0 if clock is None else clock.now

    def bind(self, clock: SimClock, n_particles: int) -> None:
        """Attach the run's clock and swarm size (engine calls this once)."""
        self.clock = clock
        self.n_particles = int(n_particles)
        self._sim_start = clock.now

    # -- accounting -------------------------------------------------------

    @property
    def wall_elapsed(self) -> float:
        """Wall seconds consumed, including pre-checkpoint segments."""
        return self._wall_used + (time.perf_counter() - self._wall_start)

    @property
    def sim_elapsed(self) -> float:
        if self.clock is None:
            return 0.0
        return self.clock.now - self._sim_start

    def evaluations_done(self, iteration: int) -> int:
        """Objective evaluations after *iteration* (0-based) completes.

        One initial swarm evaluation plus one per loop iteration.
        """
        return self.n_particles * (iteration + 2)

    # -- StopCriterion protocol ------------------------------------------

    def reset(self) -> None:
        self.breach = None
        self.reason = None
        self._wall_used = 0.0
        self._wall_start = time.perf_counter()
        self._sim_start = 0.0 if self.clock is None else self.clock.now

    def state_dict(self) -> dict:
        return {"wall_used": self.wall_elapsed}

    def load_state(self, state: dict) -> None:
        self._wall_used = float(state.get("wall_used", 0.0))
        self._wall_start = time.perf_counter()

    def should_stop(self, iteration: int, gbest_value: float) -> bool:
        b = self.budget
        if b.iterations is not None and iteration + 1 >= b.iterations:
            self.breach = "budget_exhausted"
            self.reason = f"iteration budget of {b.iterations} reached"
            return True
        if (
            b.evaluations is not None
            and self.evaluations_done(iteration) >= b.evaluations
        ):
            self.breach = "budget_exhausted"
            self.reason = f"evaluation budget of {b.evaluations} reached"
            return True
        if b.sim_seconds is not None and self.sim_elapsed >= b.sim_seconds:
            self.breach = "deadline_exceeded"
            self.reason = f"simulated-time budget of {b.sim_seconds}s reached"
            return True
        if b.wall_seconds is not None and self.wall_elapsed >= b.wall_seconds:
            self.breach = "deadline_exceeded"
            self.reason = f"wall-clock deadline of {b.wall_seconds}s reached"
            return True
        return False
