"""Inertia-weight schedules and the constriction-factor variant.

The paper fixes ``w = 0.9``; the wider PSO literature (and FastPSO's
"future work" direction of richer built-ins) standardises two refinements
this module provides as library extensions:

* **linearly decreasing inertia** (Shi & Eberhart): ``w`` anneals from
  ``w_start`` to ``w_end`` over the run — exploration early, exploitation
  late;
* **chaotic inertia**: a logistic-map perturbation on top of the linear
  ramp, which resists premature convergence on deceptive landscapes;
* **Clerc-Kennedy constriction**: the χ-scaled update
  ``v' = χ [v + c1 r1 (pbest - p) + c2 r2 (gbest - p)]`` with
  ``χ = 2 / |2 - φ - sqrt(φ² - 4φ)|``, which guarantees convergence for
  ``φ = c1 + c2 > 4`` without any velocity clamping.

Schedules are pure functions of run progress so every engine (and every
backend) applies them identically — the cross-engine bitwise-equality
contract extends to scheduled runs.
"""

from __future__ import annotations

import math
from abc import ABC, abstractmethod
from dataclasses import dataclass

from repro.errors import InvalidParameterError

__all__ = [
    "InertiaSchedule",
    "ConstantInertia",
    "LinearInertia",
    "ChaoticInertia",
    "constriction_coefficient",
    "make_schedule",
]


class InertiaSchedule(ABC):
    """Maps run progress in [0, 1] to the inertia weight for Eq. (4)."""

    @abstractmethod
    def weight(self, progress: float) -> float:
        """Inertia at *progress* (0 = first iteration, 1 = last)."""

    def _check_progress(self, progress: float) -> float:
        if not 0.0 <= progress <= 1.0:
            raise InvalidParameterError(
                f"progress must be in [0, 1], got {progress}"
            )
        return progress


@dataclass(frozen=True)
class ConstantInertia(InertiaSchedule):
    """The paper's setting: a fixed ``w`` for the whole run."""

    w: float = 0.9

    def __post_init__(self) -> None:
        if not 0.0 <= self.w <= 2.0:
            raise InvalidParameterError(f"inertia must be in [0, 2], got {self.w}")

    def weight(self, progress: float) -> float:
        self._check_progress(progress)
        return self.w


@dataclass(frozen=True)
class LinearInertia(InertiaSchedule):
    """Shi-Eberhart linear decrease, classically 0.9 -> 0.4."""

    w_start: float = 0.9
    w_end: float = 0.4

    def __post_init__(self) -> None:
        for w in (self.w_start, self.w_end):
            if not 0.0 <= w <= 2.0:
                raise InvalidParameterError(
                    f"inertia endpoints must be in [0, 2], got {w}"
                )

    def weight(self, progress: float) -> float:
        p = self._check_progress(progress)
        return self.w_start + (self.w_end - self.w_start) * p


@dataclass(frozen=True)
class ChaoticInertia(InertiaSchedule):
    """Linear ramp modulated by a logistic map ``z' = 4 z (1 - z)``.

    Deterministic: the chaotic sequence is derived from the progress value
    via a fixed-point iteration count, so equal progress gives equal weight
    across engines.
    """

    w_start: float = 0.9
    w_end: float = 0.4
    z0: float = 0.37

    def __post_init__(self) -> None:
        if not 0.0 < self.z0 < 1.0 or self.z0 in (0.25, 0.5, 0.75):
            raise InvalidParameterError(
                "z0 must lie in (0, 1) away from the logistic fixed points"
            )

    def weight(self, progress: float) -> float:
        p = self._check_progress(progress)
        # Advance the map once per percent of progress: deterministic and
        # identical wherever it is evaluated.
        z = self.z0
        for _ in range(int(p * 100)):
            z = 4.0 * z * (1.0 - z)
        linear = self.w_start + (self.w_end - self.w_start) * p
        return linear * z + self.w_end * (1.0 - z)


def constriction_coefficient(c1: float, c2: float) -> float:
    """Clerc-Kennedy χ for acceleration coefficients ``c1 + c2 > 4``."""
    phi = c1 + c2
    if phi <= 4.0:
        raise InvalidParameterError(
            f"constriction requires c1 + c2 > 4, got {phi}"
        )
    return 2.0 / abs(2.0 - phi - math.sqrt(phi * phi - 4.0 * phi))


_SCHEDULES = {
    "constant": ConstantInertia,
    "linear": LinearInertia,
    "chaotic": ChaoticInertia,
}


def make_schedule(name: str, **kwargs: float) -> InertiaSchedule:
    """Build a schedule by name: ``constant``, ``linear`` or ``chaotic``."""
    try:
        cls = _SCHEDULES[name.lower()]
    except KeyError:
        raise InvalidParameterError(
            f"unknown inertia schedule {name!r}; choose from {sorted(_SCHEDULES)}"
        ) from None
    return cls(**kwargs)  # type: ignore[arg-type]
