"""Public FastPSO facade — the API a downstream user calls.

Wraps problem construction, engine selection and parameter handling in one
object::

    from repro import FastPSO

    pso = FastPSO(n_particles=5000, seed=7)
    result = pso.minimize("sphere", dim=200, max_iter=2000)
    print(result.best_value, result.elapsed_seconds)

Custom objectives go through the evaluation schema (paper technique iv)::

    result = pso.minimize(my_fn, dim=50, bounds=(-10, 10))      # per particle
    pso.minimize_elementwise(lambda x: x * x, dim=50, bounds=(-5, 5))
"""

from __future__ import annotations

from typing import Callable

import numpy as np

from repro.core.parameters import PSOParams
from repro.core.problem import Problem
from repro.core.results import OptimizeResult
from repro.core.schema import ElementwiseEvaluation
from repro.core.stopping import StopCriterion
from repro.errors import InvalidParameterError
from repro.functions.base import BenchmarkFunction, EvalProfile
from repro.gpusim.device import DeviceSpec

__all__ = ["FastPSO"]


class FastPSO:
    """High-level optimizer: a swarm configuration bound to an engine.

    Parameters
    ----------
    n_particles:
        Swarm size (the paper's default experiments use 5000).
    backend:
        ``"global"`` (default), ``"shared"`` or ``"tensorcore"`` — the GPU
        memory technique for the swarm update (Figure 6).
    engine:
        Override the execution engine entirely (any name accepted by
        :func:`repro.engines.make_engine`); default is the FastPSO GPU
        engine.
    device:
        Simulated device spec; defaults to the paper's Tesla V100.
    caching:
        Use the memory-caching allocator (paper technique iii).
    Other keyword arguments (``inertia``, ``cognitive``, ``social``,
    ``velocity_clamp``, ``clip_positions``, ``seed``, ``topology``) populate
    :class:`~repro.core.parameters.PSOParams`.
    """

    def __init__(
        self,
        n_particles: int = 5000,
        *,
        backend: str = "global",
        engine: str | None = None,
        device: DeviceSpec | None = None,
        caching: bool = True,
        **param_overrides: object,
    ) -> None:
        if n_particles <= 0:
            raise InvalidParameterError(
                f"n_particles must be positive, got {n_particles}"
            )
        self.n_particles = n_particles
        self.params = PSOParams(**param_overrides)  # type: ignore[arg-type]

        from repro.engines import FastPSOEngine, make_engine

        if engine is None:
            self.engine = FastPSOEngine(device, backend=backend, caching=caching)
            self._engine_name = "fastpso"
            self._engine_options: dict[str, object] = {
                "backend": backend,
                "caching": caching,
                "device": device,
            }
        else:
            self.engine = make_engine(engine)
            self._engine_name = engine
            self._engine_options = {}

    # -- main entry points --------------------------------------------------
    def minimize(
        self,
        objective: str | BenchmarkFunction | Callable[..., object],
        dim: int,
        *,
        max_iter: int = 2000,
        bounds: tuple[float, float] | None = None,
        vectorized: bool = False,
        stop: StopCriterion | None = None,
        record_history: bool = False,
        profile: EvalProfile | None = None,
        checkpoint=None,
    ) -> OptimizeResult:
        """Minimise *objective* in *dim* dimensions.

        ``objective`` may be a built-in function name (or instance), in
        which case its canonical domain is used, or any callable — then
        ``bounds`` is required and the callable is wrapped in the particle
        evaluation schema (``vectorized=True`` if it maps the whole
        ``(n, d)`` matrix to ``(n,)`` values).

        ``checkpoint`` (a directory path or a
        :class:`~repro.reliability.CheckpointManager`) periodically
        snapshots the run so it can be resumed bit-identically with
        :meth:`resume`.  Checkpointing requires a capturable objective —
        a built-in function name or instance, not an ad-hoc callable.
        """
        problem = self._as_problem(
            objective, dim, bounds, vectorized=vectorized, profile=profile
        )
        return self.engine.optimize(
            problem,
            n_particles=self.n_particles,
            max_iter=max_iter,
            params=self.params,
            stop=stop,
            record_history=record_history,
            checkpoint=checkpoint,
        )

    @staticmethod
    def resume(path, **kwargs) -> OptimizeResult:
        """Resume a checkpointed run bit-identically from *path*.

        *path* is a checkpoint file or a checkpoint directory (the newest
        readable snapshot wins).  Delegates to
        :func:`repro.reliability.resume`; see it for the keyword surface
        (``engine=`` override, ``checkpoint=`` to keep checkpointing).
        """
        from repro.reliability import resume as _resume

        return _resume(path, **kwargs)

    def minimize_elementwise(
        self,
        elem_fn: Callable[..., np.ndarray],
        dim: int,
        *,
        bounds: tuple[float, float],
        max_iter: int = 2000,
        reducer: str = "sum",
        pass_index: bool = False,
        profile: EvalProfile | None = None,
        stop: StopCriterion | None = None,
        record_history: bool = False,
    ) -> OptimizeResult:
        """Minimise a per-element objective via the element-wise schema.

        Mirrors the CUDA ``evaluation_kernel<L>`` template: *elem_fn* is the
        user lambda applied to every matrix element, *reducer* folds each
        row to a fitness value.
        """
        lo, hi = bounds
        problem = Problem(
            name=getattr(elem_fn, "__name__", "elementwise"),
            dim=dim,
            lower_bounds=np.full(dim, float(lo)),
            upper_bounds=np.full(dim, float(hi)),
            evaluator=ElementwiseEvaluation(
                elem_fn, reducer=reducer, profile=profile, pass_index=pass_index
            ),
        )
        return self.engine.optimize(
            problem,
            n_particles=self.n_particles,
            max_iter=max_iter,
            params=self.params,
            stop=stop,
            record_history=record_history,
        )

    def minimize_batch(
        self,
        jobs,
        *,
        n_devices: int = 1,
        streams_per_device: int = 4,
        policy: str = "fifo",
        retry=None,
        faults=None,
        checkpoint_dir=None,
    ):
        """Run many independent jobs concurrently on the simulated fleet.

        *jobs* is an iterable of :class:`repro.batch.Job` specs or plain
        dicts of Job fields.  Dict specs inherit this optimizer's swarm
        size, hyper-parameters and engine configuration for any field they
        omit, so the common case reads naturally::

            pso = FastPSO(n_particles=256, backend="shared")
            batch = pso.minimize_batch(
                [{"problem": "sphere", "dim": 32, "seed": s} for s in range(16)]
            )

        Each job's result is bit-identical to a solo :meth:`minimize` run
        with the same spec; the returned
        :class:`~repro.batch.BatchResult` adds fleet metrics (makespan,
        speedup over serial execution, queue waits, occupancy).

        ``retry`` (a :class:`~repro.reliability.RetryPolicy`), ``faults``
        (a :class:`~repro.reliability.FaultPlan`) and ``checkpoint_dir``
        enable the scheduler's reliability layer — failed jobs are retried
        with backoff, resuming from their latest checkpoint when one
        exists.
        """
        from repro.batch import BatchScheduler, Job

        scheduler = BatchScheduler(
            n_devices=n_devices,
            streams_per_device=streams_per_device,
            policy=policy,
            retry=retry,
            faults=faults,
            checkpoint_dir=checkpoint_dir,
        )
        resolved = []
        for spec in jobs:
            if isinstance(spec, Job):
                resolved.append(spec)
            elif isinstance(spec, dict):
                resolved.append(
                    Job(
                        **{
                            "n_particles": self.n_particles,
                            "params": self.params,
                            "engine": self._engine_name,
                            "engine_options": self._engine_options,
                            **spec,
                        }
                    )
                )
            else:
                raise InvalidParameterError(
                    "minimize_batch() takes Job specs or dicts, got "
                    f"{type(spec).__name__}"
                )
        return scheduler.run(resolved)

    # -- helpers -------------------------------------------------------------
    def _as_problem(
        self,
        objective,
        dim: int,
        bounds,
        *,
        vectorized: bool,
        profile: EvalProfile | None,
    ) -> Problem:
        if isinstance(objective, (str, BenchmarkFunction)):
            return Problem.from_benchmark(objective, dim)
        if callable(objective):
            if bounds is None:
                raise InvalidParameterError(
                    "custom objectives require explicit bounds=(lo, hi)"
                )
            return Problem.from_callable(
                objective,
                dim,
                bounds,
                name=getattr(objective, "__name__", "custom"),
                vectorized=vectorized,
                profile=profile,
            )
        raise InvalidParameterError(
            f"objective must be a name, BenchmarkFunction or callable, "
            f"got {type(objective).__name__}"
        )
