"""Swarm information topologies.

The paper's PSO uses the *global* (star) topology: every particle sees the
single swarm-wide gbest.  The *ring* topology — each particle attracted to
the best of its 2k neighbours on a ring — is a standard variant included as
a library extension (it slows convergence but resists premature collapse on
multimodal landscapes); the ablation bench compares the two.

Both return the ``social_positions`` operand of
:func:`repro.core.swarm.velocity_update`: a broadcastable ``(d,)`` row for
global, an ``(n, d)`` matrix for ring.
"""

from __future__ import annotations

import numpy as np

from repro.core.swarm import SwarmState
from repro.errors import InvalidParameterError

__all__ = ["social_positions", "ring_best_indices"]


def ring_best_indices(pbest_values: np.ndarray, k: int = 1) -> np.ndarray:
    """Index of the best neighbour (inclusive) within +/-k on the ring.

    Vectorised over all particles: stacks the 2k+1 rolled copies of the
    pbest vector and arg-minimises down the stack.  Ties resolve to the
    smallest offset ordering, which is deterministic for a fixed k.
    """
    n = pbest_values.shape[0]
    if k < 1:
        raise InvalidParameterError("ring neighbourhood radius must be >= 1")
    if n == 0:
        raise InvalidParameterError("ring topology needs a non-empty swarm")
    offsets = np.arange(-k, k + 1)
    neighbour_idx = (np.arange(n)[None, :] + offsets[:, None]) % n
    neighbour_vals = pbest_values[neighbour_idx]  # (2k+1, n)
    winner_offset = np.argmin(neighbour_vals, axis=0)
    return neighbour_idx[winner_offset, np.arange(n)]


def social_positions(
    state: SwarmState, topology: str, *, ring_k: int = 1
) -> np.ndarray:
    """The social attractor matrix/row for the velocity update."""
    if topology == "global":
        return state.gbest_position
    if topology == "ring":
        best_idx = ring_best_indices(state.pbest_values, ring_k)
        return state.pbest_positions[best_idx]
    raise InvalidParameterError(f"unknown topology {topology!r}")
