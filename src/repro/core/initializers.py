"""Swarm initialization strategies.

The paper stresses that "initializing particles in a subspace far from the
global optimum may reduce the likelihood of convergence ... so the
initialization step in PSO is crucial" and cites Campana et al. (initial
particle positions) and Kaucic's *multi-start opposition-based* PSO.  This
module provides the corresponding strategies on top of the same parallel
Philox draws:

* ``uniform`` — the default: i.i.d. uniform positions over the domain
  (what :func:`repro.core.swarm.draw_initial_state` does);
* ``opposition`` — opposition-based learning: draw ``n/2`` positions and
  mirror them through the domain centre (``lo + hi - x``), doubling initial
  coverage per random draw;
* ``center`` — the deterministic domain-centre + small jitter start used
  for sanity experiments (deliberately poor on asymmetric optima).

All strategies consume the generator in a documented order so seeded runs
remain reproducible, and all return the same :class:`SwarmState` layout.
"""

from __future__ import annotations

import numpy as np

from repro.core.problem import Problem
from repro.core.swarm import INIT_VELOCITY_FRACTION, SwarmState
from repro.errors import InvalidParameterError
from repro.gpusim.rng import ParallelRNG

__all__ = ["initialize_swarm", "INIT_STRATEGIES"]

INIT_STRATEGIES = ("uniform", "opposition", "center")


def _blank_state(positions: np.ndarray, velocities: np.ndarray) -> SwarmState:
    n, d = positions.shape
    return SwarmState(
        positions=positions,
        velocities=velocities,
        pbest_values=np.full(n, np.inf, dtype=np.float64),
        pbest_positions=positions.copy(),
        gbest_position=np.zeros(d, dtype=np.float32),
    )


def _velocities(
    problem: Problem, n: int, rng: ParallelRNG
) -> np.ndarray:
    width = problem.domain_width.astype(np.float32)
    unit = rng.uniform((n, problem.dim), -1.0, 1.0, dtype=np.float32)
    return (INIT_VELOCITY_FRACTION * width) * unit


def initialize_swarm(
    problem: Problem,
    n_particles: int,
    rng: ParallelRNG,
    strategy: str = "uniform",
    dtype=np.float32,
) -> SwarmState:
    """Build a randomly initialised swarm with the chosen *strategy*.

    ``dtype`` selects the storage precision of the position/velocity
    matrices (float32 default; float16 for the half-precision storage
    mode).  Draws are taken at float32 and rounded once, so the fp16 swarm
    is the rounded image of the fp32 swarm.
    """
    if n_particles <= 0:
        raise InvalidParameterError(
            f"need at least one particle, got {n_particles}"
        )
    if strategy not in INIT_STRATEGIES:
        raise InvalidParameterError(
            f"unknown init strategy {strategy!r}; "
            f"choose from {INIT_STRATEGIES}"
        )
    n, d = n_particles, problem.dim
    lo = problem.lower_bounds.astype(np.float32)
    hi = problem.upper_bounds.astype(np.float32)
    width = problem.domain_width.astype(np.float32)

    if strategy == "uniform":
        unit = rng.uniform((n, d), 0.0, 1.0, dtype=np.float32)
        positions = lo + unit * width
    elif strategy == "opposition":
        half = (n + 1) // 2
        unit = rng.uniform((half, d), 0.0, 1.0, dtype=np.float32)
        drawn = lo + unit * width
        mirrored = lo + hi - drawn
        positions = np.concatenate([drawn, mirrored], axis=0)[:n]
    else:  # center
        centre = (lo + hi) / np.float32(2.0)
        jitter = rng.uniform((n, d), -0.01, 0.01, dtype=np.float32) * width
        positions = centre + jitter

    velocities = _velocities(problem, n, rng)
    return _blank_state(
        np.ascontiguousarray(positions, dtype=dtype),
        np.ascontiguousarray(velocities, dtype=dtype),
    )
