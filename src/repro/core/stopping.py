"""Stopping criteria for the optimization loop.

The paper runs a fixed iteration budget (2000).  Real deployments — and one
of the baselines we model — also stop on a target value or on stagnation:
``scikit-opt`` exposes a ``precision``-based early stop, which is the
mechanism behind its anomalously fast Easom time in Table 1 (Easom's plateau
makes every iteration a stall).  The :class:`StallStop` criterion reproduces
that behaviour.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from dataclasses import dataclass

from repro.errors import InvalidParameterError

__all__ = ["StopCriterion", "MaxIterations", "TargetValue", "StallStop", "AnyOf"]


class StopCriterion(ABC):
    """Decides, after each iteration, whether the search should halt."""

    @abstractmethod
    def should_stop(self, iteration: int, gbest_value: float) -> bool:
        """True when the run may terminate after *iteration* (0-based)."""

    def reset(self) -> None:
        """Clear any internal state before a new run."""

    def state_dict(self) -> dict:
        """JSON-safe mutable state to carry across a checkpoint.

        Stateless criteria return ``{}``; stateful ones (``StallStop``)
        must capture everything :meth:`should_stop` accumulates so a
        resumed run makes identical stop decisions.
        """
        return {}

    def load_state(self, state: dict) -> None:
        """Restore state captured by :meth:`state_dict`."""


@dataclass
class MaxIterations(StopCriterion):
    """Fixed iteration budget (the paper's ``max_iter``)."""

    max_iter: int

    def __post_init__(self) -> None:
        if self.max_iter < 1:
            raise InvalidParameterError("max_iter must be >= 1")

    def should_stop(self, iteration: int, gbest_value: float) -> bool:
        return iteration + 1 >= self.max_iter


@dataclass
class TargetValue(StopCriterion):
    """Stop once the gbest value reaches a target (within tolerance)."""

    target: float
    tolerance: float = 0.0

    def __post_init__(self) -> None:
        if self.tolerance < 0:
            raise InvalidParameterError("tolerance must be non-negative")

    def should_stop(self, iteration: int, gbest_value: float) -> bool:
        return gbest_value <= self.target + self.tolerance


@dataclass
class StallStop(StopCriterion):
    """Stop after *patience* consecutive iterations without improvement.

    Improvement means the gbest value dropped by more than ``min_delta``
    since the previous iteration.
    """

    patience: int
    min_delta: float = 0.0

    def __post_init__(self) -> None:
        if self.patience < 1:
            raise InvalidParameterError("patience must be >= 1")
        if self.min_delta < 0:
            raise InvalidParameterError("min_delta must be non-negative")
        self._last: float | None = None
        self._stalled = 0

    def reset(self) -> None:
        self._last = None
        self._stalled = 0

    def state_dict(self) -> dict:
        return {"last": self._last, "stalled": self._stalled}

    def load_state(self, state: dict) -> None:
        last = state["last"]
        self._last = None if last is None else float(last)
        self._stalled = int(state["stalled"])

    def should_stop(self, iteration: int, gbest_value: float) -> bool:
        if self._last is not None and self._last - gbest_value <= self.min_delta:
            self._stalled += 1
        else:
            self._stalled = 0
        self._last = gbest_value
        return self._stalled >= self.patience


@dataclass
class AnyOf(StopCriterion):
    """Composite: stop when any member criterion fires."""

    criteria: tuple[StopCriterion, ...]

    def __post_init__(self) -> None:
        if not self.criteria:
            raise InvalidParameterError("AnyOf needs at least one criterion")

    def reset(self) -> None:
        for c in self.criteria:
            c.reset()

    def state_dict(self) -> dict:
        return {"members": [c.state_dict() for c in self.criteria]}

    def load_state(self, state: dict) -> None:
        members = state["members"]
        if len(members) != len(self.criteria):
            raise InvalidParameterError(
                f"AnyOf state has {len(members)} members, "
                f"criterion has {len(self.criteria)}"
            )
        for c, s in zip(self.criteria, members):
            c.load_state(s)

    def should_stop(self, iteration: int, gbest_value: float) -> bool:
        # Evaluate all members: stateful criteria (StallStop) must observe
        # every iteration even when another criterion fires first.
        fired = [c.should_stop(iteration, gbest_value) for c in self.criteria]
        return any(fired)
