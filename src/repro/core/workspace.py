"""Reusable host-side scratch arena for per-iteration temporaries.

Every PSO iteration needs the same handful of ``(n, d)`` temporaries — the
two random weight matrices, the broadcast social matrix, velocity-update
pull terms, tile buffers.  Allocating them fresh each iteration is pure
host-side churn, the same per-request allocation pathology the paper's
technique (iii) removes on the GPU with a caching allocator.  A
:class:`Workspace` keys buffers by name and hands the same array back every
iteration, reallocating only when the requested shape or dtype changes
(e.g. a new optimize() call with a different swarm size).

This arena manages *host* NumPy scratch only.  Simulated device-side
allocation (``alloc_like``/``free`` and their modelled cudaMalloc costs) is
the allocator's job and is deliberately untouched — Table 4 measures it.
"""

from __future__ import annotations

import numpy as np

__all__ = ["Workspace"]


class Workspace:
    """Named, reusable NumPy scratch buffers.

    Buffers are returned *uninitialised* (like ``np.empty``) and their
    contents do not survive between :meth:`array` calls of the same name —
    callers must fully overwrite what they read.
    """

    __slots__ = ("_buffers",)

    def __init__(self) -> None:
        self._buffers: dict[str, np.ndarray] = {}

    def array(
        self, name: str, shape: tuple[int, ...], dtype=np.float32
    ) -> np.ndarray:
        """The buffer registered under *name*, (re)allocated to fit."""
        dtype = np.dtype(dtype)
        buf = self._buffers.get(name)
        if buf is None or buf.shape != shape or buf.dtype != dtype:
            buf = np.empty(shape, dtype)
            self._buffers[name] = buf
        return buf

    def release(self) -> None:
        """Drop every buffer (frees the host memory on next GC)."""
        self._buffers.clear()

    def __len__(self) -> int:
        return len(self._buffers)
