"""Optimization problem definition.

A :class:`Problem` bundles what Algorithm 1 needs: the search-space
dimensionality, per-dimension bounds, an evaluation schema, and the
reference value that reported errors are measured against (Table 2's
"errors to the optimal values").
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.core.schema import (
    BuiltinEvaluation,
    EvaluationSchema,
    ParticleEvaluation,
)
from repro.errors import InvalidProblemError
from repro.functions.base import BenchmarkFunction, EvalProfile, make_function
from repro.utils.arrays import as_float_vector

__all__ = ["Problem"]


@dataclass
class Problem:
    """A bounded minimisation problem for the PSO engines.

    Use the :meth:`from_benchmark` / :meth:`from_callable` constructors in
    application code; the raw constructor is for fully custom schemas.
    """

    name: str
    dim: int
    lower_bounds: np.ndarray
    upper_bounds: np.ndarray
    evaluator: EvaluationSchema
    reference_value: float = 0.0

    def __post_init__(self) -> None:
        if self.dim <= 0:
            raise InvalidProblemError(f"dimension must be positive, got {self.dim}")
        self.lower_bounds = as_float_vector(
            self.lower_bounds, name="lower_bounds", dim=self.dim
        )
        self.upper_bounds = as_float_vector(
            self.upper_bounds, name="upper_bounds", dim=self.dim
        )
        if not np.all(np.isfinite(self.lower_bounds)) or not np.all(
            np.isfinite(self.upper_bounds)
        ):
            raise InvalidProblemError(
                f"problem {self.name!r}: bounds must be finite (no NaN/Inf); "
                "an unbounded axis makes swarm initialisation undefined"
            )
        if np.any(self.lower_bounds >= self.upper_bounds):
            raise InvalidProblemError(
                "every lower bound must be strictly below its upper bound"
            )
        if not isinstance(self.evaluator, EvaluationSchema):
            raise InvalidProblemError(
                f"evaluator must be an EvaluationSchema, got "
                f"{type(self.evaluator).__name__}"
            )

    # -- constructors --------------------------------------------------------
    @classmethod
    def from_benchmark(
        cls, function: str | BenchmarkFunction, dim: int
    ) -> "Problem":
        """Build a problem from a built-in benchmark function by name."""
        fn = make_function(function) if isinstance(function, str) else function
        lo, hi = fn.domain
        return cls(
            name=fn.name,
            dim=dim,
            lower_bounds=np.full(dim, lo),
            upper_bounds=np.full(dim, hi),
            evaluator=BuiltinEvaluation(fn),
            reference_value=fn.reference_value(dim),
        )

    @classmethod
    def from_callable(
        cls,
        fn,
        dim: int,
        bounds: tuple[float, float] | tuple[np.ndarray, np.ndarray],
        *,
        name: str = "custom",
        vectorized: bool = False,
        profile: EvalProfile | None = None,
        reference_value: float = 0.0,
    ) -> "Problem":
        """Build a problem around an arbitrary objective callable.

        ``bounds`` is either a scalar ``(lo, hi)`` pair applied to every
        dimension or a pair of per-dimension vectors.
        """
        lo, hi = bounds
        lo_vec = np.full(dim, lo) if np.isscalar(lo) else np.asarray(lo)
        hi_vec = np.full(dim, hi) if np.isscalar(hi) else np.asarray(hi)
        return cls(
            name=name,
            dim=dim,
            lower_bounds=lo_vec,
            upper_bounds=hi_vec,
            evaluator=ParticleEvaluation(fn, vectorized=vectorized, profile=profile),
            reference_value=reference_value,
        )

    # -- derived quantities ----------------------------------------------------
    @property
    def domain_width(self) -> np.ndarray:
        """Per-dimension search-space width (drives velocity clamping)."""
        return self.upper_bounds - self.lower_bounds

    def velocity_bounds(self, clamp: float | None) -> tuple[np.ndarray, np.ndarray] | None:
        """Eq. (5) bounds for a clamp fraction, or ``None`` when unclamped."""
        if clamp is None:
            return None
        span = clamp * self.domain_width
        return -span, span

    def error_of(self, value: float) -> float:
        """Distance of an achieved objective value from the reference."""
        return abs(float(value) - self.reference_value)
