"""Customised swarm-evaluation schema (paper technique iv).

FastPSO lets practitioners pass their own evaluation function, which the
CUDA implementation wraps in a grid-stride template kernel::

    template<typename L>
    __global__ void evaluation_kernel(int dim, L lambda) {
        for (i = blockIdx.x*blockDim.x + threadIdx.x; i < dim;
             i += blockDim.x*gridDim.x)
            lambda(i);
    }

The Python equivalents keep the same contract: the user supplies a function
plus a cost profile, and the engines parallelise it without the user writing
any launch code.  Three schema flavours cover the paper's cases:

* :class:`BuiltinEvaluation` — a registered :class:`BenchmarkFunction`.
* :class:`ElementwiseEvaluation` — a per-element transform ``g(x_ij)`` (or
  ``g(x_ij, j)``) combined by a row reduction; maps to the element-wise
  template above.
* :class:`ParticleEvaluation` — an arbitrary per-particle objective
  ``f(row) -> scalar`` (or a vectorised ``f(P) -> values``); maps to a
  thread-per-particle kernel, which is the right granularity when the
  objective is opaque (the ThunderGBM case study uses this flavour).
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from typing import Callable

import numpy as np

from repro.errors import EvaluationError
from repro.functions.base import BenchmarkFunction, EvalProfile

__all__ = [
    "EvaluationSchema",
    "BuiltinEvaluation",
    "ElementwiseEvaluation",
    "ParticleEvaluation",
]

_REDUCERS: dict[str, Callable[[np.ndarray], np.ndarray]] = {
    "sum": lambda terms: np.sum(terms, axis=1),
    "prod": lambda terms: np.prod(terms, axis=1),
    "max": lambda terms: np.max(terms, axis=1),
    "min": lambda terms: np.min(terms, axis=1),
}


class EvaluationSchema(ABC):
    """Common interface every engine uses to score the swarm."""

    #: Kind tag engines use to pick a launch geometry:
    #: "elementwise" kernels span n*d elements, "particle" kernels span n.
    granularity: str = "elementwise"

    @abstractmethod
    def evaluate(self, positions: np.ndarray) -> np.ndarray:
        """Fitness of each row of ``positions``; returns shape ``(n,)``."""

    @abstractmethod
    def profile(self) -> EvalProfile:
        """Cost profile of the evaluation kernel."""

    def _check_output(self, values: np.ndarray, n: int) -> np.ndarray:
        values = np.asarray(values, dtype=np.float64)
        if values.shape != (n,):
            raise EvaluationError(
                f"evaluation must return shape ({n},), got {values.shape}"
            )
        if np.any(np.isnan(values)):
            raise EvaluationError(
                "evaluation produced NaN fitness values; FastPSO treats NaN "
                "as a user error rather than silently ranking it"
            )
        return values


class BuiltinEvaluation(EvaluationSchema):
    """Schema wrapper over a registered benchmark function."""

    granularity = "elementwise"

    def __init__(self, function: BenchmarkFunction) -> None:
        if not isinstance(function, BenchmarkFunction):
            raise TypeError(
                f"expected a BenchmarkFunction, got {type(function).__name__}"
            )
        self.function = function

    def evaluate(self, positions: np.ndarray) -> np.ndarray:
        values = self.function.evaluate(positions)
        return self._check_output(values, positions.shape[0])

    def profile(self) -> EvalProfile:
        return self.function.profile()

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"BuiltinEvaluation({self.function.name!r})"


class ElementwiseEvaluation(EvaluationSchema):
    """User-defined per-element transform + row reduction.

    ``elem_fn`` must be NumPy-vectorised: it receives the whole ``(n, d)``
    matrix (and, if ``pass_index`` is set, a ``(d,)`` column-index vector to
    broadcast against) and returns the per-element terms.  The ``reducer``
    ("sum", "prod", "max", "min") combines each row into one fitness value.
    """

    granularity = "elementwise"

    def __init__(
        self,
        elem_fn: Callable[..., np.ndarray],
        *,
        reducer: str = "sum",
        profile: EvalProfile | None = None,
        pass_index: bool = False,
    ) -> None:
        if not callable(elem_fn):
            raise TypeError("elem_fn must be callable")
        if reducer not in _REDUCERS:
            raise EvaluationError(
                f"unknown reducer {reducer!r}; choose from {sorted(_REDUCERS)}"
            )
        self.elem_fn = elem_fn
        self.reducer_name = reducer
        self._reduce = _REDUCERS[reducer]
        self._profile = profile or EvalProfile(flops_per_elem=4.0, sfu_per_elem=1.0)
        self.pass_index = pass_index

    def evaluate(self, positions: np.ndarray) -> np.ndarray:
        p = np.asarray(positions, dtype=np.float64)
        try:
            if self.pass_index:
                terms = self.elem_fn(p, np.arange(p.shape[1]))
            else:
                terms = self.elem_fn(p)
        except Exception as exc:  # user code: surface with context
            raise EvaluationError(
                f"element-wise evaluation raised {type(exc).__name__}: {exc}"
            ) from exc
        terms = np.asarray(terms, dtype=np.float64)
        if terms.shape != p.shape:
            raise EvaluationError(
                f"element function must preserve shape {p.shape}, got {terms.shape}"
            )
        return self._check_output(self._reduce(terms), p.shape[0])

    def profile(self) -> EvalProfile:
        return self._profile


class ParticleEvaluation(EvaluationSchema):
    """User-defined per-particle objective.

    If ``vectorized`` the callable maps ``(n, d) -> (n,)`` directly;
    otherwise it maps one ``(d,)`` row to a scalar and is applied row by row
    (the per-thread loop a thread-per-particle kernel would run).
    """

    granularity = "particle"

    def __init__(
        self,
        fn: Callable[..., object],
        *,
        vectorized: bool = False,
        profile: EvalProfile | None = None,
    ) -> None:
        if not callable(fn):
            raise TypeError("objective must be callable")
        self.fn = fn
        self.vectorized = vectorized
        self._profile = profile or EvalProfile(flops_per_elem=8.0, sfu_per_elem=1.0)

    def evaluate(self, positions: np.ndarray) -> np.ndarray:
        p = np.asarray(positions, dtype=np.float64)
        try:
            if self.vectorized:
                values = self.fn(p)
            else:
                values = np.array([float(self.fn(row)) for row in p])
        except EvaluationError:
            raise
        except Exception as exc:
            raise EvaluationError(
                f"particle evaluation raised {type(exc).__name__}: {exc}"
            ) from exc
        return self._check_output(np.asarray(values), p.shape[0])

    def profile(self) -> EvalProfile:
        return self._profile
