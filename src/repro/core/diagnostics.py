"""Swarm convergence diagnostics.

Practitioner-facing instrumentation beyond the paper's timings: position
diversity (how spread the swarm still is), mean velocity magnitude (how
hard it is still moving) and stagnation measures.  These are the quantities
one watches to decide whether a run needs more iterations, a different
topology, or a velocity-clamp change — and the ablation benches use them to
explain *why* the configurations differ.

All metrics are pure functions of a :class:`SwarmState`, vectorised, and
cheap relative to an evaluation step.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.swarm import SwarmState
from repro.errors import InvalidParameterError

__all__ = [
    "SwarmDiagnostics",
    "position_diversity",
    "mean_velocity_norm",
    "pbest_spread",
    "diagnose",
]


def position_diversity(state: SwarmState) -> float:
    """Mean Euclidean distance of particles from the swarm centroid.

    The classic "swarm radius" measure: high while exploring, shrinking to
    ~0 as the swarm collapses onto an optimum.
    """
    positions = np.asarray(state.positions, dtype=np.float64)
    centroid = positions.mean(axis=0)
    return float(np.mean(np.linalg.norm(positions - centroid, axis=1)))


def mean_velocity_norm(state: SwarmState) -> float:
    """Mean Euclidean norm of the velocity vectors."""
    velocities = np.asarray(state.velocities, dtype=np.float64)
    return float(np.mean(np.linalg.norm(velocities, axis=1)))


def pbest_spread(state: SwarmState) -> float:
    """Spread of personal-best values: ``mean(pbest) - gbest``.

    Zero when every particle's best equals the global best (full consensus);
    +inf before the first evaluation.  Guarded against the all-inf initial
    state.
    """
    finite = state.pbest_values[np.isfinite(state.pbest_values)]
    if finite.size == 0 or not np.isfinite(state.gbest_value):
        return float("inf")
    return float(np.mean(finite) - state.gbest_value)


@dataclass(frozen=True)
class SwarmDiagnostics:
    """A point-in-time snapshot of swarm health."""

    position_diversity: float
    mean_velocity_norm: float
    pbest_spread: float
    gbest_value: float

    def converged(self, diversity_tol: float) -> bool:
        """Whether the swarm has collapsed below a diversity tolerance."""
        if diversity_tol <= 0:
            raise InvalidParameterError("diversity_tol must be positive")
        return self.position_diversity < diversity_tol


def diagnose(state: SwarmState) -> SwarmDiagnostics:
    """Compute all diagnostics for *state*."""
    return SwarmDiagnostics(
        position_diversity=position_diversity(state),
        mean_velocity_norm=mean_velocity_norm(state),
        pbest_spread=pbest_spread(state),
        gbest_value=float(state.gbest_value),
    )
