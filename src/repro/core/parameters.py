"""PSO hyper-parameters (Algorithm 1's inputs) with validation.

Defaults follow the paper's experimental setup: ``w = 0.9``,
``c1 = c2 = 2`` and 2000 iterations.  Note that this parameter set violates
the classical convergence region (``w`` close to 1 with ``c1 + c2 = 4`` is
oscillatory), which is precisely why the paper's bound-constraint velocity
clamping (its Eq. 5) matters: engines that clamp (the fastpso family and the
GPU baselines) reach small errors, engines that do not (the CPU library
defaults) blow up — the Table 2 separation.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import TYPE_CHECKING

from repro.errors import InvalidParameterError

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.core.schedules import InertiaSchedule

__all__ = ["PSOParams", "PAPER_DEFAULTS"]


@dataclass(frozen=True)
class PSOParams:
    """Hyper-parameters of one PSO run.

    Attributes
    ----------
    inertia:
        Momentum term ``w`` in Eq. (1).
    cognitive, social:
        ``c1`` (explore locally, toward pbest) and ``c2`` (explore globally,
        toward gbest).
    velocity_clamp:
        Velocity bound as a fraction of the per-dimension domain width; the
        paper's Eq. (5) bound constraint.  ``None`` disables clamping
        (the CPU-library default behaviour).
    adaptive_velocity:
        Shrink the velocity bounds linearly over the run down to
        ``final_velocity_fraction`` of their initial width.  This is the
        *adaptive velocity* bound constraint of Kaucic (2013), the work the
        paper cites for its Eq. (5); with the paper's oscillatory
        ``w=0.9, c1=c2=2`` setting it is what makes the fastpso family
        actually converge (Table 2) while the unclamped libraries diverge.
    final_velocity_fraction:
        Fraction of the initial velocity bound remaining at the last
        iteration when ``adaptive_velocity`` is on.
    clip_positions:
        Whether to clip positions back into the search domain after the
        position update.  Off by default — the paper constrains velocity
        only.
    seed:
        Philox seed; two runs with equal seeds and equal engines are
        bit-identical.
    topology:
        ``"global"`` (the paper's PSO) or ``"ring"`` (library extension).
    """

    inertia: float = 0.9
    cognitive: float = 2.0
    social: float = 2.0
    velocity_clamp: float | None = 1.0
    adaptive_velocity: bool = True
    final_velocity_fraction: float = 0.02
    clip_positions: bool = False
    seed: int = 42
    topology: str = "global"
    #: Swarm initialization strategy: "uniform" (default), "opposition"
    #: (opposition-based learning, after the Kaucic citation) or "center".
    init_strategy: str = "uniform"
    #: Optional inertia schedule (library extension); when set it overrides
    #: the constant ``inertia`` above, evaluated on run progress.  See
    #: :mod:`repro.core.schedules`.
    inertia_schedule: "InertiaSchedule | None" = field(
        default=None, compare=False
    )

    def __post_init__(self) -> None:
        if not 0.0 <= self.inertia <= 2.0:
            raise InvalidParameterError(
                f"inertia must be in [0, 2], got {self.inertia}"
            )
        if self.cognitive < 0.0 or self.social < 0.0:
            raise InvalidParameterError(
                "cognitive and social coefficients must be non-negative"
            )
        if self.cognitive == 0.0 and self.social == 0.0:
            raise InvalidParameterError(
                "at least one of cognitive/social must be positive, "
                "otherwise particles never accelerate"
            )
        if self.velocity_clamp is not None and self.velocity_clamp <= 0.0:
            raise InvalidParameterError(
                f"velocity_clamp must be positive or None, got {self.velocity_clamp}"
            )
        if not 0.0 < self.final_velocity_fraction <= 1.0:
            raise InvalidParameterError(
                "final_velocity_fraction must be in (0, 1], got "
                f"{self.final_velocity_fraction}"
            )
        if not 0 <= int(self.seed) < 2**64:
            raise InvalidParameterError("seed must fit in 64 bits")
        if self.topology not in ("global", "ring"):
            raise InvalidParameterError(
                f"topology must be 'global' or 'ring', got {self.topology!r}"
            )
        if self.init_strategy not in ("uniform", "opposition", "center"):
            raise InvalidParameterError(
                f"init_strategy must be 'uniform', 'opposition' or "
                f"'center', got {self.init_strategy!r}"
            )
        if self.inertia_schedule is not None and not hasattr(
            self.inertia_schedule, "weight"
        ):
            raise InvalidParameterError(
                "inertia_schedule must provide a weight(progress) method"
            )

    def with_overrides(self, **kwargs: object) -> "PSOParams":
        """Copy with selected fields replaced."""
        return replace(self, **kwargs)  # type: ignore[arg-type]


#: The exact configuration of the paper's Section 4.1.
PAPER_DEFAULTS = PSOParams()
