"""Core optimizer layer: problems, parameters, swarm math, engines' base."""

from repro.core.budget import Budget, BudgetTracker
from repro.core.engine import Engine
from repro.core.fastpso import FastPSO
from repro.core.parameters import PAPER_DEFAULTS, PSOParams
from repro.core.problem import Problem
from repro.core.results import STEP_LABELS, History, OptimizeResult, StepTimes
from repro.core.schema import (
    BuiltinEvaluation,
    ElementwiseEvaluation,
    EvaluationSchema,
    ParticleEvaluation,
)
from repro.core.stopping import (
    AnyOf,
    MaxIterations,
    StallStop,
    StopCriterion,
    TargetValue,
)
from repro.core.swarm import (
    SwarmState,
    draw_initial_state,
    draw_weights,
    gbest_scan,
    pbest_update,
    position_update,
    velocity_update,
)
from repro.core.topology import ring_best_indices, social_positions

__all__ = [
    "Budget",
    "BudgetTracker",
    "Engine",
    "FastPSO",
    "PAPER_DEFAULTS",
    "PSOParams",
    "Problem",
    "STEP_LABELS",
    "History",
    "OptimizeResult",
    "StepTimes",
    "BuiltinEvaluation",
    "ElementwiseEvaluation",
    "EvaluationSchema",
    "ParticleEvaluation",
    "AnyOf",
    "MaxIterations",
    "StallStop",
    "StopCriterion",
    "TargetValue",
    "SwarmState",
    "draw_initial_state",
    "draw_weights",
    "gbest_scan",
    "pbest_update",
    "position_update",
    "velocity_update",
    "ring_best_indices",
    "social_positions",
]
