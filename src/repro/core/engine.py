"""Engine base class: Algorithm 1's loop with per-step simulated timing.

An :class:`Engine` owns a :class:`~repro.gpusim.clock.SimClock` and runs the
paper's four-step decomposition — (i) swarm initialisation, (ii) swarm
evaluation, (iii) pbest/gbest update, (iv) swarm update — attributing every
simulated second to one of the five Figure 5 sections (``init``, ``eval``,
``pbest``, ``gbest``, ``swarm``).

Subclasses implement the five step hooks.  The *numerics* of each step are
shared module functions (:mod:`repro.core.swarm`), so engines differ only in
how they decompose the work into kernels/loops and what those cost; this is
the reproduction of the paper's claim that fastpso, fastpso-seq and
fastpso-omp are one algorithm on three execution substrates.
"""

from __future__ import annotations

from abc import ABC, abstractmethod

import numpy as np

from repro.core.parameters import PAPER_DEFAULTS, PSOParams
from repro.core.problem import Problem
from repro.core.results import History, OptimizeResult, StepTimes
from repro.core.stopping import StopCriterion
from repro.core.swarm import SwarmState
from repro.core.workspace import Workspace
from repro.errors import InvalidParameterError
from repro.gpusim.clock import SimClock
from repro.gpusim.rng import ParallelRNG

__all__ = ["Engine"]


class Engine(ABC):
    """Abstract PSO engine; see the engine implementations in
    :mod:`repro.engines`."""

    #: Short identifier used in result tables (e.g. ``"fastpso"``).
    name: str = "engine"
    #: Whether the engine executes on the simulated GPU.
    is_gpu: bool = False

    def __init__(self) -> None:
        self.clock = SimClock()
        # Host-side scratch arena for per-iteration temporaries (weight
        # matrices, pull terms, tile buffers).  Purely a host optimisation:
        # simulated device allocation still goes through the allocator.
        self._ws = Workspace()

    # -- step hooks -----------------------------------------------------------
    @abstractmethod
    def _initialize(
        self, problem: Problem, params: PSOParams, n_particles: int, rng: ParallelRNG
    ) -> SwarmState:
        """Step (i): allocate and randomly initialise the swarm."""

    @abstractmethod
    def _evaluate(self, problem: Problem, state: SwarmState) -> np.ndarray:
        """Step (ii): fitness of every particle at its current position."""

    @abstractmethod
    def _update_pbest(self, state: SwarmState, values: np.ndarray) -> None:
        """Step (iii), first half: claim improved personal bests."""

    @abstractmethod
    def _update_gbest(self, state: SwarmState) -> None:
        """Step (iii), second half: reduce pbest values to the global best."""

    @abstractmethod
    def _update_swarm(
        self,
        problem: Problem,
        params: PSOParams,
        state: SwarmState,
        rng: ParallelRNG,
    ) -> None:
        """Step (iv): Eq. (4)/(2) velocity and position updates."""

    def _finalize(self, state: SwarmState) -> None:
        """Post-loop work (e.g. device-to-host copy of the result)."""

    # -- the loop ---------------------------------------------------------------
    def optimize(
        self,
        problem: Problem,
        *,
        n_particles: int,
        max_iter: int,
        params: PSOParams = PAPER_DEFAULTS,
        stop: StopCriterion | None = None,
        record_history: bool = False,
        callback=None,
    ) -> OptimizeResult:
        """Run Algorithm 1 and return the best solution plus timings.

        ``max_iter`` is the iteration budget; an optional extra *stop*
        criterion can end the run earlier.  The engine's clock is reset at
        entry, so ``elapsed_seconds`` is the simulated time of exactly this
        run.

        ``callback(iteration, state)`` is invoked after each completed
        iteration with the live :class:`SwarmState` (read it, don't mutate
        it); returning a truthy value terminates the run — the hook used
        for custom monitoring, checkpointing and diagnostics
        (:mod:`repro.core.diagnostics`).  Callback execution is host-side
        and costs no simulated time.
        """
        if callback is not None and not callable(callback):
            raise InvalidParameterError("callback must be callable")
        if not isinstance(problem, Problem):
            raise InvalidParameterError("optimize() requires a Problem")
        if n_particles <= 0:
            raise InvalidParameterError(
                f"n_particles must be positive, got {n_particles}"
            )
        if max_iter <= 0:
            raise InvalidParameterError(f"max_iter must be positive, got {max_iter}")

        self.clock.reset()
        if stop is not None:
            stop.reset()
        rng = self._make_rng(params.seed)
        history = History() if record_history else None

        with self.clock.section("init"):
            state = self._initialize(problem, params, n_particles, rng)
        setup_seconds = self.clock.now

        iterations_run = 0
        self._progress = 0.0
        for t in range(max_iter):
            # Fraction of the budget consumed; drives the adaptive velocity
            # bound (Kaucic 2013) used by Eq. (5)'s clamping.
            self._progress = t / max(1, max_iter - 1)
            with self.clock.section("eval"):
                values = self._evaluate(problem, state)
            with self.clock.section("pbest"):
                self._update_pbest(state, values)
            with self.clock.section("gbest"):
                self._update_gbest(state)
            with self.clock.section("swarm"):
                self._update_swarm(problem, params, state, rng)
            iterations_run = t + 1
            if history is not None:
                history.record(
                    state.gbest_value, float(np.mean(state.pbest_values))
                )
            if callback is not None and callback(t, state):
                break
            if stop is not None and stop.should_stop(t, state.gbest_value):
                break

        self._finalize(state)

        loop_seconds = self.clock.now - setup_seconds
        step_times = StepTimes(
            init=self.clock.total("init"),
            eval=self.clock.total("eval"),
            pbest=self.clock.total("pbest"),
            gbest=self.clock.total("gbest"),
            swarm=self.clock.total("swarm"),
        )
        return OptimizeResult(
            engine=self.name,
            problem=problem.name,
            n_particles=n_particles,
            dim=problem.dim,
            iterations=iterations_run,
            best_value=state.gbest_value,
            best_position=np.asarray(state.gbest_position, dtype=np.float64),
            error=problem.error_of(state.gbest_value),
            elapsed_seconds=self.clock.now,
            setup_seconds=setup_seconds,
            iteration_seconds=loop_seconds / iterations_run,
            step_times=step_times,
            history=history,
            peak_device_bytes=self._peak_device_bytes(),
        )

    def _peak_device_bytes(self) -> int:
        """High-water device-memory mark; CPU engines report 0."""
        return 0

    # -- helpers -------------------------------------------------------------
    #: Fraction of the iteration budget consumed (set each iteration).
    _progress: float = 0.0

    def _current_velocity_bounds(
        self, problem: Problem, params: PSOParams
    ) -> tuple[np.ndarray, np.ndarray] | None:
        """Eq. (5) bounds at the current iteration.

        With ``adaptive_velocity`` the bounds shrink linearly from the full
        clamp width at iteration 0 to ``final_velocity_fraction`` of it at
        the last iteration, so late iterations refine rather than leap.
        """
        bounds = problem.velocity_bounds(params.velocity_clamp)
        if bounds is None or not params.adaptive_velocity:
            return bounds
        frac = 1.0 - (1.0 - params.final_velocity_fraction) * self._progress
        lo, hi = bounds
        return lo * frac, hi * frac

    def _scheduled_params(self, params: PSOParams) -> PSOParams:
        """Resolve the inertia schedule (if any) at the current progress.

        Called by the engines' swarm-update steps so every substrate applies
        the same ``w(t)`` — scheduled runs stay bit-identical across the
        fastpso family.
        """
        if params.inertia_schedule is None:
            return params
        return params.with_overrides(
            inertia=params.inertia_schedule.weight(self._progress)
        )

    def _make_rng(self, seed: int) -> ParallelRNG:
        """Engines share one Philox stream layout for bit-equal trajectories."""
        return ParallelRNG(seed)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"<{type(self).__name__} name={self.name!r} gpu={self.is_gpu}>"
