"""Engine base class: Algorithm 1's loop with per-step simulated timing.

An :class:`Engine` owns a :class:`~repro.gpusim.clock.SimClock` and runs the
paper's four-step decomposition — (i) swarm initialisation, (ii) swarm
evaluation, (iii) pbest/gbest update, (iv) swarm update — attributing every
simulated second to one of the five Figure 5 sections (``init``, ``eval``,
``pbest``, ``gbest``, ``swarm``).

Subclasses implement the five step hooks.  The *numerics* of each step are
shared module functions (:mod:`repro.core.swarm`), so engines differ only in
how they decompose the work into kernels/loops and what those cost; this is
the reproduction of the paper's claim that fastpso, fastpso-seq and
fastpso-omp are one algorithm on three execution substrates.
"""

from __future__ import annotations

from abc import ABC, abstractmethod

import numpy as np

from repro.core.budget import Budget
from repro.core.parameters import PAPER_DEFAULTS, PSOParams
from repro.core.problem import Problem
from repro.core.results import History, OptimizeResult, StepTimes
from repro.core.stopping import StopCriterion
from repro.core.swarm import SwarmState
from repro.core.workspace import Workspace
from repro.errors import InvalidParameterError
from repro.gpusim.clock import SimClock
from repro.gpusim.rng import ParallelRNG

__all__ = ["Engine", "EngineRun"]


class EngineRun:
    """Live state of one ``optimize()`` call, stepped one iteration at a time.

    :meth:`Engine.start_run` performs everything ``optimize()`` does before
    its loop (validation, clock reset, initialisation, restore, runner
    construction) and returns one of these.  The caller then drives
    ``for t in range(run.start_iter, run.max_iter): run.step(t)`` and
    collects the :class:`~repro.core.results.OptimizeResult` from
    :meth:`finish`.  ``optimize()`` itself is exactly that loop, so stepping
    a run externally is bit-identical to the monolithic call.

    The split exists for hosts that interleave several runs in one loop —
    the fused multi-swarm batch path (:mod:`repro.batch.fused`) steps ``m``
    compatible runs in lockstep and replaces :meth:`run_semantics` with
    stacked array work, while :meth:`after_iteration` keeps every run's own
    bookkeeping (history, budget, checkpoint, stop criteria) unchanged.
    """

    __slots__ = (
        "engine",
        "problem",
        "params",
        "n_particles",
        "max_iter",
        "stop",
        "record_history",
        "callback",
        "checkpoint",
        "budget",
        "guard",
        "state",
        "rng",
        "history",
        "tracker",
        "injector",
        "runner",
        "setup_seconds",
        "start_iter",
        "iterations_run",
        "status",
    )

    def step(self, t: int) -> bool:
        """Run iteration *t* plus its bookkeeping; True means stop now."""
        self.run_semantics(t)
        return self.after_iteration(t)

    def run_semantics(self, t: int) -> None:
        """The iteration body only: Algorithm 1's four sections at *t*."""
        engine = self.engine
        # Fraction of the budget consumed; drives the adaptive velocity
        # bound (Kaucic 2013) used by Eq. (5)'s clamping.
        engine._progress = t / max(1, self.max_iter - 1)
        self.runner.run_iteration(t)

    def after_iteration(self, t: int) -> bool:
        """Post-iteration bookkeeping (identical to the historical loop
        tail): integrity check, guard, history, callback/stop/budget
        evaluation and checkpoint capture.  Returns whether to stop."""
        self.iterations_run = t + 1
        state = self.state
        if self.injector is not None:
            self.injector.check_integrity()
        if self.guard is not None:
            self.guard.inspect(state, self.problem, self.rng, iteration=t)
        if self.history is not None:
            self.history.record(
                state.gbest_value, float(np.mean(state.pbest_values))
            )
        stopping = False
        if self.callback is not None and self.callback(t, state):
            stopping = True
        elif self.stop is not None and self.stop.should_stop(
            t, state.gbest_value
        ):
            stopping = True
        elif (
            self.tracker is not None
            and self.iterations_run < self.max_iter
            and self.tracker.should_stop(t, state.gbest_value)
        ):
            # A budget that trips on what would have been the final
            # iteration anyway is not a breach — the guard above keeps
            # full runs reporting "completed".
            stopping = True
            self.status = self.tracker.breach or "budget_exhausted"
        if (
            self.checkpoint is not None
            and not stopping
            and self.iterations_run < self.max_iter
            and self.checkpoint.due(self.iterations_run)
        ):
            # Captured *after* the stop criterion observed this
            # iteration, so a resumed StallStop continues its count
            # exactly where the original run's would be.
            from repro.reliability.snapshot import capture_live_run

            self.checkpoint.save(capture_live_run(self))
        return stopping

    def finish(self) -> OptimizeResult:
        """Finalize the run and assemble its :class:`OptimizeResult`."""
        engine = self.engine
        state = self.state
        self.runner.finalize()
        engine._finalize(state)

        clock = engine.clock
        loop_seconds = clock.now - self.setup_seconds
        step_times = StepTimes(
            init=clock.total("init"),
            eval=clock.total("eval"),
            pbest=clock.total("pbest"),
            gbest=clock.total("gbest"),
            swarm=clock.total("swarm"),
        )
        return OptimizeResult(
            engine=engine.name,
            problem=self.problem.name,
            n_particles=self.n_particles,
            dim=self.problem.dim,
            iterations=self.iterations_run,
            best_value=state.gbest_value,
            best_position=np.asarray(state.gbest_position, dtype=np.float64),
            error=self.problem.error_of(state.gbest_value),
            elapsed_seconds=clock.now,
            setup_seconds=self.setup_seconds,
            iteration_seconds=loop_seconds / self.iterations_run,
            step_times=step_times,
            history=self.history,
            peak_device_bytes=engine._peak_device_bytes(),
            status=self.status,
        )


class Engine(ABC):
    """Abstract PSO engine; see the engine implementations in
    :mod:`repro.engines`."""

    #: Short identifier used in result tables (e.g. ``"fastpso"``).
    name: str = "engine"
    #: Whether the engine executes on the simulated GPU.
    is_gpu: bool = False
    #: Whether the engine provides a launch-graph replay plan
    #: (:mod:`repro.gpusim.graph`).  Engines that do accept ``graph=`` in
    #: their constructor and set :attr:`graph_enabled` from it.
    supports_graph: bool = False
    #: The ``graph=`` knob: capture & replay the steady-state iteration when
    #: possible.  Ignored (always eager) when :attr:`supports_graph` is
    #: False.
    graph_enabled: bool = True
    #: Lifecycle report of the most recent run's :class:`~repro.gpusim.
    #: graph.IterationRunner` (``None`` before the first ``optimize``).
    graph_info: dict | None = None

    def __init__(self) -> None:
        self.clock = SimClock()
        # Host-side scratch arena for per-iteration temporaries (weight
        # matrices, pull terms, tile buffers).  Purely a host optimisation:
        # simulated device allocation still goes through the allocator.
        self._ws = Workspace()

    # -- step hooks -----------------------------------------------------------
    @abstractmethod
    def _initialize(
        self, problem: Problem, params: PSOParams, n_particles: int, rng: ParallelRNG
    ) -> SwarmState:
        """Step (i): allocate and randomly initialise the swarm."""

    @abstractmethod
    def _evaluate(self, problem: Problem, state: SwarmState) -> np.ndarray:
        """Step (ii): fitness of every particle at its current position."""

    @abstractmethod
    def _update_pbest(self, state: SwarmState, values: np.ndarray) -> None:
        """Step (iii), first half: claim improved personal bests."""

    @abstractmethod
    def _update_gbest(self, state: SwarmState) -> None:
        """Step (iii), second half: reduce pbest values to the global best."""

    @abstractmethod
    def _update_swarm(
        self,
        problem: Problem,
        params: PSOParams,
        state: SwarmState,
        rng: ParallelRNG,
    ) -> None:
        """Step (iv): Eq. (4)/(2) velocity and position updates."""

    def _finalize(self, state: SwarmState) -> None:
        """Post-loop work (e.g. device-to-host copy of the result)."""

    # -- the loop ---------------------------------------------------------------
    def optimize(
        self,
        problem: Problem,
        *,
        n_particles: int,
        max_iter: int,
        params: PSOParams = PAPER_DEFAULTS,
        stop: StopCriterion | None = None,
        record_history: bool = False,
        callback=None,
        checkpoint=None,
        restore=None,
        budget=None,
        guard=None,
    ) -> OptimizeResult:
        """Run Algorithm 1 and return the best solution plus timings.

        ``max_iter`` is the iteration budget; an optional extra *stop*
        criterion can end the run earlier.  The engine's clock is reset at
        entry, so ``elapsed_seconds`` is the simulated time of exactly this
        run.

        ``callback(iteration, state)`` is invoked after each completed
        iteration with the live :class:`SwarmState` (read it, don't mutate
        it); returning a truthy value terminates the run — the hook used
        for custom monitoring, checkpointing and diagnostics
        (:mod:`repro.core.diagnostics`).  Callback execution is host-side
        and costs no simulated time.

        ``checkpoint`` enables periodic on-disk snapshots: pass a
        :class:`~repro.reliability.checkpoint.CheckpointManager`, or a
        directory path to get one with default cadence/retention.
        ``restore`` resumes a previous run from a
        :class:`~repro.reliability.snapshot.RunSnapshot` (or a checkpoint
        file path): the run continues bit-identically — same trajectory,
        same final result, same simulated seconds as the uninterrupted run.
        The run *shape* (problem, ``n_particles``, ``max_iter``, ``params``,
        ``record_history``, ``stop`` spec) must match the captured one.

        ``budget`` caps the run (:class:`~repro.core.budget.Budget`): on
        expiry the loop stops cleanly and the result's ``status`` names the
        exhausted axis (``"deadline_exceeded"`` / ``"budget_exhausted"``)
        while ``best_value``/``best_position`` still hold the best-so-far
        answer.  Budgets compose with checkpoint/resume — the wall-clock
        seconds already consumed are snapshotted, so a resumed run honours
        the remaining deadline.

        ``guard`` attaches a
        :class:`~repro.reliability.guard.SwarmHealthGuard`: a
        per-iteration NaN/Inf and velocity-explosion check that
        deterministically clamps or re-seeds offending particles from the
        run's own Philox stream.  Off by default; with no guard the
        trajectory is bit-identical to previous releases.
        """
        run = self.start_run(
            problem,
            n_particles=n_particles,
            max_iter=max_iter,
            params=params,
            stop=stop,
            record_history=record_history,
            callback=callback,
            checkpoint=checkpoint,
            restore=restore,
            budget=budget,
            guard=guard,
        )
        for t in range(run.start_iter, max_iter):
            if run.step(t):
                break
        return run.finish()

    def start_run(
        self,
        problem: Problem,
        *,
        n_particles: int,
        max_iter: int,
        params: PSOParams = PAPER_DEFAULTS,
        stop: StopCriterion | None = None,
        record_history: bool = False,
        callback=None,
        checkpoint=None,
        restore=None,
        budget=None,
        guard=None,
    ) -> EngineRun:
        """Everything :meth:`optimize` does before its loop.

        Validates the configuration, resets the clock, initialises (and, if
        *restore* is given, restores) the swarm, and builds the iteration
        runner.  Returns the :class:`EngineRun` handle whose
        ``step``/``finish`` methods complete the run — ``optimize()`` is
        literally ``start_run``, the step loop, then ``finish``, so external
        stepping is bit-identical to the monolithic call.
        """
        if callback is not None and not callable(callback):
            raise InvalidParameterError("callback must be callable")
        if budget is not None and not isinstance(budget, Budget):
            raise InvalidParameterError("budget must be a repro Budget")
        if guard is not None and not hasattr(guard, "inspect"):
            raise InvalidParameterError(
                "guard must provide an inspect() hook (see SwarmHealthGuard)"
            )
        if not isinstance(problem, Problem):
            raise InvalidParameterError("optimize() requires a Problem")
        if n_particles <= 0:
            raise InvalidParameterError(
                f"n_particles must be positive, got {n_particles}"
            )
        if max_iter <= 0:
            raise InvalidParameterError(f"max_iter must be positive, got {max_iter}")
        if checkpoint is not None:
            # Local imports: repro.reliability imports the engines package,
            # so a top-level import here would be circular.
            from repro.reliability.checkpoint import CheckpointManager
            from repro.reliability.snapshot import ensure_capturable

            if not isinstance(checkpoint, CheckpointManager):
                checkpoint = CheckpointManager(checkpoint)
            # Fail now, not at the first due iteration mid-run.
            ensure_capturable(problem)

        self.clock.reset()
        if stop is not None:
            stop.reset()
        rng = self._make_rng(params.seed)
        history = History() if record_history else None
        injector = self._fault_injector
        tracker = None
        if budget is not None and not budget.is_unlimited:
            tracker = budget.start(clock=self.clock, n_particles=n_particles)
        if guard is not None:
            guard.reset()

        with self.clock.section("init"):
            state = self._initialize(problem, params, n_particles, rng)
        setup_seconds = self.clock.now

        start_iter = 0
        if restore is not None:
            from repro.errors import CheckpointError
            from repro.reliability.checkpoint import read_snapshot
            from repro.reliability.snapshot import RunSnapshot, stop_to_spec

            if not isinstance(restore, RunSnapshot):
                restore = read_snapshot(restore)
            restore.validate_for(
                problem=problem,
                n_particles=n_particles,
                max_iter=max_iter,
                params=params,
                record_history=record_history,
            )
            run_stop_spec = stop_to_spec(stop) if stop is not None else None
            if run_stop_spec != restore.stop_spec:
                raise CheckpointError(
                    "stop criterion differs from the checkpointed one; "
                    "resume with snapshot.make_stop()"
                )
            run_budget_spec = budget.to_spec() if budget is not None else None
            if run_budget_spec != restore.budget_spec:
                raise CheckpointError(
                    "budget differs from the checkpointed one; resume with "
                    "the same Budget the original run was given"
                )
            if tracker is not None and restore.budget_state is not None:
                # Wall seconds already consumed keep counting against the
                # deadline; the simulated axis restarts with the clock
                # overwrite below and needs no state of its own.
                tracker.load_state(restore.budget_state)
            if (
                rng.seed != restore.rng_state["seed"]
                or rng.stream_id != restore.rng_state["stream_id"]
            ):
                raise CheckpointError(
                    "engine RNG stream does not match the snapshot "
                    f"(snapshot seed={restore.rng_state['seed']} "
                    f"stream={restore.rng_state['stream_id']}, engine "
                    f"built seed={rng.seed} stream={rng.stream_id})"
                )
            # The fresh _initialize above was a throwaway: it built kernels
            # and buffers with the right shapes.  _warm_resume lets GPU
            # engines pre-warm their allocator pool so the resumed
            # iterations hit the pool exactly like the uninterrupted run's.
            self._warm_resume(problem, params, n_particles)
            restore.apply_to(state)
            rng.seek(int(restore.rng_state["position"]))
            # Overwrite the clock wholesale: simulated time continues from
            # the capture point as if the interruption never happened.
            self.clock.now = float(restore.clock_state["now"])
            self.clock.section_totals.clear()
            self.clock.section_totals.update(
                {
                    str(k): float(v)
                    for k, v in restore.clock_state["section_totals"].items()
                }
            )
            setup_seconds = float(restore.setup_seconds)
            if stop is not None and restore.stop_state is not None:
                stop.load_state(restore.stop_state)
            if history is not None and restore.history_state is not None:
                history.gbest_values[:] = [
                    float(v) for v in restore.history_state["gbest_values"]
                ]
                history.mean_pbest_values[:] = [
                    float(v)
                    for v in restore.history_state["mean_pbest_values"]
                ]
            start_iter = restore.iteration

        if injector is not None:
            injector.watch_state(state)

        # A run is graph-eligible only when nothing can change the iteration
        # shape or needs per-launch hooks.  A restored run builds a fresh
        # runner like any other, so the graph is re-captured after resume —
        # stale bindings from the pre-checkpoint run can never be replayed.
        from repro.gpusim.graph import IterationRunner

        eager_reason = self._graph_eager_reason(stop, callback, tracker, guard)
        runner = IterationRunner(
            self, problem, params, state, rng, eager_reason=eager_reason
        )

        self._progress = 0.0
        run = EngineRun()
        run.engine = self
        run.problem = problem
        run.params = params
        run.n_particles = n_particles
        run.max_iter = max_iter
        run.stop = stop
        run.record_history = record_history
        run.callback = callback
        run.checkpoint = checkpoint
        run.budget = budget
        run.guard = guard
        run.state = state
        run.rng = rng
        run.history = history
        run.tracker = tracker
        run.injector = injector
        run.runner = runner
        run.setup_seconds = setup_seconds
        run.start_iter = start_iter
        run.iterations_run = start_iter
        run.status = "completed"
        return run

    def _peak_device_bytes(self) -> int:
        """High-water device-memory mark; CPU engines report 0."""
        return 0

    # -- launch-graph hooks ---------------------------------------------------
    def _graph_eager_reason(self, stop, callback, tracker=None, guard=None) -> str | None:
        """Why this run must execute eagerly, or ``None`` if graph-eligible.

        A stop criterion, callback, budget tracker or health guard can end
        or alter the run at any iteration and must observe per-iteration
        state transitions in eager order; a fault injector needs its
        per-launch hook; ``record_launches`` needs the full per-launch log
        that replay deliberately skips.
        """
        if not self.supports_graph:
            return "engine-does-not-support-graphs"
        if not self.graph_enabled:
            return "graph=False"
        if stop is not None:
            return "stop-criterion"
        if callback is not None:
            return "callback"
        if tracker is not None:
            return "budget"
        if guard is not None:
            return "health-guard"
        if self._fault_injector is not None:
            return "fault-injector"
        return self._graph_blockers()

    def _graph_blockers(self) -> str | None:
        """Engine-specific extra eager conditions (e.g. launch recording)."""
        return None

    def _graph_build_replay(self, problem, params, state, rng):
        """Build the pre-bound replay plan for one steady-state iteration.

        Returns ``(replay, plan_launches)``: a zero-argument callable that
        executes one full iteration, and the launch sequence it will charge
        (``(name, section, n_elems, config, cost)`` tuples) for validation
        against the capture.  Only called on engines with
        :attr:`supports_graph`.
        """
        raise NotImplementedError

    def _graph_build_native(self, graph, problem, params, state, rng):
        """Build the native (one-C-call-per-iteration) replay tier.

        Called by :class:`~repro.gpusim.graph.IterationRunner` after the
        first verified Python replay.  Returns either ``(step, verify)`` —
        ``step()`` runs one full iteration through ``_fastpath.c`` and
        ``verify(run_replay)`` shadow-checks one iteration bitwise before
        promotion (see :func:`repro.gpusim.fastpath.verify_step`) — or a
        reason string naming why this run is not native-eligible.  The base
        implementation opts out; engines whose captured iteration matches
        the fast path's shape (float32 global-memory storage, global
        topology) override it.
        """
        return "engine-has-no-native-plan"

    # -- reliability hooks ----------------------------------------------------
    #: Fault injector followed by this engine (None = fault-free run).
    _fault_injector = None

    def attach_fault_injector(self, injector) -> None:
        """Wire a :class:`~repro.reliability.faults.FaultInjector` into this
        engine's run.

        The base implementation registers the injector for the per-iteration
        integrity check; GPU engines extend it to hook the launcher and
        allocator of their context.  Attaching signals ``on_new_device`` —
        an engine instance is a fresh (healthy) device, which is exactly how
        failover from a sticky device-lost fault works.
        """
        self._fault_injector = injector
        injector.on_new_device()
        ctx = getattr(self, "ctx", None)
        if ctx is not None and hasattr(ctx, "attach_fault_injector"):
            ctx.attach_fault_injector(injector)

    def _warm_resume(
        self, problem: Problem, params: PSOParams, n_particles: int
    ) -> None:
        """Reproduce allocator warm-up that a resumed run would otherwise miss.

        Called between the throwaway ``_initialize`` and the state restore.
        Engines whose iterations allocate transient device buffers override
        this to pre-warm the caching allocator's pool so the first resumed
        iteration takes pool *hits* exactly like iteration ``k`` of the
        uninterrupted run would — a requirement for bit-identical simulated
        timings.  (Any simulated time spent here is irrelevant: the clock is
        overwritten from the snapshot right after.)
        """

    # -- helpers -------------------------------------------------------------
    #: Fraction of the iteration budget consumed (set each iteration).
    _progress: float = 0.0

    def _current_velocity_bounds(
        self, problem: Problem, params: PSOParams
    ) -> tuple[np.ndarray, np.ndarray] | None:
        """Eq. (5) bounds at the current iteration.

        With ``adaptive_velocity`` the bounds shrink linearly from the full
        clamp width at iteration 0 to ``final_velocity_fraction`` of it at
        the last iteration, so late iterations refine rather than leap.
        """
        bounds = problem.velocity_bounds(params.velocity_clamp)
        if bounds is None or not params.adaptive_velocity:
            return bounds
        frac = 1.0 - (1.0 - params.final_velocity_fraction) * self._progress
        lo, hi = bounds
        return lo * frac, hi * frac

    def _scheduled_params(self, params: PSOParams) -> PSOParams:
        """Resolve the inertia schedule (if any) at the current progress.

        Called by the engines' swarm-update steps so every substrate applies
        the same ``w(t)`` — scheduled runs stay bit-identical across the
        fastpso family.
        """
        if params.inertia_schedule is None:
            return params
        return params.with_overrides(
            inertia=params.inertia_schedule.weight(self._progress)
        )

    def _make_rng(self, seed: int) -> ParallelRNG:
        """Engines share one Philox stream layout for bit-equal trajectories."""
        return ParallelRNG(seed)

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"<{type(self).__name__} name={self.name!r} gpu={self.is_gpu}>"
