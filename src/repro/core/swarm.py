"""Swarm state and the canonical PSO update numerics.

Every engine — GPU element-wise, GPU thread-per-particle, sequential C++
model, OpenMP model — runs *these* array semantics, so two engines with the
same seed produce bit-identical trajectories (the cross-engine equivalence
property the test suite asserts).  What differs between engines is the cost
model and the kernel decomposition, exactly as in the paper, where
fastpso/fastpso-seq/fastpso-omp are ports of one algorithm.

Arithmetic is float32 throughout, matching the CUDA implementation; the
tensor-core backend substitutes :func:`repro.gpusim.tensorcore.
fragment_multiply_add` for the two weighted products and therefore differs
by fp16 rounding only.

A note on Eq. (1): the paper writes the attractors as ``pbest_i . e`` and
``gbest . e`` while defining ``pbest_i``/``gbest`` as best *errors*.  Taken
literally that would steer particles toward the scalar error value, which
optimises nothing; like every PSO implementation the paper compares against,
we read the attractors as the best *positions* (the matrices E_l and E_g
broadcast the personal-best/global-best positions).  DESIGN.md records this
notation decision.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.core.parameters import PSOParams
from repro.core.problem import Problem
from repro.errors import InvalidParameterError
from repro.gpusim.rng import ParallelRNG

__all__ = [
    "SwarmState",
    "draw_initial_state",
    "draw_weights",
    "velocity_update",
    "position_update",
    "pbest_update",
    "gbest_scan",
]


@dataclass
class SwarmState:
    """All per-swarm arrays of Algorithm 1.

    ``positions``/``velocities``/``pbest_positions`` are ``(n, d)`` float32;
    ``pbest_values`` is ``(n,)`` float64 (fitness is accumulated in double,
    as the evaluation kernels do for the row reductions).
    """

    positions: np.ndarray
    velocities: np.ndarray
    pbest_values: np.ndarray
    pbest_positions: np.ndarray
    gbest_value: float = np.inf
    gbest_index: int = -1
    gbest_position: np.ndarray = field(default_factory=lambda: np.empty(0))

    @property
    def n_particles(self) -> int:
        return self.positions.shape[0]

    @property
    def dim(self) -> int:
        return self.positions.shape[1]

    def copy(self) -> "SwarmState":
        return SwarmState(
            positions=self.positions.copy(),
            velocities=self.velocities.copy(),
            pbest_values=self.pbest_values.copy(),
            pbest_positions=self.pbest_positions.copy(),
            gbest_value=self.gbest_value,
            gbest_index=self.gbest_index,
            gbest_position=self.gbest_position.copy(),
        )


#: Initial velocities are drawn uniformly on +/- this fraction of the
#: domain width — small enough not to eject particles immediately, the
#: common convention for random velocity initialisation.
INIT_VELOCITY_FRACTION = 0.1


def draw_initial_state(
    problem: Problem, n_particles: int, rng: ParallelRNG
) -> SwarmState:
    """Random initial swarm (Algorithm 1 lines 1-3).

    Draw order is part of the cross-engine contract: positions first
    (row-major ``n x d`` uniforms), then velocities.  pbest values start at
    +inf so the first evaluation always claims them.
    """
    if n_particles <= 0:
        raise InvalidParameterError(
            f"need at least one particle, got {n_particles}"
        )
    n, d = n_particles, problem.dim
    lo = problem.lower_bounds.astype(np.float32)
    width = problem.domain_width.astype(np.float32)

    unit_p = rng.uniform((n, d), 0.0, 1.0, dtype=np.float32)
    positions = lo + unit_p * width

    unit_v = rng.uniform((n, d), -1.0, 1.0, dtype=np.float32)
    velocities = (INIT_VELOCITY_FRACTION * width) * unit_v

    return SwarmState(
        positions=positions,
        velocities=velocities,
        pbest_values=np.full(n, np.inf, dtype=np.float64),
        pbest_positions=positions.copy(),
        gbest_position=np.zeros(d, dtype=np.float32),
    )


def draw_weights(
    rng: ParallelRNG,
    n: int,
    d: int,
    dtype=np.float32,
    *,
    out: tuple[np.ndarray, np.ndarray] | None = None,
) -> tuple[np.ndarray, np.ndarray]:
    """The per-iteration random weight matrices L then G of Eq. (4).

    The stream consumption is dtype-independent (draws happen at 32-bit
    word granularity), so fp16 runs consume the same Philox blocks as fp32
    runs — only the stored rounding differs.

    When *out* (a pair of ``(n, d)`` arrays, whose dtype then wins over
    *dtype*) is given, the matrices are written in place — the engines'
    workspace arena uses this to eliminate the two fresh allocations per
    iteration.  The values and stream consumption are identical either way;
    in particular a non-float32 *out* is still staged through a float32
    draw so the fp16 double rounding of the fresh path is preserved.
    """
    if out is None:
        l_mat = rng.uniform((n, d), 0.0, 1.0, dtype=np.float32).astype(dtype)
        g_mat = rng.uniform((n, d), 0.0, 1.0, dtype=np.float32).astype(dtype)
        return l_mat, g_mat
    l_mat, g_mat = out
    if l_mat.dtype == np.float32 and g_mat.dtype == np.float32:
        rng.uniform((n, d), 0.0, 1.0, out=l_mat)
        rng.uniform((n, d), 0.0, 1.0, out=g_mat)
    else:
        np.copyto(l_mat, rng.uniform((n, d), 0.0, 1.0, dtype=np.float32))
        np.copyto(g_mat, rng.uniform((n, d), 0.0, 1.0, dtype=np.float32))
    return l_mat, g_mat


def velocity_update(
    velocities: np.ndarray,
    positions: np.ndarray,
    pbest_positions: np.ndarray,
    social_positions: np.ndarray,
    l_weights: np.ndarray,
    g_weights: np.ndarray,
    params: PSOParams,
    velocity_bounds: tuple[np.ndarray, np.ndarray] | None,
    *,
    out: np.ndarray | None = None,
    multiply_add=None,
    scratch: tuple[np.ndarray, np.ndarray] | None = None,
) -> np.ndarray:
    """Eq. (4): ``V' = w V + c1 L (E_l - P) + c2 G (E_g - P)``, clamped.

    ``social_positions`` is the gbest row (global topology, broadcast) or an
    ``(n, d)`` per-particle matrix (ring topology).  ``multiply_add``
    optionally replaces the two Hadamard products — the tensor-core backend
    passes :func:`repro.gpusim.tensorcore.fragment_multiply_add` here.
    All arithmetic stays in float32.

    *scratch* — a pair of ``(n, d)`` float32 buffers — routes the pull
    terms through preallocated storage instead of four fresh temporaries.
    The in-place expression performs exactly the same IEEE operations in
    the same order, so results are bit-identical; the fast path is only
    taken when every operand is float32 and ``multiply_add`` is unset
    (mixed-precision promotion would otherwise change intermediate
    rounding).

    The scratch fast path's operation sequence is a compatibility
    contract: ``gpusim/_fastpath.c`` mirrors it op-for-op (same order,
    same ``-ffp-contract=off`` no-FMA arithmetic) so the native iteration
    tier stays bit-identical.  Changing the order or grouping here
    requires the matching change in ``fastpath_step`` — the known-answer
    self-test and the promotion gate will otherwise demote every run to
    the Python replay tier.
    """
    if out is None:
        out = np.empty_like(velocities)
    w = np.float32(params.inertia)
    c1 = np.float32(params.cognitive)
    c2 = np.float32(params.social)

    if (
        scratch is not None
        and multiply_add is None
        and velocities.dtype == np.float32
        and positions.dtype == np.float32
        and pbest_positions.dtype == np.float32
        and social_positions.dtype == np.float32
        and l_weights.dtype == np.float32
        and g_weights.dtype == np.float32
        and out.dtype == np.float32
    ):
        s1, s2 = scratch
        np.subtract(pbest_positions, positions, out=s1)  # cog_pull
        np.multiply(l_weights, s1, out=s1)
        np.multiply(s1, c1, out=s1)  # c1 * (L * cog_pull)
        np.subtract(social_positions, positions, out=s2)  # soc_pull
        np.multiply(g_weights, s2, out=s2)
        np.multiply(s2, c2, out=s2)  # c2 * (G * soc_pull)
        np.multiply(velocities, w, out=out)
        np.add(out, s1, out=out)
        np.add(out, s2, out=out)
        if velocity_bounds is not None:
            lo, hi = velocity_bounds
            np.clip(out, lo.astype(np.float32), hi.astype(np.float32), out=out)
        return out

    cog_pull = pbest_positions - positions
    soc_pull = social_positions - positions
    if multiply_add is None:
        np.multiply(velocities, w, out=out)
        out += c1 * (l_weights * cog_pull)
        out += c2 * (g_weights * soc_pull)
    else:
        base = velocities * w
        term1 = multiply_add(l_weights, cog_pull)
        term2 = multiply_add(g_weights, soc_pull)
        np.add(base, c1 * term1, out=out)
        out += c2 * term2

    if velocity_bounds is not None:
        lo, hi = velocity_bounds
        np.clip(out, lo.astype(np.float32), hi.astype(np.float32), out=out)
    return out


def position_update(
    positions: np.ndarray,
    velocities: np.ndarray,
    problem: Problem,
    params: PSOParams,
) -> np.ndarray:
    """Eq. (2): ``P' = P + V'`` (optionally clipped to the domain)."""
    positions += velocities
    if params.clip_positions:
        np.clip(
            positions,
            problem.lower_bounds.astype(np.float32),
            problem.upper_bounds.astype(np.float32),
            out=positions,
        )
    return positions


def pbest_update(
    state: SwarmState, values: np.ndarray
) -> np.ndarray:
    """Algorithm 1 lines 6-9: claim improved personal bests.

    Returns the boolean improvement mask (used by tests and by the ring
    topology).  Strict ``<`` comparison matches the paper's pseudocode, so
    ties keep the earlier best.
    """
    values = np.asarray(values, dtype=np.float64)
    if values.shape != state.pbest_values.shape:
        raise InvalidParameterError(
            f"fitness shape {values.shape} does not match swarm "
            f"({state.pbest_values.shape})"
        )
    mask = values < state.pbest_values
    state.pbest_values[mask] = values[mask]
    state.pbest_positions[mask] = state.positions[mask]
    return mask


def gbest_scan(state: SwarmState) -> tuple[int, float]:
    """Sequential-scan gbest update (lines 10-12); ties keep lowest index.

    The GPU engines replace this with the parallel reduction, which is
    tested to agree exactly.
    """
    idx = int(np.argmin(state.pbest_values))
    val = float(state.pbest_values[idx])
    if val < state.gbest_value:
        state.gbest_value = val
        state.gbest_index = idx
        state.gbest_position = state.pbest_positions[idx].copy()
    return state.gbest_index, state.gbest_value
