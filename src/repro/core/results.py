"""Result and history containers returned by every engine.

``OptimizeResult`` separates *setup* time (swarm initialisation, allocation)
from steady-state *per-iteration* time because the harness scales paper-size
experiments from shorter sampled runs: per-iteration cost is shape-dependent
only, so ``projected_time`` is exact, not an approximation (the simulated
clock would report the same number after 2000 real iterations).  Step-level
times use the paper's five labels — init, eval, pbest, gbest, swarm — which
Figure 5 plots directly.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.errors import BenchmarkError

__all__ = ["STEP_LABELS", "RUN_STATUSES", "StepTimes", "History", "OptimizeResult"]

#: The paper's Figure 5 breakdown categories, in plot order.
STEP_LABELS = ("init", "eval", "pbest", "gbest", "swarm")

#: Terminal statuses a run (or batch job) can end in.  The first four come
#: out of the engine loop; ``"degraded"`` and ``"shed"`` are assigned by the
#: batch scheduler's admission layer; ``"failed"`` by the retry layer when
#: recovery is exhausted; ``"cancelled"`` by the serving layer when a client
#: cancels a queued or in-flight job (best-so-far fields remain valid, like
#: a budget expiry).
RUN_STATUSES = (
    "completed",
    "deadline_exceeded",
    "budget_exhausted",
    "degraded",
    "shed",
    "failed",
    "cancelled",
)


@dataclass(frozen=True)
class StepTimes:
    """Simulated seconds attributed to each PSO step."""

    init: float = 0.0
    eval: float = 0.0
    pbest: float = 0.0
    gbest: float = 0.0
    swarm: float = 0.0

    def as_dict(self) -> dict[str, float]:
        return {label: getattr(self, label) for label in STEP_LABELS}

    @property
    def total(self) -> float:
        return sum(self.as_dict().values())

    def scaled(self, loop_factor: float) -> "StepTimes":
        """Scale the per-iteration steps (everything but init) by a factor."""
        if loop_factor < 0:
            raise BenchmarkError("cannot scale step times by a negative factor")
        return StepTimes(
            init=self.init,
            eval=self.eval * loop_factor,
            pbest=self.pbest * loop_factor,
            gbest=self.gbest * loop_factor,
            swarm=self.swarm * loop_factor,
        )


@dataclass
class History:
    """Per-iteration trace of the search (opt-in; costs memory, not time)."""

    gbest_values: list[float] = field(default_factory=list)
    mean_pbest_values: list[float] = field(default_factory=list)

    def record(self, gbest: float, mean_pbest: float) -> None:
        self.gbest_values.append(float(gbest))
        self.mean_pbest_values.append(float(mean_pbest))

    def __len__(self) -> int:
        return len(self.gbest_values)

    @property
    def final_value(self) -> float:
        if not self.gbest_values:
            raise BenchmarkError("history is empty")
        return self.gbest_values[-1]


@dataclass
class OptimizeResult:
    """Outcome of one engine run."""

    engine: str
    problem: str
    n_particles: int
    dim: int
    iterations: int
    best_value: float
    best_position: np.ndarray
    error: float
    elapsed_seconds: float  # simulated end-to-end time of the run as executed
    setup_seconds: float
    iteration_seconds: float  # steady-state cost of one iteration
    step_times: StepTimes
    history: History | None = None
    #: High-water device-memory mark of the run (GPU engines; 0 on CPU).
    peak_device_bytes: int = 0
    #: Terminal status: ``"completed"`` for a full run, or the budget axis
    #: that expired first (see :data:`RUN_STATUSES`).  Best-so-far fields
    #: are valid regardless of status.
    status: str = "completed"

    def projected_time(self, iterations: int) -> float:
        """Exact simulated time for a run of *iterations* iterations."""
        if iterations < 0:
            raise BenchmarkError("iterations must be non-negative")
        return self.setup_seconds + self.iteration_seconds * iterations

    def projected_step_times(self, iterations: int) -> StepTimes:
        """Step breakdown rescaled to a run of *iterations* iterations."""
        if self.iterations == 0:
            return self.step_times
        return self.step_times.scaled(iterations / self.iterations)

    def summary(self) -> str:
        tail = "" if self.status == "completed" else f" [{self.status}]"
        return (
            f"{self.engine}: {self.problem} n={self.n_particles} d={self.dim} "
            f"iters={self.iterations} best={self.best_value:.6g} "
            f"err={self.error:.6g} t={self.elapsed_seconds:.4g}s{tail}"
        )

    def to_json(self) -> str:
        """The versioned JSON document for this result (schema_version 3).

        Delegates to :mod:`repro.io`; :meth:`from_json` is the inverse.
        """
        import json

        from repro.io import result_to_dict

        return json.dumps(result_to_dict(self), indent=2)

    @classmethod
    def from_json(cls, document: str) -> "OptimizeResult":
        """Rebuild a result from :meth:`to_json` output (or a v1 payload)."""
        import json

        from repro.io import result_from_dict

        return result_from_dict(json.loads(document))
