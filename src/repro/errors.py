"""Exception hierarchy for the :mod:`repro` package.

Every error raised by this library derives from :class:`ReproError`, so
callers can catch library failures without masking programming errors such
as :class:`TypeError`.  The sub-hierarchy mirrors the package layout:
simulator faults (:class:`GpuSimError` and children) are kept distinct from
optimizer-level misuse (:class:`OptimizationError` and children) because the
former indicate a resource or launch problem on the simulated device while
the latter indicate a badly posed optimization problem.
"""

from __future__ import annotations

__all__ = [
    "ReproError",
    "GpuSimError",
    "DeviceOutOfMemoryError",
    "InvalidLaunchError",
    "AllocationError",
    "MemoryAccessError",
    "MemoryCorruptionError",
    "StreamError",
    "LaunchFailedError",
    "DeviceLostError",
    "OptimizationError",
    "ConfigurationError",
    "InvalidProblemError",
    "InvalidParameterError",
    "UnknownFunctionError",
    "UnknownDeviceError",
    "EvaluationError",
    "BenchmarkError",
    "CalibrationError",
    "CheckpointError",
    "GraphReplayError",
    "ReliabilityError",
    "CircuitOpenError",
    "AdmissionError",
    "JournalError",
    "StalledRunError",
]


class ReproError(Exception):
    """Base class for all errors raised by the ``repro`` package.

    Every error can carry *structured context* — which job, simulated
    device, launch ordinal and retry attempt it belongs to — so the batch
    failure tables and the fleet-profile JSON render failures uniformly
    without parsing message strings.  The fields default to ``None`` and are
    filled in by whichever layer knows them (:meth:`with_context` merges,
    never overwrites, so the innermost annotation wins).
    """

    #: Structured context, filled lazily via :meth:`with_context`.
    job: str | None = None
    device: int | None = None
    launch_ordinal: int | None = None
    attempt: int | None = None

    def with_context(
        self,
        *,
        job: str | None = None,
        device: int | None = None,
        launch_ordinal: int | None = None,
        attempt: int | None = None,
    ) -> "ReproError":
        """Attach structured fields (first writer wins); returns ``self``."""
        if job is not None and self.job is None:
            self.job = str(job)
        if device is not None and self.device is None:
            self.device = int(device)
        if launch_ordinal is not None and self.launch_ordinal is None:
            self.launch_ordinal = int(launch_ordinal)
        if attempt is not None and self.attempt is None:
            self.attempt = int(attempt)
        return self

    def to_row(self) -> dict:
        """Uniform JSON-safe row for failure tables and fleet profiles."""
        return {
            "error": type(self).__name__,
            "message": str(self),
            "job": self.job,
            "device": self.device,
            "launch_ordinal": self.launch_ordinal,
            "attempt": self.attempt,
        }


class GpuSimError(ReproError):
    """Base class for errors originating in the GPU simulator substrate."""


class DeviceOutOfMemoryError(GpuSimError):
    """The simulated device cannot satisfy an allocation request.

    Mirrors ``cudaErrorMemoryAllocation``: raised when the requested byte
    count exceeds the free global memory of the simulated device.
    """

    def __init__(self, requested: int, free: int, total: int) -> None:
        self.requested = int(requested)
        self.free = int(free)
        self.total = int(total)
        super().__init__(
            f"out of device memory: requested {requested} bytes, "
            f"{free} free of {total} total"
        )


class InvalidLaunchError(GpuSimError):
    """A kernel launch configuration violates a hardware limit.

    Mirrors ``cudaErrorInvalidConfiguration``: too many threads per block,
    a zero-sized grid, more shared memory than the device provides, etc.
    """


class AllocationError(GpuSimError):
    """An allocator invariant was violated (double free, foreign pointer)."""


class MemoryAccessError(GpuSimError):
    """A device buffer was used after free or outside its bounds."""


class StreamError(GpuSimError):
    """Illegal stream/event operation (e.g. waiting on an unrecorded event)."""


class LaunchFailedError(GpuSimError):
    """A kernel launch failed transiently on the simulated device.

    Mirrors ``cudaErrorLaunchFailure``: the launch configuration was legal
    but the device rejected or aborted it.  Injected by the reliability
    fault harness; retryable.
    """


class DeviceLostError(GpuSimError):
    """The simulated device fell off the bus and every subsequent operation
    on the same context fails.

    Mirrors ``cudaErrorDeviceUnavailable``/ECC-fatal states: the error is
    *sticky* — recovery requires a fresh context (failover to a healthy
    device), not a bare retry.
    """


class MemoryCorruptionError(GpuSimError):
    """An integrity check found corrupted data in a device buffer.

    Raised by the reliability guard when a watched buffer contains values
    that cannot result from a correct run (NaNs written by an injected
    bit-flip).  Retryable from the last checkpoint.
    """


class GraphReplayError(GpuSimError):
    """A launch-graph replay diverged from its captured iteration.

    Raised when the first replayed iteration's charge sequence, launch
    sequence or RNG consumption does not match what capture recorded.  This
    indicates a bug in an engine's replay plan (eager and replay paths out
    of sync), never a data-dependent condition — those fall back to eager
    execution during validation instead of raising.
    """


class OptimizationError(ReproError):
    """Base class for optimizer-level failures."""


class ConfigurationError(OptimizationError):
    """A run was configured with values that can never produce a valid
    optimization — non-finite bounds, non-positive sizes, malformed
    hyper-parameters.

    Raised *at construction time* so a bad configuration fails with one
    friendly message instead of a downstream NaN or shape error deep in the
    iteration loop.  :class:`InvalidProblemError` and
    :class:`InvalidParameterError` are its concrete children, so existing
    ``except InvalidProblemError`` call sites keep working while new code
    can catch the whole family with ``except ConfigurationError``.
    """


class InvalidProblemError(ConfigurationError):
    """The optimization problem definition is malformed.

    Examples: non-positive dimensionality, lower bound above upper bound,
    non-finite bounds, an objective that returns the wrong shape.
    """


class InvalidParameterError(ConfigurationError):
    """A PSO hyper-parameter or engine option is outside its legal range."""


class UnknownFunctionError(InvalidParameterError, InvalidProblemError):
    """An unknown benchmark-function name was looked up.

    Inherits from *both* :class:`InvalidParameterError` (the unified
    unknown-name contract every registry shares — engines, policies,
    functions) and :class:`InvalidProblemError` (what
    :func:`repro.functions.get_function` historically raised), so either
    ``except`` clause keeps catching it.
    """


class UnknownDeviceError(InvalidParameterError, ValueError):
    """An unknown device-catalog name was looked up.

    Inherits from *both* :class:`InvalidParameterError` (the unified
    unknown-name contract every registry shares — engines, policies,
    functions, devices) and :class:`ValueError` (what
    :func:`repro.gpusim.device.get_preset` historically raised), so either
    ``except`` clause keeps catching it.
    """


class EvaluationError(OptimizationError):
    """The user evaluation function misbehaved (wrong shape, NaN policy)."""


class BenchmarkError(ReproError):
    """An experiment harness was configured inconsistently."""


class CalibrationError(BenchmarkError):
    """The cost-model calibration harness was misconfigured or failed.

    Raised for empty target sets, unknown parameter names, or a captured
    workload that cannot be extrapolated (e.g. identical sample sizes).
    """


class CheckpointError(ReproError):
    """A checkpoint file is unreadable, corrupt, or incompatible.

    Raised on magic/schema mismatch, CRC failure, or when a snapshot is
    restored into a run whose shape (particles, dimension, engine dtype)
    does not match the one that wrote it.
    """


class ReliabilityError(ReproError):
    """Base class for overload-control failures (breakers, admission)."""


class CircuitOpenError(ReliabilityError):
    """Every eligible device's circuit breaker is open.

    Raised by the retry layer when no healthy device remains to place an
    attempt on and CPU failover is disabled.  Carries structured context
    (job, attempt) via the base class.
    """


class AdmissionError(ReliabilityError):
    """A job was refused admission by the batch scheduler.

    Only raised in ``strict`` admission mode; the default ``degrade`` mode
    records a shed outcome instead of raising.
    """


class JournalError(ReliabilityError):
    """The serving layer's write-ahead journal is unreadable or unwritable.

    Raised when :meth:`~repro.serve.service.OptimizationService.recover`
    cannot open a journal, and carried as the structured error row of
    submissions refused while the service is in degraded read-only mode
    (the journal directory became unwritable mid-flight).
    """


class StalledRunError(ReliabilityError):
    """A running job exceeded its watchdog lease.

    The service marks a run stalled when more than ``watchdog_seconds`` of
    simulated time pass between progress updates (an injected stall, a
    pathological objective).  Stalls are treated as retryable: the attempt
    is abandoned, journaled, and retried under the configured
    :class:`~repro.reliability.retry.RetryPolicy`.
    """
