"""Serialization of optimization results and experiment artefacts.

JSON for single runs (round-trippable; NumPy arrays become lists), CSV for
experiment grids (one row per engine x problem x configuration) — the
formats a downstream user feeds into their own plotting/analysis stack.

Payloads are versioned by a ``schema_version`` field so downstream readers
can detect drift.  History:

* **1** — the original layout, under the legacy key ``format_version``
  (still readable, with a :class:`DeprecationWarning`).
* **2** — renamed the version key to ``schema_version`` and added
  ``peak_device_bytes`` (which version-1 writers silently dropped).
* **3** — added ``status`` (terminal run status; budget/deadline support).
  Older payloads read back as ``"completed"``.
"""

from __future__ import annotations

import csv
import json
import os
import tempfile
import warnings
from pathlib import Path
from typing import Iterable

import numpy as np

from repro.core.results import History, OptimizeResult, StepTimes
from repro.errors import BenchmarkError

__all__ = [
    "SCHEMA_VERSION",
    "atomic_write_bytes",
    "atomic_write_text",
    "fsync_directory",
    "result_to_dict",
    "result_from_dict",
    "save_result_json",
    "load_result_json",
    "write_rows_csv",
]

#: Version written by :func:`result_to_dict`.
SCHEMA_VERSION = 3
#: Versions :func:`result_from_dict` can still read.
_READABLE_VERSIONS = (1, 2, 3)


def fsync_directory(directory: str | Path) -> None:
    """fsync a directory fd so renames/creations inside it are durable.

    ``os.replace`` makes a write atomic against *process* crash, but the
    directory entry itself only survives *power loss* once the directory's
    own metadata reaches the disk.  Filesystems that don't support opening
    a directory for fsync (some network mounts) are silently tolerated —
    the write-ahead journal and checkpoints still have their per-file
    fsync.
    """
    flags = os.O_RDONLY | getattr(os, "O_DIRECTORY", 0)
    try:
        fd = os.open(directory, flags)
    except OSError:
        return
    try:
        os.fsync(fd)
    except OSError:
        pass
    finally:
        os.close(fd)


def atomic_write_bytes(path: str | Path, data: bytes) -> Path:
    """Write *data* to *path* so readers never observe a partial file.

    The bytes go to a temporary file in the same directory (same
    filesystem, so the final :func:`os.replace` is atomic), are flushed and
    fsynced, and only then renamed over the destination; the parent
    directory is fsynced last so the rename itself survives power loss,
    not just process crash.  A crash at any point leaves either the old
    file or the new one — never a truncated mix.  Used for result JSON,
    reliability checkpoints and the serve write-ahead journal.
    """
    path = Path(path)
    fd, tmp_name = tempfile.mkstemp(
        dir=path.parent, prefix=f".{path.name}.", suffix=".tmp"
    )
    try:
        with os.fdopen(fd, "wb") as fh:
            fh.write(data)
            fh.flush()
            os.fsync(fh.fileno())
        os.replace(tmp_name, path)
        fsync_directory(path.parent)
    except BaseException:
        try:
            os.unlink(tmp_name)
        except OSError:
            pass
        raise
    return path


def atomic_write_text(path: str | Path, text: str) -> Path:
    """UTF-8 convenience wrapper over :func:`atomic_write_bytes`."""
    return atomic_write_bytes(path, text.encode("utf-8"))


def result_to_dict(result: OptimizeResult) -> dict:
    """A JSON-safe dictionary capturing everything in *result*."""
    payload = {
        "schema_version": SCHEMA_VERSION,
        "engine": result.engine,
        "problem": result.problem,
        "n_particles": result.n_particles,
        "dim": result.dim,
        "iterations": result.iterations,
        "best_value": float(result.best_value),
        "best_position": np.asarray(result.best_position, dtype=float).tolist(),
        "error": float(result.error),
        "elapsed_seconds": result.elapsed_seconds,
        "setup_seconds": result.setup_seconds,
        "iteration_seconds": result.iteration_seconds,
        "step_times": result.step_times.as_dict(),
        "peak_device_bytes": int(result.peak_device_bytes),
        "status": result.status,
    }
    if result.history is not None:
        payload["history"] = {
            "gbest_values": result.history.gbest_values,
            "mean_pbest_values": result.history.mean_pbest_values,
        }
    return payload


def result_from_dict(payload: dict) -> OptimizeResult:
    """Inverse of :func:`result_to_dict` (reads schema versions 1–3)."""
    version = payload.get("schema_version")
    if version is None and "format_version" in payload:
        warnings.warn(
            "result payloads keyed by 'format_version' are deprecated; "
            "re-save with save_result_json to upgrade to 'schema_version'",
            DeprecationWarning,
            stacklevel=2,
        )
        version = payload["format_version"]
    if version not in _READABLE_VERSIONS:
        raise BenchmarkError(
            f"unsupported result schema version {version!r} "
            f"(this build reads {_READABLE_VERSIONS})"
        )
    history = None
    if "history" in payload:
        history = History(
            gbest_values=list(payload["history"]["gbest_values"]),
            mean_pbest_values=list(payload["history"]["mean_pbest_values"]),
        )
    return OptimizeResult(
        engine=payload["engine"],
        problem=payload["problem"],
        n_particles=int(payload["n_particles"]),
        dim=int(payload["dim"]),
        iterations=int(payload["iterations"]),
        best_value=float(payload["best_value"]),
        best_position=np.asarray(payload["best_position"], dtype=float),
        error=float(payload["error"]),
        elapsed_seconds=float(payload["elapsed_seconds"]),
        setup_seconds=float(payload["setup_seconds"]),
        iteration_seconds=float(payload["iteration_seconds"]),
        step_times=StepTimes(**payload["step_times"]),
        history=history,
        peak_device_bytes=int(payload.get("peak_device_bytes", 0)),
        status=str(payload.get("status", "completed")),
    )


def save_result_json(result: OptimizeResult, path: str | Path) -> Path:
    """Write *result* to *path* as pretty-printed JSON; returns the path."""
    return atomic_write_text(
        path, json.dumps(result_to_dict(result), indent=2) + "\n"
    )


def load_result_json(path: str | Path) -> OptimizeResult:
    """Read a result previously written by :func:`save_result_json`."""
    return result_from_dict(json.loads(Path(path).read_text()))


def write_rows_csv(
    path: str | Path,
    headers: list[str],
    rows: Iterable[list[object]],
) -> Path:
    """Write an experiment grid to CSV, validating row widths."""
    path = Path(path)
    with path.open("w", newline="") as fh:
        writer = csv.writer(fh)
        writer.writerow(headers)
        for row in rows:
            if len(row) != len(headers):
                raise BenchmarkError(
                    f"row width {len(row)} does not match "
                    f"{len(headers)} headers: {row!r}"
                )
            writer.writerow(row)
    return path
