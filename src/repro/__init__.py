"""FastPSO reproduction: efficient swarm intelligence on (simulated) GPUs.

Reproduces Liu, Wen & Cai, *FastPSO: Towards Efficient Swarm Intelligence
Algorithm on GPUs* (ICPP 2021).  The package layers:

* :mod:`repro.gpusim` — the GPU substrate (device model, memory, allocator,
  occupancy, kernels, Philox RNG, reductions, tensor cores, multi-GPU);
* :mod:`repro.core` — the PSO algorithm, engines' base and the public
  :class:`FastPSO` facade;
* :mod:`repro.engines` — the seven benchmarked implementations;
* :mod:`repro.functions` — built-in evaluation functions;
* :mod:`repro.threadconf` — the ThunderGBM thread-configuration case study;
* :mod:`repro.bench` — one experiment driver per paper table/figure.

* :mod:`repro.batch` — the batch job scheduler multiplexing many
  independent problems onto the simulated fleet;
* :mod:`repro.reliability` — checkpoint/resume, deterministic fault
  injection and retry/failover for single runs and batch fleets;
* :mod:`repro.serve` — the async serving front-end: job submission over
  virtual time, streaming best-so-far results, per-tenant quotas,
  queue-depth autoscaling and checkpoint-backed cancellation;
* :mod:`repro.devices` — the device catalog (versioned machine files for
  V100/A100/H100-class GPUs and a CPU fallback) and the cost-model
  calibration harness.

Quickstart::

    from repro import FastPSO
    result = FastPSO(n_particles=2000, seed=1).minimize(
        "sphere", dim=50, max_iter=200)
    print(result.summary())

Batches of jobs::

    from repro import BatchScheduler, Job
    batch = BatchScheduler(streams_per_device=4).run(
        [Job("sphere", dim=32, seed=s) for s in range(16)])
    print(batch.summary())

Engines are built by registry name or alias (``"fastpso-tc"`` is the
tensor-core backend)::

    from repro import make_engine
    engine = make_engine("fastpso-tc")

Long runs checkpoint and resume bit-identically::

    from repro import CheckpointManager, FastPSO, resume
    FastPSO(seed=1).minimize("sphere", dim=50, max_iter=500,
                             checkpoint="ckpts/")
    result = resume("ckpts/")          # or FastPSO.resume("ckpts/")

Serving (async, streaming, autoscaled)::

    import asyncio
    from repro import Job, OptimizationService

    async def main():
        service = OptimizationService(n_devices=1, autoscale=True)
        ticket = await service.submit(Job("sphere", dim=32, seed=1))
        return await ticket.wait()

    result = asyncio.run(main())

What-if across silicon — trajectories stay bit-identical, only the
simulated clock moves::

    from repro import make_device, use_device
    with use_device("a100"):
        result = FastPSO(seed=1).minimize("sphere", dim=50, max_iter=200)
    spec = make_device("v100", sm_count=40)   # half a V100
"""

from repro.batch import (
    AdmissionPolicy,
    BatchResult,
    BatchScheduler,
    Job,
    resolve_policy,
)
from repro.core import (
    PAPER_DEFAULTS,
    Budget,
    FastPSO,
    OptimizeResult,
    Problem,
    PSOParams,
)
from repro.core.results import RUN_STATUSES
from repro.devices import (
    calibrate,
    device_names,
    make_device,
    resolve_device,
    use_device,
)
from repro.engines import (
    ENGINE_NAMES,
    available_engines,
    make_engine,
    resolve_engine,
)
from repro.errors import ReproError
from repro.functions import (
    available_functions,
    get_function,
    make_function,
    resolve_function,
)
from repro.reliability import (
    BreakerPolicy,
    CheckpointManager,
    FaultPlan,
    FaultSpec,
    RecoveryReport,
    RetryPolicy,
    SwarmHealthGuard,
    resume,
    run_with_recovery,
)
from repro.serve import (
    AutoscalePolicy,
    LoadProfile,
    OptimizationService,
    TenantQuota,
)

__version__ = "1.3.0"

__all__ = [
    "FastPSO",
    "OptimizeResult",
    "Problem",
    "PSOParams",
    "PAPER_DEFAULTS",
    "RUN_STATUSES",
    "ReproError",
    "available_functions",
    "get_function",
    "make_function",
    "resolve_function",
    "make_engine",
    "available_engines",
    "resolve_engine",
    "resolve_policy",
    "ENGINE_NAMES",
    "AdmissionPolicy",
    "BatchScheduler",
    "BatchResult",
    "Budget",
    "Job",
    "BreakerPolicy",
    "CheckpointManager",
    "FaultPlan",
    "FaultSpec",
    "RecoveryReport",
    "RetryPolicy",
    "SwarmHealthGuard",
    "resume",
    "run_with_recovery",
    "AutoscalePolicy",
    "LoadProfile",
    "OptimizationService",
    "TenantQuota",
    "calibrate",
    "device_names",
    "make_device",
    "resolve_device",
    "use_device",
    "__version__",
]
