"""FastPSO reproduction: efficient swarm intelligence on (simulated) GPUs.

Reproduces Liu, Wen & Cai, *FastPSO: Towards Efficient Swarm Intelligence
Algorithm on GPUs* (ICPP 2021).  The package layers:

* :mod:`repro.gpusim` — the GPU substrate (device model, memory, allocator,
  occupancy, kernels, Philox RNG, reductions, tensor cores, multi-GPU);
* :mod:`repro.core` — the PSO algorithm, engines' base and the public
  :class:`FastPSO` facade;
* :mod:`repro.engines` — the seven benchmarked implementations;
* :mod:`repro.functions` — built-in evaluation functions;
* :mod:`repro.threadconf` — the ThunderGBM thread-configuration case study;
* :mod:`repro.bench` — one experiment driver per paper table/figure.

Quickstart::

    from repro import FastPSO
    result = FastPSO(n_particles=2000, seed=1).minimize(
        "sphere", dim=50, max_iter=200)
    print(result.summary())
"""

from repro.core import (
    PAPER_DEFAULTS,
    FastPSO,
    OptimizeResult,
    Problem,
    PSOParams,
)
from repro.errors import ReproError
from repro.functions import available_functions, get_function

__version__ = "1.0.0"

__all__ = [
    "FastPSO",
    "OptimizeResult",
    "Problem",
    "PSOParams",
    "PAPER_DEFAULTS",
    "ReproError",
    "available_functions",
    "get_function",
    "__version__",
]
