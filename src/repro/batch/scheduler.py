"""Batch job scheduling over simulated streams (and devices).

The repo's north star is a service shape: many concurrent small/medium PSO
jobs, not one giant swarm.  :class:`BatchScheduler` multiplexes independent
:class:`~repro.batch.job.Job` specs onto the simulated hardware — a fleet of
``n_devices`` simulated GPUs, each exposing ``streams_per_device`` CUDA-style
streams (:class:`repro.gpusim.streams.Stream`) on one shared
:class:`~repro.gpusim.clock.SimClock` per device.

Determinism contract
--------------------
Every job executes on a *fresh* engine with its own Philox stream, allocator
and clock, so its trajectory, best value and solo simulated runtime are
bit-identical to a standalone ``engine.optimize`` call.  The scheduler then
replays each job's device work onto its assigned stream of the shared
per-device timeline.  Streams are FIFO and a job's launches are issued
back-to-back, so enqueueing the job's kernel sequence is time-equivalent to
enqueueing its total duration — which is what the replay does, keeping
start/end arithmetic exact.  Work on *different* streams overlaps, so the
batch makespan reflects genuine concurrency: for small and medium swarms
(the workload this layer targets) a single job occupies a small fraction of
a V100's SMs and full stream overlap is the faithful first-order model.

Packing policies
----------------
``"fifo"`` assigns jobs in submission order to the earliest-available
stream (classic list scheduling — no job is ever starved: each waits only
for jobs that were ahead of it in the queue).  ``"packed"`` is the
size-aware option: jobs are ordered longest-first (LPT bin-packing) before
the same earliest-available assignment, which tightens the makespan when
job durations are skewed.  All policies respect stream capacity by
construction — a stream runs exactly one unit of work at a time.

Heterogeneous fleets
--------------------
``devices=`` names the fleet's silicon from the :mod:`repro.devices`
catalog (``["v100", "a100"]``, or ready
:class:`~repro.gpusim.device.DeviceSpec` objects) instead of ``n_devices``
identical anonymous GPUs.  Placement then becomes cost-aware: each job is
priced per device with the cost model's canonical update-kernel probe and
assigned earliest-finish-time-first (deterministic, ties to the lowest
device index), GPU jobs run on their assigned device's spec (so an A100
job genuinely finishes sooner than a V100 one — trajectories stay
bit-identical, only simulated seconds move), and admission prices memory
against the *smallest* device in the fleet.  ``devices=`` refuses to
compose with ``retry``/``faults``/``breaker`` and with
``policy="fused"``: failover and fused stacking assume interchangeable
devices.

``"fused"`` goes further: a grouping pass
(:func:`repro.batch.fused.plan_fused_groups`) stacks *compatible* jobs —
same engine configuration, dim, swarm size and iteration budget; seeds,
hyperparameters and problems free to differ — into one ``m*n x d`` engine
loop per group (:class:`repro.batch.fused.FusedGroupRunner`).  Each group
occupies **one** stream for less than the sum of its members' solo times
(batched kernels amortise launch overhead; the host pays one Python loop
instead of ``m``), while every member's trajectory, simulated seconds and
result stay bit-identical to its solo run.  Ungroupable jobs fall back to
the solo path, and group lanes are packed longest-first like ``"packed"``.
``"fused"`` composes with admission control (groups are priced and
degraded as units), deadlines/budgets (a member hitting its budget gets
its own terminal status; the group's survivors continue solo), guards and
per-job checkpoint/resume — but not with ``retry``/``faults``/``breaker``
(fault attribution inside a stacked loop is ambiguous; the scheduler
refuses the combination up front).

Metrics
-------
Fleet-level kernel statistics flow through the existing profiler
(:func:`repro.gpusim.profiler.build_report_from_stats` over the merged
per-job launcher accumulators), and :class:`BatchResult` reports queue
waits, per-device occupancy and the makespan-vs-sum-of-solo speedup that
``benchmarks/bench_batch.py`` tracks.

Reliability
-----------
The scheduler composes with :mod:`repro.reliability`: pass ``retry`` (a
:class:`~repro.reliability.retry.RetryPolicy`), ``faults`` (a
:class:`~repro.reliability.faults.FaultPlan`) and/or ``checkpoint_dir`` to
run every job under :func:`~repro.reliability.retry.run_with_recovery` —
per-job checkpoints, deterministic fault injection, retry with simulated
backoff, failover onto a fresh simulated device, and a last-resort CPU
fallback.  Failed jobs become ``status="failed"`` outcomes instead of
aborting the batch; recovery overhead occupies the job's lane (stretching
the makespan honestly) and is merged into the fleet profile under the
``lost_work``/``retry_backoff`` sections.  With none of the three options
set, execution takes the historical fast path and engine errors propagate.

Overload control
----------------
Four independent knobs harden the fleet against oversubscription, all
deterministic in simulated time (see ``docs/architecture.md``):

* **Admission & load shedding** — ``admission``/``max_queue``/
  ``memory_limit_bytes`` run the submitted jobs through an
  :class:`~repro.batch.admission.AdmissionPolicy` before anything
  executes; over capacity, the lowest-priority jobs are deterministically
  shed (terminal ``"shed"`` outcome) or degraded (smaller swarm / fp16
  storage, terminal ``"degraded"``), every decision recorded in
  :attr:`BatchResult.admission_rows`.
* **Deadlines & budgets** — ``deadline`` (host wall-seconds per job)
  and ``budget`` (a fleet-wide :class:`~repro.core.budget.Budget`) merge
  tightest-wins with each job's own budget and are enforced inside the
  engine loop; an expired job still reports its best-so-far with a
  ``"deadline_exceeded"``/``"budget_exhausted"`` status.
* **Circuit breakers** — ``breaker`` gives every simulated device a
  closed/open/half-open breaker (:class:`~repro.reliability.breaker.FleetHealth`);
  failing devices stop receiving attempts, work re-packs onto healthy
  devices, and the CPU fallback is the last resort.  Trip/close events
  land in :attr:`BatchResult.breaker_rows`.
* **Containment** — with any overload option set, ``run()`` never lets a
  :class:`~repro.errors.ReproError` escape: the job becomes a
  ``"failed"`` outcome with its structured error row instead.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.batch.admission import ADMISSION_MODES, AdmissionPolicy
from repro.batch.dispatch import (
    FleetTimeline,
    LanePlacement,
    effective_engine_options,
)
from repro.batch.job import Job, JobOutcome
from repro.core.budget import Budget
from repro.core.results import OptimizeResult
from repro.errors import InvalidParameterError, ReproError
from repro.gpusim.kernel import KernelSpec
from repro.gpusim.launch import LaunchStats
from repro.gpusim.profiler import ProfileReport, build_report_from_stats
from repro.utils.naming import unknown_name
from repro.utils.tables import format_table

__all__ = ["BatchScheduler", "BatchResult", "POLICIES", "resolve_policy"]

#: Supported packing policies, in documentation order.
POLICIES = ("fifo", "packed", "fused")

#: Canonical placement probe for heterogeneous fleets: the fp32 fused
#: velocity+position update's resource shape (see
#: ``FastPSOEngine._kernels``), hierarchy hints included so L2-rich
#: devices price cache-resident jobs as faster.  Placement only needs the
#: fleet's *relative* per-device speed, so one representative kernel is
#: enough.
_PLACEMENT_PROBE = KernelSpec(
    name="placement_probe",
    flops_per_elem=11.0,
    bytes_read_per_elem=5 * 4.0,
    bytes_written_per_elem=2 * 4.0,
    registers_per_thread=40,
    reread_fraction=3.0 / 5.0,
    working_set_bytes_per_elem=3 * 4.0,
)


def resolve_policy(policy: str) -> str:
    """Validate a packing-policy name, returning its canonical spelling.

    The policy-registry analogue of :func:`repro.engines.resolve_engine`
    and :func:`repro.functions.resolve_function` — same unified
    unknown-name contract (:class:`~repro.errors.InvalidParameterError`
    with a did-you-mean hint via :mod:`repro.utils.naming`).
    """
    key = str(policy).lower()
    if key not in POLICIES:
        raise unknown_name("policy", policy, POLICIES)
    return key


def _lane_duration(report) -> float:
    """Stream time one job occupies: fault-free work plus any recovery
    overhead (lost attempts, simulated backoff) — retries stretch the
    schedule exactly as they would a real fleet's."""
    solo = (
        report.result.elapsed_seconds if report.result is not None else 0.0
    )
    return solo + report.recovery_seconds


@dataclass(frozen=True)
class BatchResult:
    """Outcome of one batch run: per-job results plus fleet metrics."""

    outcomes: tuple[JobOutcome, ...]
    policy: str
    n_devices: int
    streams_per_device: int
    makespan_seconds: float
    device_makespans: tuple[float, ...]
    fleet_profile: ProfileReport | None = field(repr=False, default=None)
    #: Admission decisions (``AdmissionDecision.to_row()`` dicts), one per
    #: submitted job, when admission control ran; empty otherwise.
    admission_rows: tuple = ()
    #: Circuit-breaker trip/close events, ordinal-numbered, when a breaker
    #: fleet ran; empty otherwise.
    breaker_rows: tuple = ()
    #: Per-group fusion records (``policy="fused"``): member labels, how
    #: many members ran stacked, fast-loop rounds and the modelled lane
    #: seconds; empty for other policies.
    fused_rows: tuple = ()

    # -- fleet metrics -------------------------------------------------------
    @property
    def results(self) -> list[OptimizeResult]:
        """Per-job results, in submission order (``None`` for failed jobs)."""
        return [o.result for o in self.outcomes]

    @property
    def n_failed(self) -> int:
        """Jobs whose recovery was exhausted (terminal ``"failed"``)."""
        return sum(1 for o in self.outcomes if o.status == "failed")

    @property
    def n_shed(self) -> int:
        """Jobs refused admission (terminal ``"shed"``)."""
        return sum(1 for o in self.outcomes if o.status == "shed")

    @property
    def n_degraded(self) -> int:
        """Jobs admission ran in a reduced variant."""
        return sum(1 for o in self.outcomes if o.status == "degraded")

    @property
    def n_expired(self) -> int:
        """Jobs whose budget/deadline tripped (best-so-far still reported)."""
        return sum(
            1
            for o in self.outcomes
            if o.status in ("deadline_exceeded", "budget_exhausted")
        )

    @property
    def all_succeeded(self) -> bool:
        """Every job produced a usable result (nothing failed or shed)."""
        return all(o.succeeded for o in self.outcomes)

    @property
    def total_retries(self) -> int:
        """Extra attempts beyond the first, summed over all jobs."""
        return sum(max(0, o.attempts - 1) for o in self.outcomes)

    @property
    def lost_seconds(self) -> float:
        """Simulated seconds computed and discarded with failed attempts."""
        return sum(o.lost_seconds for o in self.outcomes)

    @property
    def backoff_seconds(self) -> float:
        """Simulated seconds the fleet spent backing off between attempts."""
        return sum(o.backoff_seconds for o in self.outcomes)

    @property
    def recovery_seconds(self) -> float:
        """Total simulated recovery overhead across the fleet."""
        return self.lost_seconds + self.backoff_seconds

    @property
    def sum_solo_seconds(self) -> float:
        """Simulated time a one-job-at-a-time serial run would take."""
        return sum(o.solo_seconds for o in self.outcomes)

    @property
    def speedup(self) -> float:
        """Sum-of-solo over makespan — the batching win from overlap."""
        if self.makespan_seconds <= 0.0:
            return 1.0
        return self.sum_solo_seconds / self.makespan_seconds

    @property
    def mean_queue_wait_seconds(self) -> float:
        if not self.outcomes:
            return 0.0
        return sum(o.queue_wait_seconds for o in self.outcomes) / len(
            self.outcomes
        )

    @property
    def max_queue_wait_seconds(self) -> float:
        return max((o.queue_wait_seconds for o in self.outcomes), default=0.0)

    def device_occupancy(self, device_index: int) -> float:
        """Busy fraction of one device's stream-seconds over the makespan."""
        if self.makespan_seconds <= 0.0:
            return 0.0
        busy = sum(
            o.solo_seconds
            for o in self.outcomes
            if o.device_index == device_index
        )
        return busy / (self.streams_per_device * self.makespan_seconds)

    @property
    def fleet_occupancy(self) -> float:
        """Busy fraction of all stream-seconds over the makespan."""
        if self.makespan_seconds <= 0.0:
            return 0.0
        lanes = self.n_devices * self.streams_per_device
        return self.sum_solo_seconds / (lanes * self.makespan_seconds)

    # -- presentation --------------------------------------------------------
    def summary(self) -> str:
        """One aligned table: placement, timing and result per job."""
        rows = [
            [
                o.job.label,
                (
                    f"d{o.device_index}/s{o.stream_index}"
                    if o.device_index >= 0
                    else "-"
                ),
                o.queue_wait_seconds,
                o.solo_seconds,
                o.end_seconds,
                (
                    o.result.best_value
                    if o.result is not None
                    else o.status.upper()
                ),
                o.status,
            ]
            for o in self.outcomes
        ]
        table = format_table(
            ["job", "lane", "wait_s", "solo_s", "end_s", "best", "status"],
            rows,
            title=(
                f"batch: {len(self.outcomes)} jobs, policy={self.policy}, "
                f"{self.n_devices} device(s) x {self.streams_per_device} "
                f"stream(s)"
            ),
            float_fmt=".4g",
        )
        footer = (
            f"makespan={self.makespan_seconds:.6g}s "
            f"sum-of-solo={self.sum_solo_seconds:.6g}s "
            f"speedup={self.speedup:.2f}x "
            f"occupancy={self.fleet_occupancy:.1%}"
        )
        if self.total_retries or self.n_failed:
            footer += (
                f"\nrecovery: {self.total_retries} retr"
                f"{'y' if self.total_retries == 1 else 'ies'}, "
                f"{self.n_failed} failed job(s), "
                f"lost={self.lost_seconds:.6g}s "
                f"backoff={self.backoff_seconds:.6g}s "
                f"overhead={self.recovery_seconds:.6g}s"
            )
        if self.n_shed or self.n_degraded or self.n_expired:
            footer += (
                f"\noverload: {self.n_shed} shed, "
                f"{self.n_degraded} degraded, "
                f"{self.n_expired} expired (deadline/budget)"
            )
        return f"{table}\n{footer}"

    def failure_table(self) -> str:
        """Aligned table of failed/shed jobs and why; '' if none."""
        failed = [o for o in self.outcomes if not o.succeeded]
        if not failed:
            return ""
        rows = [
            [
                o.job.label,
                (
                    f"d{o.device_index}/s{o.stream_index}"
                    if o.device_index >= 0
                    else "-"
                ),
                o.status,
                o.attempts,
                o.lost_seconds,
                (o.error or o.admission_reason or "")[:72],
            ]
            for o in failed
        ]
        return format_table(
            ["job", "lane", "status", "attempts", "lost_s", "last error"],
            rows,
            title=f"{len(failed)} job(s) failed",
            float_fmt=".4g",
        )

    def to_dict(self) -> dict:
        """JSON-safe dictionary (versioned like :mod:`repro.io` payloads)."""
        from repro.io import SCHEMA_VERSION, result_to_dict

        return {
            "schema_version": SCHEMA_VERSION,
            "policy": self.policy,
            "n_devices": self.n_devices,
            "streams_per_device": self.streams_per_device,
            "makespan_seconds": self.makespan_seconds,
            "sum_solo_seconds": self.sum_solo_seconds,
            "speedup": self.speedup,
            "fleet_occupancy": self.fleet_occupancy,
            "device_makespans": list(self.device_makespans),
            "n_failed": self.n_failed,
            "n_shed": self.n_shed,
            "n_degraded": self.n_degraded,
            "n_expired": self.n_expired,
            "total_retries": self.total_retries,
            "lost_seconds": self.lost_seconds,
            "backoff_seconds": self.backoff_seconds,
            "recovery_seconds": self.recovery_seconds,
            "overload": {
                "admission": [dict(row) for row in self.admission_rows],
                "breaker_events": [dict(row) for row in self.breaker_rows],
            },
            "fused_groups": [dict(row) for row in self.fused_rows],
            "jobs": [
                {
                    "label": o.job.label,
                    "device": o.device_index,
                    "stream": o.stream_index,
                    "start_seconds": o.start_seconds,
                    "end_seconds": o.end_seconds,
                    "queue_wait_seconds": o.queue_wait_seconds,
                    "status": o.status,
                    "attempts": o.attempts,
                    "error": o.error,
                    "lost_seconds": o.lost_seconds,
                    "backoff_seconds": o.backoff_seconds,
                    "fell_back_to_cpu": o.fell_back_to_cpu,
                    "admission_reason": o.admission_reason,
                    "result": (
                        result_to_dict(o.result)
                        if o.result is not None
                        else None
                    ),
                }
                for o in self.outcomes
            ],
        }


class BatchScheduler:
    """Packs independent PSO jobs onto simulated streams and devices.

    Parameters
    ----------
    n_devices:
        Number of simulated devices in the fleet; each gets its own shared
        :class:`SimClock` (the multi-device analogue of the paper's
        Section 3.5 particle-splitting fleet, here multiplexing whole jobs
        instead of sub-swarms).
    devices:
        Optional heterogeneous fleet: a sequence of catalog names/aliases
        (resolved through :func:`repro.devices.resolve_device`) or ready
        :class:`~repro.gpusim.device.DeviceSpec` objects, one per device.
        Implies ``n_devices=len(devices)`` and switches placement from
        round-robin to cost-aware earliest-finish-time (see module
        docstring).  Mutually exclusive with ``retry``/``faults``/
        ``breaker`` and ``policy="fused"``.
    streams_per_device:
        Concurrent streams per device — the lane count that bounds how many
        jobs a device overlaps.
    policy:
        ``"fifo"``, ``"packed"`` or ``"fused"`` (see module docstring).
        ``"fused"`` stacks compatible jobs into shared engine loops and is
        mutually exclusive with ``retry``/``faults``/``breaker``.
    retry:
        A :class:`~repro.reliability.retry.RetryPolicy` enabling
        retry/failover per job.  Failed jobs become ``status="failed"``
        outcomes instead of raising.
    faults:
        A :class:`~repro.reliability.faults.FaultPlan` injecting
        deterministic faults into selected jobs (implies the default retry
        policy unless ``retry`` is given).
    checkpoint_dir:
        Directory for per-job checkpoints (one subdirectory per job); with
        it, retried jobs resume from their last checkpoint instead of
        restarting.  ``checkpoint_every``/``checkpoint_keep`` set the
        cadence and retention.
    graph:
        Default for the engines' launch-graph fast path
        (:mod:`repro.gpusim.graph`): ``True``/``False`` forces it on or off
        for every job that doesn't say otherwise in its own
        ``engine_options``; ``None`` (default) leaves each engine's own
        default in place.  Jobs running under fault injection fall back to
        eager regardless.
    admission:
        Admission control: an :class:`~repro.batch.admission.AdmissionPolicy`,
        or a mode string (``"degrade"``/``"strict"``) to build one from
        ``max_queue``/``memory_limit_bytes``.
    max_queue, memory_limit_bytes:
        Shorthand for an admission policy's queue bound and per-device
        memory cap (only valid when ``admission`` is not already a policy
        object; either alone enables admission in ``"degrade"`` mode).
    deadline:
        Per-job wall-clock deadline in host seconds — shorthand for
        merging ``Budget(wall_seconds=deadline)`` into every job.
    budget:
        Fleet-wide :class:`~repro.core.budget.Budget` merged
        (tightest-wins) with each job's own ``Job.budget``.
    priority:
        When ``True``, jobs execute and are placed highest-priority-first
        (``Job.priority``, submission order breaking ties) instead of in
        submission order.
    breaker:
        Per-device circuit breakers: a
        :class:`~repro.reliability.breaker.BreakerPolicy`, or ``True`` for
        the default policy.  Implies the reliability execution path.
    guard:
        A :class:`~repro.reliability.guard.SwarmHealthGuard` applied to
        every job (swarm-health repairs inside the engine loop).  One
        shared instance: its event log is reset at each job's start, so
        per-job events are not retained across the batch.
    """

    def __init__(
        self,
        *,
        n_devices: int = 1,
        streams_per_device: int = 4,
        devices=None,
        policy: str = "fifo",
        retry=None,
        faults=None,
        checkpoint_dir=None,
        checkpoint_every: int = 10,
        checkpoint_keep: int = 3,
        graph: bool | None = None,
        admission=None,
        max_queue: int | None = None,
        memory_limit_bytes: int | None = None,
        deadline: float | None = None,
        budget: Budget | None = None,
        priority: bool = False,
        breaker=None,
        guard=None,
    ) -> None:
        if n_devices < 1:
            raise InvalidParameterError(
                f"need at least one device, got {n_devices}"
            )
        if streams_per_device < 1:
            raise InvalidParameterError(
                f"need at least one stream per device, got {streams_per_device}"
            )
        policy = resolve_policy(policy)
        if policy == "fused" and (
            retry is not None or faults is not None or breaker is not None
        ):
            raise InvalidParameterError(
                "policy='fused' does not compose with retry/faults/breaker: "
                "a fault inside a stacked loop cannot be attributed to one "
                "member; use policy='packed' for fault-injected fleets"
            )
        self.device_specs = None
        if devices is not None:
            if (
                retry is not None
                or faults is not None
                or breaker is not None
                or policy == "fused"
            ):
                raise InvalidParameterError(
                    "devices= (a heterogeneous fleet) does not compose with "
                    "retry/faults/breaker or policy='fused': failover and "
                    "fused stacking assume interchangeable devices; use a "
                    "homogeneous n_devices= fleet for those"
                )
            from repro.devices import resolve_device

            specs = tuple(resolve_device(d) for d in devices)
            if not specs:
                raise InvalidParameterError(
                    "devices= must name at least one catalog entry"
                )
            if n_devices not in (1, len(specs)):
                raise InvalidParameterError(
                    f"n_devices={n_devices} contradicts the {len(specs)} "
                    "entries in devices=; pass one or the other"
                )
            n_devices = len(specs)
            self.device_specs = specs
        self.n_devices = n_devices
        self.streams_per_device = streams_per_device
        self.policy = policy
        self.retry = retry
        self.faults = faults
        self.checkpoint_dir = checkpoint_dir
        self.checkpoint_every = checkpoint_every
        self.checkpoint_keep = checkpoint_keep
        self.graph = graph
        self.admission = self._build_admission(
            admission, max_queue=max_queue, memory_limit_bytes=memory_limit_bytes
        )
        if deadline is not None and not deadline > 0:
            raise InvalidParameterError(
                f"deadline must be positive seconds, got {deadline!r}"
            )
        self.deadline = deadline
        if budget is not None and not isinstance(budget, Budget):
            raise InvalidParameterError(
                f"budget must be a repro Budget, got {type(budget).__name__}"
            )
        self.budget = budget
        self.priority = bool(priority)
        self.breaker = self._build_breaker(breaker)
        if guard is not None and not hasattr(guard, "inspect"):
            raise InvalidParameterError(
                "guard must provide inspect() (see repro.reliability.guard), "
                f"got {type(guard).__name__}"
            )
        self.guard = guard
        self._queue: list[Job] = []

    @staticmethod
    def _build_admission(
        admission, *, max_queue, memory_limit_bytes
    ) -> AdmissionPolicy | None:
        if isinstance(admission, AdmissionPolicy):
            if max_queue is not None or memory_limit_bytes is not None:
                raise InvalidParameterError(
                    "pass max_queue/memory_limit_bytes inside the "
                    "AdmissionPolicy when supplying one"
                )
            return admission
        if admission is None:
            if max_queue is None and memory_limit_bytes is None:
                return None
            admission = "degrade"
        if admission not in ADMISSION_MODES:
            raise InvalidParameterError(
                f"admission must be an AdmissionPolicy or one of "
                f"{ADMISSION_MODES}, got {admission!r}"
            )
        return AdmissionPolicy(
            mode=admission,
            max_queue=max_queue,
            memory_limit_bytes=memory_limit_bytes,
        )

    @staticmethod
    def _build_breaker(breaker):
        if breaker is None:
            return None
        from repro.reliability.breaker import BreakerPolicy

        if breaker is True:
            return BreakerPolicy()
        if not isinstance(breaker, BreakerPolicy):
            raise InvalidParameterError(
                "breaker must be True or a BreakerPolicy, got "
                f"{type(breaker).__name__}"
            )
        return breaker

    def _job_engine_options(self, job: Job) -> dict:
        """The job's engine options with the scheduler's graph default mixed
        in (the job's own setting always wins)."""
        return effective_engine_options(job, self.graph)

    def _estimate_job_seconds(self, job: Job, spec) -> float:
        """Predicted solo seconds of *job* on *spec*, for placement only.

        Prices the canonical per-iteration workload — the shape of the
        fused velocity+position update, hierarchy hints included — through
        :func:`~repro.gpusim.costmodel.kernel_cost` and scales by the
        iteration budget.  Deliberately coarse: placement needs the
        *relative* speed of the fleet's devices on this job's element
        count, not an exact runtime (both the probe and the config are
        memoized, so fleets price thousands of jobs cheaply).
        """
        from repro.gpusim.costmodel import kernel_cost
        from repro.gpusim.launch import resource_aware_config

        n_elems = max(1, job.n_particles * job.dim)
        config = resource_aware_config(
            spec, n_elems, kernel_spec=_PLACEMENT_PROBE
        )
        cost = kernel_cost(spec, _PLACEMENT_PROBE, config, n_elems)
        return cost.seconds * max(1, job.max_iter)

    # -- submission ----------------------------------------------------------
    def submit(self, job: Job | None = None, /, **spec: object) -> Job:
        """Queue a job; either a ready :class:`Job` or its field values."""
        if job is None:
            job = Job(**spec)  # type: ignore[arg-type]
        elif spec:
            raise InvalidParameterError(
                "pass either a Job or keyword fields, not both"
            )
        if not isinstance(job, Job):
            raise InvalidParameterError(
                f"submit() requires a Job, got {type(job).__name__}"
            )
        self._queue.append(job)
        return job

    def submit_many(self, jobs) -> list[Job]:
        """Queue an iterable of jobs (specs may be Jobs or field dicts)."""
        out = []
        for job in jobs:
            if isinstance(job, dict):
                out.append(self.submit(**job))
            else:
                out.append(self.submit(job))
        return out

    @property
    def pending(self) -> tuple[Job, ...]:
        """Jobs queued and not yet run."""
        return tuple(self._queue)

    # -- execution -----------------------------------------------------------
    def run(self, jobs=None) -> BatchResult:
        """Execute all queued jobs (plus *jobs*, if given) as one batch.

        Drains the queue.  Returns a :class:`BatchResult` whose per-job
        results are bit-identical to solo runs of the same specs.
        """
        batch = list(self._queue)
        if jobs is not None:
            for job in jobs:
                batch.append(Job(**job) if isinstance(job, dict) else job)
        self._queue = []
        if not batch:
            raise InvalidParameterError("cannot run an empty batch")
        for job in batch:
            if not isinstance(job, Job):
                raise InvalidParameterError(
                    f"batch entries must be Jobs, got {type(job).__name__}"
                )

        fused_plan = None
        if self.policy == "fused":
            from repro.batch.fused import plan_fused_groups

        decisions = None
        if self.admission is not None:
            if self.policy == "fused":
                # Price prospective groups as units so the memory ladder
                # degrades them coherently (see AdmissionPolicy.plan).
                fused_plan = plan_fused_groups(
                    batch, options_for=self._job_engine_options
                )
            if self.device_specs is not None:
                # A job must fit wherever placement puts it, so admission
                # prices memory against the smallest device in the fleet.
                device_mem = min(
                    s.global_mem_bytes for s in self.device_specs
                )
            else:
                from repro.gpusim.device import tesla_v100

                device_mem = tesla_v100().global_mem_bytes
            decisions = self.admission.plan(
                batch,
                streams_per_device=self.streams_per_device,
                device_mem_bytes=device_mem,
                groups=fused_plan,
            )

        health = None
        if self.breaker is not None:
            from repro.reliability.breaker import FleetHealth

            health = FleetHealth(self.n_devices, policy=self.breaker)

        exec_order = list(range(len(batch)))
        if self.priority:
            exec_order.sort(key=lambda i: (-batch[i].priority, i))

        # The job actually run (the degraded variant under admission) and
        # its report (None for shed jobs, which never execute).
        effective: list[Job] = list(batch)
        executed = [None] * len(batch)

        # Fused grouping happens *after* admission so groups are formed
        # over the jobs that actually run (shed members drop out; coherent
        # degradation keeps a squeezed group's fusion key shared).
        group_of: dict[int, int] = {}
        fused_groups: list[list[int]] = []
        if self.policy == "fused":
            admitted = []
            for i in exec_order:
                decision = decisions[i] if decisions is not None else None
                if decision is not None and decision.action == "shed":
                    continue
                if decision is not None and decision.job is not None:
                    effective[i] = decision.job
                admitted.append(i)
            local_groups = plan_fused_groups(
                [effective[i] for i in admitted],
                options_for=self._job_engine_options,
            )
            fused_groups = [[admitted[k] for k in g] for g in local_groups]
            for gi, group in enumerate(fused_groups):
                for i in group:
                    group_of[i] = gi

        group_units: list[tuple[tuple[int, ...], float]] = []
        fused_rows: list[dict] = []
        started_groups: set[int] = set()
        base_now = 0.0
        n_run = 0
        # Estimated busy seconds per device, for heterogeneous placement.
        est_busy = [0.0] * self.n_devices
        for i in exec_order:
            decision = decisions[i] if decisions is not None else None
            if decision is not None and decision.action == "shed":
                continue
            if decision is not None and decision.job is not None:
                effective[i] = decision.job
            gi = group_of.get(i)
            if gi is not None:
                if gi not in started_groups:
                    started_groups.add(gi)
                    indices = tuple(fused_groups[gi])
                    reports, lane_seconds, row = self._execute_fused(
                        indices, effective
                    )
                    for j in indices:
                        executed[j] = reports[j]
                    group_units.append((indices, lane_seconds))
                    fused_rows.append(row)
                    base_now += lane_seconds
                    n_run += len(indices)
                continue
            if self.device_specs is not None:
                # Earliest finish time over the catalog fleet: price the
                # job on every device with the cost-model probe and place
                # it where it would finish soonest (ties to the lowest
                # device index, so schedules are fully deterministic).
                estimates = [
                    self._estimate_job_seconds(effective[i], spec)
                    for spec in self.device_specs
                ]
                preferred = min(
                    range(self.n_devices),
                    key=lambda d: (est_busy[d] + estimates[d], d),
                )
                est_busy[preferred] += estimates[preferred]
            else:
                # Round-robin preferred device so a healthy breaker fleet
                # spreads jobs instead of collapsing onto device 0 (the
                # breaker only overrides the preference when that device
                # is open).
                preferred = n_run % self.n_devices
            if self._overload_enabled:
                executed[i] = self._contained_execute(
                    i,
                    effective[i],
                    health=health,
                    base_now=base_now,
                    preferred_device=preferred,
                )
            else:
                executed[i] = self._execute(
                    i, effective[i], preferred_device=preferred
                )
            base_now += _lane_duration(executed[i])
            n_run += 1

        outcomes, device_makespans = self._schedule(
            effective,
            executed,
            decisions=decisions,
            exec_order=exec_order,
            health=health,
            group_units=group_units,
        )
        profile = self._fleet_profile([r for r in executed if r is not None])
        return BatchResult(
            outcomes=tuple(outcomes),
            policy=self.policy,
            n_devices=self.n_devices,
            streams_per_device=self.streams_per_device,
            makespan_seconds=max(device_makespans, default=0.0),
            device_makespans=tuple(device_makespans),
            fleet_profile=profile,
            admission_rows=(
                tuple(d.to_row() for d in decisions)
                if decisions is not None
                else ()
            ),
            breaker_rows=tuple(health.to_rows()) if health is not None else (),
            fused_rows=tuple(fused_rows),
        )

    # -- internals -----------------------------------------------------------
    @property
    def _reliability_enabled(self) -> bool:
        return (
            self.retry is not None
            or self.faults is not None
            or self.checkpoint_dir is not None
            or self.breaker is not None
        )

    @property
    def _overload_enabled(self) -> bool:
        """Any overload-control knob set: contain errors, never raise."""
        return (
            self.admission is not None
            or self.deadline is not None
            or self.budget is not None
            or self.breaker is not None
        )

    def _effective_budget(self, job: Job) -> Budget | None:
        """Tightest-wins merge of job, fleet and deadline budgets."""
        deadline = (
            Budget(wall_seconds=self.deadline)
            if self.deadline is not None
            else None
        )
        return Budget.merge_all(job.budget, self.budget, deadline)

    def _contained_execute(
        self, index: int, job: Job, *, health, base_now, preferred_device=None
    ):
        """Execute with overload containment: a ReproError that escapes the
        retry machinery (strict admission, configuration problems, exhausted
        non-retryable faults) becomes a failed report, never an exception."""
        from repro.reliability.retry import RecoveryReport

        try:
            return self._execute(
                index,
                job,
                health=health,
                base_now=base_now,
                preferred_device=preferred_device,
            )
        except ReproError as exc:
            exc.with_context(job=job.label)
            return RecoveryReport(
                result=None,
                attempts=1,
                errors=(str(exc),),
                error_rows=(exc.to_row(),),
            )

    def _execute(
        self,
        index: int,
        job: Job,
        *,
        health=None,
        base_now=0.0,
        preferred_device=None,
    ):
        """Run one job; returns a RecoveryReport (trivial on the fast path).

        Without any reliability option the job runs exactly as before —
        one fresh engine, errors propagate.  With reliability enabled the
        job goes through :func:`run_with_recovery`: per-job checkpoints,
        injected faults, retries with failover (breaker-aware when *health*
        is given); a job that exhausts its attempts yields a failed report
        instead of aborting the batch.
        """
        from repro.engines import make_engine

        budget = self._effective_budget(job)
        if not self._reliability_enabled:
            from repro.reliability.retry import RecoveryReport

            options = self._job_engine_options(job)
            device_index = None
            if self.device_specs is not None and preferred_device is not None:
                # Heterogeneous fleet: the job runs on its assigned
                # device's silicon.  CPU/library engines have no device to
                # retarget; they keep the placement but not the spec.
                device_index = preferred_device
                from repro.engines import engine_accepts_device

                if engine_accepts_device(job.engine):
                    options.setdefault(
                        "device", self.device_specs[device_index]
                    )
            engine = make_engine(job.engine, **options)
            result = engine.optimize(
                job.resolved_problem(),
                n_particles=job.n_particles,
                max_iter=job.max_iter,
                params=job.resolved_params,
                record_history=job.record_history,
                budget=budget,
                guard=self.guard,
            )
            return RecoveryReport(
                result=result,
                attempts=1,
                engines=(engine,),
                device_index=device_index,
            )

        from pathlib import Path

        from repro.reliability.checkpoint import CheckpointManager
        from repro.reliability.retry import RetryPolicy, run_with_recovery

        injector = (
            self.faults.injector_for(index, job.label)
            if self.faults is not None
            else None
        )
        manager = None
        if self.checkpoint_dir is not None:
            manager = CheckpointManager(
                Path(self.checkpoint_dir) / f"job{index:04d}",
                every=self.checkpoint_every,
                keep=self.checkpoint_keep,
            )
        return run_with_recovery(
            engine_name=job.engine,
            problem=job.resolved_problem(),
            n_particles=job.n_particles,
            max_iter=job.max_iter,
            params=job.resolved_params,
            record_history=job.record_history,
            engine_options=self._job_engine_options(job),
            policy=self.retry or RetryPolicy(),
            injector=injector,
            checkpoint=manager,
            budget=budget,
            guard=self.guard,
            health=health,
            job_label=job.label,
            preferred_device=preferred_device,
            base_now=base_now,
        )

    def _execute_fused(self, indices, effective):
        """Run one fused group; returns ``(reports_by_index, lane_seconds,
        record_row)``.

        Every member gets the engine, budget, guard and checkpoint manager
        the solo path would have given it — :class:`FusedGroupRunner` only
        changes *how* the iterations are driven, never what they compute.
        With any overload knob set, an escaping :class:`ReproError` fails
        the whole group (its members' states are interdependent mid-loop)
        instead of aborting the batch.
        """
        from repro.batch.fused import FusedGroupRunner
        from repro.engines import make_engine
        from repro.reliability.retry import RecoveryReport

        labels = [effective[i].label for i in indices]
        try:
            runs = []
            engines = {}
            for i in indices:
                job = effective[i]
                engine = make_engine(
                    job.engine, **self._job_engine_options(job)
                )
                manager = None
                restore = None
                if self.checkpoint_dir is not None:
                    from pathlib import Path

                    from repro.reliability.checkpoint import CheckpointManager

                    manager = CheckpointManager(
                        Path(self.checkpoint_dir) / f"job{i:04d}",
                        every=self.checkpoint_every,
                        keep=self.checkpoint_keep,
                    )
                    restore = manager.load_latest()
                run = engine.start_run(
                    job.resolved_problem(),
                    n_particles=job.n_particles,
                    max_iter=job.max_iter,
                    params=job.resolved_params,
                    record_history=job.record_history,
                    checkpoint=manager,
                    restore=restore,
                    budget=self._effective_budget(job),
                    guard=self.guard,
                )
                runs.append((i, run))
                engines[i] = engine
            runner = FusedGroupRunner(runs)
            results = runner.execute()
        except ReproError as exc:
            if not self._overload_enabled:
                raise
            exc.with_context(job=", ".join(labels))
            reports = {
                i: RecoveryReport(
                    result=None,
                    attempts=1,
                    errors=(str(exc),),
                    error_rows=(exc.to_row(),),
                )
                for i in indices
            }
            row = {
                "indices": list(indices),
                "members": labels,
                "status": "failed",
                "error": str(exc),
            }
            return reports, 0.0, row
        reports = {
            i: RecoveryReport(
                result=result, attempts=1, engines=(engines[i],)
            )
            for (i, _run), result in zip(runs, results)
        }
        row = {
            "indices": list(indices),
            "members": labels,
            "status": "completed",
            **runner.info(),
        }
        return reports, runner.lane_seconds, row

    def _schedule(
        self,
        batch: list[Job],
        executed,
        *,
        decisions=None,
        exec_order=None,
        health=None,
        group_units=None,
    ) -> tuple[list[JobOutcome], list[float]]:
        """Replay job durations onto shared per-device stream timelines.

        Shed jobs (``executed[i] is None``) never touch a lane.  When a
        breaker fleet placed a job on a specific device
        (``report.device_index``), placement is pinned to that device's
        lanes — open-breaker devices stop receiving work and the schedule
        re-packs onto the healthy ones.

        Placement arithmetic lives in
        :class:`~repro.batch.dispatch.FleetTimeline` (shared with the
        serving layer); the rule is unchanged from the Stream-based
        implementation — earliest-available lane, ties to the lowest
        (device, stream) — so schedules are bit-identical to prior
        releases.
        """
        timeline = FleetTimeline(self.n_devices, self.streams_per_device)

        order = [
            i
            for i in (exec_order if exec_order is not None else range(len(batch)))
            if executed[i] is not None
        ]

        # Placement units: a fused group shares one lane segment (its
        # modelled group duration); every other job is its own unit.
        group_index: dict[int, int] = {}
        if group_units:
            for gi, (indices, _lane_s) in enumerate(group_units):
                for i in indices:
                    group_index[i] = gi
        units: list[tuple[tuple[int, ...], float]] = []
        placed_groups: set[int] = set()
        for i in order:
            gi = group_index.get(i)
            if gi is None:
                units.append(((i,), _lane_duration(executed[i])))
            elif gi not in placed_groups:
                placed_groups.add(gi)
                indices, lane_seconds = group_units[gi]
                live = tuple(j for j in indices if executed[j] is not None)
                units.append((live, lane_seconds))
        if self.policy in ("packed", "fused"):
            # LPT bin-packing: longest units placed first, ties broken by
            # submission order so the schedule is fully deterministic.
            units.sort(key=lambda u: (-u[1], u[0][0]))

        placements: dict[int, LanePlacement] = {}
        for unit, duration in units:
            report = executed[unit[0]]
            devices = None
            if (
                (health is not None or self.device_specs is not None)
                and report.device_index is not None
                and 0 <= report.device_index < self.n_devices
            ):
                devices = (report.device_index,)
            placement = timeline.place(duration, devices=devices)
            for i in unit:
                placements[i] = placement

        device_makespans = timeline.device_makespans()

        outcomes = []
        for i, job in enumerate(batch):
            decision = decisions[i] if decisions is not None else None
            report = executed[i]
            if report is None:
                # Shed at admission: terminal outcome, no lane, no result.
                outcomes.append(
                    JobOutcome(
                        job=job,
                        result=None,
                        device_index=-1,
                        stream_index=-1,
                        submit_order=i,
                        start_seconds=0.0,
                        end_seconds=0.0,
                        status="shed",
                        attempts=0,
                        admission_reason=(
                            decision.reason if decision is not None else ""
                        ),
                    )
                )
                continue
            placement = placements[i]
            if report.result is None:
                status = "failed"
            elif report.result.status != "completed":
                # The engine's own terminal status (deadline_exceeded /
                # budget_exhausted) wins over the admission bookkeeping.
                status = report.result.status
            elif decision is not None and decision.action == "degrade":
                status = "degraded"
            else:
                status = "completed"
            outcomes.append(
                JobOutcome(
                    job=job,
                    result=report.result,
                    device_index=placement.device_index,
                    stream_index=placement.stream_index,
                    submit_order=i,
                    start_seconds=placement.start_seconds,
                    end_seconds=placement.end_seconds,
                    status=status,
                    attempts=report.attempts,
                    error=report.error,
                    lost_seconds=report.lost_seconds,
                    backoff_seconds=report.backoff_seconds,
                    fell_back_to_cpu=report.fell_back_to_cpu,
                    admission_reason=(
                        decision.reason
                        if decision is not None and decision.action != "admit"
                        else ""
                    ),
                )
            )
        return outcomes, device_makespans

    def _fleet_profile(self, executed) -> ProfileReport:
        """Merge every GPU job's launcher accumulators into one report.

        Reuses the existing aggregation-first profiler path: per-job
        :class:`LaunchStats` buckets are summed per ``(kernel, section)``
        key, then folded by :func:`build_report_from_stats` — so Table-3
        style throughput metrics are available for the whole fleet.
        """
        merged: dict[tuple[str, str | None], LaunchStats] = {}
        sections: dict[str, float] = {}
        all_contexts = []
        for report in executed:
            # Every attempt's engine contributes — a failed attempt's
            # kernels really ran on the simulated fleet, and its section
            # totals are part of what the fleet spent.  The recovery clock
            # adds the lost_work/retry_backoff sections alongside them.
            clocks = {
                id(report.recovery_clock): report.recovery_clock
            }
            for engine in report.engines:
                contexts = list(self._engine_contexts(engine))
                all_contexts.extend(contexts)
                for c in contexts:
                    clocks[id(c.clock)] = c.clock
                clocks.setdefault(id(engine.clock), engine.clock)
            for clock in clocks.values():
                for label, seconds in clock.section_totals.items():
                    sections[label] = sections.get(label, 0.0) + seconds
        for ctx in all_contexts:
            for key, bucket in ctx.launcher.stats.items():
                into = merged.get(key)
                if into is None:
                    merged[key] = LaunchStats(
                        kernel_name=bucket.kernel_name,
                        section=bucket.section,
                        launches=bucket.launches,
                        total_elems=bucket.total_elems,
                        seconds=bucket.seconds,
                        body_seconds=bucket.body_seconds,
                        bytes_read=bucket.bytes_read,
                        bytes_written=bucket.bytes_written,
                        bytes_l2=bucket.bytes_l2,
                        flops=bucket.flops,
                        occupancy_sum=bucket.occupancy_sum,
                    )
                else:
                    into.launches += bucket.launches
                    into.total_elems += bucket.total_elems
                    into.seconds += bucket.seconds
                    into.body_seconds += bucket.body_seconds
                    into.bytes_read += bucket.bytes_read
                    into.bytes_written += bucket.bytes_written
                    into.bytes_l2 += bucket.bytes_l2
                    into.flops += bucket.flops
                    into.occupancy_sum += bucket.occupancy_sum
        return build_report_from_stats(merged, sections)

    @staticmethod
    def _engine_contexts(engine):
        """GPU contexts owned by *engine* (workers included for multi-GPU)."""
        ctx = getattr(engine, "ctx", None)
        if ctx is not None:
            yield ctx
        for worker in getattr(engine, "workers", ()):
            worker_ctx = getattr(worker, "ctx", None)
            if worker_ctx is not None:
                yield worker_ctx
