"""Batch job scheduling over simulated streams (and devices).

The repo's north star is a service shape: many concurrent small/medium PSO
jobs, not one giant swarm.  :class:`BatchScheduler` multiplexes independent
:class:`~repro.batch.job.Job` specs onto the simulated hardware — a fleet of
``n_devices`` simulated GPUs, each exposing ``streams_per_device`` CUDA-style
streams (:class:`repro.gpusim.streams.Stream`) on one shared
:class:`~repro.gpusim.clock.SimClock` per device.

Determinism contract
--------------------
Every job executes on a *fresh* engine with its own Philox stream, allocator
and clock, so its trajectory, best value and solo simulated runtime are
bit-identical to a standalone ``engine.optimize`` call.  The scheduler then
replays each job's device work onto its assigned stream of the shared
per-device timeline.  Streams are FIFO and a job's launches are issued
back-to-back, so enqueueing the job's kernel sequence is time-equivalent to
enqueueing its total duration — which is what the replay does, keeping
start/end arithmetic exact.  Work on *different* streams overlaps, so the
batch makespan reflects genuine concurrency: for small and medium swarms
(the workload this layer targets) a single job occupies a small fraction of
a V100's SMs and full stream overlap is the faithful first-order model.

Packing policies
----------------
``"fifo"`` assigns jobs in submission order to the earliest-available
stream (classic list scheduling — no job is ever starved: each waits only
for jobs that were ahead of it in the queue).  ``"packed"`` is the
size-aware option: jobs are ordered longest-first (LPT bin-packing) before
the same earliest-available assignment, which tightens the makespan when
job durations are skewed.  Both policies respect stream capacity by
construction — a stream runs exactly one job at a time.

Metrics
-------
Fleet-level kernel statistics flow through the existing profiler
(:func:`repro.gpusim.profiler.build_report_from_stats` over the merged
per-job launcher accumulators), and :class:`BatchResult` reports queue
waits, per-device occupancy and the makespan-vs-sum-of-solo speedup that
``benchmarks/bench_batch.py`` tracks.

Reliability
-----------
The scheduler composes with :mod:`repro.reliability`: pass ``retry`` (a
:class:`~repro.reliability.retry.RetryPolicy`), ``faults`` (a
:class:`~repro.reliability.faults.FaultPlan`) and/or ``checkpoint_dir`` to
run every job under :func:`~repro.reliability.retry.run_with_recovery` —
per-job checkpoints, deterministic fault injection, retry with simulated
backoff, failover onto a fresh simulated device, and a last-resort CPU
fallback.  Failed jobs become ``status="failed"`` outcomes instead of
aborting the batch; recovery overhead occupies the job's lane (stretching
the makespan honestly) and is merged into the fleet profile under the
``lost_work``/``retry_backoff`` sections.  With none of the three options
set, execution takes the historical fast path and engine errors propagate.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.batch.job import Job, JobOutcome
from repro.core.results import OptimizeResult
from repro.errors import InvalidParameterError
from repro.gpusim.clock import SimClock
from repro.gpusim.launch import LaunchStats
from repro.gpusim.profiler import ProfileReport, build_report_from_stats
from repro.gpusim.streams import Stream
from repro.utils.tables import format_table

__all__ = ["BatchScheduler", "BatchResult", "POLICIES"]

#: Supported packing policies, in documentation order.
POLICIES = ("fifo", "packed")


@dataclass
class _Lane:
    """One stream of one device — the unit of placement."""

    device_index: int
    stream_index: int
    stream: Stream


@dataclass(frozen=True)
class BatchResult:
    """Outcome of one batch run: per-job results plus fleet metrics."""

    outcomes: tuple[JobOutcome, ...]
    policy: str
    n_devices: int
    streams_per_device: int
    makespan_seconds: float
    device_makespans: tuple[float, ...]
    fleet_profile: ProfileReport | None = field(repr=False, default=None)

    # -- fleet metrics -------------------------------------------------------
    @property
    def results(self) -> list[OptimizeResult]:
        """Per-job results, in submission order (``None`` for failed jobs)."""
        return [o.result for o in self.outcomes]

    @property
    def n_failed(self) -> int:
        return sum(1 for o in self.outcomes if not o.succeeded)

    @property
    def all_succeeded(self) -> bool:
        return self.n_failed == 0

    @property
    def total_retries(self) -> int:
        """Extra attempts beyond the first, summed over all jobs."""
        return sum(o.attempts - 1 for o in self.outcomes)

    @property
    def lost_seconds(self) -> float:
        """Simulated seconds computed and discarded with failed attempts."""
        return sum(o.lost_seconds for o in self.outcomes)

    @property
    def backoff_seconds(self) -> float:
        """Simulated seconds the fleet spent backing off between attempts."""
        return sum(o.backoff_seconds for o in self.outcomes)

    @property
    def recovery_seconds(self) -> float:
        """Total simulated recovery overhead across the fleet."""
        return self.lost_seconds + self.backoff_seconds

    @property
    def sum_solo_seconds(self) -> float:
        """Simulated time a one-job-at-a-time serial run would take."""
        return sum(o.solo_seconds for o in self.outcomes)

    @property
    def speedup(self) -> float:
        """Sum-of-solo over makespan — the batching win from overlap."""
        if self.makespan_seconds <= 0.0:
            return 1.0
        return self.sum_solo_seconds / self.makespan_seconds

    @property
    def mean_queue_wait_seconds(self) -> float:
        if not self.outcomes:
            return 0.0
        return sum(o.queue_wait_seconds for o in self.outcomes) / len(
            self.outcomes
        )

    @property
    def max_queue_wait_seconds(self) -> float:
        return max((o.queue_wait_seconds for o in self.outcomes), default=0.0)

    def device_occupancy(self, device_index: int) -> float:
        """Busy fraction of one device's stream-seconds over the makespan."""
        if self.makespan_seconds <= 0.0:
            return 0.0
        busy = sum(
            o.solo_seconds
            for o in self.outcomes
            if o.device_index == device_index
        )
        return busy / (self.streams_per_device * self.makespan_seconds)

    @property
    def fleet_occupancy(self) -> float:
        """Busy fraction of all stream-seconds over the makespan."""
        if self.makespan_seconds <= 0.0:
            return 0.0
        lanes = self.n_devices * self.streams_per_device
        return self.sum_solo_seconds / (lanes * self.makespan_seconds)

    # -- presentation --------------------------------------------------------
    def summary(self) -> str:
        """One aligned table: placement, timing and result per job."""
        rows = [
            [
                o.job.label,
                f"d{o.device_index}/s{o.stream_index}",
                o.queue_wait_seconds,
                o.solo_seconds,
                o.end_seconds,
                o.result.best_value if o.result is not None else "FAILED",
            ]
            for o in self.outcomes
        ]
        table = format_table(
            ["job", "lane", "wait_s", "solo_s", "end_s", "best"],
            rows,
            title=(
                f"batch: {len(self.outcomes)} jobs, policy={self.policy}, "
                f"{self.n_devices} device(s) x {self.streams_per_device} "
                f"stream(s)"
            ),
            float_fmt=".4g",
        )
        footer = (
            f"makespan={self.makespan_seconds:.6g}s "
            f"sum-of-solo={self.sum_solo_seconds:.6g}s "
            f"speedup={self.speedup:.2f}x "
            f"occupancy={self.fleet_occupancy:.1%}"
        )
        if self.total_retries or self.n_failed:
            footer += (
                f"\nrecovery: {self.total_retries} retr"
                f"{'y' if self.total_retries == 1 else 'ies'}, "
                f"{self.n_failed} failed job(s), "
                f"lost={self.lost_seconds:.6g}s "
                f"backoff={self.backoff_seconds:.6g}s "
                f"overhead={self.recovery_seconds:.6g}s"
            )
        return f"{table}\n{footer}"

    def failure_table(self) -> str:
        """Aligned table of failed jobs and their last error; '' if none."""
        failed = [o for o in self.outcomes if not o.succeeded]
        if not failed:
            return ""
        rows = [
            [
                o.job.label,
                f"d{o.device_index}/s{o.stream_index}",
                o.attempts,
                o.lost_seconds,
                (o.error or "")[:72],
            ]
            for o in failed
        ]
        return format_table(
            ["job", "lane", "attempts", "lost_s", "last error"],
            rows,
            title=f"{len(failed)} job(s) failed",
            float_fmt=".4g",
        )

    def to_dict(self) -> dict:
        """JSON-safe dictionary (versioned like :mod:`repro.io` payloads)."""
        from repro.io import SCHEMA_VERSION, result_to_dict

        return {
            "schema_version": SCHEMA_VERSION,
            "policy": self.policy,
            "n_devices": self.n_devices,
            "streams_per_device": self.streams_per_device,
            "makespan_seconds": self.makespan_seconds,
            "sum_solo_seconds": self.sum_solo_seconds,
            "speedup": self.speedup,
            "fleet_occupancy": self.fleet_occupancy,
            "device_makespans": list(self.device_makespans),
            "n_failed": self.n_failed,
            "total_retries": self.total_retries,
            "lost_seconds": self.lost_seconds,
            "backoff_seconds": self.backoff_seconds,
            "recovery_seconds": self.recovery_seconds,
            "jobs": [
                {
                    "label": o.job.label,
                    "device": o.device_index,
                    "stream": o.stream_index,
                    "start_seconds": o.start_seconds,
                    "end_seconds": o.end_seconds,
                    "queue_wait_seconds": o.queue_wait_seconds,
                    "status": o.status,
                    "attempts": o.attempts,
                    "error": o.error,
                    "lost_seconds": o.lost_seconds,
                    "backoff_seconds": o.backoff_seconds,
                    "fell_back_to_cpu": o.fell_back_to_cpu,
                    "result": (
                        result_to_dict(o.result)
                        if o.result is not None
                        else None
                    ),
                }
                for o in self.outcomes
            ],
        }


class BatchScheduler:
    """Packs independent PSO jobs onto simulated streams and devices.

    Parameters
    ----------
    n_devices:
        Number of simulated devices in the fleet; each gets its own shared
        :class:`SimClock` (the multi-device analogue of the paper's
        Section 3.5 particle-splitting fleet, here multiplexing whole jobs
        instead of sub-swarms).
    streams_per_device:
        Concurrent streams per device — the lane count that bounds how many
        jobs a device overlaps.
    policy:
        ``"fifo"`` or ``"packed"`` (see module docstring).
    retry:
        A :class:`~repro.reliability.retry.RetryPolicy` enabling
        retry/failover per job.  Failed jobs become ``status="failed"``
        outcomes instead of raising.
    faults:
        A :class:`~repro.reliability.faults.FaultPlan` injecting
        deterministic faults into selected jobs (implies the default retry
        policy unless ``retry`` is given).
    checkpoint_dir:
        Directory for per-job checkpoints (one subdirectory per job); with
        it, retried jobs resume from their last checkpoint instead of
        restarting.  ``checkpoint_every``/``checkpoint_keep`` set the
        cadence and retention.
    graph:
        Default for the engines' launch-graph fast path
        (:mod:`repro.gpusim.graph`): ``True``/``False`` forces it on or off
        for every job that doesn't say otherwise in its own
        ``engine_options``; ``None`` (default) leaves each engine's own
        default in place.  Jobs running under fault injection fall back to
        eager regardless.
    """

    def __init__(
        self,
        *,
        n_devices: int = 1,
        streams_per_device: int = 4,
        policy: str = "fifo",
        retry=None,
        faults=None,
        checkpoint_dir=None,
        checkpoint_every: int = 10,
        checkpoint_keep: int = 3,
        graph: bool | None = None,
    ) -> None:
        if n_devices < 1:
            raise InvalidParameterError(
                f"need at least one device, got {n_devices}"
            )
        if streams_per_device < 1:
            raise InvalidParameterError(
                f"need at least one stream per device, got {streams_per_device}"
            )
        if policy not in POLICIES:
            raise InvalidParameterError(
                f"unknown policy {policy!r}; choose from {POLICIES}"
            )
        self.n_devices = n_devices
        self.streams_per_device = streams_per_device
        self.policy = policy
        self.retry = retry
        self.faults = faults
        self.checkpoint_dir = checkpoint_dir
        self.checkpoint_every = checkpoint_every
        self.checkpoint_keep = checkpoint_keep
        self.graph = graph
        self._queue: list[Job] = []

    def _job_engine_options(self, job: Job) -> dict:
        """The job's engine options with the scheduler's graph default mixed
        in (the job's own setting always wins)."""
        opts = dict(job.engine_options)
        if self.graph is not None:
            from repro.engines import engine_supports_graph

            if engine_supports_graph(job.engine):
                opts.setdefault("graph", self.graph)
        return opts

    # -- submission ----------------------------------------------------------
    def submit(self, job: Job | None = None, /, **spec: object) -> Job:
        """Queue a job; either a ready :class:`Job` or its field values."""
        if job is None:
            job = Job(**spec)  # type: ignore[arg-type]
        elif spec:
            raise InvalidParameterError(
                "pass either a Job or keyword fields, not both"
            )
        if not isinstance(job, Job):
            raise InvalidParameterError(
                f"submit() requires a Job, got {type(job).__name__}"
            )
        self._queue.append(job)
        return job

    def submit_many(self, jobs) -> list[Job]:
        """Queue an iterable of jobs (specs may be Jobs or field dicts)."""
        out = []
        for job in jobs:
            if isinstance(job, dict):
                out.append(self.submit(**job))
            else:
                out.append(self.submit(job))
        return out

    @property
    def pending(self) -> tuple[Job, ...]:
        """Jobs queued and not yet run."""
        return tuple(self._queue)

    # -- execution -----------------------------------------------------------
    def run(self, jobs=None) -> BatchResult:
        """Execute all queued jobs (plus *jobs*, if given) as one batch.

        Drains the queue.  Returns a :class:`BatchResult` whose per-job
        results are bit-identical to solo runs of the same specs.
        """
        batch = list(self._queue)
        if jobs is not None:
            for job in jobs:
                batch.append(Job(**job) if isinstance(job, dict) else job)
        self._queue = []
        if not batch:
            raise InvalidParameterError("cannot run an empty batch")
        for job in batch:
            if not isinstance(job, Job):
                raise InvalidParameterError(
                    f"batch entries must be Jobs, got {type(job).__name__}"
                )

        executed = [self._execute(i, job) for i, job in enumerate(batch)]
        outcomes, device_makespans = self._schedule(batch, executed)
        profile = self._fleet_profile(executed)
        return BatchResult(
            outcomes=tuple(outcomes),
            policy=self.policy,
            n_devices=self.n_devices,
            streams_per_device=self.streams_per_device,
            makespan_seconds=max(device_makespans, default=0.0),
            device_makespans=tuple(device_makespans),
            fleet_profile=profile,
        )

    # -- internals -----------------------------------------------------------
    @property
    def _reliability_enabled(self) -> bool:
        return (
            self.retry is not None
            or self.faults is not None
            or self.checkpoint_dir is not None
        )

    def _execute(self, index: int, job: Job):
        """Run one job; returns a RecoveryReport (trivial on the fast path).

        Without any reliability option the job runs exactly as before —
        one fresh engine, errors propagate.  With reliability enabled the
        job goes through :func:`run_with_recovery`: per-job checkpoints,
        injected faults, retries with failover; a job that exhausts its
        attempts yields a failed report instead of aborting the batch.
        """
        from repro.engines import make_engine

        if not self._reliability_enabled:
            from repro.reliability.retry import RecoveryReport

            engine = make_engine(job.engine, **self._job_engine_options(job))
            result = engine.optimize(
                job.resolved_problem(),
                n_particles=job.n_particles,
                max_iter=job.max_iter,
                params=job.resolved_params,
                record_history=job.record_history,
            )
            return RecoveryReport(
                result=result, attempts=1, engines=(engine,)
            )

        from pathlib import Path

        from repro.reliability.checkpoint import CheckpointManager
        from repro.reliability.retry import RetryPolicy, run_with_recovery

        injector = (
            self.faults.injector_for(index, job.label)
            if self.faults is not None
            else None
        )
        manager = None
        if self.checkpoint_dir is not None:
            manager = CheckpointManager(
                Path(self.checkpoint_dir) / f"job{index:04d}",
                every=self.checkpoint_every,
                keep=self.checkpoint_keep,
            )
        return run_with_recovery(
            engine_name=job.engine,
            problem=job.resolved_problem(),
            n_particles=job.n_particles,
            max_iter=job.max_iter,
            params=job.resolved_params,
            record_history=job.record_history,
            engine_options=self._job_engine_options(job),
            policy=self.retry or RetryPolicy(),
            injector=injector,
            checkpoint=manager,
        )

    def _schedule(
        self, batch: list[Job], executed
    ) -> tuple[list[JobOutcome], list[float]]:
        """Replay job durations onto shared per-device stream timelines."""
        clocks = [SimClock() for _ in range(self.n_devices)]
        lanes = [
            _Lane(dev, s, Stream(clocks[dev]))
            for dev in range(self.n_devices)
            for s in range(self.streams_per_device)
        ]

        def lane_duration(report) -> float:
            # The lane holds the job's fault-free work *plus* any recovery
            # overhead (lost attempts, simulated backoff) — retries stretch
            # the schedule exactly as they would a real fleet's.
            solo = (
                report.result.elapsed_seconds
                if report.result is not None
                else 0.0
            )
            return solo + report.recovery_seconds

        order = list(range(len(batch)))
        if self.policy == "packed":
            # LPT bin-packing: longest jobs placed first, ties broken by
            # submission order so the schedule is fully deterministic.
            order.sort(key=lambda i: (-lane_duration(executed[i]), i))

        placements: dict[int, tuple[_Lane, float, float]] = {}
        for i in order:
            # Earliest-available lane; ties go to the lowest lane index so
            # single-lane batches degenerate to the serial schedule.
            lane = min(lanes, key=lambda ln: ln.stream.horizon)
            start = max(lane.stream.horizon, lane.stream.clock.now)
            end = lane.stream.enqueue(lane_duration(executed[i]))
            lane.stream.record_event()
            placements[i] = (lane, start, end)

        # Drain every device: the host "joins" the batch, advancing each
        # shared clock to its streams' horizon (the device makespan).
        for lane in lanes:
            lane.stream.synchronize()
        device_makespans = [clock.now for clock in clocks]

        outcomes = []
        for i, job in enumerate(batch):
            lane, start, end = placements[i]
            report = executed[i]
            outcomes.append(
                JobOutcome(
                    job=job,
                    result=report.result,
                    device_index=lane.device_index,
                    stream_index=lane.stream_index,
                    submit_order=i,
                    start_seconds=start,
                    end_seconds=end,
                    status=(
                        "succeeded" if report.result is not None else "failed"
                    ),
                    attempts=report.attempts,
                    error=report.error,
                    lost_seconds=report.lost_seconds,
                    backoff_seconds=report.backoff_seconds,
                    fell_back_to_cpu=report.fell_back_to_cpu,
                )
            )
        return outcomes, device_makespans

    def _fleet_profile(self, executed) -> ProfileReport:
        """Merge every GPU job's launcher accumulators into one report.

        Reuses the existing aggregation-first profiler path: per-job
        :class:`LaunchStats` buckets are summed per ``(kernel, section)``
        key, then folded by :func:`build_report_from_stats` — so Table-3
        style throughput metrics are available for the whole fleet.
        """
        merged: dict[tuple[str, str | None], LaunchStats] = {}
        sections: dict[str, float] = {}
        all_contexts = []
        for report in executed:
            # Every attempt's engine contributes — a failed attempt's
            # kernels really ran on the simulated fleet, and its section
            # totals are part of what the fleet spent.  The recovery clock
            # adds the lost_work/retry_backoff sections alongside them.
            clocks = {
                id(report.recovery_clock): report.recovery_clock
            }
            for engine in report.engines:
                contexts = list(self._engine_contexts(engine))
                all_contexts.extend(contexts)
                for c in contexts:
                    clocks[id(c.clock)] = c.clock
                clocks.setdefault(id(engine.clock), engine.clock)
            for clock in clocks.values():
                for label, seconds in clock.section_totals.items():
                    sections[label] = sections.get(label, 0.0) + seconds
        for ctx in all_contexts:
            for key, bucket in ctx.launcher.stats.items():
                into = merged.get(key)
                if into is None:
                    merged[key] = LaunchStats(
                        kernel_name=bucket.kernel_name,
                        section=bucket.section,
                        launches=bucket.launches,
                        total_elems=bucket.total_elems,
                        seconds=bucket.seconds,
                        body_seconds=bucket.body_seconds,
                        bytes_read=bucket.bytes_read,
                        bytes_written=bucket.bytes_written,
                        flops=bucket.flops,
                        occupancy_sum=bucket.occupancy_sum,
                    )
                else:
                    into.launches += bucket.launches
                    into.total_elems += bucket.total_elems
                    into.seconds += bucket.seconds
                    into.body_seconds += bucket.body_seconds
                    into.bytes_read += bucket.bytes_read
                    into.bytes_written += bucket.bytes_written
                    into.flops += bucket.flops
                    into.occupancy_sum += bucket.occupancy_sum
        return build_report_from_stats(merged, sections)

    @staticmethod
    def _engine_contexts(engine):
        """GPU contexts owned by *engine* (workers included for multi-GPU)."""
        ctx = getattr(engine, "ctx", None)
        if ctx is not None:
            yield ctx
        for worker in getattr(engine, "workers", ()):
            worker_ctx = getattr(worker, "ctx", None)
            if worker_ctx is not None:
                yield worker_ctx
