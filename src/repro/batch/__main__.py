"""CLI for the batch scheduler: ``python -m repro.batch``.

Runs either the reference mixed workload (``--jobs N``) or a job list from
a JSON spec file (``--spec jobs.json``, a list of Job field dicts), prints
the per-job placement table and fleet metrics, and optionally writes the
full versioned payload with ``--out`` (written atomically).

``--policy`` picks the packing mode: ``fifo``, ``packed`` (LPT), or
``fused`` — compatible jobs stacked into one multi-swarm engine loop per
stream (bit-identical per-job results, fused groups reported in the
payload; incompatible with ``--faults``/``--retry``/``--breaker``).

Reliability flags: ``--checkpoint-dir`` checkpoints every job (retries
resume instead of restarting), ``--faults`` injects a deterministic fault
plan (a JSON file, or the literal ``drill`` for the reference mixed-fault
plan), and ``--retry N`` sets the attempt budget.  When any job still
fails, the CLI prints a per-job failure table and exits nonzero.

Overload flags: ``--deadline S`` (host wall-seconds per job) and
``--budget-sim-seconds S`` (simulated seconds per job — deterministic, use
this in CI) bound each job via a :class:`~repro.core.budget.Budget`;
``--max-queue N`` bounds the batch with deterministic load shedding,
``--admission {degrade,strict}`` picks the shedding mode,
``--memory-limit-mb M`` caps estimated per-device residency,
``--priority`` executes jobs highest-priority-first, ``--breaker``
enables per-device circuit breakers, and ``--failures-json PATH`` writes
a machine-readable record of every failure, shed and admission decision.
Exit code: 1 when any job failed, else 2 when any was shed, else 0.

``--seed`` makes runs reproducible end-to-end: it seeds the generated
workload, and spec jobs that don't pin their own ``seed`` get
deterministic per-job seeds derived from it.

Example spec file::

    [
      {"problem": "sphere", "dim": 32, "n_particles": 256, "seed": 1},
      {"problem": "ackley", "dim": 16, "max_iter": 150, "engine": "gpu-pso"}
    ]
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

from repro.batch.job import Job
from repro.batch.scheduler import POLICIES, BatchScheduler
from repro.batch.workload import mixed_workload
from repro.io import atomic_write_text


def _load_spec(path: str, base_seed: int) -> list[Job]:
    payload = json.loads(Path(path).read_text())
    if not isinstance(payload, list):
        raise SystemExit(f"{path}: expected a JSON list of job specs")
    jobs = []
    for index, spec in enumerate(payload):
        job = Job(**spec)
        if "seed" not in spec:
            # Unseeded spec entries get deterministic per-job seeds so the
            # whole CLI run is reproducible from --seed alone.
            job = job.with_overrides(seed=base_seed + index)
        jobs.append(job)
    return jobs


def _load_faults(arg: str, n_jobs: int, seed: int):
    from repro.reliability import FaultPlan

    if arg == "drill":
        return FaultPlan.drill(n_jobs, seed=seed)
    return FaultPlan.from_json_file(arg)


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.batch", description=__doc__
    )
    parser.add_argument(
        "--jobs",
        type=int,
        default=16,
        help="size of the generated mixed workload (ignored with --spec)",
    )
    parser.add_argument(
        "--spec", help="JSON file with a list of job field dicts"
    )
    parser.add_argument("--devices", type=int, default=1)
    parser.add_argument("--streams", type=int, default=4)
    parser.add_argument("--policy", choices=POLICIES, default="fifo")
    parser.add_argument(
        "--seed",
        type=int,
        default=1000,
        help="base seed for the workload and for unseeded spec jobs",
    )
    parser.add_argument("--out", help="write the versioned batch JSON here")
    parser.add_argument(
        "--checkpoint-dir",
        help="checkpoint every job under this directory (retries resume)",
    )
    parser.add_argument(
        "--faults",
        help="fault-plan JSON file, or 'drill' for the reference mixed plan",
    )
    parser.add_argument(
        "--retry",
        type=int,
        default=None,
        metavar="N",
        help="retry policy attempt budget (enables retry/failover)",
    )
    parser.add_argument(
        "--deadline",
        type=float,
        default=None,
        metavar="S",
        help="per-job wall-clock deadline in host seconds",
    )
    parser.add_argument(
        "--budget-sim-seconds",
        type=float,
        default=None,
        metavar="S",
        help="per-job budget in simulated seconds (deterministic)",
    )
    parser.add_argument(
        "--max-queue",
        type=int,
        default=None,
        metavar="N",
        help="admission queue bound: lowest-priority overflow jobs are shed",
    )
    parser.add_argument(
        "--admission",
        choices=("degrade", "strict"),
        default=None,
        help="admission mode (degrade sheds/reduces; strict refuses loudly)",
    )
    parser.add_argument(
        "--memory-limit-mb",
        type=float,
        default=None,
        metavar="M",
        help="per-device memory cap for the admission estimate",
    )
    parser.add_argument(
        "--priority",
        action="store_true",
        help="execute and place jobs highest-priority-first",
    )
    parser.add_argument(
        "--breaker",
        action="store_true",
        help="per-device circuit breakers (failing devices stop getting work)",
    )
    parser.add_argument(
        "--failures-json",
        metavar="PATH",
        help="write failures/shed jobs and admission decisions here as JSON",
    )
    args = parser.parse_args(argv)

    jobs = (
        _load_spec(args.spec, args.seed)
        if args.spec
        else mixed_workload(args.jobs, base_seed=args.seed)
    )

    retry = None
    if args.retry is not None:
        from repro.reliability import RetryPolicy

        retry = RetryPolicy(max_attempts=args.retry)
    faults = (
        _load_faults(args.faults, len(jobs), args.seed)
        if args.faults
        else None
    )

    budget = None
    if args.budget_sim_seconds is not None:
        from repro.core.budget import Budget

        budget = Budget(sim_seconds=args.budget_sim_seconds)
    memory_limit_bytes = (
        int(args.memory_limit_mb * 1024 * 1024)
        if args.memory_limit_mb is not None
        else None
    )
    admission = args.admission
    if admission is None and (
        args.max_queue is not None or memory_limit_bytes is not None
    ):
        admission = "degrade"

    scheduler = BatchScheduler(
        n_devices=args.devices,
        streams_per_device=args.streams,
        policy=args.policy,
        retry=retry,
        faults=faults,
        checkpoint_dir=args.checkpoint_dir,
        admission=admission,
        max_queue=args.max_queue,
        memory_limit_bytes=memory_limit_bytes,
        deadline=args.deadline,
        budget=budget,
        priority=args.priority,
        breaker=args.breaker or None,
    )
    batch = scheduler.run(jobs)
    print(batch.summary())
    if batch.fleet_profile is not None and batch.fleet_profile.kernels:
        prof = batch.fleet_profile
        print(
            f"fleet kernels: {sum(k.launches for k in prof.kernels.values())}"
            f" launches, {prof.dram_read_throughput_gbs:.1f} GB/s read, "
            f"{prof.gflops:.1f} GFLOP/s over active kernel time"
        )
    if args.out:
        atomic_write_text(
            args.out, json.dumps(batch.to_dict(), indent=2) + "\n"
        )
        print(f"wrote {args.out}")
    if args.failures_json:
        payload = {
            "n_failed": batch.n_failed,
            "n_shed": batch.n_shed,
            "n_degraded": batch.n_degraded,
            "n_expired": batch.n_expired,
            "admission": [dict(row) for row in batch.admission_rows],
            "breaker_events": [dict(row) for row in batch.breaker_rows],
            "jobs": [
                {
                    "label": o.job.label,
                    "status": o.status,
                    "attempts": o.attempts,
                    "error": o.error,
                    "admission_reason": o.admission_reason,
                }
                for o in batch.outcomes
                if o.status != "completed"
            ],
        }
        atomic_write_text(
            args.failures_json, json.dumps(payload, indent=2) + "\n"
        )
        print(f"wrote {args.failures_json}")
    if not batch.all_succeeded:
        print(batch.failure_table(), file=sys.stderr)
        return 1 if batch.n_failed else 2
    return 0


if __name__ == "__main__":
    sys.exit(main())
