"""CLI for the batch scheduler: ``python -m repro.batch``.

Runs either the reference mixed workload (``--jobs N``) or a job list from
a JSON spec file (``--spec jobs.json``, a list of Job field dicts), prints
the per-job placement table and fleet metrics, and optionally writes the
full versioned payload with ``--out``.

Example spec file::

    [
      {"problem": "sphere", "dim": 32, "n_particles": 256, "seed": 1},
      {"problem": "ackley", "dim": 16, "max_iter": 150, "engine": "gpu-pso"}
    ]
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

from repro.batch.job import Job
from repro.batch.scheduler import POLICIES, BatchScheduler
from repro.batch.workload import mixed_workload


def _load_spec(path: str) -> list[Job]:
    payload = json.loads(Path(path).read_text())
    if not isinstance(payload, list):
        raise SystemExit(f"{path}: expected a JSON list of job specs")
    return [Job(**spec) for spec in payload]


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.batch", description=__doc__
    )
    parser.add_argument(
        "--jobs",
        type=int,
        default=16,
        help="size of the generated mixed workload (ignored with --spec)",
    )
    parser.add_argument(
        "--spec", help="JSON file with a list of job field dicts"
    )
    parser.add_argument("--devices", type=int, default=1)
    parser.add_argument("--streams", type=int, default=4)
    parser.add_argument("--policy", choices=POLICIES, default="fifo")
    parser.add_argument("--seed", type=int, default=1000)
    parser.add_argument("--out", help="write the versioned batch JSON here")
    args = parser.parse_args(argv)

    jobs = (
        _load_spec(args.spec)
        if args.spec
        else mixed_workload(args.jobs, base_seed=args.seed)
    )
    scheduler = BatchScheduler(
        n_devices=args.devices,
        streams_per_device=args.streams,
        policy=args.policy,
    )
    batch = scheduler.run(jobs)
    print(batch.summary())
    if batch.fleet_profile is not None and batch.fleet_profile.kernels:
        prof = batch.fleet_profile
        print(
            f"fleet kernels: {sum(k.launches for k in prof.kernels.values())}"
            f" launches, {prof.dram_read_throughput_gbs:.1f} GB/s read, "
            f"{prof.gflops:.1f} GFLOP/s over active kernel time"
        )
    if args.out:
        Path(args.out).write_text(
            json.dumps(batch.to_dict(), indent=2) + "\n"
        )
        print(f"wrote {args.out}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
