"""CLI for the batch scheduler: ``python -m repro.batch``.

Runs either the reference mixed workload (``--jobs N``) or a job list from
a JSON spec file (``--spec jobs.json``, a list of Job field dicts), prints
the per-job placement table and fleet metrics, and optionally writes the
full versioned payload with ``--out`` (written atomically).

Reliability flags: ``--checkpoint-dir`` checkpoints every job (retries
resume instead of restarting), ``--faults`` injects a deterministic fault
plan (a JSON file, or the literal ``drill`` for the reference mixed-fault
plan), and ``--retry N`` sets the attempt budget.  When any job still
fails, the CLI prints a per-job failure table and exits nonzero.

``--seed`` makes runs reproducible end-to-end: it seeds the generated
workload, and spec jobs that don't pin their own ``seed`` get
deterministic per-job seeds derived from it.

Example spec file::

    [
      {"problem": "sphere", "dim": 32, "n_particles": 256, "seed": 1},
      {"problem": "ackley", "dim": 16, "max_iter": 150, "engine": "gpu-pso"}
    ]
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

from repro.batch.job import Job
from repro.batch.scheduler import POLICIES, BatchScheduler
from repro.batch.workload import mixed_workload
from repro.io import atomic_write_text


def _load_spec(path: str, base_seed: int) -> list[Job]:
    payload = json.loads(Path(path).read_text())
    if not isinstance(payload, list):
        raise SystemExit(f"{path}: expected a JSON list of job specs")
    jobs = []
    for index, spec in enumerate(payload):
        job = Job(**spec)
        if "seed" not in spec:
            # Unseeded spec entries get deterministic per-job seeds so the
            # whole CLI run is reproducible from --seed alone.
            job = job.with_overrides(seed=base_seed + index)
        jobs.append(job)
    return jobs


def _load_faults(arg: str, n_jobs: int, seed: int):
    from repro.reliability import FaultPlan

    if arg == "drill":
        return FaultPlan.drill(n_jobs, seed=seed)
    return FaultPlan.from_json_file(arg)


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.batch", description=__doc__
    )
    parser.add_argument(
        "--jobs",
        type=int,
        default=16,
        help="size of the generated mixed workload (ignored with --spec)",
    )
    parser.add_argument(
        "--spec", help="JSON file with a list of job field dicts"
    )
    parser.add_argument("--devices", type=int, default=1)
    parser.add_argument("--streams", type=int, default=4)
    parser.add_argument("--policy", choices=POLICIES, default="fifo")
    parser.add_argument(
        "--seed",
        type=int,
        default=1000,
        help="base seed for the workload and for unseeded spec jobs",
    )
    parser.add_argument("--out", help="write the versioned batch JSON here")
    parser.add_argument(
        "--checkpoint-dir",
        help="checkpoint every job under this directory (retries resume)",
    )
    parser.add_argument(
        "--faults",
        help="fault-plan JSON file, or 'drill' for the reference mixed plan",
    )
    parser.add_argument(
        "--retry",
        type=int,
        default=None,
        metavar="N",
        help="retry policy attempt budget (enables retry/failover)",
    )
    args = parser.parse_args(argv)

    jobs = (
        _load_spec(args.spec, args.seed)
        if args.spec
        else mixed_workload(args.jobs, base_seed=args.seed)
    )

    retry = None
    if args.retry is not None:
        from repro.reliability import RetryPolicy

        retry = RetryPolicy(max_attempts=args.retry)
    faults = (
        _load_faults(args.faults, len(jobs), args.seed)
        if args.faults
        else None
    )

    scheduler = BatchScheduler(
        n_devices=args.devices,
        streams_per_device=args.streams,
        policy=args.policy,
        retry=retry,
        faults=faults,
        checkpoint_dir=args.checkpoint_dir,
    )
    batch = scheduler.run(jobs)
    print(batch.summary())
    if batch.fleet_profile is not None and batch.fleet_profile.kernels:
        prof = batch.fleet_profile
        print(
            f"fleet kernels: {sum(k.launches for k in prof.kernels.values())}"
            f" launches, {prof.dram_read_throughput_gbs:.1f} GB/s read, "
            f"{prof.gflops:.1f} GFLOP/s over active kernel time"
        )
    if args.out:
        atomic_write_text(
            args.out, json.dumps(batch.to_dict(), indent=2) + "\n"
        )
        print(f"wrote {args.out}")
    if not batch.all_succeeded:
        print(batch.failure_table(), file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())
