"""Job specifications for the batch scheduler.

A :class:`Job` is one independent PSO problem: everything an engine needs to
run it solo (problem, dimensionality, swarm size, iteration budget,
hyper-parameters, engine name) plus batch bookkeeping (a label, a seed
override).  Jobs are declarative and cheap — the scheduler instantiates a
*fresh* engine per job, so a job's Philox stream, allocator state and
simulated clock are exactly those of a standalone run.  That is the
determinism contract the batch layer guarantees: scheduling changes *when*
a job's kernels execute on the shared timeline, never *what* they compute.

:class:`JobOutcome` pairs the solo-identical :class:`OptimizeResult` with
the placement and timing the scheduler assigned: which simulated device and
stream ran the job, when it started and finished on the shared timeline,
and how long it queued behind earlier work.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Mapping

from repro.core.parameters import PAPER_DEFAULTS, PSOParams
from repro.core.problem import Problem
from repro.core.results import OptimizeResult
from repro.errors import InvalidParameterError

__all__ = ["Job", "JobOutcome"]


@dataclass(frozen=True)
class Job:
    """Specification of one optimization job in a batch.

    Attributes
    ----------
    problem:
        A built-in function name (``"sphere"``) or a ready
        :class:`~repro.core.problem.Problem`.
    dim:
        Search-space dimensionality (ignored when *problem* is already a
        :class:`Problem`, which carries its own).
    n_particles, max_iter:
        Swarm size and iteration budget, as in ``Engine.optimize``.
    engine:
        Engine registry name (any name or alias accepted by
        :func:`repro.engines.make_engine`).
    params:
        Full hyper-parameter set; defaults to the paper's configuration.
    seed:
        Convenience override of ``params.seed`` — the common case of many
        jobs differing only by seed doesn't need a ``PSOParams`` each.
    name:
        Optional human label; :attr:`label` falls back to a descriptive one.
    record_history:
        Keep the per-iteration gbest trace in the job's result (the batch
        determinism tests compare these traces against solo runs).
    engine_options:
        Extra keyword arguments forwarded to the engine factory (e.g.
        ``{"backend": "shared"}`` for the fastpso engine).
    priority:
        Admission/placement priority (higher runs first); under load
        shedding, low-priority jobs are shed or degraded first.
    budget:
        Optional per-job :class:`~repro.core.budget.Budget` — deadlines and
        iteration/evaluation caps enforced inside the engine loop.  Merged
        (tightest-wins) with any fleet-wide budget the scheduler imposes.
    """

    problem: str | Problem
    dim: int
    n_particles: int = 512
    max_iter: int = 100
    engine: str = "fastpso"
    params: PSOParams = PAPER_DEFAULTS
    seed: int | None = None
    name: str | None = None
    record_history: bool = False
    engine_options: Mapping[str, object] = field(default_factory=dict)
    priority: int = 0
    budget: object | None = None

    def __post_init__(self) -> None:
        if not isinstance(self.problem, (str, Problem)):
            raise InvalidParameterError(
                "job problem must be a function name or a Problem, got "
                f"{type(self.problem).__name__}"
            )
        if isinstance(self.problem, str) and not self.problem:
            raise InvalidParameterError("job problem name must be non-empty")
        if self.dim <= 0:
            raise InvalidParameterError(
                f"job dim must be positive, got {self.dim}"
            )
        if self.n_particles <= 0:
            raise InvalidParameterError(
                f"job n_particles must be positive, got {self.n_particles}"
            )
        if self.max_iter <= 0:
            raise InvalidParameterError(
                f"job max_iter must be positive, got {self.max_iter}"
            )
        if self.seed is not None and not 0 <= int(self.seed) < 2**64:
            raise InvalidParameterError("job seed must fit in 64 bits")
        if not isinstance(self.priority, int) or isinstance(self.priority, bool):
            raise InvalidParameterError(
                f"job priority must be an int, got {self.priority!r}"
            )
        if self.budget is not None:
            from repro.core.budget import Budget

            if not isinstance(self.budget, Budget):
                raise InvalidParameterError(
                    "job budget must be a repro Budget, got "
                    f"{type(self.budget).__name__}"
                )

    # -- derived views -------------------------------------------------------
    @property
    def resolved_params(self) -> PSOParams:
        """``params`` with the job-level ``seed`` override applied."""
        if self.seed is None or self.seed == self.params.seed:
            return self.params
        return replace(self.params, seed=int(self.seed))

    def resolved_problem(self) -> Problem:
        """The concrete :class:`Problem` this job optimizes."""
        if isinstance(self.problem, Problem):
            return self.problem
        return Problem.from_benchmark(self.problem, self.dim)

    @property
    def problem_name(self) -> str:
        return (
            self.problem.name
            if isinstance(self.problem, Problem)
            else self.problem
        )

    @property
    def label(self) -> str:
        """Display name: the explicit ``name`` or a descriptive fallback."""
        if self.name is not None:
            return self.name
        return (
            f"{self.engine}:{self.problem_name}"
            f"-d{self.dim}-n{self.n_particles}-s{self.resolved_params.seed}"
        )

    def with_overrides(self, **kwargs: object) -> "Job":
        """Copy with selected fields replaced."""
        return replace(self, **kwargs)  # type: ignore[arg-type]


@dataclass(frozen=True)
class JobOutcome:
    """One job's solo-identical result plus its placement in the batch.

    ``start_seconds``/``end_seconds`` are on the shared batch timeline (all
    jobs are submitted at t=0); ``queue_wait_seconds`` is the time the job
    spent waiting for its assigned stream to drain earlier jobs.
    ``solo_seconds`` equals ``result.elapsed_seconds`` — the simulated time
    the job would take running alone, which is also exactly the stream time
    it occupies in the batch.

    Every job ends in a **terminal status** (see
    :data:`repro.core.results.RUN_STATUSES`): ``"completed"`` for a full
    run; ``"deadline_exceeded"``/``"budget_exhausted"`` when a budget
    tripped (``result`` still carries the best-so-far answer);
    ``"degraded"`` when admission control ran a reduced variant;
    ``"shed"`` when admission refused the job (``result`` is ``None``);
    ``"failed"`` when recovery was exhausted (``result`` is ``None``).
    ``attempts``/``error`` record the recovery trail, and
    ``lost_seconds``/``backoff_seconds`` are the simulated recovery
    overhead — which the job's lane *does* occupy
    (:attr:`lane_seconds`), so retries visibly stretch the batch makespan.
    """

    job: Job
    result: OptimizeResult | None
    device_index: int
    stream_index: int
    submit_order: int
    start_seconds: float
    end_seconds: float
    status: str = "completed"
    attempts: int = 1
    error: str | None = None
    lost_seconds: float = 0.0
    backoff_seconds: float = 0.0
    fell_back_to_cpu: bool = False
    #: Why admission degraded/shed this job ('' when admitted as-is).
    admission_reason: str = ""

    @property
    def succeeded(self) -> bool:
        """The job produced a usable result (shed/failed jobs did not)."""
        return self.result is not None and self.status not in ("failed", "shed")

    @property
    def queue_wait_seconds(self) -> float:
        return self.start_seconds

    @property
    def solo_seconds(self) -> float:
        """Fault-free simulated duration of the job (0 when it never ran)."""
        return self.result.elapsed_seconds if self.result is not None else 0.0

    @property
    def recovery_seconds(self) -> float:
        """Simulated recovery overhead (lost work + retry backoff)."""
        return self.lost_seconds + self.backoff_seconds

    @property
    def lane_seconds(self) -> float:
        """Stream time the job occupied, recovery overhead included."""
        return self.solo_seconds + self.recovery_seconds

    def summary(self) -> str:
        if self.result is not None:
            best = f"best={self.result.best_value:.6g}"
            if self.status != "completed":
                best += f" [{self.status}]"
        elif self.status == "shed":
            best = f"SHED ({self.admission_reason})"
        else:
            best = f"FAILED after {self.attempts} attempt(s)"
        return (
            f"{self.job.label}: dev{self.device_index}/s{self.stream_index} "
            f"start={self.start_seconds:.4g}s end={self.end_seconds:.4g}s "
            f"{best}"
        )
