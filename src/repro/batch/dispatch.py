"""Incremental dispatch primitives: a growable fleet timeline and stepped jobs.

:class:`BatchScheduler` plans a *closed* batch: every job is known up
front, executed host-sequentially, and its duration replayed onto
per-device stream timelines.  A serving front-end (:mod:`repro.serve`)
cannot work that way — jobs arrive after the fleet has started, can be
cancelled mid-run, and the fleet itself grows and shrinks under
autoscaling.  This module factors the two primitives both layers share:

:class:`FleetTimeline`
    The placement arithmetic of ``BatchScheduler._schedule`` as a plain
    mutable value — per-lane horizons in simulated seconds, earliest-lane
    selection with deterministic tie-breaking, and (new for serving)
    devices that can be **added** mid-flight (their lanes open at the boot
    time) or **retired** (no further placements; committed work keeps its
    end time).  Placement is pure float arithmetic: no clocks, no
    randomness, so identical submissions reproduce identical schedules.

:class:`RunningJob`
    One job on the :meth:`Engine.start_run` stepped protocol: the host
    drives ``step(t)`` an iteration at a time, may read the live
    best-so-far between steps (streaming), snapshot it mid-run
    (checkpoint-backed cancel) and finish early with a terminal status
    (``"cancelled"``).  Because ``optimize()`` is literally the same
    start/step/finish sequence, a :class:`RunningJob` driven to completion
    is bit-identical to the solo run of the same spec.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.batch.job import Job
from repro.core.results import OptimizeResult
from repro.errors import InvalidParameterError

__all__ = ["FleetTimeline", "LanePlacement", "RunningJob", "start_job"]


@dataclass(frozen=True)
class LanePlacement:
    """One unit of work committed to a lane of the fleet timeline."""

    device_index: int
    stream_index: int
    start_seconds: float
    end_seconds: float

    @property
    def duration_seconds(self) -> float:
        return self.end_seconds - self.start_seconds


class FleetTimeline:
    """Per-lane horizons of a simulated fleet, growable and retirable.

    A *lane* is one stream of one device; its **horizon** is the simulated
    second at which it next becomes free.  :meth:`place` implements the
    batch scheduler's earliest-available rule — the lane with the lowest
    horizon wins, ties broken by (device, stream) order so single-lane
    fleets degenerate to the serial schedule — extended with a
    ``not_before`` floor for jobs that arrive after t=0.

    Devices added via :meth:`add_device` open every lane at the boot time;
    devices retired via :meth:`retire_device` take no further placements
    but keep their committed horizons (they appear in
    :meth:`device_makespans`, as a real decommissioned card's completed
    work would).
    """

    def __init__(
        self, n_devices: int = 1, streams_per_device: int = 4
    ) -> None:
        if n_devices < 1:
            raise InvalidParameterError(
                f"need at least one device, got {n_devices}"
            )
        if streams_per_device < 1:
            raise InvalidParameterError(
                f"need at least one stream per device, got {streams_per_device}"
            )
        self.streams_per_device = int(streams_per_device)
        self._horizons: list[list[float]] = [
            [0.0] * self.streams_per_device for _ in range(n_devices)
        ]
        self._retired: set[int] = set()

    # -- fleet shape ---------------------------------------------------------
    @property
    def n_devices(self) -> int:
        """Devices ever provisioned (retired ones included)."""
        return len(self._horizons)

    @property
    def active_devices(self) -> tuple[int, ...]:
        """Indices of devices currently accepting placements."""
        return tuple(
            d for d in range(self.n_devices) if d not in self._retired
        )

    def add_device(self, *, at: float = 0.0) -> int:
        """Provision a new device whose lanes open at simulated second *at*.

        Returns the new device index (indices are never reused, so event
        logs stay unambiguous).
        """
        if at < 0:
            raise InvalidParameterError(f"boot time must be >= 0, got {at}")
        index = self.n_devices
        self._horizons.append([float(at)] * self.streams_per_device)
        return index

    def retire_device(self, device_index: int) -> None:
        """Stop placing work on a device (committed work keeps its end)."""
        self._check_device(device_index)
        if device_index in self._retired:
            raise InvalidParameterError(
                f"device {device_index} is already retired"
            )
        if len(self._retired) + 1 >= self.n_devices:
            raise InvalidParameterError("cannot retire the last active device")
        self._retired.add(device_index)

    def _check_device(self, device_index: int) -> None:
        if not 0 <= device_index < self.n_devices:
            raise InvalidParameterError(
                f"unknown device {device_index} (fleet has {self.n_devices})"
            )

    def device_idle(self, device_index: int, *, now: float) -> bool:
        """Whether every lane of the device has drained by *now*."""
        self._check_device(device_index)
        return all(h <= now for h in self._horizons[device_index])

    # -- placement -----------------------------------------------------------
    def _candidate_lanes(self, devices) -> list[tuple[int, int]]:
        if devices is None:
            devices = self.active_devices
        lanes = [
            (d, s)
            for d in devices
            if d not in self._retired
            for s in range(self.streams_per_device)
        ]
        if not lanes:
            raise InvalidParameterError("no active device lanes to place on")
        return lanes

    def earliest_start(
        self, *, not_before: float = 0.0, devices=None
    ) -> float:
        """When the next unit of work could start, without committing it."""
        lanes = self._candidate_lanes(devices)
        horizon = min(self._horizons[d][s] for d, s in lanes)
        return max(horizon, not_before)

    def reserve(
        self, *, not_before: float = 0.0, devices=None
    ) -> tuple[int, int, float]:
        """Pick the earliest-available lane without committing to it.

        Returns ``(device, stream, start)``.  The serving layer needs the
        start time *before* the job runs (the duration is only known
        afterwards); it reserves, host-executes, then :meth:`commit`\\ s the
        measured duration.  Nothing else may touch the timeline in between
        — dispatch is host-sequential, so that invariant holds by
        construction.
        """
        lanes = self._candidate_lanes(devices)
        device, stream = min(
            lanes, key=lambda ds: (self._horizons[ds[0]][ds[1]], ds)
        )
        start = max(self._horizons[device][stream], not_before)
        return device, stream, start

    def commit(
        self, device_index: int, stream_index: int, start: float, duration: float
    ) -> LanePlacement:
        """Commit *duration* seconds at *start* to a reserved lane."""
        if duration < 0:
            raise InvalidParameterError(
                f"duration must be >= 0, got {duration}"
            )
        self._check_device(device_index)
        if not 0 <= stream_index < self.streams_per_device:
            raise InvalidParameterError(
                f"unknown stream {stream_index} "
                f"(devices have {self.streams_per_device})"
            )
        if start < self._horizons[device_index][stream_index]:
            raise InvalidParameterError(
                f"start {start} precedes lane horizon "
                f"{self._horizons[device_index][stream_index]}"
            )
        end = start + duration
        self._horizons[device_index][stream_index] = end
        return LanePlacement(device_index, stream_index, start, end)

    def place(
        self, duration: float, *, not_before: float = 0.0, devices=None
    ) -> LanePlacement:
        """Commit *duration* seconds to the earliest-available lane.

        ``start = max(lane horizon, not_before)`` — exactly the batch
        scheduler's rule (where every job has ``not_before=0``), extended
        to late arrivals.  *devices* restricts candidates (breaker-aware
        placement pins a unit to specific devices); retired devices are
        never candidates.
        """
        device, stream, start = self.reserve(
            not_before=not_before, devices=devices
        )
        return self.commit(device, stream, start, duration)

    # -- metrics -------------------------------------------------------------
    def device_makespans(self) -> list[float]:
        """Latest horizon per device (0.0 for a device never used)."""
        return [max(h) for h in self._horizons]

    @property
    def makespan_seconds(self) -> float:
        return max(self.device_makespans(), default=0.0)


def effective_engine_options(job: Job, graph: bool | None) -> dict:
    """The job's engine options with a fleet-wide graph default mixed in.

    The job's own setting always wins; engines without the ``graph=`` knob
    are left alone.  Shared by :class:`~repro.batch.scheduler.BatchScheduler`
    and the serving layer so both dispatch paths build identical engines.
    """
    opts = dict(job.engine_options)
    if graph is not None:
        from repro.engines import engine_supports_graph

        if engine_supports_graph(job.engine):
            opts.setdefault("graph", graph)
    return opts


class RunningJob:
    """One job being stepped iteration-by-iteration by a host loop.

    Construction performs everything ``optimize()`` does before its loop
    (fresh engine, validation, initialisation, optional restore).  The
    host then drives::

        for t in range(rj.start_iter, rj.max_iter):
            if rj.step(t):
                break
        result = rj.finish()

    which is bit-identical to ``engine.optimize(...)`` of the same spec.
    Between steps the live best-so-far (:attr:`gbest_value`) is readable —
    the streaming hook — and :meth:`snapshot` captures the full run state
    for checkpoint-backed cancellation; :meth:`finish` accepts a terminal
    *status* override (``"cancelled"``) for runs ended early by the host.
    """

    def __init__(
        self,
        job: Job,
        *,
        engine_options: dict | None = None,
        budget=None,
        guard=None,
        checkpoint=None,
        restore=None,
        injector=None,
    ) -> None:
        from repro.engines import make_engine

        options = (
            dict(job.engine_options)
            if engine_options is None
            else dict(engine_options)
        )
        self.job = job
        self.engine = make_engine(job.engine, **options)
        if injector is not None:
            # Wired before start_run so initialization launches/allocs are
            # counted — the same ordinals a solo faulted run would see.
            self.engine.attach_fault_injector(injector)
        self.run = self.engine.start_run(
            job.resolved_problem(),
            n_particles=job.n_particles,
            max_iter=job.max_iter,
            params=job.resolved_params,
            record_history=job.record_history,
            budget=budget,
            guard=guard,
            checkpoint=checkpoint,
            restore=restore,
        )
        self._finished = False

    # -- live views ----------------------------------------------------------
    @property
    def start_iter(self) -> int:
        return self.run.start_iter

    @property
    def max_iter(self) -> int:
        return self.run.max_iter

    @property
    def iterations_run(self) -> int:
        return self.run.iterations_run

    @property
    def gbest_value(self) -> float:
        """Best objective value found so far (valid between steps)."""
        return float(self.run.state.gbest_value)

    # -- driving -------------------------------------------------------------
    def step(self, t: int) -> bool:
        """Run iteration *t*; ``True`` means the run wants to stop."""
        return self.run.step(t)

    def snapshot(self):
        """Capture the in-flight run state (see ``capture_live_run``).

        Raises :class:`~repro.errors.CheckpointError` for problems that
        cannot be rebuilt from a snapshot document (custom objectives).
        """
        from repro.reliability.snapshot import capture_live_run

        return capture_live_run(self.run)

    def finish(self, *, status: str | None = None) -> OptimizeResult:
        """Finalize and assemble the result (idempotent guard included).

        *status* overrides the run's terminal status — the serving layer
        passes ``"cancelled"`` when the host stopped the loop early; the
        best-so-far fields remain valid, matching the budget-expiry
        contract.
        """
        if self._finished:
            raise InvalidParameterError("RunningJob is already finished")
        self._finished = True
        if status is not None:
            self.run.status = status
        return self.run.finish()

    def drive(self) -> OptimizeResult:
        """Step the run to completion and finish it (solo-run equivalent)."""
        for t in range(self.start_iter, self.max_iter):
            if self.step(t):
                break
        return self.finish()


def start_job(
    job: Job,
    *,
    engine_options: dict | None = None,
    budget=None,
    guard=None,
    checkpoint=None,
    restore=None,
    injector=None,
) -> RunningJob:
    """Begin stepped execution of *job* (see :class:`RunningJob`)."""
    return RunningJob(
        job,
        engine_options=engine_options,
        budget=budget,
        guard=guard,
        checkpoint=checkpoint,
        restore=restore,
        injector=injector,
    )
