"""Fused multi-swarm batching: ``m`` compatible jobs in one engine loop.

FastPSO's thesis is amortising fixed per-launch costs across one swarm;
this module amortises the *host-side engine loop* across many swarms.  The
batch scheduler still pays one Python iteration pipeline per job — for the
small/medium jobs the service shape targets, that pipeline is ~99% of host
wall clock.  The fused path stacks ``m`` compatible jobs (same engine
configuration, dim, swarm size and iteration budget; seeds, hyperparameters
and problems may differ) into ``m*n x d`` position/velocity/pbest tensors
and drives them through **one** loop:

* one stacked evaluation, pbest update and velocity/position update per
  iteration over all ``m`` swarms (NumPy amortises its per-op dispatch the
  way a batched kernel amortises launches);
* one batched per-swarm gbest reduction (``argmin`` over the ``(m, n)``
  view — first-tie semantics identical to the two-pass parallel reducer);
* per-swarm Philox streams, clocks, launchers and allocators: every member
  keeps the engine it would have run solo, so cost attribution, budgets,
  checkpoints and the result JSON stay per-swarm.

Bit-identity contract
---------------------
Every member's trajectory, simulated seconds and result are **bit-identical**
to its solo run.  The stacked array work performs the same IEEE operations
in the same order on each member's rows (row-stacking cannot change a row's
result for element-wise ops and row reductions), the per-member simulated
clock replays the member's own captured charge sequence (the same float
additions the solo loop performs), and the per-member RNG consumes exactly
the captured number of Philox blocks per iteration (asserted every round,
mirroring the launch graph's first-replay verification).

How a member joins the fast loop
--------------------------------
Each member runs a short solo *ramp* first (the launch-graph lifecycle of
:mod:`repro.gpusim.graph`, or an externally traced capture/validate pair for
engines running eagerly).  The ramp yields a :class:`LaunchGraph` whose
trace the fast loop replays.  Members whose iteration shape is
data-dependent — or whose remaining budget is too short — simply continue
solo; fusion is an optimisation, never a semantics change.

A few per-member accounting details intentionally diverge (and only those):
allocator pool hit/miss *counters* stop advancing during fused rounds (the
pool reached steady state during the ramp, so the high-water mark — what
``peak_device_bytes`` reports — is already exact), and aggregated
:class:`~repro.gpusim.launch.LaunchStats` are folded once per member at
finish (the same ``add_many`` reconciliation the launch graph uses).

Makespan model
--------------
A fused group occupies **one** launch stream.  Its lane time is the sum of
the members' solo simulated seconds minus the modelled per-iteration saving
of batch execution: aligned launch slots across members are re-priced as
one kernel over the summed element count (through the same memoized
``kernel_cost`` front door), and fixed per-iteration host overhead is paid
once instead of ``m`` times.  The saving is clamped to ``[0, sum - max]``
so a fused lane is never shorter than its longest member.
"""

from __future__ import annotations

import numpy as np

from repro.core.problem import Problem
from repro.core.swarm import position_update, velocity_update
from repro.core.swarm import draw_weights
from repro.core.topology import social_positions
from repro.errors import EvaluationError, GraphReplayError, InvalidParameterError
from repro.functions.inplace import make_inplace_evaluator
from repro.gpusim.costmodel import kernel_cost
from repro.gpusim.graph import LaunchGraph
from repro.gpusim.launch import resource_aware_config

__all__ = [
    "FUSABLE_ENGINES",
    "fusion_key",
    "plan_fused_groups",
    "FusedGroupRunner",
]

#: Canonical engine names the fused path can stack.  Both run Algorithm 1's
#: four-section body on (n, d) float32/float16 arrays with module-function
#: numerics; the CPU/library engines have per-engine loop structures the
#: stacked path does not reproduce.
FUSABLE_ENGINES = frozenset({"fastpso", "gpu-pso"})

#: Solo iterations a member runs before stacking: the launch-graph lifecycle
#: needs warmup/capture/validate/first-replay; an eager member needs
#: warmup (allocator pool misses) plus an externally traced capture and
#: validate pair.
RAMP_GRAPH = 4
RAMP_EAGER = 3

_NAN_MESSAGE = (
    "evaluation produced NaN fitness values; FastPSO treats NaN "
    "as a user error rather than silently ranking it"
)


def _job_dim(job) -> int:
    return job.problem.dim if isinstance(job.problem, Problem) else job.dim


def fusion_key(job, engine_options=None):
    """The compatibility key two jobs must share to stack, or ``None``.

    Jobs fuse when they resolve to the same canonical engine with the same
    constructor options and agree on ``(dim, n_particles, max_iter)`` —
    the tensor shapes and the loop length.  Problems, seeds and
    hyperparameters may differ freely.  ``engine_options`` overrides the
    job's own options (the scheduler passes the merged view that includes
    its fleet-wide ``graph`` default).
    """
    from repro.engines import resolve_engine

    canonical, implied = resolve_engine(job.engine)
    if canonical not in FUSABLE_ENGINES:
        return None
    opts = dict(
        engine_options if engine_options is not None else job.engine_options
    )
    merged = {**implied, **opts}
    if merged.get("record_launches"):
        # The per-launch log must show real launches in eager order; the
        # fast loop deliberately skips the launch pipeline.
        return None
    opt_key = tuple(sorted((k, repr(v)) for k, v in merged.items()))
    return (canonical, opt_key, _job_dim(job), job.n_particles, job.max_iter)


def plan_fused_groups(jobs, *, options_for=None, min_group: int = 2):
    """Partition *jobs* into fused groups (lists of indices into *jobs*).

    Jobs sharing a :func:`fusion_key` form one group; keys with fewer than
    ``min_group`` members — and jobs with no key — are left to the solo
    path.  Groups are ordered by their earliest submitted member, and
    members inside a group are ordered problem-first (so the stacked
    evaluation sees contiguous same-problem row blocks) with submission
    order breaking ties.  Pure bookkeeping over the job list: deterministic
    and side-effect free.
    """
    buckets: dict[tuple, list[int]] = {}
    for i, job in enumerate(jobs):
        opts = options_for(job) if options_for is not None else None
        key = fusion_key(job, opts)
        if key is None:
            continue
        buckets.setdefault(key, []).append(i)
    groups = [
        sorted(members, key=lambda i: (jobs[i].problem_name, i))
        for members in buckets.values()
        if len(members) >= min_group
    ]
    groups.sort(key=lambda g: min(g))
    return groups


class _Member:
    """One job's live state inside a fused group."""

    __slots__ = (
        "index",
        "run",
        "graph",
        "mode",  # "graph" | "eager" | "solo"
        "solo_reason",
        "t",
        "stopped",
        "dyn_index",
        "rows",
        "fast_replays",
        "rng_before",
        "spec_map",
        "result",
    )

    def __init__(self, index, run):
        self.index = index
        self.run = run
        self.graph = None
        self.mode = "solo"
        self.solo_reason = None
        self.t = run.start_iter
        self.stopped = False
        self.dyn_index = None
        self.rows = slice(0, 0)
        self.fast_replays = 0
        self.rng_before = 0
        self.spec_map = None
        self.result = None

    @property
    def remaining(self) -> int:
        return self.run.max_iter - self.t

    @property
    def engine(self):
        return self.run.engine


def _traced_semantics(run, t):
    """One externally traced ``run_semantics`` call (the eager-member analogue
    of :meth:`IterationRunner._run_traced`): returns ``(trace, launches,
    rng_blocks)``."""
    engine = run.engine
    launcher = engine.ctx.launcher
    clock = engine.clock
    captured: list = []
    launcher.capture = captured
    clock.begin_trace()
    before = run.rng.position
    try:
        run.run_semantics(t)
    finally:
        trace = clock.end_trace()
        launcher.capture = None
    return trace, captured, run.rng.position - before


def _build_spec_map(engine) -> dict:
    """Kernel name -> KernelSpec for every kernel a captured iteration can
    reference (the engine's table plus the reducer's two passes)."""
    specs = {}
    for kernel in getattr(engine, "_kernels", {}).values():
        specs[kernel.spec.name] = kernel.spec
    reducer = engine.ctx.reducer
    specs[reducer._pass1.spec.name] = reducer._pass1.spec
    specs[reducer._pass2.spec.name] = reducer._pass2.spec
    return specs


class FusedGroupRunner:
    """Drives one fused group: ramp, stacked fast loop, solo tails, finish.

    Construct with ``(index, EngineRun)`` pairs from
    :meth:`~repro.core.engine.Engine.start_run` — every member keeps its own
    engine (clock, launcher, allocator, Philox stream), budget, checkpoint
    manager and guard exactly as the solo path would have passed them.
    :meth:`execute` returns the members' :class:`OptimizeResult` objects in
    construction order, each bit-identical to the member's solo run.
    """

    def __init__(self, runs) -> None:
        if not runs:
            raise InvalidParameterError("a fused group needs at least one run")
        self.members = [_Member(index, run) for index, run in runs]
        self.fast_rounds = 0
        self.saved_seconds_per_round = 0.0
        self.update_mode = None
        self.lane_seconds = 0.0
        self.results: list = []

    # -- public ---------------------------------------------------------------
    def execute(self) -> list:
        for member in self.members:
            self._ramp(member)
        fast = self._fast_set()
        if len(fast) >= 2:
            self._fast_loop(fast)
        for member in self.members:
            while not member.stopped and member.t < member.run.max_iter:
                member.stopped = member.run.step(member.t)
                member.t += 1
        for member in self.members:
            if (
                member.mode == "eager"
                and member.fast_replays
                and member.graph is not None
            ):
                # Eager members' fused rounds bypassed the launcher; fold
                # their launch statistics exactly like graph replay does.
                member.graph.flush_stats(
                    member.engine.ctx.launcher.stats, member.fast_replays
                )
            member.result = member.run.finish()
        self.results = [m.result for m in self.members]
        self.lane_seconds = self._lane_seconds()
        return self.results

    def info(self) -> dict:
        """Execution metadata for benchmarks and the scheduler's records."""
        return {
            "n_members": len(self.members),
            "n_fused": sum(1 for m in self.members if m.fast_replays > 0),
            "fast_rounds": self.fast_rounds,
            "update_mode": self.update_mode,
            "saved_seconds_per_round": self.saved_seconds_per_round,
            "lane_seconds": self.lane_seconds,
            "solo_reasons": {
                str(m.index): m.solo_reason
                for m in self.members
                if m.solo_reason is not None
            },
        }

    # -- ramp -----------------------------------------------------------------
    def _ramp(self, member: _Member) -> None:
        run = member.run
        runner = run.runner
        if getattr(run.engine, "ctx", None) is None:
            member.solo_reason = "no-gpu-context"
            return
        if runner.info["mode"] == "graph":
            # The stacked engine drives member iterations itself, splicing
            # per-member replay closures into fused rounds — the runner must
            # settle on the Python replay tier, not promote to the native
            # one-call step (which bypasses those closures).
            runner.allow_native = False
            for _ in range(RAMP_GRAPH):
                if member.stopped or member.t >= run.max_iter:
                    break
                member.stopped = run.step(member.t)
                member.t += 1
            if runner.phase != "replay":
                member.solo_reason = (
                    runner.info.get("eager_reason") or "ramp-incomplete"
                )
                return
            member.graph = runner.graph
            member.mode = "graph"
        else:
            graph = self._eager_capture(member)
            if graph is None:
                return
            member.graph = graph
            member.mode = "eager"
        if not self._validate_dynamic(member):
            member.graph = None
            member.mode = "solo"
            return
        member.spec_map = _build_spec_map(run.engine)

    def _eager_capture(self, member: _Member):
        """Warmup / capture / validate for a member running eagerly.

        Tracing never changes the float accumulation, so if validation fails
        the member just continues solo, having run three perfectly ordinary
        iterations.
        """
        run = member.run
        if member.remaining < RAMP_EAGER + 1:
            member.solo_reason = "too-few-iterations"
            # Not enough headroom to capture, validate and still profit.
            return None
        member.stopped = run.step(member.t)  # warmup: pool misses, cold caches
        member.t += 1
        if member.stopped:
            member.solo_reason = "stopped-during-ramp"
            return None
        trace, launches, blocks = _traced_semantics(run, member.t)
        graph = LaunchGraph(trace=trace, launches=launches, rng_blocks=blocks)
        member.stopped = run.after_iteration(member.t)
        member.t += 1
        if member.stopped:
            member.solo_reason = "stopped-during-ramp"
            return None
        trace2, launches2, blocks2 = _traced_semantics(run, member.t)
        ok = (
            graph.trace_matches(trace2)
            and graph.launches_match(launches2)
            and graph.rng_blocks == blocks2
        )
        member.stopped = run.after_iteration(member.t)
        member.t += 1
        if not ok:
            member.solo_reason = "iteration-shape-changed"
            return None
        if member.stopped:
            member.solo_reason = "stopped-during-ramp"
            return None
        return graph

    def _validate_dynamic(self, member: _Member) -> bool:
        """The fast loop can re-derive at most one dynamic charge slot (the
        data-dependent pbest-copy); anything else means the iteration shape
        is not replayable."""
        dyn = [
            i for i, (_l, _s, dynamic) in enumerate(member.graph.trace)
            if dynamic
        ]
        if not dyn:
            member.dyn_index = None
            return True
        if len(dyn) == 1 and hasattr(member.engine, "_charge_pbest_copy"):
            member.dyn_index = dyn[0]
            return True
        member.solo_reason = "unreplayable-dynamic-charges"
        return False

    # -- the stacked fast loop -------------------------------------------------
    def _fast_set(self) -> list:
        fast = [
            m
            for m in self.members
            if m.graph is not None and not m.stopped and m.remaining > 0
        ]
        if len(fast) < 2:
            return fast
        head = fast[0]
        n = head.run.n_particles
        d = head.run.problem.dim
        dtype = getattr(head.engine, "storage_dtype", np.float32)
        compatible = []
        for m in fast:
            if (
                m.run.n_particles == n
                and m.run.problem.dim == d
                and getattr(m.engine, "storage_dtype", np.float32) == dtype
                and m.run.state.positions.dtype == dtype
            ):
                compatible.append(m)
            else:
                m.solo_reason = "shape-mismatch"
                m.graph = None
                m.mode = "solo"
        return compatible

    def _pick_update_mode(self, engine) -> str:
        if getattr(engine, "half_storage", False):
            # fp16 storage: NumPy's value-based casting makes column-vector
            # coefficient broadcasts promote to float32 where the solo
            # scalar path stays float16 — stack everything *except* the
            # velocity/position update, which runs per member on row views.
            return "permember"
        if getattr(engine, "backend", None) == "tensorcore":
            return "wmma"
        return "scratch"

    def _fast_loop(self, fast: list) -> None:
        head = fast[0]
        n = head.run.n_particles
        d = head.run.problem.dim
        m_count = len(fast)
        rows = m_count * n
        dtype = getattr(head.engine, "storage_dtype", np.float32)
        self.update_mode = mode = self._pick_update_mode(head.engine)
        n_rounds = min(m.remaining for m in fast)
        if n_rounds <= 0:
            return

        # Stacked swarm tensors (m*n x d).  Copy members in, then rebind
        # each member's SwarmState arrays to its contiguous row block: the
        # member's own replay closures, checkpoints and solo tail steps all
        # keep working on the same storage.
        pos = np.empty((rows, d), dtype)
        vel = np.empty((rows, d), dtype)
        pb = np.empty((rows, d), dtype)
        pv = np.empty(rows, np.float64)
        values = np.empty(rows, np.float64)
        mask = np.empty(rows, bool)
        p64 = np.empty((rows, d), np.float64)
        stacked_update = mode in ("scratch", "wmma")
        # One combined (2, n, d) Philox draw per member per round replaces
        # the two (n, d) weight draws when the matrix element count is
        # counter-block aligned (n*d % 4 == 0): Philox is counter-based,
        # so the single call consumes the same blocks in the same order
        # and the two halves are bit-identical to the solo L and G
        # matrices — while halving the dominant per-round dispatch cost.
        combined_draw = (
            stacked_update and dtype == np.float32 and (n * d) % 4 == 0
        )
        if combined_draw:
            lg = np.empty((m_count, 2, n, d), np.float32)
            l_mat = lg[:, 0]  # (m, n, d) views of the per-member draws
            g_mat = lg[:, 1]
        else:
            l_mat = np.empty((rows, d), dtype)
            g_mat = np.empty((rows, d), dtype)
        for k, m in enumerate(fast):
            block = slice(k * n, (k + 1) * n)
            state = m.run.state
            pos[block] = state.positions
            vel[block] = state.velocities
            pb[block] = state.pbest_positions
            pv[block] = state.pbest_values
            state.positions = pos[block]
            state.velocities = vel[block]
            state.pbest_positions = pb[block]
            state.pbest_values = pv[block]
            m.rows = block

        if stacked_update:
            social = np.empty((rows, d), np.float32)
            w_col = np.empty((rows, 1), np.float32)
            c1_col = np.empty((rows, 1), np.float32)
            c2_col = np.empty((rows, 1), np.float32)
            any_clamp = any(
                m.run.problem.velocity_bounds(m.run.params.velocity_clamp)
                is not None
                for m in fast
            )
            vb_lo = vb_hi = None
            if any_clamp:
                # Members without a clamp keep +/-inf rows: clipping to an
                # infinite band is the identity (NaN and -0.0 included).
                vb_lo = np.full((rows, d), -np.inf, np.float32)
                vb_hi = np.full((rows, d), np.inf, np.float32)
            any_clip = any(m.run.params.clip_positions for m in fast)
            clip_lo = clip_hi = None
            if any_clip:
                clip_lo = np.full((rows, d), -np.inf, np.float32)
                clip_hi = np.full((rows, d), np.inf, np.float32)
                for m in fast:
                    if m.run.params.clip_positions:
                        problem = m.run.problem
                        clip_lo[m.rows] = problem.lower_bounds.astype(
                            np.float32
                        )
                        clip_hi[m.rows] = problem.upper_bounds.astype(
                            np.float32
                        )
            # The stacked update math runs on (m, n, d) views so the
            # combined-draw L/G operands (strided slices of ``lg``) and the
            # contiguous swarm tensors share one shape.  Reshaping a
            # contiguous (rows, d) array is a view; elementwise ufuncs are
            # stride-agnostic, so values are bit-identical either way.
            shape3 = (m_count, n, d)
            pos3 = pos.reshape(shape3)
            vel3 = vel.reshape(shape3)
            pb3 = pb.reshape(shape3)
            social3 = social.reshape(shape3)
            w3 = w_col.reshape(m_count, n, 1)
            c13 = c1_col.reshape(m_count, n, 1)
            c23 = c2_col.reshape(m_count, n, 1)
            l3 = l_mat if combined_draw else l_mat.reshape(shape3)
            g3 = g_mat if combined_draw else g_mat.reshape(shape3)
            vb_lo3 = vb_lo.reshape(shape3) if any_clamp else None
            vb_hi3 = vb_hi.reshape(shape3) if any_clamp else None
            clip_lo3 = clip_lo.reshape(shape3) if any_clip else None
            clip_hi3 = clip_hi.reshape(shape3) if any_clip else None
            if mode == "scratch":
                s1 = np.empty(shape3, np.float32)
                s2 = np.empty(shape3, np.float32)

        eval_blocks = self._eval_blocks(fast, p64, pos, n, d)

        for _ in range(n_rounds):
            for m in fast:
                m.rng_before = m.run.rng.position
            # -- eval: one stacked pass over all swarms ----------------------
            np.copyto(p64, pos)
            for (row_lo, row_hi, fn, block_members) in eval_blocks:
                if fn is not None:
                    out = fn(p64[row_lo:row_hi])
                    if np.any(np.isnan(out)):
                        raise EvaluationError(_NAN_MESSAGE)
                    values[row_lo:row_hi] = out
                else:
                    for m in block_members:
                        values[m.rows] = m.run.problem.evaluator.evaluate(
                            m.run.state.positions
                        )
            # -- pbest: one stacked compare-and-claim ------------------------
            np.less(values, pv, out=mask)
            pv[mask] = values[mask]
            pb[mask] = pos[mask]
            # -- gbest: batched per-swarm first-tie argmin -------------------
            best_idx = np.argmin(pv.reshape(m_count, n), axis=1)
            for k, m in enumerate(fast):
                state = m.run.state
                idx = int(best_idx[k])
                val = float(pv[k * n + idx])
                if val < state.gbest_value:
                    state.gbest_value = val
                    state.gbest_index = idx
                    state.gbest_position = state.pbest_positions[idx].copy()
            # -- swarm: per-member inputs, one stacked update ----------------
            if stacked_update:
                for k, m in enumerate(fast):
                    engine = m.engine
                    run = m.run
                    engine._progress = m.t / max(1, run.max_iter - 1)
                    p = engine._scheduled_params(run.params)
                    block = m.rows
                    w_col[block] = np.float32(p.inertia)
                    c1_col[block] = np.float32(p.cognitive)
                    c2_col[block] = np.float32(p.social)
                    if combined_draw:
                        run.rng.uniform((2, n, d), out=lg[k])
                    else:
                        draw_weights(
                            run.rng, n, d, out=(l_mat[block], g_mat[block])
                        )
                    social[block] = social_positions(run.state, p.topology)
                    vb = engine._current_velocity_bounds(run.problem, p)
                    if vb is not None:
                        vb_lo[block] = vb[0].astype(np.float32)
                        vb_hi[block] = vb[1].astype(np.float32)
                if mode == "scratch":
                    np.subtract(pb3, pos3, out=s1)
                    np.multiply(l3, s1, out=s1)
                    np.multiply(s1, c13, out=s1)
                    np.subtract(social3, pos3, out=s2)
                    np.multiply(g3, s2, out=s2)
                    np.multiply(s2, c23, out=s2)
                    np.multiply(vel3, w3, out=vel3)
                    np.add(vel3, s1, out=vel3)
                    np.add(vel3, s2, out=vel3)
                else:  # wmma
                    from repro.gpusim.tensorcore import fragment_multiply_add

                    cog = pb3 - pos3
                    soc = social3 - pos3
                    base = vel3 * w3
                    term1 = fragment_multiply_add(l3, cog)
                    term2 = fragment_multiply_add(g3, soc)
                    np.add(base, c13 * term1, out=vel3)
                    vel3 += c23 * term2
                if any_clamp:
                    np.clip(vel3, vb_lo3, vb_hi3, out=vel3)
                np.add(pos3, vel3, out=pos3)
                if any_clip:
                    np.clip(pos3, clip_lo3, clip_hi3, out=pos3)
            else:  # permember: fp16 keeps the solo scalar-coefficient path
                for m in fast:
                    engine = m.engine
                    run = m.run
                    state = run.state
                    engine._progress = m.t / max(1, run.max_iter - 1)
                    p = engine._scheduled_params(run.params)
                    block = m.rows
                    draw_weights(run.rng, n, d, out=(l_mat[block], g_mat[block]))
                    soc = social_positions(state, p.topology)
                    vb = engine._current_velocity_bounds(run.problem, p)
                    velocity_update(
                        state.velocities,
                        state.positions,
                        state.pbest_positions,
                        soc,
                        l_mat[block],
                        g_mat[block],
                        p,
                        vb,
                        out=state.velocities,
                    )
                    position_update(state.positions, state.velocities, run.problem, p)
            # -- per-member clock replay + bookkeeping -----------------------
            any_stopped = False
            for m in fast:
                consumed = m.run.rng.position - m.rng_before
                if consumed != m.graph.rng_blocks:
                    raise GraphReplayError(
                        "fused iteration consumed "
                        f"{consumed} RNG blocks for member {m.index}; capture "
                        f"recorded {m.graph.rng_blocks}"
                    )
                improved = int(np.count_nonzero(mask[m.rows]))
                clock = m.engine.clock
                totals = clock.section_totals
                totals_get = totals.get
                # Accumulate ``clock.now`` in a local between dynamic
                # slots: the additions run in the same order on the same
                # floats, so the clock value stays bit-identical while the
                # per-entry attribute round-trips disappear.
                now = clock.now
                for label, seconds, dynamic in m.graph.trace:
                    if dynamic:
                        clock.now = now
                        with clock.section(label):
                            m.engine._charge_pbest_copy(improved, d)
                        now = clock.now
                    else:
                        now += seconds
                        if label is not None:
                            totals[label] = totals_get(label, 0.0) + seconds
                clock.now = now
                if m.mode == "graph":
                    m.run.runner.info["replays"] += 1
                m.fast_replays += 1
                m.stopped = m.run.after_iteration(m.t)
                m.t += 1
                any_stopped = any_stopped or m.stopped
            self.fast_rounds += 1
            if any_stopped:
                # A member hit its budget/stop: leave the fast loop; the
                # survivors continue solo on their row views (bit-identical
                # either way — the fast loop is purely an optimisation).
                break

        self.saved_seconds_per_round = self._merged_saving(fast, n, d)

    def _eval_blocks(self, fast, p64, pos, n, d):
        """Contiguous same-problem row blocks with self-verified in-place
        evaluators (``fn=None`` blocks fall back to the members' own
        evaluators, still stacked row-wise)."""
        blocks = []
        start = 0
        while start < len(fast):
            end = start
            name = fast[start].run.problem.name
            while (
                end < len(fast) and fast[end].run.problem.name == name
            ):
                end += 1
            blocks.append((start, end))
            start = end

        np.copyto(p64, pos)
        out_blocks = []
        for (b_lo, b_hi) in blocks:
            block_members = fast[b_lo:b_hi]
            row_lo, row_hi = b_lo * n, b_hi * n
            name = block_members[0].run.problem.name
            fn = make_inplace_evaluator(name, row_hi - row_lo, d)
            if fn is not None:
                # Trust, but verify: the in-place evaluator must reproduce
                # every member's standard evaluator bit-for-bit on the
                # current positions before the loop relies on it.
                try:
                    got = fn(p64[row_lo:row_hi])
                    for k, m in enumerate(block_members):
                        ref = np.asarray(
                            m.run.problem.evaluator.evaluate(
                                m.run.state.positions
                            ),
                            dtype=np.float64,
                        )
                        if not np.array_equal(got[k * n:(k + 1) * n], ref):
                            fn = None
                            break
                except EvaluationError:
                    raise
                except Exception:
                    fn = None
            out_blocks.append((row_lo, row_hi, fn, block_members))
        return out_blocks

    # -- the lane (makespan) model --------------------------------------------
    def _merged_saving(self, fast, n, d) -> float:
        """Modelled simulated seconds one fused round saves versus ``m``
        solo iterations, from re-pricing aligned launch slots at the summed
        element count plus paying fixed host overhead once.

        Conservative on failure: any model irregularity (per-member launch
        sequences that don't align, unknown kernels) yields a saving of 0,
        so the fused lane is never under-billed.  Dynamic charges (the
        pbest copy) stay per-member and are excluded from the merge.
        """
        try:
            static_seconds = [
                sum(s for (_l, s, dyn) in m.graph.trace if not dyn)
                for m in fast
            ]
            launch_seconds = [
                sum(entry[4].seconds for entry in m.graph.launches)
                for m in fast
            ]
            n_slots = len(fast[0].graph.launches)
            if any(len(m.graph.launches) != n_slots for m in fast):
                return 0.0
            ctx = fast[0].engine.ctx
            device, cost_params = ctx.spec, ctx.launcher.cost_params
            merged = 0.0
            for slot in range(n_slots):
                by_spec: dict = {}
                for m in fast:
                    name, _sec, n_elems, cfg, _cost = m.graph.launches[slot]
                    spec = m.spec_map[name]
                    key = (spec, cfg.threads_per_block)
                    by_spec[key] = by_spec.get(key, 0) + n_elems
                for (spec, tpb), total_elems in by_spec.items():
                    cfg = resource_aware_config(
                        device,
                        total_elems,
                        threads_per_block=tpb,
                        kernel_spec=spec,
                    )
                    merged += kernel_cost(
                        device, spec, cfg, total_elems, cost_params
                    ).seconds
            overheads = [
                s - k for s, k in zip(static_seconds, launch_seconds)
            ]
            merged_total = merged + max(overheads)
            merged_total = min(
                max(merged_total, max(static_seconds)), sum(static_seconds)
            )
            return sum(static_seconds) - merged_total
        except Exception:
            return 0.0

    def _lane_seconds(self) -> float:
        elapsed = [
            m.result.elapsed_seconds for m in self.members if m.result is not None
        ]
        total = sum(elapsed)
        lane = total - self.fast_rounds * self.saved_seconds_per_round
        floor = max(elapsed, default=0.0)
        return max(lane, floor)
