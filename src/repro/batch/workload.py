"""Deterministic mixed workloads for batch benchmarks and tests.

Real PSO deployments are fleets of heterogeneous small/medium jobs (the
gpu-pso and PSO-survey observations in PAPERS.md), so the reference
workload mixes problems, dimensionalities, swarm sizes, budgets and GPU
engine variants.  Generation is pure arithmetic over fixed tables — no RNG
— so the same call always produces the same job list on every platform,
which keeps the committed ``BENCH_batch.json`` reproducible.
"""

from __future__ import annotations

from repro.batch.job import Job
from repro.errors import InvalidParameterError

__all__ = ["mixed_workload", "WORKLOAD_PROBLEMS"]

#: Problem mix, chosen from the paper's Table 1/2 suite: cheap separable
#: objectives next to transcendental-heavy ones so job durations are skewed
#: (the case where size-aware packing beats FIFO).
WORKLOAD_PROBLEMS = (
    "sphere",
    "rastrigin",
    "rosenbrock",
    "ackley",
    "griewank",
    "levy",
    "zakharov",
    "schwefel",
)

_DIMS = (8, 16, 32, 64)
_PARTICLES = (128, 256, 512, 1024)
_ITERS = (40, 60, 80, 120)
#: GPU engine variants only: a batch mixing in a CPU-substrate job would be
#: dominated by it (Table 1's two-orders-of-magnitude gap) and measure that
#: job, not the scheduler.
_ENGINES = (
    ("fastpso", {}),
    ("fastpso", {"backend": "shared"}),
    ("gpu-pso", {}),
    ("fastpso", {"backend": "tensorcore"}),
)


def mixed_workload(n_jobs: int = 32, *, base_seed: int = 1000) -> list[Job]:
    """The reference mixed batch: *n_jobs* heterogeneous GPU jobs.

    Job *i* cycles through the problem/dim/particle/iteration/engine tables
    at coprime strides, so consecutive jobs differ in several axes and the
    duration distribution is skewed rather than uniform.  Seeds are
    ``base_seed + i`` — every job draws from its own Philox stream.
    """
    if n_jobs < 1:
        raise InvalidParameterError(f"n_jobs must be positive, got {n_jobs}")
    jobs = []
    for i in range(n_jobs):
        engine, options = _ENGINES[(i * 3) % len(_ENGINES)]
        jobs.append(
            Job(
                problem=WORKLOAD_PROBLEMS[i % len(WORKLOAD_PROBLEMS)],
                dim=_DIMS[(i * 5) % len(_DIMS)],
                n_particles=_PARTICLES[(i * 7) % len(_PARTICLES)],
                max_iter=_ITERS[(i * 11) % len(_ITERS)],
                engine=engine,
                engine_options=options,
                seed=base_seed + i,
                name=f"job{i:02d}",
                # Three deterministic priority tiers so the overload drill
                # has low-priority jobs to shed first.
                priority=i % 3,
            )
        )
    return jobs
