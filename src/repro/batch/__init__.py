"""Batch job scheduling: many independent PSO problems, one simulated fleet.

The batch layer turns the repo from "one optimization at a time" into a
multi-tenant service model: :class:`Job` describes one optimization,
:class:`BatchScheduler` packs many of them onto simulated streams and
devices so their kernel timelines genuinely overlap, and
:class:`BatchResult` reports per-job results (bit-identical to solo runs)
plus fleet metrics — makespan, speedup over serial execution, queue waits
and device occupancy.

Quickstart::

    from repro import BatchScheduler, Job

    sched = BatchScheduler(n_devices=2, streams_per_device=4, policy="packed")
    sched.submit_many(
        Job("sphere", dim=32, n_particles=256, max_iter=100, seed=s)
        for s in range(16)
    )
    batch = sched.run()
    print(batch.summary())

Or through the facade: :meth:`repro.FastPSO.minimize_batch`.  The module is
also runnable — ``python -m repro.batch --jobs 32`` schedules the reference
mixed workload and prints the fleet report.
"""

from repro.batch.admission import (
    ADMISSION_MODES,
    AdmissionDecision,
    AdmissionPolicy,
    estimate_job_bytes,
)
from repro.batch.dispatch import (
    FleetTimeline,
    LanePlacement,
    RunningJob,
    start_job,
)
from repro.batch.job import Job, JobOutcome
from repro.batch.scheduler import (
    POLICIES,
    BatchResult,
    BatchScheduler,
    resolve_policy,
)
from repro.batch.workload import WORKLOAD_PROBLEMS, mixed_workload

__all__ = [
    "ADMISSION_MODES",
    "AdmissionDecision",
    "AdmissionPolicy",
    "FleetTimeline",
    "LanePlacement",
    "Job",
    "JobOutcome",
    "BatchScheduler",
    "BatchResult",
    "POLICIES",
    "RunningJob",
    "estimate_job_bytes",
    "mixed_workload",
    "resolve_policy",
    "start_job",
    "WORKLOAD_PROBLEMS",
]
