"""Admission control and load shedding for the batch scheduler.

An oversubscribed fleet should degrade *deterministically*, not queue
unboundedly or die mid-run on a device OOM.  Before executing anything,
:class:`BatchScheduler` runs the submitted jobs through an
:class:`AdmissionPolicy`, which considers them in **priority order**
(higher ``Job.priority`` first, submission order breaking ties) and issues
one :class:`AdmissionDecision` per job:

* ``"admit"`` — run the job as submitted;
* ``"degrade"`` — run a *reduced* variant: the swarm is halved (down to
  ``min_particles``) and, for the fastpso engine, storage drops to fp16 —
  the same degradation ladder a capacity-squeezed service would apply;
* ``"shed"`` — don't run the job at all; it gets a terminal ``"shed"``
  outcome with the reason recorded.

Two resources are policed.  The **queue bound** (``max_queue``) caps how
many jobs one batch may execute; overflow jobs — the lowest-priority,
latest-submitted ones — are shed.  The **memory check** compares each
job's estimated worst-case device residency (swarm arrays plus allocator
slack, times the lanes that could run concurrently) against the device
capacity; jobs that would not fit are degraded down the ladder until they
do, or shed in ``"degrade"`` mode / refused with
:class:`~repro.errors.AdmissionError` in ``"strict"`` mode.

Every decision is pure arithmetic over the job list — no clocks, no
randomness — so re-running the same workload reproduces byte-identical
decisions, which the overload drill asserts.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.batch.job import Job
from repro.errors import AdmissionError, ConfigurationError

__all__ = [
    "ADMISSION_MODES",
    "AdmissionDecision",
    "AdmissionPolicy",
    "estimate_job_bytes",
]

ADMISSION_MODES = ("degrade", "strict")

#: Allocator slack: size-class rounding plus transient eval scratch.
_SLACK = 1.25


def estimate_job_bytes(job: Job) -> int:
    """Worst-case device residency of one job, in bytes.

    Three ``(n, d)`` swarm arrays (positions, velocities, pbest positions),
    the float64 pbest values, a float32 eval scratch vector, padded by the
    allocator-slack factor.  fp16 storage (the ``half_storage`` option /
    ``fastpso-fp16`` alias) halves the array itemsize.
    """
    options = dict(job.engine_options)
    half = bool(options.get("half_storage")) or job.engine == "fastpso-fp16"
    itemsize = 2 if half else 4
    n, d = job.n_particles, job.dim
    arrays = 3 * n * d * itemsize + 8 * n + 4 * n
    return int(np.ceil(arrays * _SLACK))


@dataclass(frozen=True)
class AdmissionDecision:
    """One job's fate at admission time."""

    submit_order: int
    label: str
    priority: int
    action: str  # "admit" | "degrade" | "shed"
    reason: str
    #: The job to actually execute (degraded variant for "degrade";
    #: ``None`` for "shed").
    job: Job | None

    def to_row(self) -> dict:
        return {
            "submit_order": self.submit_order,
            "label": self.label,
            "priority": self.priority,
            "action": self.action,
            "reason": self.reason,
        }


@dataclass(frozen=True)
class AdmissionPolicy:
    """Bounded-queue + memory-pressure admission for one batch.

    ``mode``
        ``"degrade"`` (default) sheds/degrades deterministically;
        ``"strict"`` raises :class:`AdmissionError` instead of shedding.
    ``max_queue``
        Most jobs one batch may execute (``None`` = unbounded).
    ``memory_limit_bytes``
        Per-device capacity the memory check uses; defaults to the
        simulated device's global memory times ``memory_fraction``.
    ``memory_fraction``
        Safety margin below hard capacity when no explicit limit is given.
    ``min_particles``
        Floor below which the degradation ladder stops halving the swarm.
    """

    mode: str = "degrade"
    max_queue: int | None = None
    memory_limit_bytes: int | None = None
    memory_fraction: float = 0.9
    min_particles: int = 32

    def __post_init__(self) -> None:
        if self.mode not in ADMISSION_MODES:
            raise ConfigurationError(
                f"unknown admission mode {self.mode!r}; "
                f"choose from {ADMISSION_MODES}"
            )
        if self.max_queue is not None and self.max_queue < 1:
            raise ConfigurationError(
                f"max_queue must be >= 1, got {self.max_queue}"
            )
        if not 0.0 < self.memory_fraction <= 1.0:
            raise ConfigurationError(
                f"memory_fraction must be in (0, 1], got {self.memory_fraction}"
            )
        if self.min_particles < 1:
            raise ConfigurationError(
                f"min_particles must be >= 1, got {self.min_particles}"
            )

    # -- the gate ----------------------------------------------------------
    def capacity_bytes(self, device_mem_bytes: int) -> int:
        if self.memory_limit_bytes is not None:
            return int(self.memory_limit_bytes)
        return int(device_mem_bytes * self.memory_fraction)

    def plan(
        self,
        jobs: list[Job],
        *,
        streams_per_device: int,
        device_mem_bytes: int,
    ) -> list[AdmissionDecision]:
        """Decide every job's fate; returns decisions in submission order.

        Jobs are considered highest-priority-first (submission order breaks
        ties); the queue bound keeps the first ``max_queue`` of that order
        and sheds the rest, then each survivor walks the memory ladder.
        """
        order = sorted(
            range(len(jobs)), key=lambda i: (-jobs[i].priority, i)
        )
        capacity = self.capacity_bytes(device_mem_bytes)
        decisions: dict[int, AdmissionDecision] = {}

        for rank, i in enumerate(order):
            job = jobs[i]
            if self.max_queue is not None and rank >= self.max_queue:
                decisions[i] = self._refuse(
                    i,
                    job,
                    reason=(
                        f"queue bound {self.max_queue} exceeded "
                        f"(priority rank {rank})"
                    ),
                )
                continue
            decisions[i] = self._fit_memory(
                i, job, capacity=capacity, lanes=streams_per_device
            )
        return [decisions[i] for i in range(len(jobs))]

    def _refuse(self, index: int, job: Job, *, reason: str) -> AdmissionDecision:
        if self.mode == "strict":
            raise AdmissionError(
                f"job {job.label!r} refused admission: {reason}"
            ).with_context(job=job.label)
        return AdmissionDecision(
            submit_order=index,
            label=job.label,
            priority=job.priority,
            action="shed",
            reason=reason,
            job=None,
        )

    def _fit_memory(
        self, index: int, job: Job, *, capacity: int, lanes: int
    ) -> AdmissionDecision:
        """Admit the job, walking the degradation ladder if it won't fit.

        The worst case modelled: every lane of the device runs a job this
        size concurrently, so the job fits when ``lanes * estimate`` stays
        under capacity.
        """

        def fits(candidate: Job) -> bool:
            return lanes * estimate_job_bytes(candidate) <= capacity

        if fits(job):
            return AdmissionDecision(
                submit_order=index,
                label=job.label,
                priority=job.priority,
                action="admit",
                reason="fits",
                job=job,
            )

        # Ladder rung 1: halve the swarm (repeatedly) down to the floor.
        candidate = job
        steps: list[str] = []
        n = candidate.n_particles
        while n > self.min_particles:
            n = max(self.min_particles, n // 2)
            candidate = candidate.with_overrides(n_particles=n)
            steps.append(f"n_particles->{n}")
            if fits(candidate):
                return self._degraded(index, job, candidate, steps)

        # Ladder rung 2: fp16 storage (fastpso element-wise engine only).
        if candidate.engine == "fastpso" and not dict(
            candidate.engine_options
        ).get("half_storage"):
            options = dict(candidate.engine_options)
            options["half_storage"] = True
            candidate = candidate.with_overrides(engine_options=options)
            steps.append("half_storage")
            if fits(candidate):
                return self._degraded(index, job, candidate, steps)

        estimate = estimate_job_bytes(job)
        return self._refuse(
            index,
            job,
            reason=(
                f"memory: {lanes} lane(s) x {estimate} B exceeds "
                f"capacity {capacity} B even fully degraded"
            ),
        )

    @staticmethod
    def _degraded(
        index: int, original: Job, candidate: Job, steps: list[str]
    ) -> AdmissionDecision:
        return AdmissionDecision(
            submit_order=index,
            label=original.label,
            priority=original.priority,
            action="degrade",
            reason="memory: " + ", ".join(steps),
            job=candidate,
        )
