"""Admission control and load shedding for the batch scheduler.

An oversubscribed fleet should degrade *deterministically*, not queue
unboundedly or die mid-run on a device OOM.  Before executing anything,
:class:`BatchScheduler` runs the submitted jobs through an
:class:`AdmissionPolicy`, which considers them in **priority order**
(higher ``Job.priority`` first, submission order breaking ties) and issues
one :class:`AdmissionDecision` per job:

* ``"admit"`` — run the job as submitted;
* ``"degrade"`` — run a *reduced* variant: the swarm is halved (down to
  ``min_particles``) and, for the fastpso engine, storage drops to fp16 —
  the same degradation ladder a capacity-squeezed service would apply;
* ``"shed"`` — don't run the job at all; it gets a terminal ``"shed"``
  outcome with the reason recorded.

Two resources are policed.  The **queue bound** (``max_queue``) caps how
many jobs one batch may execute; overflow jobs — the lowest-priority,
latest-submitted ones — are shed.  The **memory check** compares each
job's estimated worst-case device residency (swarm arrays plus allocator
slack, times the lanes that could run concurrently) against the device
capacity; jobs that would not fit are degraded down the ladder until they
do, or shed in ``"degrade"`` mode / refused with
:class:`~repro.errors.AdmissionError` in ``"strict"`` mode.

Every decision is pure arithmetic over the job list — no clocks, no
randomness — so re-running the same workload reproduces byte-identical
decisions, which the overload drill asserts.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.batch.job import Job
from repro.errors import AdmissionError, ConfigurationError

__all__ = [
    "ADMISSION_MODES",
    "AdmissionDecision",
    "AdmissionPolicy",
    "estimate_job_bytes",
    "estimate_group_bytes",
]

ADMISSION_MODES = ("degrade", "strict")

#: Allocator slack: size-class rounding plus transient eval scratch.
_SLACK = 1.25


def estimate_job_bytes(job: Job) -> int:
    """Worst-case device residency of one job, in bytes.

    Three ``(n, d)`` swarm arrays (positions, velocities, pbest positions),
    the float64 pbest values, a float32 eval scratch vector, padded by the
    allocator-slack factor.  fp16 storage (the ``half_storage`` option /
    ``fastpso-fp16`` alias) halves the array itemsize.
    """
    options = dict(job.engine_options)
    half = bool(options.get("half_storage")) or job.engine == "fastpso-fp16"
    itemsize = 2 if half else 4
    n, d = job.n_particles, job.dim
    arrays = 3 * n * d * itemsize + 8 * n + 4 * n
    return int(np.ceil(arrays * _SLACK))


def estimate_group_bytes(jobs) -> int:
    """Worst-case device residency of one *fused group*, in bytes.

    A fused group (``policy="fused"``) is priced as a unit, not per job:
    every member's persistent swarm arrays are resident at once, **plus**
    the stacked ``m*n x d`` tensors the fused runner allocates on top —
    the random-weight pair in storage precision, two float32 update
    scratch planes, and the float64 stacked evaluation buffer.  Same
    allocator-slack factor as :func:`estimate_job_bytes`, so a group of
    one degenerates to roughly the solo estimate plus its stacking
    overhead.
    """
    persistent = 0
    stacked = 0
    for job in jobs:
        options = dict(job.engine_options)
        half = bool(options.get("half_storage")) or job.engine == "fastpso-fp16"
        itemsize = 2 if half else 4
        n, d = job.n_particles, job.dim
        persistent += 3 * n * d * itemsize + 8 * n + 4 * n
        # Stacked rows this member contributes: weights (2 planes, storage
        # precision), update scratch (2 planes, f32), f64 eval positions.
        stacked += n * d * (2 * itemsize + 2 * 4 + 8)
    return int(np.ceil((persistent + stacked) * _SLACK))


@dataclass(frozen=True)
class AdmissionDecision:
    """One job's fate at admission time."""

    submit_order: int
    label: str
    priority: int
    action: str  # "admit" | "degrade" | "shed"
    reason: str
    #: The job to actually execute (degraded variant for "degrade";
    #: ``None`` for "shed").
    job: Job | None

    def to_row(self) -> dict:
        return {
            "submit_order": self.submit_order,
            "label": self.label,
            "priority": self.priority,
            "action": self.action,
            "reason": self.reason,
        }


@dataclass(frozen=True)
class AdmissionPolicy:
    """Bounded-queue + memory-pressure admission for one batch.

    ``mode``
        ``"degrade"`` (default) sheds/degrades deterministically;
        ``"strict"`` raises :class:`AdmissionError` instead of shedding.
    ``max_queue``
        Most jobs one batch may execute (``None`` = unbounded).
    ``memory_limit_bytes``
        Per-device capacity the memory check uses; defaults to the
        simulated device's global memory times ``memory_fraction``.
    ``memory_fraction``
        Safety margin below hard capacity when no explicit limit is given.
    ``min_particles``
        Floor below which the degradation ladder stops halving the swarm.
    """

    mode: str = "degrade"
    max_queue: int | None = None
    memory_limit_bytes: int | None = None
    memory_fraction: float = 0.9
    min_particles: int = 32

    def __post_init__(self) -> None:
        if self.mode not in ADMISSION_MODES:
            raise ConfigurationError(
                f"unknown admission mode {self.mode!r}; "
                f"choose from {ADMISSION_MODES}"
            )
        if self.max_queue is not None and self.max_queue < 1:
            raise ConfigurationError(
                f"max_queue must be >= 1, got {self.max_queue}"
            )
        if not 0.0 < self.memory_fraction <= 1.0:
            raise ConfigurationError(
                f"memory_fraction must be in (0, 1], got {self.memory_fraction}"
            )
        if self.min_particles < 1:
            raise ConfigurationError(
                f"min_particles must be >= 1, got {self.min_particles}"
            )

    # -- the gate ----------------------------------------------------------
    def capacity_bytes(self, device_mem_bytes: int) -> int:
        if self.memory_limit_bytes is not None:
            return int(self.memory_limit_bytes)
        return int(device_mem_bytes * self.memory_fraction)

    def plan(
        self,
        jobs: list[Job],
        *,
        streams_per_device: int,
        device_mem_bytes: int,
        groups=None,
    ) -> list[AdmissionDecision]:
        """Decide every job's fate; returns decisions in submission order.

        Jobs are considered highest-priority-first (submission order breaks
        ties); the queue bound keeps the first ``max_queue`` of that order
        and sheds the rest, then each survivor walks the memory ladder.

        *groups* (index lists from
        :func:`repro.batch.fused.plan_fused_groups`) makes the memory check
        group-aware: a fused group shares one lane and one stacked tensor
        set, so its queue survivors are priced together via
        :func:`estimate_group_bytes` and walk the degradation ladder
        **coherently** — one halving step reduces every member's swarm at
        once (a half-degraded group would break the fusion-compatibility
        key and silently fall back to ``m`` solo lanes, which is the
        opposite of what admission under memory pressure wants).
        """
        order = sorted(
            range(len(jobs)), key=lambda i: (-jobs[i].priority, i)
        )
        capacity = self.capacity_bytes(device_mem_bytes)
        decisions: dict[int, AdmissionDecision] = {}

        for rank, i in enumerate(order):
            job = jobs[i]
            if self.max_queue is not None and rank >= self.max_queue:
                decisions[i] = self._refuse(
                    i,
                    job,
                    reason=(
                        f"queue bound {self.max_queue} exceeded "
                        f"(priority rank {rank})"
                    ),
                )

        group_of: dict[int, tuple[int, ...]] = {}
        if groups:
            for group in groups:
                survivors = tuple(i for i in group if i not in decisions)
                if len(survivors) >= 2:
                    for i in survivors:
                        group_of[i] = survivors

        fitted: dict[tuple[int, ...], dict[int, AdmissionDecision]] = {}
        for i in order:
            if i in decisions:
                continue
            group = group_of.get(i)
            if group is None:
                decisions[i] = self._fit_memory(
                    i, jobs[i], capacity=capacity, lanes=streams_per_device
                )
                continue
            if group not in fitted:
                fitted[group] = self._fit_group_memory(
                    group, jobs, capacity=capacity, lanes=streams_per_device
                )
            decisions[i] = fitted[group][i]
        return [decisions[i] for i in range(len(jobs))]

    def admit_one(
        self,
        job: Job,
        *,
        submit_order: int,
        streams_per_device: int,
        device_mem_bytes: int,
        queue_depth: int = 0,
    ) -> AdmissionDecision:
        """Decide one job's fate at arrival time (the serving-layer gate).

        Where :meth:`plan` gates a *closed* batch (priority-ranked as a
        set), a service admits jobs one at a time as they arrive:
        *queue_depth* is the number of jobs already waiting — when it has
        reached ``max_queue`` the arrival is shed (or refused in
        ``"strict"`` mode), otherwise the job walks the same memory ladder
        a batch job would.  Pure arithmetic, so identical arrival sequences
        reproduce identical decisions.
        """
        if self.max_queue is not None and queue_depth >= self.max_queue:
            return self._refuse(
                submit_order,
                job,
                reason=(
                    f"queue bound {self.max_queue} exceeded "
                    f"(depth {queue_depth})"
                ),
            )
        return self._fit_memory(
            submit_order,
            job,
            capacity=self.capacity_bytes(device_mem_bytes),
            lanes=streams_per_device,
        )

    def _refuse(self, index: int, job: Job, *, reason: str) -> AdmissionDecision:
        if self.mode == "strict":
            raise AdmissionError(
                f"job {job.label!r} refused admission: {reason}"
            ).with_context(job=job.label)
        return AdmissionDecision(
            submit_order=index,
            label=job.label,
            priority=job.priority,
            action="shed",
            reason=reason,
            job=None,
        )

    def _fit_memory(
        self, index: int, job: Job, *, capacity: int, lanes: int
    ) -> AdmissionDecision:
        """Admit the job, walking the degradation ladder if it won't fit.

        The worst case modelled: every lane of the device runs a job this
        size concurrently, so the job fits when ``lanes * estimate`` stays
        under capacity.
        """

        def fits(candidate: Job) -> bool:
            return lanes * estimate_job_bytes(candidate) <= capacity

        if fits(job):
            return AdmissionDecision(
                submit_order=index,
                label=job.label,
                priority=job.priority,
                action="admit",
                reason="fits",
                job=job,
            )

        # Ladder rung 1: halve the swarm (repeatedly) down to the floor.
        candidate = job
        steps: list[str] = []
        n = candidate.n_particles
        while n > self.min_particles:
            n = max(self.min_particles, n // 2)
            candidate = candidate.with_overrides(n_particles=n)
            steps.append(f"n_particles->{n}")
            if fits(candidate):
                return self._degraded(index, job, candidate, steps)

        # Ladder rung 2: fp16 storage (fastpso element-wise engine only).
        if candidate.engine == "fastpso" and not dict(
            candidate.engine_options
        ).get("half_storage"):
            options = dict(candidate.engine_options)
            options["half_storage"] = True
            candidate = candidate.with_overrides(engine_options=options)
            steps.append("half_storage")
            if fits(candidate):
                return self._degraded(index, job, candidate, steps)

        estimate = estimate_job_bytes(job)
        return self._refuse(
            index,
            job,
            reason=(
                f"memory: {lanes} lane(s) x {estimate} B exceeds "
                f"capacity {capacity} B even fully degraded"
            ),
        )

    def _fit_group_memory(
        self, indices: tuple[int, ...], jobs, *, capacity: int, lanes: int
    ) -> dict[int, AdmissionDecision]:
        """Fit a fused group as one unit, degrading all members in lockstep.

        The group occupies a single lane, so the concurrency worst case is
        ``lanes`` *groups* of this footprint — the same ``lanes *
        estimate`` rule as solo jobs, with :func:`estimate_group_bytes`
        pricing the stacked tensors.  Every ladder step applies to all
        members (shared ``n_particles`` target, then the fp16 rung only
        when every member is eligible), so the survivors still share a
        fusion key.  An unfittable group is shed whole.
        """
        members = [jobs[i] for i in indices]

        def fits(candidates: list[Job]) -> bool:
            return lanes * estimate_group_bytes(candidates) <= capacity

        if fits(members):
            return {
                i: AdmissionDecision(
                    submit_order=i,
                    label=jobs[i].label,
                    priority=jobs[i].priority,
                    action="admit",
                    reason="fits (fused group)",
                    job=jobs[i],
                )
                for i in indices
            }

        candidates = list(members)
        steps: list[str] = []
        n = max(job.n_particles for job in candidates)
        while n > self.min_particles:
            n = max(self.min_particles, n // 2)
            candidates = [
                job.with_overrides(n_particles=min(n, job.n_particles))
                for job in candidates
            ]
            steps.append(f"n_particles->{n}")
            if fits(candidates):
                return self._group_degraded(indices, jobs, candidates, steps)

        if all(
            job.engine == "fastpso"
            and not dict(job.engine_options).get("half_storage")
            for job in candidates
        ):
            candidates = [
                job.with_overrides(
                    engine_options={
                        **dict(job.engine_options),
                        "half_storage": True,
                    }
                )
                for job in candidates
            ]
            steps.append("half_storage")
            if fits(candidates):
                return self._group_degraded(indices, jobs, candidates, steps)

        estimate = estimate_group_bytes(members)
        return {
            i: self._refuse(
                i,
                jobs[i],
                reason=(
                    f"memory: {lanes} lane(s) x {estimate} B "
                    f"(fused group of {len(members)}) exceeds "
                    f"capacity {capacity} B even fully degraded"
                ),
            )
            for i in indices
        }

    def _group_degraded(
        self, indices, jobs, candidates, steps
    ) -> dict[int, AdmissionDecision]:
        reason = "memory: " + ", ".join(steps) + " (fused group)"
        return {
            i: AdmissionDecision(
                submit_order=i,
                label=jobs[i].label,
                priority=jobs[i].priority,
                action="degrade",
                reason=reason,
                job=candidate,
            )
            for i, candidate in zip(indices, candidates)
        }

    @staticmethod
    def _degraded(
        index: int, original: Job, candidate: Job, steps: list[str]
    ) -> AdmissionDecision:
        return AdmissionDecision(
            submit_order=index,
            label=original.label,
            priority=original.priority,
            action="degrade",
            reason="memory: " + ", ".join(steps),
            job=candidate,
        )
