"""Deprecation shims for the unified public API.

The API redesign renames a handful of keywords (e.g. the GPU engines'
``spec=`` constructor argument became ``device=``, matching the
:class:`~repro.core.fastpso.FastPSO` facade).  Existing callers keep
working for one release: the old keyword is accepted, forwarded to the new
name, and flagged with a :class:`DeprecationWarning`.  The test suite runs
with ``-W error::DeprecationWarning``, so nothing inside this repo may use
a deprecated spelling.
"""

from __future__ import annotations

import functools
import warnings
from typing import Callable, TypeVar

__all__ = ["deprecated_kwargs"]

F = TypeVar("F", bound=Callable)


def deprecated_kwargs(**renames: str) -> Callable[[F], F]:
    """Accept renamed keyword arguments under their old names, with a warning.

    ``@deprecated_kwargs(old="new")`` makes ``fn(old=x)`` behave exactly
    like ``fn(new=x)`` while emitting a :class:`DeprecationWarning` at the
    caller.  Passing both spellings at once is an error (:class:`TypeError`,
    like any duplicate keyword).
    """

    def decorate(fn: F) -> F:
        @functools.wraps(fn)
        def wrapper(*args, **kwargs):
            for old, new in renames.items():
                if old in kwargs:
                    if new in kwargs:
                        raise TypeError(
                            f"{fn.__qualname__}() got both {old!r} "
                            f"(deprecated) and {new!r}"
                        )
                    warnings.warn(
                        f"{fn.__qualname__}(): keyword {old!r} was renamed "
                        f"to {new!r} and will be removed in the next major "
                        f"release",
                        DeprecationWarning,
                        stacklevel=2,
                    )
                    kwargs[new] = kwargs.pop(old)
            return fn(*args, **kwargs)

        return wrapper  # type: ignore[return-value]

    return decorate
