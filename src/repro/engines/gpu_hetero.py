"""``hgpu-pso``: heterogeneous CPU+GPU baseline (Wachowiak et al. 2017).

Adaptive PSO with the swarm logic split across host and device: the GPU runs
the particle-update kernels (same thread-per-particle mapping and stateful
RNG as ``gpu-pso``), while fitness evaluation and best-keeping run on the
multicore host.  The price is a PCIe round trip every iteration — positions
down to the host, fitness values back up — plus the host-side evaluation
time, which is why the paper measures it slightly *slower* than the pure-GPU
baseline on these cheap objectives (Table 1: 6.0 s vs 4.9 s on Sphere)
despite using 20 extra cores.
"""

from __future__ import annotations

import numpy as np

from repro.core.problem import Problem
from repro.core.swarm import SwarmState
from repro.engines.gpu_particle import GpuParticleEngine
from repro._compat import deprecated_kwargs
from repro.errors import InvalidParameterError
from repro.gpusim.costmodel import (
    CpuSpec,
    GpuCostParams,
    cpu_loop_cost,
    xeon_e5_2640v4,
)
from repro.gpusim.device import DeviceSpec

__all__ = ["GpuHeteroEngine"]

_F64 = 8
_TRANSFER_SUBMIT_OVERHEAD_S = 6.0e-6


class GpuHeteroEngine(GpuParticleEngine):
    """Heterogeneous multicore-CPU + GPU PSO (``hgpu-pso``)."""

    name = "hgpu-pso"
    is_gpu = True

    @deprecated_kwargs(spec="device")
    def __init__(
        self,
        device: DeviceSpec | None = None,
        *,
        cpu: CpuSpec | None = None,
        cpu_threads: int = 20,
        threads_per_block: int = 128,
        cost_params: GpuCostParams | None = None,
        record_launches: bool = False,
    ) -> None:
        super().__init__(
            device,
            threads_per_block=threads_per_block,
            cost_params=cost_params,
            record_launches=record_launches,
        )
        if cpu_threads < 1:
            raise InvalidParameterError(f"cpu_threads must be >= 1, got {cpu_threads}")
        self.cpu = cpu or xeon_e5_2640v4()
        self.cpu_threads = cpu_threads

    def _transfer(self, nbytes: int) -> None:
        self.clock.advance(
            _TRANSFER_SUBMIT_OVERHEAD_S + nbytes / self.ctx.spec.pcie_bandwidth
        )

    def _evaluate(self, problem: Problem, state: SwarmState) -> np.ndarray:
        n, d = state.n_particles, state.dim
        # D2H: current positions for host-side evaluation.
        self._transfer(n * d * _F64)
        values = problem.evaluator.evaluate(state.positions)
        prof = problem.evaluator.profile()
        cost = cpu_loop_cost(
            self.cpu,
            n * d,
            flops_per_elem=prof.flops_per_elem + prof.reduction_flops_per_elem,
            bytes_per_elem=_F64,
            transcendental_per_elem=prof.sfu_per_elem,
            threads=self.cpu_threads,
        )
        self.clock.advance(cost.seconds)
        # H2D: fitness values back to the device for the best-update kernels.
        self._transfer(n * _F64)
        return values
