"""``pyswarms``: model of the PySwarms ``GlobalBestPSO`` optimizer.

PySwarms (Miranda 2018) is the most-starred Python PSO library and one of
the paper's two CPU baselines.  Its ``GlobalBestPSO`` with the paper's
options (``w=0.9, c1=c2=2``) runs fully *vectorised* NumPy updates but:

* applies no velocity clamp unless the user passes one (the paper passes
  only ``w/c1/c2``), so the dynamics diverge (Table 2's 1031.99 on Sphere);
* materialises many float64 temporaries per iteration (compute_velocity /
  compute_position / history bookkeeping), the cost structure behind its
  ~65 ms/iteration at n=5000, d=200 (Table 1's 129.67 s).

Runs its full iteration budget — no early stopping.
"""

from __future__ import annotations

from repro.engines.lib_base import LibraryEngineBase

__all__ = ["PySwarmsLikeEngine"]


class PySwarmsLikeEngine(LibraryEngineBase):
    """Vectorised NumPy library baseline (``pyswarms``)."""

    name = "pyswarms"
    is_gpu = False
    eval_strategy = "vectorized"
    clip_positions = False
    # compute_velocity: 3 pulls x (sub, mul-by-random, scale, add) plus the
    # clamp/validation pass pyswarms always runs.
    update_ufunc_ops = 12
    # swarm history + reporter bookkeeping per iteration.
    overhead_ufunc_ops = 6
