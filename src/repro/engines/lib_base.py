"""Shared machinery for the CPU *library* baselines (pyswarms, scikit-opt).

These engines reproduce the two popular open-source PSO libraries the paper
benchmarks: their *algorithmic defaults* (which drive the Table 2 error
separation) and their *interpreted-NumPy cost structure* (which drives the
two-orders-of-magnitude Table 1 gap).

Algorithmic fidelity:

* Neither library clamps velocities by default.  With the paper's
  ``w = 0.9, c1 = c2 = 2`` the swarm dynamics are divergent: velocities grow
  geometrically, the search degrades to the best-of-initial-sampling level,
  and the reported errors are enormous — exactly Table 2's pyswarms/
  scikit-opt rows.  A numerical guard clamps |v| at ``1e12`` only to keep
  float arithmetic finite (real libraries overflow to inf/NaN and stop
  improving, which is behaviourally identical: pbest never updates again).
* Both use float64 NumPy arrays.

Cost structure: every step is a sequence of NumPy ufuncs on ``(n, d)``
float64 arrays, each paying dispatch overhead and materialising temporaries
(:class:`repro.gpusim.costmodel.PythonOverheadModel`), plus the legacy
``np.random`` generator for the per-iteration weight matrices.  Subclasses
declare their op counts and evaluation strategy.
"""

from __future__ import annotations

import numpy as np

from repro.core.engine import Engine
from repro.core.parameters import PSOParams
from repro.core.problem import Problem
from repro.core.swarm import (
    INIT_VELOCITY_FRACTION,
    SwarmState,
    gbest_scan,
    pbest_update,
)
from repro.functions.base import EvalProfile
from repro.gpusim.costmodel import (
    CpuSpec,
    PythonOverheadModel,
    cpu_loop_cost,
    xeon_e5_2640v4,
)
from repro.gpusim.rng import ParallelRNG

__all__ = ["LibraryEngineBase", "VELOCITY_GUARD"]

_F64 = 8
#: Numerical guard on |v| replacing the libraries' unbounded (overflowing)
#: velocities; large enough never to affect the search behaviour.
VELOCITY_GUARD = 1.0e12
#: Legacy np.random draw cost (Mersenne Twister + boxing), in CPU cycles.
_NP_RANDOM_CYCLES = 22.0


class LibraryEngineBase(Engine):
    """Template for the interpreted-library baselines."""

    #: NumPy ufunc invocations in one swarm update (velocity + position).
    update_ufunc_ops: int = 12
    #: Extra ufunc invocations per iteration for bookkeeping/reporting.
    overhead_ufunc_ops: int = 4
    #: "vectorized" (pyswarms) or "per_particle" (scikit-opt) evaluation.
    eval_strategy: str = "vectorized"
    #: Whether positions are clipped to the search bounds (scikit-opt does).
    clip_positions: bool = False

    def __init__(self, cpu: CpuSpec | None = None) -> None:
        super().__init__()
        self.cpu = cpu or xeon_e5_2640v4()
        self.overhead = PythonOverheadModel()

    # -- timing helpers ------------------------------------------------------
    def _charge_ufuncs(self, n_ops: int, n_elems: int) -> None:
        """*n_ops* NumPy array operations over *n_elems* float64 elements."""
        traffic = (
            n_ops * n_elems * 2 * _F64 * self.overhead.temp_traffic_factor
        )
        stream = cpu_loop_cost(self.cpu, 1, bytes_per_elem=traffic, threads=1)
        self.clock.advance(stream.seconds + self.overhead.ufunc_time(n_ops))

    def _charge_np_random(self, n_draws: int) -> None:
        cycles = n_draws * _NP_RANDOM_CYCLES
        self.clock.advance(cycles / (self.cpu.clock_ghz * 1e9))

    def _charge_eval(self, n: int, d: int, prof: EvalProfile) -> None:
        if self.eval_strategy == "vectorized":
            # One fused pass per transcendental-ish term + reduce, as ufuncs.
            n_ops = 3 + int(round(2 * prof.sfu_per_elem))
            self._charge_ufuncs(n_ops, n * d)
            trans = cpu_loop_cost(
                self.cpu, n * d, transcendental_per_elem=prof.sfu_per_elem, threads=1
            )
            self.clock.advance(trans.seconds)
        else:
            # Per-particle Python loop: one interpreted call plus several
            # small-array NumPy ops per particle.  Transcendental-heavy
            # objectives issue proportionally more small ops, which is why
            # scikit-opt's Griewank run costs ~2x its Sphere run (Table 1).
            per_particle_ufuncs = 2 + int(round(6 * prof.sfu_per_elem))
            self.clock.advance(self.overhead.call_time(n))
            self.clock.advance(n * per_particle_ufuncs * self.overhead.per_small_ufunc)
            trans = cpu_loop_cost(
                self.cpu, n * d, transcendental_per_elem=prof.sfu_per_elem, threads=1
            )
            self.clock.advance(trans.seconds)

    # -- numerics -----------------------------------------------------------
    def _initialize(
        self, problem: Problem, params: PSOParams, n_particles: int, rng: ParallelRNG
    ) -> SwarmState:
        n, d = n_particles, problem.dim
        lo = problem.lower_bounds
        width = problem.domain_width
        positions = lo + rng.uniform((n, d), 0.0, 1.0, dtype=np.float64) * width
        velocities = (
            INIT_VELOCITY_FRACTION
            * width
            * rng.uniform((n, d), -1.0, 1.0, dtype=np.float64)
        )
        self._charge_np_random(2 * n * d)
        self._charge_ufuncs(6, n * d)
        return SwarmState(
            positions=positions,
            velocities=velocities,
            pbest_values=np.full(n, np.inf),
            pbest_positions=positions.copy(),
            gbest_position=np.zeros(d),
        )

    def _evaluate(self, problem: Problem, state: SwarmState) -> np.ndarray:
        values = problem.evaluator.evaluate(state.positions)
        self._charge_eval(
            state.n_particles, state.dim, problem.evaluator.profile()
        )
        return values

    def _update_pbest(self, state: SwarmState, values: np.ndarray) -> None:
        pbest_update(state, values)
        self._charge_ufuncs(4, state.n_particles)

    def _update_gbest(self, state: SwarmState) -> None:
        gbest_scan(state)
        self._charge_ufuncs(2, state.n_particles)

    def _update_swarm(
        self,
        problem: Problem,
        params: PSOParams,
        state: SwarmState,
        rng: ParallelRNG,
    ) -> None:
        n, d = state.n_particles, state.dim
        l_mat = rng.uniform((n, d), 0.0, 1.0, dtype=np.float64)
        g_mat = rng.uniform((n, d), 0.0, 1.0, dtype=np.float64)

        v = state.velocities
        p = state.positions
        # Library default: NO velocity clamp (the defining difference from
        # the fastpso family); only the numerical guard below.
        v *= params.inertia
        v += params.cognitive * l_mat * (state.pbest_positions - p)
        v += params.social * g_mat * (state.gbest_position - p)
        np.clip(v, -VELOCITY_GUARD, VELOCITY_GUARD, out=v)
        p += v
        if self.clip_positions:
            np.clip(p, problem.lower_bounds, problem.upper_bounds, out=p)

        self._charge_np_random(2 * n * d)
        self._charge_ufuncs(
            self.update_ufunc_ops + self.overhead_ufunc_ops, n * d
        )
