"""``fastpso-omp``: the authors' OpenMP port of FastPSO.

Twenty threads on the dual-socket Xeon testbed, but only ~1.4x faster than
sequential in the paper — two walls our model reproduces mechanistically:

* the update loop is streaming-bound and the NUMA-unaware allocation caps
  aggregate bandwidth at roughly twice a single core's, and
* the inline PRNG draws go through a shared libc-style generator whose
  internal lock serialises them (``rng_parallel_efficiency = 0``).

The thread count is configurable so scaling studies beyond the paper's
single data point are possible.
"""

from __future__ import annotations

from repro.engines.cpu_base import CpuEngineBase
from repro.errors import InvalidParameterError
from repro.gpusim.costmodel import CpuSpec

__all__ = ["OpenMPEngine"]


class OpenMPEngine(CpuEngineBase):
    """Multi-threaded CPU implementation (``fastpso-omp``)."""

    name = "fastpso-omp"
    is_gpu = False
    # The shared-generator lock mostly serialises the inline draws; a little
    # overlap survives (~2 effective threads out of 20).
    rng_parallel_efficiency = 0.1

    def __init__(
        self,
        cpu: CpuSpec | None = None,
        *,
        threads: int = 20,
        graph: bool = True,
    ) -> None:
        super().__init__(cpu, graph=graph)
        if threads < 1:
            raise InvalidParameterError(f"threads must be >= 1, got {threads}")
        self.threads = threads
