"""``fastpso-seq``: the authors' sequential C++ port of FastPSO.

Single-threaded, ``-O3``-compiled model: the update loop auto-vectorises,
the inline PRNG draws do not.  Used in Table 1/2, Figure 4/5 and as the
"for-loop" bar of Figure 6.
"""

from __future__ import annotations

from repro.engines.cpu_base import CpuEngineBase

__all__ = ["SequentialEngine"]


class SequentialEngine(CpuEngineBase):
    """Sequential CPU reference implementation (``fastpso-seq``)."""

    name = "fastpso-seq"
    is_gpu = False
    threads = 1
