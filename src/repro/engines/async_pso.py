"""Asynchronous PSO (library extension, after the paper's Section 5.1).

The paper's related work contrasts *synchronous* PSO — every particle waits
for the whole swarm's evaluation before the next move — with the
*asynchronous* variants (Koh et al., Venter & Sobieszczanski-Sobieski) that
let particles move as soon as their own evaluation lands, consuming the
freshest global best available.  Async PSO typically needs fewer iterations
because information propagates within an iteration, at the cost of a less
regular kernel structure.

This engine implements the canonical *chunked* asynchronous schedule on the
simulated GPU: the swarm is processed in ``n_chunks`` blocks per iteration;
each block is evaluated, claims pbest/gbest, and moves — so later blocks of
the same iteration already exploit earlier blocks' discoveries.  With
``n_chunks=1`` it degenerates to exactly the synchronous FastPSO schedule
and matches it bitwise (pinned by the tests).

Timing: each chunk launches the same kernel profiles as FastPSO over
``n/C`` elements, so an iteration moves the same bytes but pays ``C`` times
the per-launch overheads and ``C`` gbest reductions — faithfully showing
why the paper's fully synchronous element-wise design is the *throughput*
winner even where async wins on iteration count.
"""

from __future__ import annotations

import numpy as np

from repro.core.parameters import PSOParams
from repro.core.problem import Problem
from repro.core.swarm import SwarmState, position_update, velocity_update
from repro.engines.gpu_elementwise import FastPSOEngine
from repro.errors import InvalidParameterError
from repro.gpusim.kernel import Kernel
from repro.gpusim.rng import ParallelRNG

__all__ = ["AsyncFastPSOEngine"]


class AsyncFastPSOEngine(FastPSOEngine):
    """Chunked asynchronous element-wise PSO on the simulated GPU."""

    def __init__(self, *args, n_chunks: int = 4, **kwargs) -> None:
        super().__init__(*args, **kwargs)
        if n_chunks < 1:
            raise InvalidParameterError(f"n_chunks must be >= 1, got {n_chunks}")
        if self.backend != "global":
            raise InvalidParameterError(
                "the async schedule is implemented for the global backend"
            )
        self.n_chunks = n_chunks
        self.name = f"fastpso-async{n_chunks}"
        # Timing-only kernels reused across _charge calls (keyed by the
        # underlying kernel spec's identity via the kernel key).
        self._noop_kernels: dict[str, Kernel] = {}

    # -- helpers --------------------------------------------------------------
    def _chunk_slices(self, n: int):
        """Contiguous chunk ranges; sizes differ by at most one."""
        chunks = min(self.n_chunks, n)
        base, extra = divmod(n, chunks)
        start = 0
        for i in range(chunks):
            size = base + (1 if i < extra else 0)
            yield slice(start, start + size)
            start += size

    def _charge(self, kernel_key: str, n_elems: int) -> None:
        """Timing-only launch: the numerics were applied inline on a view."""
        noop = self._noop_kernels.get(kernel_key)
        if noop is None or noop.spec is not self._kernels[kernel_key].spec:
            noop = Kernel(
                self._kernels[kernel_key].spec, semantics=lambda: None
            )
            self._noop_kernels[kernel_key] = noop
        self.ctx.launcher.launch(
            noop, n_elems, config=self._cfg(kernel_key, n_elems)
        )

    # -- step hooks -----------------------------------------------------------
    # The async schedule folds evaluation and best-keeping into the swarm
    # step; the framework's separate steps become no-ops so a particle is
    # never evaluated twice per iteration.
    def _evaluate(self, problem: Problem, state: SwarmState) -> np.ndarray:
        return np.asarray(state.pbest_values)

    def _update_pbest(self, state: SwarmState, values: np.ndarray) -> None:
        return None

    def _update_gbest(self, state: SwarmState) -> None:
        return None

    def _update_swarm(
        self,
        problem: Problem,
        params: PSOParams,
        state: SwarmState,
        rng: ParallelRNG,
    ) -> None:
        params = self._scheduled_params(params)
        n, d = state.n_particles, state.dim
        vbounds = self._current_velocity_bounds(problem, params)
        alloc = self.ctx.allocator
        # One pair of weight matrices per iteration, drawn up front — the
        # same Philox consumption as the synchronous engine, which is what
        # makes the n_chunks=1 schedule bitwise identical to FastPSO.
        l_buf = alloc.alloc_like((n, d), self.storage_dtype)
        g_buf = alloc.alloc_like((n, d), self.storage_dtype)
        try:
            l_mat, g_mat = self.ctx.launcher.launch(
                self._kernels["weights_rng"],
                2 * n * d,
                rng,
                n,
                d,
                config=self._cfg("weights_rng", 2 * n * d),
            )
            for chunk in self._chunk_slices(n):
                self._process_chunk(
                    problem, params, state, chunk, l_mat, g_mat, vbounds
                )
        finally:
            alloc.free(l_buf)
            alloc.free(g_buf)

    def _process_chunk(
        self, problem, params, state, chunk, l_mat, g_mat, vbounds
    ) -> None:
        n_chunk = chunk.stop - chunk.start
        d = state.dim

        # 1. evaluate the chunk at its current positions
        values = self.ctx.launcher.launch(
            self._kernels["evaluate"],
            n_chunk * d,
            state.positions[chunk],
            config=self._cfg("evaluate", n_chunk * d),
        )

        # 2. chunk-local pbest (strict improvement, on views)
        pbest_view = state.pbest_values[chunk]
        mask = values < pbest_view
        pbest_view[mask] = values[mask]
        state.pbest_positions[chunk][mask] = state.positions[chunk][mask]
        self._charge("pbest", n_chunk)
        improved = int(np.count_nonzero(mask))
        if improved:
            self._charge("pbest_copy", improved * d)

        # 3. gbest refresh — the asynchronous point: later chunks of this
        #    iteration immediately see this chunk's discoveries.
        idx, val = self.ctx.reducer.argmin(state.pbest_values)
        if val < state.gbest_value:
            state.gbest_value = val
            state.gbest_index = idx
            state.gbest_position = state.pbest_positions[idx].copy()

        # 4. move the chunk with the freshest gbest
        scratch = self._vel_scratch(state.n_particles, d)
        if scratch is not None:
            n_chunk_rows = chunk.stop - chunk.start
            scratch = (scratch[0][:n_chunk_rows], scratch[1][:n_chunk_rows])
        velocity_update(
            state.velocities[chunk],
            state.positions[chunk],
            state.pbest_positions[chunk],
            state.gbest_position,
            l_mat[chunk],
            g_mat[chunk],
            params,
            vbounds,
            out=state.velocities[chunk],
            scratch=scratch,
        )
        self._charge("velocity", n_chunk * d)
        position_update(
            state.positions[chunk], state.velocities[chunk], problem, params
        )
        self._charge("position", n_chunk * d)
