"""Shared machinery for the CPU engines (fastpso-seq / fastpso-omp).

Both are the authors' C++ ports of FastPSO: identical algorithm and RNG
stream, compiled with ``-O3``.  The numerics here are the shared module
functions from :mod:`repro.core.swarm`; what this base class adds is the
*timing*: each step charges the simulated clock with a
:func:`repro.gpusim.costmodel.cpu_loop_cost` roofline built from the
problem's shapes and evaluation profile.

The per-step cost layout mirrors the C++ code the paper describes:

* ``init`` — fill P and V with 2·n·d PRNG draws.
* ``eval`` — one pass over P applying the evaluation profile.
* ``pbest`` — n compares, plus a d-element row copy per improvement.
* ``gbest`` — an n-element scan.
* ``swarm`` — the fused update loop: 2 inline PRNG draws + Eq. (4)/(2)
  arithmetic + the array traffic for V, P and the pbest positions.
"""

from __future__ import annotations

import numpy as np

from repro.core.engine import Engine
from repro.core.parameters import PSOParams
from repro.core.problem import Problem
from repro.core.swarm import (
    SwarmState,
    draw_initial_state,
    draw_weights,
    gbest_scan,
    pbest_update,
    position_update,
    velocity_update,
)
from repro.core.topology import social_positions
from repro.gpusim.costmodel import CpuSpec, cpu_loop_cost, xeon_e5_2640v4
from repro.gpusim.rng import ParallelRNG

__all__ = ["CpuEngineBase"]

# float32 arrays, matching the CUDA implementation the C++ code was ported
# from.
_F32 = 4


class CpuEngineBase(Engine):
    """Template for compiled-CPU engines; subclasses fix the thread count."""

    #: Number of OS threads the engine uses (1 = sequential).
    threads: int = 1
    #: Fraction of the PRNG work that actually parallelises across threads.
    #: Naive OpenMP ports draw from a shared libc generator whose internal
    #: lock serialises the calls; the paper's fastpso-omp scaling (~1.4x on
    #: 20 cores) is reproduced by keeping this near zero.
    rng_parallel_efficiency: float = 0.0

    supports_graph = True

    def __init__(self, cpu: CpuSpec | None = None, *, graph: bool = True) -> None:
        super().__init__()
        self.cpu = cpu or xeon_e5_2640v4()
        self.graph_enabled = bool(graph)

    # -- timing helpers -----------------------------------------------------
    def _charge(self, n_elems: int, **mix: float) -> None:
        cost = cpu_loop_cost(self.cpu, n_elems, threads=self.threads, **mix)
        self.clock.advance(cost.seconds)

    def _charge_dynamic(self, n_elems: int, **mix: float) -> None:
        """:meth:`_charge` for data-dependent sizes (see launch-graph capture)."""
        cost = cpu_loop_cost(self.cpu, n_elems, threads=self.threads, **mix)
        self.clock.advance_dynamic(cost.seconds)

    def _charge_rng(self, n_draws: int) -> None:
        """PRNG draws, parallelised only to the configured efficiency."""
        eff_threads = max(
            1, int(round(self.threads * self.rng_parallel_efficiency))
        )
        cost = cpu_loop_cost(
            self.cpu, n_draws, rng_per_elem=1.0, threads=eff_threads
        )
        self.clock.advance(cost.seconds)

    # -- step hooks -------------------------------------------------------------
    def _initialize(
        self, problem: Problem, params: PSOParams, n_particles: int, rng: ParallelRNG
    ) -> SwarmState:
        from repro.core.initializers import initialize_swarm

        state = initialize_swarm(
            problem, n_particles, rng, params.init_strategy
        )
        n_elems = n_particles * problem.dim
        self._charge_rng(2 * n_elems)
        self._charge(n_elems, bytes_per_elem=2 * _F32, flops_per_elem=4.0)
        return state

    def _evaluate(self, problem: Problem, state: SwarmState) -> np.ndarray:
        values = problem.evaluator.evaluate(state.positions)
        prof = problem.evaluator.profile()
        self._charge(
            state.n_particles * state.dim,
            flops_per_elem=prof.flops_per_elem + prof.reduction_flops_per_elem,
            bytes_per_elem=_F32,
            transcendental_per_elem=prof.sfu_per_elem,
        )
        return values

    def _update_pbest(self, state: SwarmState, values: np.ndarray) -> None:
        mask = pbest_update(state, values)
        self._charge(state.n_particles, flops_per_elem=1.0, bytes_per_elem=8.0)
        self._charge_pbest_copy(int(np.count_nonzero(mask)), state.dim)

    def _charge_pbest_copy(self, improved: int, dim: int) -> None:
        """Row copies for the improved particles: a dynamic-size charge.

        Always present (0.0 seconds when nothing improved — a bitwise no-op
        on the clock) so a captured launch graph sees a fixed charge-slot
        layout across iterations.
        """
        if improved:
            self._charge_dynamic(improved * dim, bytes_per_elem=2 * _F32)
        else:
            self.clock.advance_dynamic(0.0)

    def _update_gbest(self, state: SwarmState) -> None:
        gbest_scan(state)
        self._charge(state.n_particles, flops_per_elem=1.0, bytes_per_elem=8.0)

    def _update_swarm(
        self,
        problem: Problem,
        params: PSOParams,
        state: SwarmState,
        rng: ParallelRNG,
    ) -> None:
        params = self._scheduled_params(params)
        n, d = state.n_particles, state.dim
        l_mat, g_mat = draw_weights(
            rng,
            n,
            d,
            out=(
                self._ws.array("l_weights", (n, d), np.float32),
                self._ws.array("g_weights", (n, d), np.float32),
            ),
        )
        social = social_positions(state, params.topology)
        vbounds = self._current_velocity_bounds(problem, params)
        velocity_update(
            state.velocities,
            state.positions,
            state.pbest_positions,
            social,
            l_mat,
            g_mat,
            params,
            vbounds,
            out=state.velocities,
            scratch=(
                self._ws.array("vel_pull_1", (n, d), np.float32),
                self._ws.array("vel_pull_2", (n, d), np.float32),
            ),
        )
        position_update(state.positions, state.velocities, problem, params)

        n_elems = state.n_particles * state.dim
        # Inline PRNG: the C++ loop draws l and g on the fly, so the weight
        # matrices never touch memory.
        self._charge_rng(2 * n_elems)
        # Fused update: read V, P, pbest positions; write V, P.
        clamp_flops = 2.0 if params.velocity_clamp is not None else 0.0
        self._charge(
            n_elems,
            flops_per_elem=10.0 + clamp_flops,
            bytes_per_elem=5 * _F32,
        )

    # -- launch-graph replay ----------------------------------------------------
    def _graph_build_replay(self, problem, params, state, rng):
        """One pre-bound steady-state iteration (see :mod:`repro.gpusim.graph`).

        CPU engines have no launcher, so the plan's launch list is empty and
        the graph is pure clock charges.  Every static per-step cost is
        resolved once through the same :func:`cpu_loop_cost` calls the eager
        path makes (same floats, bitwise); the dynamic pbest-copy charge
        stays live because its size is data-dependent.
        """
        n, d = state.n_particles, state.dim
        n_elems = n * d
        clock = self.clock
        prof = problem.evaluator.profile()
        eval_s = cpu_loop_cost(
            self.cpu,
            n_elems,
            threads=self.threads,
            flops_per_elem=prof.flops_per_elem + prof.reduction_flops_per_elem,
            bytes_per_elem=_F32,
            transcendental_per_elem=prof.sfu_per_elem,
        ).seconds
        scan_s = cpu_loop_cost(
            self.cpu, n, threads=self.threads,
            flops_per_elem=1.0, bytes_per_elem=8.0,
        ).seconds
        eff_threads = max(
            1, int(round(self.threads * self.rng_parallel_efficiency))
        )
        rng_s = cpu_loop_cost(
            self.cpu, 2 * n_elems, rng_per_elem=1.0, threads=eff_threads
        ).seconds
        clamp_flops = 2.0 if params.velocity_clamp is not None else 0.0
        update_s = cpu_loop_cost(
            self.cpu,
            n_elems,
            threads=self.threads,
            flops_per_elem=10.0 + clamp_flops,
            bytes_per_elem=5 * _F32,
        ).seconds
        evaluate = problem.evaluator.evaluate

        def replay() -> None:
            with clock.section("eval"):
                values = evaluate(state.positions)
                clock.advance(eval_s)
            with clock.section("pbest"):
                mask = pbest_update(state, values)
                clock.advance(scan_s)
                self._charge_pbest_copy(int(np.count_nonzero(mask)), d)
            with clock.section("gbest"):
                gbest_scan(state)
                clock.advance(scan_s)
            with clock.section("swarm"):
                p = self._scheduled_params(params)
                l_mat, g_mat = draw_weights(
                    rng,
                    n,
                    d,
                    out=(
                        self._ws.array("l_weights", (n, d), np.float32),
                        self._ws.array("g_weights", (n, d), np.float32),
                    ),
                )
                social = social_positions(state, p.topology)
                vbounds = self._current_velocity_bounds(problem, p)
                velocity_update(
                    state.velocities,
                    state.positions,
                    state.pbest_positions,
                    social,
                    l_mat,
                    g_mat,
                    p,
                    vbounds,
                    out=state.velocities,
                    scratch=(
                        self._ws.array("vel_pull_1", (n, d), np.float32),
                        self._ws.array("vel_pull_2", (n, d), np.float32),
                    ),
                )
                position_update(state.positions, state.velocities, problem, p)
                clock.advance(rng_s)
                clock.advance(update_s)

        return replay, []

    def _graph_build_native(self, graph, problem, params, state, rng):
        """The one-C-call iteration tier (see :mod:`repro.gpusim.fastpath`).

        CPU engines keep the same float32 array numerics as the CUDA port,
        so the very same ``fastpath_step`` applies; only the clock charges
        differ (the roofline seconds resolved below, identical floats to
        the eager path's).  Global topology only: the C step reads a single
        social attractor row.
        """
        from repro.gpusim import fastpath

        if params.topology != "global":
            return f"native-unsupported-topology:{params.topology}"
        lib = fastpath.load()
        if lib is None:
            return "native-unavailable"
        n, d = state.n_particles, state.dim
        n_elems = n * d
        if graph.rng_blocks != 2 * ((n_elems + 3) // 4):
            return "native-rng-shape-mismatch"
        clock = self.clock
        prof = problem.evaluator.profile()
        eval_s = cpu_loop_cost(
            self.cpu,
            n_elems,
            threads=self.threads,
            flops_per_elem=prof.flops_per_elem + prof.reduction_flops_per_elem,
            bytes_per_elem=_F32,
            transcendental_per_elem=prof.sfu_per_elem,
        ).seconds
        scan_s = cpu_loop_cost(
            self.cpu, n, threads=self.threads,
            flops_per_elem=1.0, bytes_per_elem=8.0,
        ).seconds
        eff_threads = max(
            1, int(round(self.threads * self.rng_parallel_efficiency))
        )
        rng_s = cpu_loop_cost(
            self.cpu, 2 * n_elems, rng_per_elem=1.0, threads=eff_threads
        ).seconds
        clamp_flops = 2.0 if params.velocity_clamp is not None else 0.0
        update_s = cpu_loop_cost(
            self.cpu,
            n_elems,
            threads=self.threads,
            flops_per_elem=10.0 + clamp_flops,
            bytes_per_elem=5 * _F32,
        ).seconds
        evaluate = problem.evaluator.evaluate

        l_w = self._ws.array("l_weights", (n, d), np.float32)
        g_w = self._ws.array("g_weights", (n, d), np.float32)
        pos_bounds = None
        if params.clip_positions:
            pos_bounds = (problem.lower_bounds, problem.upper_bounds)
        plan = fastpath.NativePlan(lib, state, rng, l_w, g_w, params, pos_bounds)

        def step() -> None:
            with clock.section("eval"):
                values = evaluate(state.positions)
                clock.advance(eval_s)
            p = self._scheduled_params(params)
            vb = self._current_velocity_bounds(problem, p)
            vlo = vhi = None
            if vb is not None:
                vlo = vb[0].astype(np.float32)
                vhi = vb[1].astype(np.float32)
            improved = plan.step(values, float(p.inertia), vlo, vhi)
            with clock.section("pbest"):
                clock.advance(scan_s)
                self._charge_pbest_copy(improved, d)
            with clock.section("gbest"):
                clock.advance(scan_s)
            with clock.section("swarm"):
                clock.advance(rng_s)
                clock.advance(update_s)

        def verify(run_replay) -> bool:
            return fastpath.verify_step(
                plan, run_replay, evaluate, self, problem, params
            )

        return step, verify
