"""``scikit-opt``: model of the scikit-opt ``PSO`` optimizer.

The paper's second CPU baseline (Guo's scikit-opt).  Behavioural
signatures reproduced here:

* **per-particle evaluation** — scikit-opt's ``func_transformer`` wraps the
  objective in a Python-level loop over particles, so evaluation cost is
  dominated by interpreter calls and scales with the objective's NumPy op
  count per particle (Griewank ~2x Sphere — Table 1's 172 s vs 89 s);
* **position clipping** — scikit-opt clips positions to ``[lb, ub]`` every
  iteration; combined with unclamped velocities the swarm pins to the box
  faces, which is *worse* than free divergence (Table 2's Sphere error 2483
  vs pyswarms' 1032: clipped corners score ~d*hi^2, diverged pbest keeps an
  early random-sampling best);
* **stagnation early stop (opt-in)** — scikit-opt supports precision-based
  early termination; set :attr:`early_stop_patience` to enable it.  On
  Easom's flat plateau every iteration stalls and the run ends after
  ``patience`` iterations — the likely mechanism behind Table 1's
  anomalously fast 12.77 s scikit-opt Easom row (see EXPERIMENTS.md).
"""

from __future__ import annotations

from repro.core.parameters import PAPER_DEFAULTS, PSOParams
from repro.core.problem import Problem
from repro.core.results import OptimizeResult
from repro.core.stopping import AnyOf, StallStop, StopCriterion
from repro.engines.lib_base import LibraryEngineBase

__all__ = ["ScikitOptLikeEngine"]


class ScikitOptLikeEngine(LibraryEngineBase):
    """Interpreted-loop library baseline (``scikit-opt``)."""

    name = "scikit-opt"
    is_gpu = False
    eval_strategy = "per_particle"
    clip_positions = True
    update_ufunc_ops = 6
    overhead_ufunc_ops = 2

    #: Iterations without improvement before the precision stop fires.
    #: ``None`` (the default, like scikit-opt's ``precision=None``) runs the
    #: full budget; Table 1's anomalously fast scikit-opt Easom row suggests
    #: the paper's run terminated early — set a patience to reproduce that.
    early_stop_patience: int | None = None
    #: Improvements smaller than this count as stagnation.
    early_stop_delta: float = 1.0e-12

    def optimize(
        self,
        problem: Problem,
        *,
        n_particles: int,
        max_iter: int,
        params: PSOParams = PAPER_DEFAULTS,
        stop: StopCriterion | None = None,
        record_history: bool = False,
        callback=None,
        checkpoint=None,
        restore=None,
        budget=None,
        guard=None,
    ) -> OptimizeResult:
        if self.early_stop_patience is None:
            combined = stop
        else:
            stall = StallStop(
                patience=self.early_stop_patience,
                min_delta=self.early_stop_delta,
            )
            combined = stall if stop is None else AnyOf((stall, stop))
        return super().optimize(
            problem,
            n_particles=n_particles,
            max_iter=max_iter,
            params=params,
            stop=combined,
            record_history=record_history,
            callback=callback,
            checkpoint=checkpoint,
            restore=restore,
            budget=budget,
            guard=guard,
        )
