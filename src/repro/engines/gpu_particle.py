"""``gpu-pso``: the thread-per-particle GPU baseline (Hussain et al. 2016).

The state-of-the-art the paper compares against.  Algorithmically it is
standard PSO with velocity confinement — the *numerics here are identical*
to FastPSO's (same Philox stream, same update equations), so its Table 2
errors land next to fastpso's, as in the paper.  What differs is the GPU
mapping, and each difference is a mechanism the paper calls out:

* **one thread per particle** — a swarm of 5000 occupies ~3% of a V100's
  resident-thread capacity; every kernel runs at starvation occupancy.
* **serial per-thread loops** — each thread walks its particle's ``d``
  elements with dependent global loads (the latency-bound term).
* **double precision** — standard-PSO implementations keep positions and
  velocities in fp64, doubling streaming traffic.
* **stateful cuRAND (XORWOW) generators** — each of the 2 draws per element
  loads and stores a 48-byte generator state block from global memory
  (counter-based Philox needs none); this is the dominant traffic term and
  the reason the paper's technique (ii) exists.

With these mechanisms the model lands in the paper's measured bands: a few
seconds per 2000-iteration run (Table 1) and ~60 GB/s achieved DRAM read
throughput (Table 3).
"""

from __future__ import annotations

import numpy as np

from repro.core.engine import Engine
from repro.core.parameters import PSOParams
from repro.core.problem import Problem
from repro.core.initializers import initialize_swarm
from repro.core.swarm import (
    SwarmState,
    draw_weights,
    pbest_update,
    position_update,
    velocity_update,
)
from repro.core.topology import social_positions
from repro._compat import deprecated_kwargs
from repro.gpusim.context import GpuContext, make_context
from repro.gpusim.costmodel import GpuCostParams
from repro.gpusim.device import DeviceSpec
from repro.gpusim.kernel import Kernel, KernelSpec
from repro.gpusim.launch import thread_per_item_config
from repro.gpusim.rng import ParallelRNG

__all__ = ["GpuParticleEngine"]

_F64 = 8
#: cuRAND XORWOW state block (sizeof(curandState)) in bytes.
_CURAND_STATE_BYTES = 48
#: Random draws per matrix element per iteration (l_ij and g_ij).
_DRAWS_PER_ELEM = 2.0
#: Fraction of state traffic that reaches DRAM (small L2 hit rate; the
#: state blocks of a 5000-thread launch mostly miss the 6 MB L2).
_STATE_DRAM_FRACTION = 0.9


class GpuParticleEngine(Engine):
    """Thread-per-particle PSO on the simulated GPU (``gpu-pso``)."""

    name = "gpu-pso"
    is_gpu = True

    @deprecated_kwargs(spec="device")
    def __init__(
        self,
        device: DeviceSpec | None = None,
        *,
        threads_per_block: int = 128,
        cost_params: GpuCostParams | None = None,
        record_launches: bool = False,
    ) -> None:
        super().__init__()
        self.ctx: GpuContext = make_context(
            device,
            caching=False,
            cost_params=cost_params,
            record_launches=record_launches,
        )
        self.clock = self.ctx.clock
        self.threads_per_block = threads_per_block
        self._kernels: dict[str, Kernel] = {}
        self._buffers: list = []

    # -- kernels -------------------------------------------------------------
    def _build_kernels(self, problem: Problem, params: PSOParams) -> None:
        prof = problem.evaluator.profile()
        d = problem.dim
        state_traffic = (
            _DRAWS_PER_ELEM * _CURAND_STATE_BYTES * _STATE_DRAM_FRACTION
        )
        self._kernels = {
            # Fused per-particle update: inline XORWOW draws + Eq. (4)/(2).
            "update": Kernel(
                KernelSpec(
                    name="particle_update",
                    flops_per_elem=12.0 + 10.0 * _DRAWS_PER_ELEM,  # rng arith
                    bytes_read_per_elem=3 * _F64 + state_traffic,
                    bytes_written_per_elem=2 * _F64 + state_traffic,
                    dependent_loads_per_elem=2.0,
                    registers_per_thread=64,
                ),
                semantics=self._update_semantics,
            ),
            "evaluate": Kernel(
                KernelSpec(
                    name="particle_evaluate",
                    flops_per_elem=(
                        prof.flops_per_elem + prof.reduction_flops_per_elem
                    )
                    * d,
                    sfu_per_elem=prof.sfu_per_elem * d,
                    bytes_read_per_elem=_F64 * d,
                    bytes_written_per_elem=_F64,
                    dependent_loads_per_elem=1.0,
                    registers_per_thread=48,
                ),
                semantics=problem.evaluator.evaluate,
            ),
            "pbest": Kernel(
                KernelSpec(
                    name="particle_pbest",
                    flops_per_elem=1.0,
                    bytes_read_per_elem=2 * _F64 + _F64 * d * 0.5,
                    bytes_written_per_elem=_F64,
                    registers_per_thread=24,
                ),
                semantics=pbest_update,
            ),
            "init": Kernel(
                KernelSpec(
                    name="particle_init",
                    flops_per_elem=10.0 * _DRAWS_PER_ELEM,
                    bytes_read_per_elem=state_traffic,
                    bytes_written_per_elem=2 * _F64 + state_traffic,
                    dependent_loads_per_elem=1.0,
                    registers_per_thread=48,
                ),
                semantics=initialize_swarm,
            ),
        }

    def _update_semantics(self, problem, params, state, rng):
        """Fused velocity+position update (numerics identical to fastpso)."""
        params = self._scheduled_params(params)
        n, d = state.n_particles, state.dim
        l_mat, g_mat = draw_weights(
            rng,
            n,
            d,
            out=(
                self._ws.array("l_weights", (n, d), np.float32),
                self._ws.array("g_weights", (n, d), np.float32),
            ),
        )
        social = social_positions(state, params.topology)
        vbounds = self._current_velocity_bounds(problem, params)
        velocity_update(
            state.velocities,
            state.positions,
            state.pbest_positions,
            social,
            l_mat,
            g_mat,
            params,
            vbounds,
            out=state.velocities,
            scratch=(
                self._ws.array("vel_pull_1", (n, d), np.float32),
                self._ws.array("vel_pull_2", (n, d), np.float32),
            ),
        )
        position_update(state.positions, state.velocities, problem, params)

    def _particle_config(self, n: int):
        return thread_per_item_config(
            self.ctx.spec, n, threads_per_block=self.threads_per_block
        )

    # -- step hooks -------------------------------------------------------------
    def _initialize(
        self, problem: Problem, params: PSOParams, n_particles: int, rng: ParallelRNG
    ) -> SwarmState:
        for buf in self._buffers:
            self.ctx.allocator.free(buf)
        self._buffers = []
        self._build_kernels(problem, params)
        n, d = n_particles, problem.dim
        alloc = self.ctx.allocator
        # fp64 swarm arrays + one XORWOW state per particle.
        self._buffers = [
            alloc.alloc_like((n, d), np.float64),  # positions
            alloc.alloc_like((n, d), np.float64),  # velocities
            alloc.alloc_like((n, d), np.float64),  # pbest positions
            alloc.alloc_like((n,), np.float64),  # pbest values
            alloc.alloc((_CURAND_STATE_BYTES * n)),  # curand states
        ]
        state = self.ctx.launcher.launch(
            self._kernels["init"],
            n * d,
            problem,
            n,
            rng,
            params.init_strategy,
            config=self._particle_config(n),
        )
        return state

    def _evaluate(self, problem: Problem, state: SwarmState) -> np.ndarray:
        return self.ctx.launcher.launch(
            self._kernels["evaluate"],
            state.n_particles,
            state.positions,
            config=self._particle_config(state.n_particles),
        )

    def _update_pbest(self, state: SwarmState, values: np.ndarray) -> None:
        self.ctx.launcher.launch(
            self._kernels["pbest"],
            state.n_particles,
            state,
            values,
            config=self._particle_config(state.n_particles),
        )

    def _update_gbest(self, state: SwarmState) -> None:
        idx, val = self.ctx.reducer.argmin(state.pbest_values)
        if val < state.gbest_value:
            state.gbest_value = val
            state.gbest_index = idx
            state.gbest_position = state.pbest_positions[idx].copy()

    def _update_swarm(
        self,
        problem: Problem,
        params: PSOParams,
        state: SwarmState,
        rng: ParallelRNG,
    ) -> None:
        self.ctx.launcher.launch(
            self._kernels["update"],
            state.n_particles * state.dim,
            problem,
            params,
            state,
            rng,
            config=self._particle_config(state.n_particles),
        )

    def _finalize(self, state: SwarmState) -> None:
        spec = self.ctx.spec
        self.clock.advance(6.0e-6 + state.dim * _F64 / spec.pcie_bandwidth)

    def _peak_device_bytes(self) -> int:
        return self.ctx.memory.high_water_bytes

    def profile_report(self):
        return self.ctx.profile_report()
