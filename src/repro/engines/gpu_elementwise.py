"""``fastpso``: the paper's element-wise GPU engine (Section 3).

The swarm update is decomposed into element-wise kernels over the ``n x d``
matrices of Eq. (4), launched with resource-aware geometry
(:func:`repro.gpusim.launch.resource_aware_config`), so occupancy stays at
1.0 regardless of the particle count — the core idea of the paper.  Three
memory backends reproduce Figure 6's comparison:

* ``global`` — plain global-memory kernels (the default, and the config the
  rest of the paper's tables call "fastpso");
* ``shared`` — the update staged through ``32 x 32`` shared-memory tiles
  (:mod:`repro.gpusim.sharedmem`); bit-identical numerics, different
  resource profile;
* ``tensorcore`` — the two Hadamard products issued as wmma fragment ops
  (:mod:`repro.gpusim.tensorcore`); numerics differ by fp16 rounding of the
  multiplicands, exactly like Volta HMMA.

The two ``n x d`` weight matrices are *allocated every iteration* and freed
after use; with the caching allocator (default) this costs a pool hit, with
the direct allocator it costs a cudaMalloc/cudaFree pair — the Table 4
comparison.  Device buffers model capacity and allocation behaviour (a swarm
that exceeds the 16 GB card raises :class:`DeviceOutOfMemoryError`); array
storage itself is host-backed by design of the simulator.
"""

from __future__ import annotations

import numpy as np

from repro.core.engine import Engine
from repro.core.parameters import PSOParams
from repro.core.problem import Problem
from repro.core.initializers import initialize_swarm
from repro.core.swarm import (
    SwarmState,
    draw_weights,
    pbest_update,
    position_update,
    velocity_update,
)
from repro.core.topology import social_positions
from repro._compat import deprecated_kwargs
from repro.errors import InvalidParameterError
from repro.gpusim import hostcache
from repro.gpusim.context import GpuContext, make_context
from repro.gpusim.costmodel import GpuCostParams, kernel_cost
from repro.gpusim.device import DeviceSpec
from repro.gpusim.kernel import Kernel, KernelSpec
from repro.gpusim.launch import resource_aware_config
from repro.gpusim.rng import ParallelRNG
from repro.gpusim.sharedmem import DEFAULT_TILE_SIZE, apply_tiled, shared_mem_spec
from repro.gpusim.tensorcore import (
    fragment_multiply_add,
    supports_tensor_cores,
    tensor_core_spec,
)

__all__ = ["FastPSOEngine", "BACKENDS"]

BACKENDS = ("global", "shared", "tensorcore")

_F32 = 4
_F64 = 8

#: Philox4x32-10 is ~12 integer ops per 32-bit word of output.
_RNG_FLOPS_PER_WORD = 12.0


class FastPSOEngine(Engine):
    """Element-wise PSO on the simulated GPU (the paper's FastPSO).

    ``device`` is the simulated device spec (defaults to the paper's Tesla
    V100) — the same keyword the :class:`~repro.core.fastpso.FastPSO`
    facade uses; the old ``spec=`` spelling is deprecated.
    """

    is_gpu = True
    supports_graph = True

    @deprecated_kwargs(spec="device")
    def __init__(
        self,
        device: DeviceSpec | None = None,
        *,
        backend: str = "global",
        caching: bool = True,
        threads_per_block: int = 256,
        cost_params: GpuCostParams | None = None,
        fuse_update: bool = False,
        half_storage: bool = False,
        record_launches: bool = False,
        graph: bool = True,
    ) -> None:
        super().__init__()
        if backend not in BACKENDS:
            raise InvalidParameterError(
                f"unknown backend {backend!r}; choose from {BACKENDS}"
            )
        if fuse_update and backend != "global":
            raise InvalidParameterError(
                "fused velocity+position update is only available on the "
                "global-memory backend (tiling/wmma stage velocities only)"
            )
        if half_storage and backend == "tensorcore":
            raise InvalidParameterError(
                "half_storage is redundant with the tensorcore backend, "
                "which already rounds the multiplicands to fp16"
            )
        self.ctx: GpuContext = make_context(
            device,
            caching=caching,
            cost_params=cost_params,
            record_launches=record_launches,
        )
        if backend == "tensorcore" and not supports_tensor_cores(self.ctx.spec):
            raise InvalidParameterError(
                f"device {self.ctx.spec.name!r} has no tensor cores"
            )
        self.ctx.spec.validate_block(threads_per_block)  # fail fast
        self.clock = self.ctx.clock  # engine and device share one timeline
        self.backend = backend
        self.caching = caching
        self.threads_per_block = threads_per_block
        self.fuse_update = fuse_update
        self.half_storage = half_storage
        # Storage precision of the swarm matrices (paper future work:
        # exploiting new hardware features).  fp16 halves the DRAM traffic
        # of every swarm kernel at the cost of ~1e-3 relative rounding.
        self.storage_dtype = np.float16 if half_storage else np.float32
        self.name = "fastpso"
        if backend != "global":
            self.name += f"-{backend}"
        if not caching:
            self.name += "-nocache"
        if fuse_update:
            self.name += "-fused"
        if half_storage:
            self.name += "-fp16"
        self.graph_enabled = bool(graph)
        self._kernels: dict[str, Kernel] = {}
        self._cfg_cache: dict[tuple[str, int], object] = {}
        self._persistent_buffers: list = []

    def _cfg(self, kernel_key: str, n_elems: int):
        """Resource-aware geometry honouring the kernel's occupancy limits.

        Invariant for a given (kernel, element count) on a fixed device, so
        results are cached on the engine: steady-state iterations skip even
        the memoized front door's key construction.  The cache is cleared
        whenever the kernel table is rebuilt (specs may change with the
        problem/params).
        """
        key = (kernel_key, n_elems)
        cfg = self._cfg_cache.get(key)
        if cfg is None:
            cfg = resource_aware_config(
                self.ctx.spec,
                n_elems,
                threads_per_block=self.threads_per_block,
                kernel_spec=self._kernels[kernel_key].spec,
            )
            if hostcache.cache_enabled():
                self._cfg_cache[key] = cfg
        return cfg

    @property
    def _elem_bytes(self) -> int:
        """Bytes per stored swarm-matrix element (fp16 mode halves them)."""
        return 2 if self.half_storage else _F32

    # -- kernel construction ----------------------------------------------------
    def _velocity_base_spec(self, clamped: bool) -> KernelSpec:
        # Reads V, P, L, G and the pbest-position matrix; writes V.  Of the
        # five input matrices, three (V, P, pbest positions) are persistent
        # swarm state re-read every iteration — the traffic the L1/L2
        # hit-rate model can serve from cache on devices whose hierarchy
        # holds the 3-matrix working set (cost model v2); the two weight
        # matrices are fresh RNG output and always stream.
        eb = self._elem_bytes
        return KernelSpec(
            name="swarm_velocity_update",
            flops_per_elem=10.0 + (2.0 if clamped else 0.0),
            bytes_read_per_elem=5 * eb,
            bytes_written_per_elem=eb,
            registers_per_thread=32,
            reread_fraction=3.0 / 5.0,
            working_set_bytes_per_elem=3.0 * eb,
        )

    def _build_kernels(self, problem: Problem, params: PSOParams) -> None:
        self._cfg_cache.clear()
        clamped = params.velocity_clamp is not None
        base = self._velocity_base_spec(clamped)
        if self.backend == "global":
            vel_spec = base
            vel_semantics = velocity_update
        elif self.backend == "shared":
            vel_spec = shared_mem_spec(
                base, n_input_matrices=5, block_threads=self.threads_per_block
            )
            vel_semantics = self._tiled_velocity_update
        else:  # tensorcore
            vel_spec = tensor_core_spec(
                base, block_threads=self.threads_per_block
            )
            vel_semantics = self._wmma_velocity_update

        prof = problem.evaluator.profile()
        self._kernels = {
            "init_rng": Kernel(
                KernelSpec(
                    name="swarm_init_rng",
                    flops_per_elem=_RNG_FLOPS_PER_WORD,
                    bytes_read_per_elem=0.0,
                    bytes_written_per_elem=self._elem_bytes,
                    registers_per_thread=24,
                ),
                semantics=lambda problem, n, rng, strategy: initialize_swarm(
                    problem, n, rng, strategy, dtype=self.storage_dtype
                ),
            ),
            "weights_rng": Kernel(
                KernelSpec(
                    name="weights_rng",
                    flops_per_elem=_RNG_FLOPS_PER_WORD,
                    bytes_read_per_elem=0.0,
                    bytes_written_per_elem=self._elem_bytes,
                    registers_per_thread=24,
                ),
                # Drawn into the workspace arena: same Philox consumption
                # and values as a fresh draw, zero host allocation.
                semantics=lambda rng, n, d: draw_weights(
                    rng,
                    n,
                    d,
                    out=(
                        self._ws.array("l_weights", (n, d), self.storage_dtype),
                        self._ws.array("g_weights", (n, d), self.storage_dtype),
                    ),
                ),
            ),
            "velocity": Kernel(vel_spec, semantics=vel_semantics),
            "position": Kernel(
                KernelSpec(
                    name="swarm_position_update",
                    flops_per_elem=1.0 + (2.0 if params.clip_positions else 0.0),
                    bytes_read_per_elem=2 * self._elem_bytes,
                    bytes_written_per_elem=self._elem_bytes,
                    registers_per_thread=16,
                    # P and the just-written V' — both hot from the velocity
                    # kernel one launch earlier.
                    reread_fraction=1.0,
                    working_set_bytes_per_elem=2.0 * self._elem_bytes,
                ),
                semantics=position_update,
            ),
            "evaluate": Kernel(
                KernelSpec(
                    name="evaluation_kernel",
                    flops_per_elem=prof.flops_per_elem
                    + prof.reduction_flops_per_elem,
                    sfu_per_elem=prof.sfu_per_elem,
                    bytes_read_per_elem=self._elem_bytes,
                    bytes_written_per_elem=0.0,  # n values folded in below
                    registers_per_thread=32,
                    # Reads the position matrix written one launch earlier.
                    reread_fraction=1.0,
                    working_set_bytes_per_elem=float(self._elem_bytes),
                ),
                semantics=problem.evaluator.evaluate,
            ),
            "pbest": Kernel(
                KernelSpec(
                    name="pbest_update",
                    flops_per_elem=1.0,
                    bytes_read_per_elem=2 * _F64,
                    bytes_written_per_elem=_F64,
                    registers_per_thread=16,
                    # n-length fitness/pbest vectors: tiny, cache-resident.
                    reread_fraction=1.0,
                    working_set_bytes_per_elem=2.0 * _F64,
                ),
                semantics=pbest_update,
            ),
            # Optional fusion of steps (iv)'s two kernels: the paper notes
            # the position update depends on the updated velocity but each
            # *element's* position only depends on its own element, so the
            # fused kernel keeps v' in registers and writes both arrays —
            # saving one launch and the 8 bytes/element of re-reading P and
            # V' from DRAM.
            "fused_update": Kernel(
                KernelSpec(
                    name="swarm_fused_update",
                    flops_per_elem=11.0 + (2.0 if clamped else 0.0),
                    bytes_read_per_elem=5 * self._elem_bytes,
                    bytes_written_per_elem=2 * self._elem_bytes,
                    registers_per_thread=40,
                    # Same re-read structure as the unfused velocity kernel.
                    reread_fraction=3.0 / 5.0,
                    working_set_bytes_per_elem=3.0 * self._elem_bytes,
                ),
                semantics=self._fused_update,
            ),
            # Cost-only entry: the position copy happens inside
            # ``pbest_update`` (one fused kernel on real hardware), so its
            # modelled time is *charged* (Launcher.charge) rather than
            # launched — no dedicated no-op dispatch.
            "pbest_copy": Kernel(
                KernelSpec(
                    name="pbest_position_copy",
                    flops_per_elem=0.0,
                    bytes_read_per_elem=self._elem_bytes,
                    bytes_written_per_elem=self._elem_bytes,
                    registers_per_thread=16,
                    # Copies the just-evaluated position rows.
                    reread_fraction=1.0,
                    working_set_bytes_per_elem=float(self._elem_bytes),
                ),
                semantics=lambda: None,  # never dispatched
            ),
        }
        if problem.evaluator.granularity == "particle":
            # Thread-per-particle schema kernel: each thread runs the user
            # lambda over its particle's d values.  Built once here rather
            # than per evaluation call.
            d = problem.dim
            spec = self._kernels["evaluate"].spec.scaled(
                name="evaluation_kernel_particle",
                flops_per_elem=(
                    prof.flops_per_elem + prof.reduction_flops_per_elem
                )
                * d,
                sfu_per_elem=prof.sfu_per_elem * d,
                bytes_read_per_elem=_F32 * d,
                bytes_written_per_elem=_F64,
                dependent_loads_per_elem=1.0,
            )
            self._kernels["evaluate_particle"] = Kernel(
                spec, problem.evaluator.evaluate
            )

    # -- backend-specific velocity semantics -----------------------------------
    def _vel_scratch(self, n: int, d: int):
        """Workspace pull-term buffers, or None when the float32 in-place
        fast path can't apply (fp16 storage keeps its own promotion)."""
        if self.storage_dtype != np.float32:
            return None
        return (
            self._ws.array("vel_pull_1", (n, d), np.float32),
            self._ws.array("vel_pull_2", (n, d), np.float32),
        )

    def _fused_update(
        self,
        velocities,
        positions,
        pbest_positions,
        social,
        l_mat,
        g_mat,
        params,
        vbounds,
        problem,
    ):
        """Fused Eq. (4) + Eq. (2): identical numerics, one kernel."""
        n, d = positions.shape
        velocity_update(
            velocities,
            positions,
            pbest_positions,
            social,
            l_mat,
            g_mat,
            params,
            vbounds,
            out=velocities,
            scratch=self._vel_scratch(n, d),
        )
        position_update(positions, velocities, problem, params)

    def _tiled_velocity_update(
        self,
        velocities,
        positions,
        pbest_positions,
        social,
        l_mat,
        g_mat,
        params,
        vbounds,
        *,
        out,
    ):
        """Shared-memory backend: same math, executed tile by tile."""
        social_full = np.broadcast_to(social, positions.shape)
        tile_buf = self._ws.array(
            "tile_out", (DEFAULT_TILE_SIZE, DEFAULT_TILE_SIZE), velocities.dtype
        )

        def tile_fn(v, p, pb, soc, l_w, g_w):
            # One reused tile-sized buffer; edge tiles take a view of it.
            tile_out = tile_buf[: v.shape[0], : v.shape[1]]
            velocity_update(
                v, p, pb, soc, l_w, g_w, params, None, out=tile_out
            )
            return tile_out

        apply_tiled(
            out, tile_fn, velocities, positions, pbest_positions,
            social_full, l_mat, g_mat,
        )
        if vbounds is not None:
            lo, hi = vbounds
            np.clip(out, lo.astype(np.float32), hi.astype(np.float32), out=out)
        return out

    def _wmma_velocity_update(
        self,
        velocities,
        positions,
        pbest_positions,
        social,
        l_mat,
        g_mat,
        params,
        vbounds,
        *,
        out,
    ):
        """Tensor-core backend: Hadamard products via fp16 fragment ops."""
        social_full = self._ws.array(
            "social_full", positions.shape, np.float32
        )
        np.copyto(social_full, social)
        return velocity_update(
            velocities,
            positions,
            pbest_positions,
            social_full,
            l_mat,
            g_mat,
            params,
            vbounds,
            out=out,
            multiply_add=fragment_multiply_add,
        )

    # -- step hooks -------------------------------------------------------------
    def _initialize(
        self, problem: Problem, params: PSOParams, n_particles: int, rng: ParallelRNG
    ) -> SwarmState:
        self._release_persistent()
        self._build_kernels(problem, params)
        n, d = n_particles, problem.dim
        # Persistent swarm storage: P, V, pbest positions (f32); pbest values
        # (f64).  Raises DeviceOutOfMemoryError when the card cannot hold it.
        alloc = self.ctx.allocator
        self._persistent_buffers = [
            alloc.alloc_like((n, d), self.storage_dtype),  # positions
            alloc.alloc_like((n, d), self.storage_dtype),  # velocities
            alloc.alloc_like((n, d), self.storage_dtype),  # pbest positions
            alloc.alloc_like((n,), np.float64),  # pbest values
            alloc.alloc_like((n,), np.float64),  # current values
        ]
        cfg = self._cfg("init_rng", 2 * n * d)
        state = self.ctx.launcher.launch(
            self._kernels["init_rng"],
            2 * n * d,
            problem,
            n,
            rng,
            params.init_strategy,
            config=cfg,
        )
        return state

    def _evaluate(self, problem: Problem, state: SwarmState) -> np.ndarray:
        n, d = state.n_particles, state.dim
        if "evaluate_particle" in self._kernels:
            cfg = self._cfg("evaluate_particle", n)
            return self.ctx.launcher.launch(
                self._kernels["evaluate_particle"],
                n,
                state.positions,
                config=cfg,
            )
        cfg = self._cfg("evaluate", n * d)
        return self.ctx.launcher.launch(
            self._kernels["evaluate"], n * d, state.positions, config=cfg
        )

    def _update_pbest(self, state: SwarmState, values: np.ndarray) -> None:
        n = state.n_particles
        cfg = self._cfg("pbest", n)
        mask = self.ctx.launcher.launch(
            self._kernels["pbest"], n, state, values, config=cfg
        )
        self._charge_pbest_copy(int(np.count_nonzero(mask)), state.dim)

    def _charge_pbest_copy(self, improved: int, dim: int) -> None:
        """Account the d-wide position copies for the improved particles.

        The copy's semantics already happened inside ``pbest_update``; only
        its modelled time and profile row are added here, without a no-op
        kernel dispatch.  The charge is *dynamic* (data-dependent size), and
        always present — a 0.0-second charge when nothing improved — so a
        captured launch graph keeps a fixed charge-slot layout across
        iterations (``x + 0.0`` is bitwise identity, so simulated times are
        unchanged).
        """
        if improved:
            copy_elems = improved * dim
            self.ctx.launcher.charge(
                self._kernels["pbest_copy"],
                copy_elems,
                config=self._cfg("pbest_copy", copy_elems),
                dynamic=True,
            )
        else:
            self.clock.advance_dynamic(0.0)

    def _update_gbest(self, state: SwarmState) -> None:
        idx, val = self.ctx.reducer.argmin(state.pbest_values)
        if val < state.gbest_value:
            state.gbest_value = val
            state.gbest_index = idx
            state.gbest_position = state.pbest_positions[idx].copy()

    def _update_swarm(
        self,
        problem: Problem,
        params: PSOParams,
        state: SwarmState,
        rng: ParallelRNG,
    ) -> None:
        params = self._scheduled_params(params)
        n, d = state.n_particles, state.dim
        alloc = self.ctx.allocator
        # Per-iteration weight matrices: fresh allocations each time, so the
        # allocator flavour (caching vs direct) is what Table 4 measures.
        l_buf = alloc.alloc_like((n, d), self.storage_dtype)
        g_buf = alloc.alloc_like((n, d), self.storage_dtype)
        try:
            cfg_2nd = self._cfg("weights_rng", 2 * n * d)
            l_mat, g_mat = self.ctx.launcher.launch(
                self._kernels["weights_rng"], 2 * n * d, rng, n, d, config=cfg_2nd
            )
            social = social_positions(state, params.topology)
            vbounds = self._current_velocity_bounds(problem, params)
            if self.fuse_update:
                self.ctx.launcher.launch(
                    self._kernels["fused_update"],
                    n * d,
                    state.velocities,
                    state.positions,
                    state.pbest_positions,
                    social,
                    l_mat,
                    g_mat,
                    params,
                    vbounds,
                    problem,
                    config=self._cfg("fused_update", n * d),
                )
            else:
                vel_kwargs = {}
                if self.backend == "global":
                    scratch = self._vel_scratch(n, d)
                    if scratch is not None:
                        vel_kwargs["scratch"] = scratch
                self.ctx.launcher.launch(
                    self._kernels["velocity"],
                    n * d,
                    state.velocities,
                    state.positions,
                    state.pbest_positions,
                    social,
                    l_mat,
                    g_mat,
                    params,
                    vbounds,
                    out=state.velocities,
                    config=self._cfg("velocity", n * d),
                    **vel_kwargs,
                )
                self.ctx.launcher.launch(
                    self._kernels["position"],
                    n * d,
                    state.positions,
                    state.velocities,
                    problem,
                    params,
                    config=self._cfg("position", n * d),
                )
        finally:
            alloc.free(l_buf)
            alloc.free(g_buf)

    # -- launch-graph replay ----------------------------------------------------
    def _graph_blockers(self) -> str | None:
        if self.ctx.launcher.record_launches:
            return "record-launches"
        if self.ctx.launcher.fault_injector is not None:
            return "fault-injector"
        return None

    def _plan_launch(self, key: str, n_elems: int, section: str):
        """Resolve one launch's (kernel, config, cost) through the memoized
        front doors, plus its capture-comparable plan tuple."""
        kernel = self._kernels[key]
        cfg = self._cfg(key, n_elems)
        cost = kernel_cost(
            self.ctx.spec, kernel.spec, cfg, n_elems,
            self.ctx.launcher.cost_params,
        )
        return kernel, cost, (kernel.spec.name, section, n_elems, cfg, cost)

    def _graph_build_replay(self, problem, params, state, rng):
        """One pre-bound steady-state iteration (see :mod:`repro.gpusim.graph`).

        Mirrors the eager four-section body exactly: the same semantics
        callables in the same order, one ``clock.advance(cost.seconds)`` per
        launch (costs come from the same memoized ``kernel_cost`` front
        door, so every float add is bitwise-equal to eager's), real
        allocator alloc/free for the per-iteration weight matrices (pool
        hits advance the clock natively and keep allocator counters
        truthful), and the same dynamic pbest-copy charge helper.  Dynamic
        inputs — scheduled inertia, adaptive velocity bounds, the social
        topology view — are fetched at call time, not baked in.
        """
        n, d = state.n_particles, state.dim
        clock = self.clock
        alloc = self.ctx.allocator
        plan: list = []

        if "evaluate_particle" in self._kernels:
            eval_kernel, eval_cost, entry = self._plan_launch(
                "evaluate_particle", n, "eval"
            )
        else:
            eval_kernel, eval_cost, entry = self._plan_launch(
                "evaluate", n * d, "eval"
            )
        plan.append(entry)
        eval_sem = eval_kernel.semantics

        pbest_kernel, pbest_cost, entry = self._plan_launch("pbest", n, "pbest")
        plan.append(entry)

        argmin_run, argmin_launches = self.ctx.reducer.prebound_argmin(n)
        plan.extend(argmin_launches)

        weights_kernel, weights_cost, entry = self._plan_launch(
            "weights_rng", 2 * n * d, "swarm"
        )
        plan.append(entry)
        weights_sem = weights_kernel.semantics

        if self.fuse_update:
            fused_kernel, fused_cost, entry = self._plan_launch(
                "fused_update", n * d, "swarm"
            )
            plan.append(entry)
            fused_sem = fused_kernel.semantics
        else:
            vel_kernel, vel_cost, entry = self._plan_launch(
                "velocity", n * d, "swarm"
            )
            plan.append(entry)
            vel_sem = vel_kernel.semantics
            pos_kernel, pos_cost, entry = self._plan_launch(
                "position", n * d, "swarm"
            )
            plan.append(entry)
            pos_sem = pos_kernel.semantics

        def replay() -> None:
            with clock.section("eval"):
                values = eval_sem(state.positions)
                clock.advance(eval_cost.seconds)
            with clock.section("pbest"):
                mask = pbest_update(state, values)
                clock.advance(pbest_cost.seconds)
                self._charge_pbest_copy(int(np.count_nonzero(mask)), d)
            with clock.section("gbest"):
                idx, val = argmin_run(state.pbest_values)
                if val < state.gbest_value:
                    state.gbest_value = val
                    state.gbest_index = idx
                    state.gbest_position = state.pbest_positions[idx].copy()
            with clock.section("swarm"):
                p = self._scheduled_params(params)
                l_buf = alloc.alloc_like((n, d), self.storage_dtype)
                g_buf = alloc.alloc_like((n, d), self.storage_dtype)
                try:
                    l_mat, g_mat = weights_sem(rng, n, d)
                    clock.advance(weights_cost.seconds)
                    social = social_positions(state, p.topology)
                    vbounds = self._current_velocity_bounds(problem, p)
                    if self.fuse_update:
                        fused_sem(
                            state.velocities,
                            state.positions,
                            state.pbest_positions,
                            social,
                            l_mat,
                            g_mat,
                            p,
                            vbounds,
                            problem,
                        )
                        clock.advance(fused_cost.seconds)
                    else:
                        vel_kwargs = {}
                        if self.backend == "global":
                            scratch = self._vel_scratch(n, d)
                            if scratch is not None:
                                vel_kwargs["scratch"] = scratch
                        vel_sem(
                            state.velocities,
                            state.positions,
                            state.pbest_positions,
                            social,
                            l_mat,
                            g_mat,
                            p,
                            vbounds,
                            out=state.velocities,
                            **vel_kwargs,
                        )
                        clock.advance(vel_cost.seconds)
                        pos_sem(state.positions, state.velocities, problem, p)
                        clock.advance(pos_cost.seconds)
                finally:
                    alloc.free(l_buf)
                    alloc.free(g_buf)

        return replay, plan

    def _graph_build_native(self, graph, problem, params, state, rng):
        """The one-C-call iteration tier (see :mod:`repro.gpusim.fastpath`).

        Eligible when the captured iteration is exactly the shape
        ``_fastpath.c`` implements: float32 global-memory storage (the
        shared/tensorcore backends stage differently, fp16 double-rounds),
        global topology (the C step reads one gbest attractor row), and the
        capture's RNG consumption matching the two ``ceil(n*d/4)``-block
        draws.  The clock/allocator accounting stays in Python: the step
        performs the same section layout, the same ``advance`` sequence
        (costs resolved through the same memoized front doors as replay,
        so every float add is bitwise-equal) and real alloc/free calls for
        the per-iteration weight buffers — only the array semantics move
        into C.
        """
        from repro.gpusim import fastpath

        if self.backend != "global":
            return f"native-unsupported-backend:{self.backend}"
        if self.storage_dtype != np.float32:
            return "native-unsupported-storage-dtype"
        if params.topology != "global":
            return f"native-unsupported-topology:{params.topology}"
        lib = fastpath.load()
        if lib is None:
            return "native-unavailable"
        n, d = state.n_particles, state.dim
        if graph.rng_blocks != 2 * ((n * d + 3) // 4):
            return "native-rng-shape-mismatch"

        if "evaluate_particle" in self._kernels:
            eval_kernel, eval_cost, _ = self._plan_launch(
                "evaluate_particle", n, "eval"
            )
        else:
            eval_kernel, eval_cost, _ = self._plan_launch(
                "evaluate", n * d, "eval"
            )
        eval_sem = eval_kernel.semantics
        _, pbest_cost, _ = self._plan_launch("pbest", n, "pbest")
        _, argmin_launches = self.ctx.reducer.prebound_argmin(n)
        gbest_seconds = [entry[4].seconds for entry in argmin_launches]
        _, weights_cost, _ = self._plan_launch("weights_rng", 2 * n * d, "swarm")
        if self.fuse_update:
            _, fused_cost, _ = self._plan_launch("fused_update", n * d, "swarm")
            update_seconds = (fused_cost.seconds,)
        else:
            _, vel_cost, _ = self._plan_launch("velocity", n * d, "swarm")
            _, pos_cost, _ = self._plan_launch("position", n * d, "swarm")
            update_seconds = (vel_cost.seconds, pos_cost.seconds)
        eval_s = eval_cost.seconds
        pbest_s = pbest_cost.seconds
        weights_s = weights_cost.seconds

        l_w = self._ws.array("l_weights", (n, d), np.float32)
        g_w = self._ws.array("g_weights", (n, d), np.float32)
        pos_bounds = None
        if params.clip_positions:
            pos_bounds = (problem.lower_bounds, problem.upper_bounds)
        plan = fastpath.NativePlan(lib, state, rng, l_w, g_w, params, pos_bounds)
        clock = self.clock
        alloc = self.ctx.allocator

        def step() -> None:
            with clock.section("eval"):
                values = eval_sem(state.positions)
                clock.advance(eval_s)
            p = self._scheduled_params(params)
            vb = self._current_velocity_bounds(problem, p)
            vlo = vhi = None
            if vb is not None:
                vlo = vb[0].astype(np.float32)
                vhi = vb[1].astype(np.float32)
            improved = plan.step(values, float(p.inertia), vlo, vhi)
            with clock.section("pbest"):
                clock.advance(pbest_s)
                self._charge_pbest_copy(improved, d)
            with clock.section("gbest"):
                for s in gbest_seconds:
                    clock.advance(s)
            with clock.section("swarm"):
                l_buf = alloc.alloc_like((n, d), np.float32)
                g_buf = alloc.alloc_like((n, d), np.float32)
                try:
                    clock.advance(weights_s)
                    for s in update_seconds:
                        clock.advance(s)
                finally:
                    alloc.free(l_buf)
                    alloc.free(g_buf)

        def verify(run_replay) -> bool:
            return fastpath.verify_step(
                plan, run_replay, eval_sem, self, problem, params
            )

        return step, verify

    def _warm_resume(
        self, problem: Problem, params: PSOParams, n_particles: int
    ) -> None:
        # A resumed run starts with an empty allocator pool, but iteration k
        # of the uninterrupted run takes pool *hits* for the per-iteration
        # weight matrices (the first iteration's misses already populated the
        # pool).  Pre-warm with one alloc/free pair of the same shapes so the
        # resumed iterations see identical pool behaviour — and the memory
        # high-water mark (peak_device_bytes) matches too.
        from repro.gpusim.alloc import CachingAllocator

        alloc = self.ctx.allocator
        if not isinstance(alloc, CachingAllocator):
            return  # direct allocator: every iteration misses either way
        n, d = n_particles, problem.dim
        l_buf = alloc.alloc_like((n, d), self.storage_dtype)
        g_buf = alloc.alloc_like((n, d), self.storage_dtype)
        alloc.free(l_buf)
        alloc.free(g_buf)

    def _finalize(self, state: SwarmState) -> None:
        # Device-to-host copy of the result vector.
        spec = self.ctx.spec
        nbytes = state.dim * _F32
        self.clock.advance(6.0e-6 + nbytes / spec.pcie_bandwidth)
        self._release_persistent()

    def _release_persistent(self) -> None:
        for buf in self._persistent_buffers:
            self.ctx.allocator.free(buf)
        self._persistent_buffers = []

    def _peak_device_bytes(self) -> int:
        return self.ctx.memory.high_water_bytes

    # -- introspection ----------------------------------------------------------
    def profile_report(self):
        """Profiling over every launch since the engine was created/reset."""
        return self.ctx.profile_report()
