"""All seven engine implementations benchmarked by the paper.

============  ===========================================  =================
Table 1 name  Class                                        Substrate
============  ===========================================  =================
fastpso       :class:`FastPSOEngine`                       GPU, element-wise
gpu-pso       :class:`GpuParticleEngine`                   GPU, per-particle
hgpu-pso      :class:`GpuHeteroEngine`                     CPU+GPU hybrid
fastpso-seq   :class:`SequentialEngine`                    1 CPU thread
fastpso-omp   :class:`OpenMPEngine`                        20 CPU threads
pyswarms      :class:`PySwarmsLikeEngine`                  NumPy library
scikit-opt    :class:`ScikitOptLikeEngine`                 NumPy library
============  ===========================================  =================

:func:`make_engine` builds any of them by the paper's name; FastPSO's
memory backends (``global``/``shared``/``tensorcore``) and allocator toggle
are constructor options on :class:`FastPSOEngine`.
"""

from __future__ import annotations

from repro.core.engine import Engine
from repro.engines.async_pso import AsyncFastPSOEngine
from repro.engines.cpu_omp import OpenMPEngine
from repro.engines.cpu_seq import SequentialEngine
from repro.engines.gpu_elementwise import BACKENDS, FastPSOEngine
from repro.engines.gpu_hetero import GpuHeteroEngine
from repro.engines.gpu_particle import GpuParticleEngine
from repro.engines.lib_base import LibraryEngineBase
from repro.engines.multi_gpu import MultiGpuFastPSOEngine
from repro.engines.pyswarms_like import PySwarmsLikeEngine
from repro.engines.scikit_opt_like import ScikitOptLikeEngine
from repro.errors import InvalidParameterError

__all__ = [
    "Engine",
    "FastPSOEngine",
    "GpuParticleEngine",
    "GpuHeteroEngine",
    "SequentialEngine",
    "OpenMPEngine",
    "PySwarmsLikeEngine",
    "ScikitOptLikeEngine",
    "LibraryEngineBase",
    "MultiGpuFastPSOEngine",
    "AsyncFastPSOEngine",
    "BACKENDS",
    "ENGINE_NAMES",
    "make_engine",
]

_FACTORIES = {
    "fastpso": FastPSOEngine,
    "gpu-pso": GpuParticleEngine,
    "hgpu-pso": GpuHeteroEngine,
    "fastpso-seq": SequentialEngine,
    "fastpso-omp": OpenMPEngine,
    "pyswarms": PySwarmsLikeEngine,
    "scikit-opt": ScikitOptLikeEngine,
}

#: Engine names in the paper's Table 1 column order.
ENGINE_NAMES = (
    "pyswarms",
    "scikit-opt",
    "gpu-pso",
    "hgpu-pso",
    "fastpso-seq",
    "fastpso-omp",
    "fastpso",
)


def make_engine(name: str, **kwargs: object) -> Engine:
    """Instantiate an engine by its paper name (see :data:`ENGINE_NAMES`)."""
    try:
        factory = _FACTORIES[name.lower()]
    except KeyError:
        raise InvalidParameterError(
            f"unknown engine {name!r}; available: {sorted(_FACTORIES)}"
        ) from None
    return factory(**kwargs)  # type: ignore[arg-type]
