"""All seven engine implementations benchmarked by the paper.

============  ===========================================  =================
Table 1 name  Class                                        Substrate
============  ===========================================  =================
fastpso       :class:`FastPSOEngine`                       GPU, element-wise
gpu-pso       :class:`GpuParticleEngine`                   GPU, per-particle
hgpu-pso      :class:`GpuHeteroEngine`                     CPU+GPU hybrid
fastpso-seq   :class:`SequentialEngine`                    1 CPU thread
fastpso-omp   :class:`OpenMPEngine`                        20 CPU threads
pyswarms      :class:`PySwarmsLikeEngine`                  NumPy library
scikit-opt    :class:`ScikitOptLikeEngine`                 NumPy library
============  ===========================================  =================

:func:`make_engine` builds any of them by the paper's name, by the names of
the two library-extension engines (``fastpso-mgpu``, ``fastpso-async``), or
by a registered alias such as ``"fastpso-tc"`` for the tensor-core backend.
FastPSO's memory backends (``global``/``shared``/``tensorcore``) and
allocator toggle remain constructor options on :class:`FastPSOEngine`.
Unknown names raise :class:`~repro.errors.InvalidParameterError` with a
did-you-mean suggestion.
"""

from __future__ import annotations

from repro.core.engine import Engine
from repro.engines.async_pso import AsyncFastPSOEngine
from repro.engines.cpu_omp import OpenMPEngine
from repro.engines.cpu_seq import SequentialEngine
from repro.engines.gpu_elementwise import BACKENDS, FastPSOEngine
from repro.engines.gpu_hetero import GpuHeteroEngine
from repro.engines.gpu_particle import GpuParticleEngine
from repro.engines.lib_base import LibraryEngineBase
from repro.engines.multi_gpu import MultiGpuFastPSOEngine
from repro.engines.pyswarms_like import PySwarmsLikeEngine
from repro.engines.scikit_opt_like import ScikitOptLikeEngine
from repro.utils.naming import unknown_name

__all__ = [
    "Engine",
    "FastPSOEngine",
    "GpuParticleEngine",
    "GpuHeteroEngine",
    "SequentialEngine",
    "OpenMPEngine",
    "PySwarmsLikeEngine",
    "ScikitOptLikeEngine",
    "LibraryEngineBase",
    "MultiGpuFastPSOEngine",
    "AsyncFastPSOEngine",
    "BACKENDS",
    "ENGINE_NAMES",
    "available_engines",
    "engine_accepts_device",
    "engine_supports_graph",
    "make_engine",
    "resolve_engine",
]

_FACTORIES = {
    "fastpso": FastPSOEngine,
    "gpu-pso": GpuParticleEngine,
    "hgpu-pso": GpuHeteroEngine,
    "fastpso-seq": SequentialEngine,
    "fastpso-omp": OpenMPEngine,
    "pyswarms": PySwarmsLikeEngine,
    "scikit-opt": ScikitOptLikeEngine,
    # Library extensions beyond the paper's Table 1.
    "fastpso-mgpu": MultiGpuFastPSOEngine,
    "fastpso-async": AsyncFastPSOEngine,
}

#: Aliases: canonical name plus implied constructor options.  These are the
#: spellings the result tables and docs use for engine *variants* (a
#: variant is a configuration, not a class of its own).
_ALIASES: dict[str, tuple[str, dict[str, object]]] = {
    "fastpso-global": ("fastpso", {}),
    "fastpso-shared": ("fastpso", {"backend": "shared"}),
    "fastpso-tc": ("fastpso", {"backend": "tensorcore"}),
    "fastpso-tensorcore": ("fastpso", {"backend": "tensorcore"}),
    "fastpso-nocache": ("fastpso", {"caching": False}),
    "fastpso-fused": ("fastpso", {"fuse_update": True}),
    "fastpso-fp16": ("fastpso", {"half_storage": True}),
    "mgpu": ("fastpso-mgpu", {}),
    "async": ("fastpso-async", {}),
}

#: Engine names in the paper's Table 1 column order.
ENGINE_NAMES = (
    "pyswarms",
    "scikit-opt",
    "gpu-pso",
    "hgpu-pso",
    "fastpso-seq",
    "fastpso-omp",
    "fastpso",
)


def available_engines() -> tuple[str, ...]:
    """Every name :func:`make_engine` accepts (canonical names + aliases)."""
    return tuple(sorted({*_FACTORIES, *_ALIASES}))


def engine_supports_graph(name: str) -> bool:
    """Whether *name*'s engine class takes the ``graph=`` fast-path knob.

    Used by callers that inject a fleet-wide graph default (e.g. the batch
    scheduler) to avoid passing the keyword to engines without it.  Unknown
    names report ``False``; :func:`make_engine` is where they raise.
    """
    key = name.lower()
    if key in _ALIASES:
        key, _implied = _ALIASES[key]
    factory = _FACTORIES.get(key)
    return bool(getattr(factory, "supports_graph", False))


def engine_accepts_device(name: str) -> bool:
    """Whether *name*'s engine class takes the ``device=`` spec argument.

    The heterogeneous batch fleet and the serving layer use this to decide
    whether a catalog :class:`~repro.gpusim.device.DeviceSpec` can be
    threaded into a job's engine options: GPU engines simulate on the given
    spec, CPU/library engines have no device to retarget and must not
    receive the keyword.  Unknown names report ``False``;
    :func:`make_engine` is where they raise.
    """
    import inspect

    key = name.lower()
    if key in _ALIASES:
        key, _implied = _ALIASES[key]
    factory = _FACTORIES.get(key)
    if factory is None:
        return False
    try:
        signature = inspect.signature(factory)
    except (TypeError, ValueError):  # pragma: no cover - builtins only
        return False
    return "device" in signature.parameters


def resolve_engine(name: str) -> tuple[str, dict[str, object]]:
    """Resolve *name* to ``(canonical_name, implied_options)``.

    Aliases map to their canonical engine plus the constructor options they
    imply (e.g. ``"fastpso-tc"`` → ``("fastpso", {"backend": "tensorcore"})``);
    canonical names map to themselves with no implied options.  This is the
    same resolution :func:`make_engine` applies, exposed so callers that
    *compare* engine configurations (the fused batch grouping pass) see
    through alias spellings.  Unknown names raise
    :class:`InvalidParameterError` with a did-you-mean hint.
    """
    key = name.lower()
    implied: dict[str, object] = {}
    if key in _ALIASES:
        key, alias_implied = _ALIASES[key]
        implied = dict(alias_implied)
    if key not in _FACTORIES:
        raise unknown_name("engine", name, available_engines()) from None
    return key, implied


def make_engine(name: str, **kwargs: object) -> Engine:
    """Instantiate an engine by name or alias (see :func:`available_engines`).

    Alias-implied options (e.g. ``"fastpso-tc"`` → ``backend="tensorcore"``)
    merge with explicit keyword arguments; explicit keywords win.  Unknown
    names raise :class:`InvalidParameterError` with a did-you-mean hint.
    """
    key, implied = resolve_engine(name)
    kwargs = {**implied, **kwargs}
    return _FACTORIES[key](**kwargs)  # type: ignore[arg-type]
