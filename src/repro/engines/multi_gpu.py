"""Multi-GPU FastPSO via particle splitting (paper Section 3.5).

The swarm is partitioned into one sub-swarm per simulated device.  Each
sub-swarm runs the ordinary element-wise FastPSO steps on its own device
(its own clock, allocator and Philox stream — streams are disjoint by
construction, see :class:`repro.gpusim.rng.ParallelRNG`), maintaining its
*local* global-best.  Every ``exchange_interval`` iterations the devices
reconcile: the best local gbest is broadcast over PCIe and injected into
every sub-swarm.  Between exchanges devices never wait on each other, so
end-to-end time is the *slowest device's* timeline plus the exchange costs
— the asynchronous behaviour the paper describes as the advantage of this
strategy over the per-iteration-synchronised tile-matrix approach.

This engine overrides :meth:`optimize` rather than the step hooks because
it owns several device timelines; the per-device steps are the unmodified
:class:`FastPSOEngine` hooks, so numerics per sub-swarm are identical to
single-GPU FastPSO.
"""

from __future__ import annotations

import numpy as np

from repro.core.engine import Engine
from repro.core.parameters import PAPER_DEFAULTS, PSOParams
from repro.core.problem import Problem
from repro.core.results import History, OptimizeResult, StepTimes
from repro.core.stopping import StopCriterion
from repro.engines.gpu_elementwise import FastPSOEngine
from repro._compat import deprecated_kwargs
from repro.errors import InvalidParameterError
from repro.gpusim.costmodel import GpuCostParams
from repro.gpusim.device import DeviceSpec
from repro.gpusim.multigpu import ExchangeCost, partition_particles

__all__ = ["MultiGpuFastPSOEngine"]


class _FleetClock:
    """Read-only clock view over the whole fleet for budget tracking.

    The multi-GPU timeline is the slowest device's clock plus the exchange
    costs — the same quantity ``elapsed_seconds`` reports — so a simulated-
    time budget measures exactly what the result will show.
    """

    def __init__(self, engine: "MultiGpuFastPSOEngine") -> None:
        self._engine = engine

    @property
    def now(self) -> float:
        e = self._engine
        return max(w.clock.now for w in e.workers) + e._exchange_seconds


class MultiGpuFastPSOEngine(Engine):
    """Particle-splitting FastPSO across several simulated devices."""

    is_gpu = True
    supports_graph = True

    @deprecated_kwargs(spec="device")
    def __init__(
        self,
        n_devices: int = 2,
        device: DeviceSpec | None = None,
        *,
        exchange_interval: int = 50,
        backend: str = "global",
        caching: bool = True,
        cost_params: GpuCostParams | None = None,
        record_launches: bool = False,
        graph: bool = True,
    ) -> None:
        super().__init__()
        if n_devices < 1:
            raise InvalidParameterError(
                f"need at least one device, got {n_devices}"
            )
        if exchange_interval < 1:
            raise InvalidParameterError(
                f"exchange_interval must be >= 1, got {exchange_interval}"
            )
        self.n_devices = n_devices
        self.exchange_interval = exchange_interval
        self.graph_enabled = bool(graph)
        self.workers = [
            FastPSOEngine(
                device,
                backend=backend,
                caching=caching,
                cost_params=cost_params,
                record_launches=record_launches,
                graph=graph,
            )
            for _ in range(n_devices)
        ]
        for index, worker in enumerate(self.workers):
            worker.ctx.device_index = index
        self.name = f"fastpso-mgpu{n_devices}"
        self._exchange = ExchangeCost(self.workers[0].ctx.spec)
        self._exchange_seconds = 0.0

    def attach_fault_injector(self, injector) -> None:
        # One injector spans all worker devices: launch/alloc ordinals count
        # across the whole engine, and a device-lost fault takes down the
        # entire multi-GPU run (the base class would find no ``self.ctx``
        # here and silently skip the wiring).
        self._fault_injector = injector
        injector.on_new_device()
        for worker in self.workers:
            worker.ctx.attach_fault_injector(injector)

    # -- the hooks are unused; the loop below drives the workers directly --
    def _initialize(self, *a, **k):  # pragma: no cover - not reachable
        raise NotImplementedError

    _evaluate = _update_pbest = _update_gbest = _update_swarm = _initialize

    def optimize(
        self,
        problem: Problem,
        *,
        n_particles: int,
        max_iter: int,
        params: PSOParams = PAPER_DEFAULTS,
        stop: StopCriterion | None = None,
        record_history: bool = False,
        callback=None,
        checkpoint=None,
        restore=None,
        budget=None,
        guard=None,
    ) -> OptimizeResult:
        if checkpoint is not None or restore is not None:
            # A multi-GPU run spans several Philox streams and device
            # timelines; a single RunSnapshot cannot express it (yet).
            raise InvalidParameterError(
                "checkpoint/resume is not supported by the multi-GPU engine; "
                "use a single-device engine from the fastpso family"
            )
        if callback is not None and not callable(callback):
            raise InvalidParameterError("callback must be callable")
        from repro.core.budget import Budget

        if budget is not None and not isinstance(budget, Budget):
            raise InvalidParameterError("budget must be a repro Budget")
        if guard is not None and not hasattr(guard, "inspect"):
            raise InvalidParameterError(
                "guard must provide an inspect() hook (see SwarmHealthGuard)"
            )
        if n_particles < self.n_devices:
            raise InvalidParameterError(
                f"cannot split {n_particles} particles over "
                f"{self.n_devices} devices"
            )
        if max_iter <= 0:
            raise InvalidParameterError(f"max_iter must be positive, got {max_iter}")
        if stop is not None:
            stop.reset()

        shard_sizes = partition_particles(n_particles, self.n_devices)
        self._exchange_seconds = 0.0
        history = History() if record_history else None
        for worker in self.workers:
            worker.clock.reset()
            worker._progress = 0.0
        tracker = None
        if budget is not None and not budget.is_unlimited:
            tracker = budget.start(
                clock=_FleetClock(self), n_particles=n_particles
            )
        if guard is not None:
            guard.reset()

        # Per-device init: disjoint Philox streams derived from one seed
        # (each worker's context namespaces the stream by device index).
        # The same generator object continues through the iteration draws,
        # exactly like the single-GPU engine.
        states = []
        rngs = []
        for worker, shard in zip(self.workers, shard_sizes):
            rng = worker.ctx.make_rng(params.seed)
            with worker.clock.section("init"):
                states.append(worker._initialize(problem, params, shard, rng))
            rngs.append(rng)

        setup_seconds = max(w.clock.now for w in self.workers)

        # One capture/replay lifecycle per worker device: each sub-swarm's
        # iteration shape is independent (its own launcher, allocator pool
        # and Philox stream).  Exchanges only rewrite gbest state between
        # iterations, which replay reads dynamically, so they don't block
        # graph eligibility.
        from repro.gpusim.graph import IterationRunner

        eager_reason = None
        if not self.graph_enabled:
            eager_reason = "graph=False"
        elif stop is not None:
            eager_reason = "stop-criterion"
        elif callback is not None:
            eager_reason = "callback"
        elif tracker is not None:
            eager_reason = "budget"
        elif guard is not None:
            eager_reason = "health-guard"
        elif self._fault_injector is not None:
            eager_reason = "fault-injector"
        elif any(w.ctx.launcher.record_launches for w in self.workers):
            eager_reason = "record-launches"
        runners = [
            IterationRunner(
                worker, problem, params, state, rng, eager_reason=eager_reason
            )
            for worker, state, rng in zip(self.workers, states, rngs)
        ]
        self.graph_info = runners[0].info

        global_best_value = np.inf
        global_best_position = np.zeros(problem.dim, dtype=np.float32)
        iterations_run = 0
        status = "completed"

        for t in range(max_iter):
            progress = t / max(1, max_iter - 1)
            for worker, runner in zip(self.workers, runners):
                worker._progress = progress
                runner.run_iteration(t)
            iterations_run = t + 1
            if guard is not None:
                # Each sub-swarm is repaired from its own Philox stream, so
                # interventions stay deterministic per device.
                for state, rng in zip(states, rngs):
                    guard.inspect(state, problem, rng, iteration=t)

            if (t + 1) % self.exchange_interval == 0 or t == max_iter - 1:
                global_best_value, global_best_position = self._exchange_best(
                    problem, states, global_best_value, global_best_position
                )

            if history is not None:
                best_now = min(s.gbest_value for s in states)
                mean_pbest = float(
                    np.mean(np.concatenate([s.pbest_values for s in states]))
                )
                history.record(min(best_now, global_best_value), mean_pbest)
            if callback is not None:
                # The callback receives the sub-swarm currently holding the
                # best gbest (the closest analogue of the single-GPU state).
                leader = min(states, key=lambda s: s.gbest_value)
                if callback(t, leader):
                    global_best_value, global_best_position = (
                        self._exchange_best(
                            problem,
                            states,
                            global_best_value,
                            global_best_position,
                        )
                    )
                    break
            if stop is not None and stop.should_stop(
                t, min(global_best_value, min(s.gbest_value for s in states))
            ):
                global_best_value, global_best_position = self._exchange_best(
                    problem, states, global_best_value, global_best_position
                )
                break
            if (
                tracker is not None
                and iterations_run < max_iter
                and tracker.should_stop(
                    t, min(global_best_value, min(s.gbest_value for s in states))
                )
            ):
                status = tracker.breach or "budget_exhausted"
                global_best_value, global_best_position = self._exchange_best(
                    problem, states, global_best_value, global_best_position
                )
                break

        for runner in runners:
            runner.finalize()
        for worker, state in zip(self.workers, states):
            worker._finalize(state)

        elapsed = (
            max(w.clock.now for w in self.workers) + self._exchange_seconds
        )
        loop_seconds = elapsed - setup_seconds
        slowest = max(self.workers, key=lambda w: w.clock.now)
        step_times = StepTimes(
            init=slowest.clock.total("init"),
            eval=slowest.clock.total("eval"),
            pbest=slowest.clock.total("pbest"),
            gbest=slowest.clock.total("gbest") + self._exchange_seconds,
            swarm=slowest.clock.total("swarm"),
        )
        return OptimizeResult(
            engine=self.name,
            problem=problem.name,
            n_particles=n_particles,
            dim=problem.dim,
            iterations=iterations_run,
            best_value=float(global_best_value),
            best_position=np.asarray(global_best_position, dtype=np.float64),
            error=problem.error_of(global_best_value),
            elapsed_seconds=elapsed,
            setup_seconds=setup_seconds,
            iteration_seconds=loop_seconds / iterations_run,
            step_times=step_times,
            history=history,
            peak_device_bytes=max(
                w.ctx.memory.high_water_bytes for w in self.workers
            ),
            status=status,
        )

    def _exchange_best(
        self, problem, states, global_best_value, global_best_position
    ):
        """Reconcile local gbests: gather candidates, broadcast the winner."""
        for state in states:
            if state.gbest_value < global_best_value:
                global_best_value = state.gbest_value
                global_best_position = state.gbest_position.copy()
        for state in states:
            if global_best_value < state.gbest_value:
                state.gbest_value = float(global_best_value)
                state.gbest_position = global_best_position.copy()
        self._exchange_seconds += self._exchange.gbest_broadcast(
            self.n_devices, problem.dim * 4 + 8
        )
        return global_best_value, global_best_position
