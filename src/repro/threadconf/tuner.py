"""PSO-based thread-configuration tuning (the paper's ThreadConf problem).

Maps the 50-dimensional continuous PSO search space onto the discrete
``(threads_per_block, elems_per_thread)`` catalog of the ThunderGBM
simulator: dimensions ``2k`` and ``2k+1`` select the two knobs of kernel
``k`` by uniform binning of ``[0, 1)``.  The objective value of a particle
is the simulated end-to-end training time of its configuration.

Two entry points:

* :func:`make_threadconf_problem` — a :class:`~repro.core.problem.Problem`
  usable with any engine; this is the fourth workload of Tables 1 and
  Figures 4-6.  For dimensions other than 50 (Figure 4 sweeps 50-200) the
  kernel list is tiled cyclically, so the problem stays meaningful at any
  even dimension.
* :func:`tune` — the Table 5 driver: run FastPSO against a dataset's
  simulator and report default vs tuned training time.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.parameters import PSOParams
from repro.core.problem import Problem
from repro.core.schema import EvaluationSchema
from repro.errors import InvalidProblemError
from repro.functions.base import EvalProfile
from repro.threadconf.kernels import EPT_CHOICES, TPB_CHOICES
from repro.threadconf.tgbm import TgbmSimulator

__all__ = [
    "ThreadConfEvaluation",
    "make_threadconf_problem",
    "TuneResult",
    "tune",
    "tune_multistart",
]


def _decode_columns(positions: np.ndarray, n_kernels: int):
    """Map a (n, d) position matrix to (n, n_kernels) choice indices.

    Positions are interpreted on [0, 1) per coordinate (values outside are
    clipped, as out-of-domain particles must still evaluate); dimension 2k
    picks the tpb bin, 2k+1 the ept bin of (tiled) kernel k.
    """
    p = np.clip(positions, 0.0, np.nextafter(1.0, 0.0))
    d = p.shape[1]
    pair_count = d // 2
    kernel_of_pair = np.arange(pair_count) % n_kernels

    tpb_idx_pairs = (p[:, 0 : 2 * pair_count : 2] * len(TPB_CHOICES)).astype(np.intp)
    ept_idx_pairs = (p[:, 1 : 2 * pair_count : 2] * len(EPT_CHOICES)).astype(np.intp)

    # When a kernel appears in several pairs (d > 2*25), the *last* pair
    # wins — matching a sequential config write-out.
    n = p.shape[0]
    tpb_idx = np.zeros((n, n_kernels), dtype=np.intp)
    ept_idx = np.zeros((n, n_kernels), dtype=np.intp)
    for pair, k in enumerate(kernel_of_pair):
        tpb_idx[:, k] = tpb_idx_pairs[:, pair]
        ept_idx[:, k] = ept_idx_pairs[:, pair]
    return tpb_idx, ept_idx


class ThreadConfEvaluation(EvaluationSchema):
    """Evaluation schema: simulated ThunderGBM training time of a config."""

    granularity = "particle"

    def __init__(self, simulator: TgbmSimulator, dim: int) -> None:
        if dim < 2:
            raise InvalidProblemError("threadconf needs dimension >= 2")
        self.simulator = simulator
        self.dim = dim

    def evaluate(self, positions: np.ndarray) -> np.ndarray:
        p = np.asarray(positions, dtype=np.float64)
        tpb_idx, ept_idx = _decode_columns(p, self.simulator.n_kernels)
        times = self.simulator.train_time_indices(tpb_idx, ept_idx)
        return self._check_output(np.atleast_1d(times), p.shape[0])

    def profile(self) -> EvalProfile:
        # Per position coordinate: a bin decode plus a table gather — cheap
        # integer work, like the paper's fast ThreadConf objective.
        return EvalProfile(flops_per_elem=6.0, reduction_flops_per_elem=2.0)


def make_threadconf_problem(
    dataset: str = "higgs",
    dim: int = 50,
    *,
    simulator: TgbmSimulator | None = None,
) -> Problem:
    """The ThreadConf optimization problem at an arbitrary (even) dimension."""
    if dim < 2 or dim % 2:
        raise InvalidProblemError(
            f"threadconf dimension must be even and >= 2, got {dim}"
        )
    sim = simulator or TgbmSimulator(dataset)
    return Problem(
        name="threadconf",
        dim=dim,
        lower_bounds=np.zeros(dim),
        upper_bounds=np.ones(dim),
        evaluator=ThreadConfEvaluation(sim, dim),
        reference_value=sim.best_table_time(),
    )


@dataclass(frozen=True)
class TuneResult:
    """Outcome of one Table 5 tuning run."""

    dataset: str
    default_seconds: float
    tuned_seconds: float
    best_position: np.ndarray
    iterations: int

    @property
    def speedup(self) -> float:
        return self.default_seconds / self.tuned_seconds


def tune(
    dataset: str,
    *,
    n_particles: int = 256,
    max_iter: int = 60,
    seed: int = 7,
    engine=None,
    simulator: TgbmSimulator | None = None,
) -> TuneResult:
    """Tune a dataset's kernel configuration with FastPSO (Table 5).

    The tuned time is clamped below by the default: like the paper's
    covtype row, PSO keeps the stock configuration when it cannot beat it.
    """
    from repro.engines import FastPSOEngine

    sim = simulator or TgbmSimulator(dataset)
    problem = make_threadconf_problem(dataset, simulator=sim)
    eng = engine or FastPSOEngine()
    result = eng.optimize(
        problem,
        n_particles=n_particles,
        max_iter=max_iter,
        params=PSOParams(seed=seed),
    )
    default_t = sim.default_train_time()
    tuned_t = min(default_t, float(result.best_value))
    return TuneResult(
        dataset=sim.dataset.name,
        default_seconds=default_t,
        tuned_seconds=tuned_t,
        best_position=result.best_position,
        iterations=result.iterations,
    )


def tune_multistart(
    dataset: str,
    *,
    n_starts: int = 3,
    n_particles: int = 128,
    max_iter: int = 40,
    seed: int = 7,
    simulator: TgbmSimulator | None = None,
) -> TuneResult:
    """Multi-start opposition-based tuning (after Kaucic 2013).

    Runs ``n_starts`` independent searches — alternating uniform and
    opposition-based initialisation across starts — and keeps the best.
    The config landscape is a 50-dimensional product of small discrete
    plateaus, so restarts are the cheapest way to escape a bad basin.
    """
    from repro.engines import FastPSOEngine

    if n_starts < 1:
        raise InvalidProblemError(f"need at least one start, got {n_starts}")
    sim = simulator or TgbmSimulator(dataset)
    problem = make_threadconf_problem(dataset, simulator=sim)
    best: TuneResult | None = None
    for start in range(n_starts):
        strategy = "opposition" if start % 2 else "uniform"
        result = FastPSOEngine().optimize(
            problem,
            n_particles=n_particles,
            max_iter=max_iter,
            params=PSOParams(seed=seed + start, init_strategy=strategy),
        )
        default_t = sim.default_train_time()
        candidate = TuneResult(
            dataset=sim.dataset.name,
            default_seconds=default_t,
            tuned_seconds=min(default_t, float(result.best_value)),
            best_position=result.best_position,
            iterations=result.iterations,
        )
        if best is None or candidate.tuned_seconds < best.tuned_seconds:
            best = candidate
    assert best is not None
    return best
