"""ThunderGBM thread-configuration case study (paper Section 4.6)."""

from repro.threadconf.datasets import DATASETS, DatasetSpec, get_dataset
from repro.threadconf.kernels import (
    DEFAULT_EPT,
    DEFAULT_TPB,
    EPT_CHOICES,
    KERNEL_CATALOG,
    TPB_CHOICES,
    TgbmKernel,
    kernel_latency,
)
from repro.threadconf.tgbm import TgbmSimulator
from repro.threadconf.tuner import (
    ThreadConfEvaluation,
    TuneResult,
    make_threadconf_problem,
    tune,
    tune_multistart,
)

__all__ = [
    "DATASETS",
    "DatasetSpec",
    "get_dataset",
    "DEFAULT_EPT",
    "DEFAULT_TPB",
    "EPT_CHOICES",
    "KERNEL_CATALOG",
    "TPB_CHOICES",
    "TgbmKernel",
    "kernel_latency",
    "TgbmSimulator",
    "ThreadConfEvaluation",
    "TuneResult",
    "make_threadconf_problem",
    "tune",
    "tune_multistart",
]
