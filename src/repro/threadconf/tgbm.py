"""Simulated ThunderGBM training driver.

:class:`TgbmSimulator` composes the kernel catalog into the training loop
the paper's case study times: 40 trees of depth 6 (their setting), with
per-level kernels running once per tree level (on ``2^level`` nodes),
per-tree kernels once per tree, and preprocessing once per run.

Because every kernel's latency depends only on its workload and its
``(threads_per_block, elems_per_thread)`` configuration, the simulator
precomputes a ``25 x 6 x 4`` *cost table* (kernel x tpb choice x ept
choice): training time for any configuration is a table contraction.  That
is what makes the ThreadConf objective cheap enough for PSO to evaluate on
thousands of particles — matching the paper, whose Table 1 ThreadConf runs
are as fast as its synthetic benchmarks.
"""

from __future__ import annotations

import numpy as np

from repro.errors import InvalidParameterError
from repro.gpusim.costmodel import GpuCostParams
from repro.gpusim.device import DeviceSpec, tesla_v100
from repro.threadconf.datasets import DatasetSpec, get_dataset
from repro.threadconf.kernels import (
    DEFAULT_EPT,
    DEFAULT_TPB,
    EPT_CHOICES,
    KERNEL_CATALOG,
    TPB_CHOICES,
    kernel_latency,
)

__all__ = ["TgbmSimulator"]


class TgbmSimulator:
    """Analytic ThunderGBM training-time model for one dataset."""

    def __init__(
        self,
        dataset: str | DatasetSpec,
        *,
        n_trees: int = 40,
        depth: int = 6,
        device: DeviceSpec | None = None,
        cost_params: GpuCostParams | None = None,
    ) -> None:
        if n_trees < 1 or depth < 1:
            raise InvalidParameterError("n_trees and depth must be >= 1")
        self.dataset = (
            get_dataset(dataset) if isinstance(dataset, str) else dataset
        )
        self.n_trees = n_trees
        self.depth = depth
        self.device = device or tesla_v100()
        self.cost_params = cost_params or GpuCostParams()
        self._tables = self._build_tables()

    # -- cost tables -----------------------------------------------------------
    def _invocation_workloads(self, kernel) -> list[tuple[int, int]]:
        """(workload, multiplicity) pairs for one kernel over a full run."""
        ds = self.dataset
        if kernel.frequency == "once":
            return [(kernel.workload(ds, 1), 1)]
        if kernel.frequency == "tree":
            leaves = 2**self.depth
            return [(kernel.workload(ds, leaves), self.n_trees)]
        if kernel.frequency == "level":
            return [
                (kernel.workload(ds, 2**level), self.n_trees)
                for level in range(self.depth)
            ]
        raise InvalidParameterError(
            f"kernel {kernel.name} has unknown frequency {kernel.frequency!r}"
        )

    def _build_tables(self) -> np.ndarray:
        """``(25, len(TPB), len(EPT))`` total-seconds table for this run."""
        tables = np.zeros(
            (len(KERNEL_CATALOG), len(TPB_CHOICES), len(EPT_CHOICES))
        )
        for k, kernel in enumerate(KERNEL_CATALOG):
            workloads = self._invocation_workloads(kernel)
            for i, tpb in enumerate(TPB_CHOICES):
                for j, ept in enumerate(EPT_CHOICES):
                    total = 0.0
                    for n_elems, mult in workloads:
                        lat = kernel_latency(
                            kernel, n_elems, tpb, ept, self.device,
                            self.cost_params, dataset=self.dataset,
                        )
                        total += lat * mult
                        if not np.isfinite(total):
                            break
                    tables[k, i, j] = total
        return tables

    @property
    def n_kernels(self) -> int:
        return len(KERNEL_CATALOG)

    @property
    def cost_tables(self) -> np.ndarray:
        """Read-only view of the precomputed cost tables."""
        view = self._tables.view()
        view.flags.writeable = False
        return view

    # -- configuration interface ----------------------------------------------
    def default_indices(self) -> tuple[np.ndarray, np.ndarray]:
        """Index form of ThunderGBM's stock launch configuration."""
        tpb_idx = np.full(self.n_kernels, TPB_CHOICES.index(DEFAULT_TPB))
        ept_idx = np.full(self.n_kernels, EPT_CHOICES.index(DEFAULT_EPT))
        return tpb_idx, ept_idx

    def train_time_indices(
        self, tpb_idx: np.ndarray, ept_idx: np.ndarray
    ) -> np.ndarray | float:
        """Training time for configurations given as choice indices.

        Accepts ``(n_kernels,)`` vectors (returns a scalar) or
        ``(n, n_kernels)`` batches (returns ``(n,)`` times) — the batched
        form is the vectorised PSO evaluation path.
        """
        tpb_idx = np.asarray(tpb_idx, dtype=np.intp)
        ept_idx = np.asarray(ept_idx, dtype=np.intp)
        if tpb_idx.shape != ept_idx.shape:
            raise InvalidParameterError("index arrays must have equal shapes")
        if tpb_idx.shape[-1] != self.n_kernels:
            raise InvalidParameterError(
                f"expected {self.n_kernels} kernel entries, got "
                f"{tpb_idx.shape[-1]}"
            )
        if np.any(tpb_idx < 0) or np.any(tpb_idx >= len(TPB_CHOICES)):
            raise InvalidParameterError("threads-per-block index out of range")
        if np.any(ept_idx < 0) or np.any(ept_idx >= len(EPT_CHOICES)):
            raise InvalidParameterError("elements-per-thread index out of range")
        k = np.arange(self.n_kernels)
        per_kernel = self._tables[k, tpb_idx, ept_idx]
        total = per_kernel.sum(axis=-1)
        return float(total) if np.ndim(total) == 0 else total

    def default_train_time(self) -> float:
        """Training time under ThunderGBM's stock configuration."""
        return float(self.train_time_indices(*self.default_indices()))

    def best_table_time(self) -> float:
        """Lower bound: every kernel at its individually optimal config."""
        return float(self._tables.min(axis=(1, 2)).sum())

    def describe_config(
        self, tpb_idx: np.ndarray, ept_idx: np.ndarray
    ) -> list[tuple[str, int, int]]:
        """Human-readable (kernel, tpb, ept) triples for a configuration."""
        return [
            (
                KERNEL_CATALOG[k].name,
                TPB_CHOICES[int(tpb_idx[k])],
                EPT_CHOICES[int(ept_idx[k])],
            )
            for k in range(self.n_kernels)
        ]
