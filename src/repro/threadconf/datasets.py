"""Dataset descriptors for the ThunderGBM case study (paper Table 5).

The paper trains ThunderGBM on four UCI datasets.  The actual feature
matrices are irrelevant to the thread-configuration problem — what shapes
the kernel workloads (and therefore the tuning opportunity) is the *geometry*
of each dataset: sample count, feature count and density.  These descriptors
carry exactly the statistics the paper's Table 5 lists (cardinality and
dimension), plus a density estimate for the sparse text dataset.

=========  ==========  =========  ==============================
dataset    # samples   # features notes
=========  ==========  =========  ==============================
covtype    581 012     54         dense, multiclass forest cover
susy       5 000 000   18         dense, physics Monte-Carlo
higgs      11 000 000  28         dense, physics Monte-Carlo
e2006      16 087      150 361    sparse TF-IDF text regression
=========  ==========  =========  ==============================
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import InvalidProblemError

__all__ = ["DatasetSpec", "DATASETS", "get_dataset"]


@dataclass(frozen=True)
class DatasetSpec:
    """Shape statistics of one training dataset."""

    name: str
    n_samples: int
    n_features: int
    density: float = 1.0  # fraction of non-zero entries

    def __post_init__(self) -> None:
        if self.n_samples <= 0 or self.n_features <= 0:
            raise InvalidProblemError(
                f"{self.name}: sample and feature counts must be positive"
            )
        if not 0.0 < self.density <= 1.0:
            raise InvalidProblemError(
                f"{self.name}: density must be in (0, 1], got {self.density}"
            )

    @property
    def nnz(self) -> int:
        """Estimated non-zero entries (drives histogram-build workloads)."""
        return int(self.n_samples * self.n_features * self.density)


DATASETS: dict[str, DatasetSpec] = {
    "covtype": DatasetSpec("covtype", 581_012, 54),
    "susy": DatasetSpec("susy", 5_000_000, 18),
    "higgs": DatasetSpec("higgs", 11_000_000, 28),
    # e2006-tfidf: ~0.8% of the 150k vocabulary appears per document.
    "e2006": DatasetSpec("e2006", 16_087, 150_361, density=0.008),
}


def get_dataset(name: str) -> DatasetSpec:
    """Look up a dataset descriptor by (case-insensitive) name."""
    try:
        return DATASETS[name.lower()]
    except KeyError:
        raise InvalidProblemError(
            f"unknown dataset {name!r}; available: {sorted(DATASETS)}"
        ) from None
