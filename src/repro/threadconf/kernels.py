"""Simulated ThunderGBM kernel catalog (25 GPU kernels).

ThunderGBM (Wen et al. 2020) trains gradient-boosted trees with a pipeline
of CUDA kernels.  The paper's case study tunes the thread/block
configuration of its 25 kernels with FastPSO (a 50-dimensional problem: two
knobs per kernel).  This module models that catalog: each
:class:`TgbmKernel` declares

* a *workload expression* — how many elements it processes as a function of
  the dataset geometry and the current tree level (``samples``, ``nnz``,
  ``features x bins``, ``nodes``, ...);
* a *resource footprint* — register count, shared memory per block
  (possibly per-thread-scaled), byte/FLOP mix, and whether its inner loop
  chains dependent loads;
* a *frequency* — per level, per tree, or once per training run.

Latency for a given ``(threads_per_block, elems_per_thread)`` choice comes
from the same roofline/occupancy/wave model as every other kernel in the
simulator (:func:`repro.gpusim.costmodel.kernel_cost`), so the tuning
surface PSO searches is produced by real GPU mechanics: wave quantization,
occupancy limits from registers/shared memory, latency-bound serial loops
on small workloads, and illegal configurations (which cost ``inf``).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable

from repro.errors import InvalidLaunchError
from repro.gpusim.costmodel import GpuCostParams, kernel_cost
from repro.gpusim.device import DeviceSpec
from repro.gpusim.kernel import KernelSpec, LaunchConfig
from repro.threadconf.datasets import DatasetSpec

__all__ = [
    "TgbmKernel",
    "KERNEL_CATALOG",
    "TPB_CHOICES",
    "EPT_CHOICES",
    "DEFAULT_TPB",
    "DEFAULT_EPT",
    "kernel_latency",
]

#: Histogram bins per feature (ThunderGBM's default sketch resolution).
HIST_BINS = 64

#: The discrete knob values PSO searches over.
TPB_CHOICES = (32, 64, 128, 256, 512, 1024)
EPT_CHOICES = (1, 2, 4, 8)

#: ThunderGBM's one-size-fits-all launch default the case study tunes away
#: from: large blocks, several elements per thread.
DEFAULT_TPB = 512
DEFAULT_EPT = 4


#: Maximum histogram slots that fit one block's shared memory (48 KiB of
#: 8-byte gradient/hessian pairs).
MAX_SMEM_HIST_SLOTS = 6144
#: Strength of shared-memory atomic collisions in histogram kernels.
ATOMIC_CONTENTION_COEFF = 2.0
#: Extra cost per additional element-per-thread for bin-strided kernels.
STRIDE_PENALTY_COEFF = 0.11


@dataclass(frozen=True)
class TgbmKernel:
    """One simulated ThunderGBM kernel."""

    name: str
    #: (dataset, nodes_at_level) -> element count for one invocation.
    workload: Callable[[DatasetSpec, int], int]
    #: "level" (per tree per level), "tree" (per tree) or "once".
    frequency: str
    flops_per_elem: float = 2.0
    bytes_read_per_elem: float = 8.0
    bytes_written_per_elem: float = 4.0
    sfu_per_elem: float = 0.0
    registers_per_thread: int = 32
    #: Shared memory bytes per *thread* (block footprint scales with tpb).
    smem_per_thread: int = 0
    dependent_loads_per_elem: float = 0.0
    coalesced: bool = True
    #: Histogram-style kernel: threads of a block update a shared-memory
    #: histogram with atomics.  Collision probability grows with the ratio
    #: of block threads to histogram slots, so datasets with few features
    #: (susy: 18 x 64 slots) suffer at large block sizes — the Table 5
    #: tuning opportunity.
    atomic_histogram: bool = False
    #: Bin-strided kernel: consecutive threads only coalesce at one element
    #: per thread; larger ept strides across the bin-major layout.
    bin_strided: bool = False

    def contention_factor(self, dataset: DatasetSpec, tpb: int) -> float:
        """Shared-memory atomic slowdown for this block size on *dataset*."""
        if not self.atomic_histogram:
            return 1.0
        slots = min(dataset.n_features * HIST_BINS, MAX_SMEM_HIST_SLOTS)
        return 1.0 + ATOMIC_CONTENTION_COEFF * (tpb / slots) ** 2

    def stride_factor(self, elems_per_thread: int) -> float:
        """Access-pattern slowdown for strided multi-element threads."""
        if not self.bin_strided:
            return 1.0
        return 1.0 + STRIDE_PENALTY_COEFF * (elems_per_thread - 1)

    def spec(self, threads_per_block: int) -> KernelSpec:
        """Resource spec for a given block size."""
        return KernelSpec(
            name=self.name,
            flops_per_elem=self.flops_per_elem,
            bytes_read_per_elem=self.bytes_read_per_elem,
            bytes_written_per_elem=self.bytes_written_per_elem,
            sfu_per_elem=self.sfu_per_elem,
            dependent_loads_per_elem=self.dependent_loads_per_elem,
            registers_per_thread=self.registers_per_thread,
            shared_mem_per_block=self.smem_per_thread * threads_per_block,
            coalesced=self.coalesced,
        )


def kernel_latency(
    kernel: TgbmKernel,
    n_elems: int,
    threads_per_block: int,
    elems_per_thread: int,
    device: DeviceSpec,
    cost_params: GpuCostParams | None = None,
    dataset: DatasetSpec | None = None,
) -> float:
    """Latency of one invocation; ``inf`` for illegal configurations.

    The grid is sized so each thread handles ``elems_per_thread`` elements
    (the second tuning knob): fewer, fatter threads trade occupancy and wave
    alignment against per-thread serial latency, atomic contention and
    stride penalties.
    """
    if n_elems <= 0:
        return 0.0
    threads_needed = -(-n_elems // elems_per_thread)
    blocks = max(1, -(-threads_needed // threads_per_block))
    try:
        cost = kernel_cost(
            device,
            kernel.spec(threads_per_block),
            LaunchConfig(grid_blocks=blocks, threads_per_block=threads_per_block),
            n_elems,
            cost_params or GpuCostParams(),
        )
    except InvalidLaunchError:
        return float("inf")
    body = cost.seconds - cost.t_launch_overhead
    factor = kernel.stride_factor(elems_per_thread)
    if dataset is not None:
        factor *= kernel.contention_factor(dataset, threads_per_block)
    return cost.t_launch_overhead + body * factor


def _w(expr: Callable[[DatasetSpec, int], int]) -> Callable[[DatasetSpec, int], int]:
    return expr


#: The 25-kernel training pipeline, roughly in execution order.
KERNEL_CATALOG: tuple[TgbmKernel, ...] = (
    # -- one-off preprocessing ---------------------------------------------
    TgbmKernel(
        "quantile_sketch", _w(lambda ds, nodes: ds.nnz), "once",
        flops_per_elem=6.0, bytes_read_per_elem=8.0, bytes_written_per_elem=4.0,
        registers_per_thread=48, smem_per_thread=16,
    ),
    TgbmKernel(
        "bin_assign", _w(lambda ds, nodes: ds.nnz), "once",
        flops_per_elem=4.0, bytes_read_per_elem=12.0, bytes_written_per_elem=2.0,
        dependent_loads_per_elem=1.0,
    ),
    TgbmKernel(
        "csr_transpose", _w(lambda ds, nodes: ds.nnz), "once",
        bytes_read_per_elem=12.0, bytes_written_per_elem=12.0,
        coalesced=False, registers_per_thread=40,
    ),
    TgbmKernel(
        "feature_group", _w(lambda ds, nodes: ds.n_features), "once",
        bytes_read_per_elem=8.0, bytes_written_per_elem=8.0,
    ),
    # -- per-tree setup -------------------------------------------------------
    TgbmKernel(
        "gradient_compute", _w(lambda ds, nodes: ds.n_samples), "tree",
        flops_per_elem=8.0, bytes_read_per_elem=16.0, bytes_written_per_elem=8.0,
        sfu_per_elem=1.0,
    ),
    TgbmKernel(
        "hessian_compute", _w(lambda ds, nodes: ds.n_samples), "tree",
        flops_per_elem=6.0, bytes_read_per_elem=16.0, bytes_written_per_elem=8.0,
    ),
    TgbmKernel(
        "column_sample", _w(lambda ds, nodes: ds.n_features), "tree",
        bytes_read_per_elem=4.0, bytes_written_per_elem=4.0,
    ),
    TgbmKernel(
        "node_reset", _w(lambda ds, nodes: ds.n_samples), "tree",
        flops_per_elem=1.0, bytes_read_per_elem=0.0, bytes_written_per_elem=4.0,
    ),
    # -- per-level loop (the hot path) -----------------------------------------
    TgbmKernel(
        "hist_build", _w(lambda ds, nodes: ds.nnz), "level",
        flops_per_elem=4.0, bytes_read_per_elem=10.0, bytes_written_per_elem=4.0,
        registers_per_thread=64, smem_per_thread=32,
        dependent_loads_per_elem=1.0, atomic_histogram=True,
    ),
    TgbmKernel(
        "hist_subtract", _w(lambda ds, nodes: ds.n_features * HIST_BINS * nodes),
        "level",
        flops_per_elem=2.0, bytes_read_per_elem=16.0, bytes_written_per_elem=8.0,
        bin_strided=True,
    ),
    TgbmKernel(
        "gain_compute", _w(lambda ds, nodes: ds.n_features * HIST_BINS * nodes),
        "level",
        flops_per_elem=12.0, bytes_read_per_elem=16.0, bytes_written_per_elem=4.0,
        sfu_per_elem=1.0, registers_per_thread=56, bin_strided=True,
    ),
    TgbmKernel(
        "find_split", _w(lambda ds, nodes: ds.n_features * HIST_BINS * nodes),
        "level",
        flops_per_elem=2.0, bytes_read_per_elem=8.0,
        bytes_written_per_elem=0.1, smem_per_thread=12,
        registers_per_thread=40, bin_strided=True,
    ),
    TgbmKernel(
        "split_broadcast", _w(lambda ds, nodes: nodes), "level",
        bytes_read_per_elem=16.0, bytes_written_per_elem=16.0,
        dependent_loads_per_elem=2.0,
    ),
    TgbmKernel(
        "partition_count", _w(lambda ds, nodes: ds.n_samples), "level",
        flops_per_elem=3.0, bytes_read_per_elem=9.0, bytes_written_per_elem=1.0,
        dependent_loads_per_elem=1.0,
    ),
    TgbmKernel(
        "prefix_sum", _w(lambda ds, nodes: ds.n_samples), "level",
        flops_per_elem=2.0, bytes_read_per_elem=4.0, bytes_written_per_elem=4.0,
        smem_per_thread=8, dependent_loads_per_elem=1.0,
    ),
    TgbmKernel(
        "partition_scatter", _w(lambda ds, nodes: ds.n_samples), "level",
        bytes_read_per_elem=12.0, bytes_written_per_elem=8.0,
        coalesced=False,
    ),
    TgbmKernel(
        "missing_route", _w(lambda ds, nodes: ds.n_samples), "level",
        flops_per_elem=2.0, bytes_read_per_elem=8.0, bytes_written_per_elem=2.0,
    ),
    TgbmKernel(
        "node_stats", _w(lambda ds, nodes: ds.n_samples), "level",
        flops_per_elem=4.0, bytes_read_per_elem=12.0, bytes_written_per_elem=0.5,
        smem_per_thread=16,
    ),
    TgbmKernel(
        "valid_mask", _w(lambda ds, nodes: ds.n_samples), "level",
        flops_per_elem=1.0, bytes_read_per_elem=5.0, bytes_written_per_elem=1.0,
    ),
    # -- per-tree finalisation ----------------------------------------------
    TgbmKernel(
        "leaf_value", _w(lambda ds, nodes: nodes), "tree",
        flops_per_elem=6.0, bytes_read_per_elem=24.0, bytes_written_per_elem=8.0,
        dependent_loads_per_elem=2.0,
    ),
    TgbmKernel(
        "update_predictions", _w(lambda ds, nodes: ds.n_samples), "tree",
        flops_per_elem=3.0, bytes_read_per_elem=12.0, bytes_written_per_elem=4.0,
        dependent_loads_per_elem=1.0,
    ),
    TgbmKernel(
        "tree_compact", _w(lambda ds, nodes: nodes), "tree",
        bytes_read_per_elem=32.0, bytes_written_per_elem=32.0,
    ),
    TgbmKernel(
        "objective_reduce", _w(lambda ds, nodes: ds.n_samples), "tree",
        flops_per_elem=2.0, bytes_read_per_elem=8.0, bytes_written_per_elem=0.1,
        smem_per_thread=8,
    ),
    TgbmKernel(
        "metric_compute", _w(lambda ds, nodes: ds.n_samples), "tree",
        flops_per_elem=4.0, bytes_read_per_elem=12.0, bytes_written_per_elem=0.1,
        sfu_per_elem=1.0, smem_per_thread=8,
    ),
    TgbmKernel(
        "pred_transform", _w(lambda ds, nodes: ds.n_samples), "tree",
        flops_per_elem=2.0, bytes_read_per_elem=4.0, bytes_written_per_elem=4.0,
        sfu_per_elem=1.0,
    ),
)

assert len(KERNEL_CATALOG) == 25, "the paper tunes exactly 25 kernels"
