"""Command-line entry point: regenerate any paper table or figure.

Usage::

    python -m repro.bench table1            # one experiment, quick scale
    python -m repro.bench all --scale paper # everything at paper scale
    fastpso-bench figure5                   # installed console script
"""

from __future__ import annotations

import argparse
import sys
import time

from repro.bench.config import get_scale
from repro.bench.experiments import EXPERIMENTS

__all__ = ["main"]


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="fastpso-bench",
        description="Regenerate the FastPSO paper's tables and figures "
        "on the simulated substrate.",
    )
    parser.add_argument(
        "experiment",
        choices=[*EXPERIMENTS, "suite", "all"],
        help="which table/figure to regenerate ('suite' runs the full "
        "engine x function grid)",
    )
    parser.add_argument(
        "--csv",
        metavar="PATH",
        help="for 'suite': also write the grid to CSV",
    )
    parser.add_argument(
        "--scale",
        choices=("quick", "paper"),
        default="quick",
        help="workload scale (default: quick; 'paper' runs the full-size "
        "error workloads and more repeats)",
    )
    parser.add_argument(
        "--device",
        metavar="NAME",
        help="run the experiment on a repro.devices catalog entry (e.g. "
        "'a100'): every context built without an explicit spec uses it",
    )
    args = parser.parse_args(argv)
    scale = get_scale(args.scale)

    if args.device is not None:
        from repro.devices import use_device
        from repro.errors import ReproError

        try:
            with use_device(args.device):
                return _run(args, scale)
        except ReproError as exc:
            print(f"error: {exc}", file=sys.stderr)
            return 2
    return _run(args, scale)


def _run(args: argparse.Namespace, scale) -> int:
    if args.experiment == "suite":
        from repro.bench.suite import run_suite

        start = time.perf_counter()
        grid = run_suite(
            n_particles=scale.error_particles,
            max_iter=min(scale.error_iters, 200),
            dim=min(scale.error_dim, 30),
        )
        print(grid.to_text("error"))
        print()
        print(grid.to_text("elapsed_seconds"))
        if args.csv:
            print(f"grid written to {grid.write_csv(args.csv)}")
        print(f"[suite ran in {time.perf_counter() - start:.1f}s wall]")
        return 0

    names = list(EXPERIMENTS) if args.experiment == "all" else [args.experiment]
    for name in names:
        start = time.perf_counter()
        result = EXPERIMENTS[name].run(scale)
        elapsed = time.perf_counter() - start
        print(result.to_text())
        print(f"[{name} regenerated in {elapsed:.1f}s wall]\n")
    return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
