"""Grid suite runner: every engine x every function, exported to CSV.

A downstream-user tool rather than a paper artefact: sweeps the full
benchmark-function registry across any set of engines, collecting both
quality (error) and simulated-time columns, and writes one tidy CSV row
per (engine, function) cell — the format notebooks and plotting stacks
expect.

Used by ``python -m repro.bench suite`` via the CLI and directly::

    from repro.bench.suite import run_suite
    grid = run_suite(engines=("fastpso", "fastpso-seq"), dim=30)
    grid.write_csv("grid.csv")
"""

from __future__ import annotations

from dataclasses import dataclass, field
from pathlib import Path

from repro.core.parameters import PAPER_DEFAULTS, PSOParams
from repro.core.problem import Problem
from repro.engines import ENGINE_NAMES, make_engine
from repro.errors import BenchmarkError
from repro.functions import available_functions
from repro.io import write_rows_csv
from repro.utils.tables import format_table

__all__ = ["SuiteCell", "SuiteGrid", "run_suite"]

_HEADERS = [
    "engine",
    "function",
    "dim",
    "n_particles",
    "iterations",
    "best_value",
    "error",
    "elapsed_seconds",
    "iteration_seconds",
]

#: Functions that require at least two dimensions.
_MIN_DIM_2 = {"rosenbrock", "dixon_price"}


@dataclass(frozen=True)
class SuiteCell:
    """One (engine, function) result of the grid."""

    engine: str
    function: str
    dim: int
    n_particles: int
    iterations: int
    best_value: float
    error: float
    elapsed_seconds: float
    iteration_seconds: float

    def row(self) -> list[object]:
        return [getattr(self, h) for h in _HEADERS]


@dataclass
class SuiteGrid:
    """All cells of a suite run plus export/rendering helpers."""

    cells: list[SuiteCell] = field(default_factory=list)

    def cell(self, engine: str, function: str) -> SuiteCell:
        for c in self.cells:
            if c.engine == engine and c.function == function:
                return c
        raise KeyError((engine, function))

    @property
    def engines(self) -> list[str]:
        seen = dict.fromkeys(c.engine for c in self.cells)
        return list(seen)

    @property
    def functions(self) -> list[str]:
        seen = dict.fromkeys(c.function for c in self.cells)
        return list(seen)

    def write_csv(self, path: str | Path) -> Path:
        return write_rows_csv(path, _HEADERS, [c.row() for c in self.cells])

    def to_text(self, value: str = "error") -> str:
        """Pivot table: functions as rows, engines as columns."""
        if value not in ("error", "elapsed_seconds", "best_value"):
            raise BenchmarkError(f"cannot pivot on {value!r}")
        rows = [
            [fn, *(getattr(self.cell(e, fn), value) for e in self.engines)]
            for fn in self.functions
        ]
        return format_table(
            ["function", *self.engines],
            rows,
            title=f"Suite grid: {value}",
            float_fmt=".4g",
        )


def run_suite(
    engines: tuple[str, ...] = ENGINE_NAMES,
    functions: tuple[str, ...] | None = None,
    *,
    dim: int = 30,
    n_particles: int = 200,
    max_iter: int = 200,
    params: PSOParams = PAPER_DEFAULTS,
) -> SuiteGrid:
    """Run the engine x function grid and return the populated results."""
    if dim < 2:
        raise BenchmarkError("suite dim must be >= 2 (rosenbrock et al.)")
    functions = functions or tuple(available_functions())
    grid = SuiteGrid()
    for fn_name in functions:
        problem = Problem.from_benchmark(fn_name, dim)
        for engine_name in engines:
            engine = make_engine(engine_name)
            result = engine.optimize(
                problem,
                n_particles=n_particles,
                max_iter=max_iter,
                params=params,
            )
            grid.cells.append(
                SuiteCell(
                    engine=engine_name,
                    function=fn_name,
                    dim=dim,
                    n_particles=n_particles,
                    iterations=result.iterations,
                    best_value=result.best_value,
                    error=result.error,
                    elapsed_seconds=result.elapsed_seconds,
                    iteration_seconds=result.iteration_seconds,
                )
            )
    return grid
