"""Benchmark harness: one driver per paper table/figure (see DESIGN.md)."""

from repro.bench.config import (
    PAPER_SCALE,
    QUICK_SCALE,
    BenchScale,
    get_scale,
    scale_from_env,
)
from repro.bench.experiments import EXPERIMENTS
from repro.bench.runner import PAPER_PROBLEMS, TimedRun, build_problem, timed_run

__all__ = [
    "PAPER_SCALE",
    "QUICK_SCALE",
    "BenchScale",
    "get_scale",
    "scale_from_env",
    "EXPERIMENTS",
    "PAPER_PROBLEMS",
    "TimedRun",
    "build_problem",
    "timed_run",
]
