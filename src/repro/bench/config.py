"""Experiment parameter presets.

Two scales are provided for every experiment:

* ``paper`` — the paper's exact workload (n=5000, d=200, 2000 iterations,
  10 repeats).  Timing results at this scale are *exact* regardless of how
  many iterations are actually executed, because simulated per-iteration
  cost is shape-dependent (see ``OptimizeResult.projected_time``); only the
  *error* experiments genuinely need all iterations.
* ``quick`` — a scaled-down error workload and fewer sampled iterations, so
  the whole suite runs in minutes on a laptop.  EXPERIMENTS.md records which
  scale produced each number.

``scale_from_env`` reads ``REPRO_BENCH_SCALE`` so CI and the CLI share one
switch.
"""

from __future__ import annotations

import os
from dataclasses import dataclass

from repro.errors import BenchmarkError

__all__ = ["BenchScale", "PAPER_SCALE", "QUICK_SCALE", "scale_from_env", "get_scale"]


@dataclass(frozen=True)
class BenchScale:
    """Workload sizes shared by the experiment drivers."""

    name: str
    # Timing experiments (Tables 1/3/4, Figures 4/5/6): paper-sized shapes,
    # with `sample_iters` real iterations and exact projection to
    # `timing_iters`.
    timing_particles: int = 5000
    timing_dim: int = 200
    timing_iters: int = 2000
    sample_iters: int = 5
    # Error experiments (Table 2): these run every iteration for real.
    error_particles: int = 5000
    error_dim: int = 200
    error_iters: int = 2000
    # Figure 4 sweeps.
    particle_sweep: tuple[int, ...] = (2000, 3000, 4000, 5000)
    dim_sweep: tuple[int, ...] = (50, 100, 150, 200)
    sweep_fixed_dim: int = 50
    sweep_fixed_particles: int = 2000
    # ThreadConf case study (Table 5).
    tune_particles: int = 256
    tune_iters: int = 60
    repeats: int = 1

    def __post_init__(self) -> None:
        for field_name in (
            "timing_particles",
            "timing_dim",
            "timing_iters",
            "sample_iters",
            "error_particles",
            "error_dim",
            "error_iters",
            "tune_particles",
            "tune_iters",
            "repeats",
        ):
            if getattr(self, field_name) < 1:
                raise BenchmarkError(f"{field_name} must be >= 1")


PAPER_SCALE = BenchScale(
    name="paper",
    error_particles=5000,
    error_dim=200,
    error_iters=2000,
    sample_iters=10,
    repeats=3,
)

QUICK_SCALE = BenchScale(
    name="quick",
    error_particles=1000,
    error_dim=100,
    error_iters=400,
    sample_iters=4,
    tune_particles=128,
    tune_iters=40,
)

_SCALES = {"paper": PAPER_SCALE, "quick": QUICK_SCALE}


def get_scale(name: str) -> BenchScale:
    try:
        return _SCALES[name.lower()]
    except KeyError:
        raise BenchmarkError(
            f"unknown scale {name!r}; choose from {sorted(_SCALES)}"
        ) from None


def scale_from_env(default: str = "quick") -> BenchScale:
    """Scale selected by the ``REPRO_BENCH_SCALE`` environment variable."""
    return get_scale(os.environ.get("REPRO_BENCH_SCALE", default))
