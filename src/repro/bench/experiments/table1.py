"""Table 1 — overall comparison of FastPSO against other implementations.

Paper setting: n=5000 particles, d=200 dimensions (ThreadConf uses the case
study's d=50), 2000 iterations, w=0.9, c1=c2=2.  Reports elapsed seconds per
implementation and each implementation's slowdown relative to fastpso (the
paper's "speedup" columns).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.bench.config import BenchScale, scale_from_env
from repro.bench.runner import PAPER_PROBLEMS, THREADCONF_DIM, build_problem, timed_run
from repro.engines import ENGINE_NAMES
from repro.utils.stats import speedup
from repro.utils.tables import format_table

__all__ = ["Table1Row", "Table1Result", "run", "main"]


@dataclass(frozen=True)
class Table1Row:
    problem: str
    seconds: dict[str, float]  # engine -> projected elapsed seconds

    def speedup_over(self, engine: str) -> float:
        """Paper's speedup column: engine time over fastpso time."""
        return speedup(self.seconds[engine], self.seconds["fastpso"])


@dataclass(frozen=True)
class Table1Result:
    rows: list[Table1Row]
    scale: str

    def to_text(self) -> str:
        headers = ["problem", *ENGINE_NAMES] + [
            f"spd:{e}" for e in ENGINE_NAMES if e != "fastpso"
        ]
        body = []
        for row in self.rows:
            cells: list[object] = [row.problem]
            cells += [row.seconds[e] for e in ENGINE_NAMES]
            cells += [
                row.speedup_over(e) for e in ENGINE_NAMES if e != "fastpso"
            ]
            body.append(cells)
        return format_table(
            headers,
            body,
            title=f"Table 1: elapsed time (sec) and speedup over fastpso "
            f"[scale={self.scale}]",
            float_fmt=".2f",
        )


def run(scale: BenchScale | None = None) -> Table1Result:
    scale = scale or scale_from_env()
    rows = []
    for pname in PAPER_PROBLEMS:
        dim = THREADCONF_DIM if pname == "threadconf" else scale.timing_dim
        problem = build_problem(pname, dim)
        seconds = {}
        for engine in ENGINE_NAMES:
            tr = timed_run(
                engine,
                problem,
                n_particles=scale.timing_particles,
                full_iters=scale.timing_iters,
                sample_iters=scale.sample_iters,
            )
            seconds[engine] = tr.projected_seconds
        rows.append(Table1Row(problem=pname, seconds=seconds))
    return Table1Result(rows=rows, scale=scale.name)


def main() -> None:  # pragma: no cover - CLI entry
    print(run().to_text())


if __name__ == "__main__":  # pragma: no cover
    main()
