"""Figure 4 — effect of the number of particles and dimensions.

Two sweeps per problem, each over all seven implementations:

* particles 2000 -> 5000 at d=50 (subfigures a, c, e, g);
* dimensions 50 -> 200 at n=2000 (subfigures b, d, f, h).

The paper's shape: the CPU implementations grow roughly linearly along both
axes while fastpso stays nearly flat (the element-wise mapping has device
capacity to spare at these sizes).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.bench.config import BenchScale, scale_from_env
from repro.bench.runner import PAPER_PROBLEMS, build_problem, timed_run
from repro.engines import ENGINE_NAMES
from repro.utils.ascii_plot import line_chart
from repro.utils.tables import format_table

__all__ = ["SweepSeries", "Figure4Result", "run", "main"]


@dataclass(frozen=True)
class SweepSeries:
    """One subfigure: seconds[engine][sweep-value] for one problem."""

    problem: str
    axis: str  # "particles" or "dimensions"
    points: tuple[int, ...]
    seconds: dict[str, dict[int, float]]

    def to_text(self) -> str:
        body = [
            [engine, *(self.seconds[engine][p] for p in self.points)]
            for engine in ENGINE_NAMES
        ]
        table = format_table(
            [f"{self.problem} / #{self.axis}", *map(str, self.points)],
            body,
            float_fmt=".2f",
        )
        chart = line_chart(
            {
                engine: [self.seconds[engine][p] for p in self.points]
                for engine in ENGINE_NAMES
            },
            x_labels=self.points,
            log_y=True,
        )
        return f"{table}\n{chart}"

    def flatness(self, engine: str) -> float:
        """max/min time ratio across the sweep (1.0 = perfectly flat)."""
        vals = [self.seconds[engine][p] for p in self.points]
        return max(vals) / min(vals)


@dataclass(frozen=True)
class Figure4Result:
    series: list[SweepSeries]
    scale: str

    def to_text(self) -> str:
        parts = [f"Figure 4: particle/dimension sweeps [scale={self.scale}]"]
        parts += [s.to_text() for s in self.series]
        return "\n\n".join(parts)

    def get(self, problem: str, axis: str) -> SweepSeries:
        for s in self.series:
            if s.problem == problem and s.axis == axis:
                return s
        raise KeyError((problem, axis))


def _sweep(
    problem_name: str,
    axis: str,
    points: tuple[int, ...],
    scale: BenchScale,
) -> SweepSeries:
    seconds: dict[str, dict[int, float]] = {e: {} for e in ENGINE_NAMES}
    for value in points:
        if axis == "particles":
            n, dim = value, scale.sweep_fixed_dim
        else:
            n, dim = scale.sweep_fixed_particles, value
        problem = build_problem(problem_name, dim)
        for engine in ENGINE_NAMES:
            tr = timed_run(
                engine,
                problem,
                n_particles=n,
                full_iters=scale.timing_iters,
                sample_iters=scale.sample_iters,
            )
            seconds[engine][value] = tr.projected_seconds
    return SweepSeries(
        problem=problem_name, axis=axis, points=points, seconds=seconds
    )


def run(scale: BenchScale | None = None) -> Figure4Result:
    scale = scale or scale_from_env()
    series = []
    for pname in PAPER_PROBLEMS:
        series.append(_sweep(pname, "particles", scale.particle_sweep, scale))
        series.append(_sweep(pname, "dimensions", scale.dim_sweep, scale))
    return Figure4Result(series=series, scale=scale.name)


def main() -> None:  # pragma: no cover - CLI entry
    print(run().to_text())


if __name__ == "__main__":  # pragma: no cover
    main()
