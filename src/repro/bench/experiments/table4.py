"""Table 4 — efficiency of FastPSO with memory caching.

Identical runs with the caching allocator (pool hits for the per-iteration
weight matrices) versus the direct allocator (a cudaMalloc/cudaFree pair
per matrix per iteration).  The paper measures caching 3.7-5.1 % faster.

Note the paper's own table appears to have its two value columns swapped
relative to its "speedup" column and the surrounding prose; we follow the
prose (caching is the faster configuration) and record the discrepancy in
EXPERIMENTS.md.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.bench.config import BenchScale, scale_from_env
from repro.bench.runner import build_problem, timed_run
from repro.engines import FastPSOEngine
from repro.utils.tables import format_table

__all__ = ["Table4Result", "run", "main"]

PROBLEMS = ("sphere", "griewank", "easom")


@dataclass(frozen=True)
class Table4Result:
    caching_seconds: dict[str, float]
    realloc_seconds: dict[str, float]
    scale: str

    def speedup_percent(self, problem: str) -> float:
        return 100.0 * (
            self.realloc_seconds[problem] / self.caching_seconds[problem] - 1.0
        )

    def to_text(self) -> str:
        body = [
            [
                p,
                self.caching_seconds[p],
                self.realloc_seconds[p],
                f"{self.speedup_percent(p):.2f}%",
            ]
            for p in PROBLEMS
        ]
        return format_table(
            ["problem", "w/ caching", "w/ reallocation", "speedup"],
            body,
            title=f"Table 4: efficiency of FastPSO with memory caching "
            f"[scale={self.scale}]",
            float_fmt=".3f",
        )


def run(scale: BenchScale | None = None) -> Table4Result:
    scale = scale or scale_from_env()
    caching, realloc = {}, {}
    for pname in PROBLEMS:
        problem = build_problem(pname, scale.timing_dim)
        for flag, out in ((True, caching), (False, realloc)):
            tr = timed_run(
                FastPSOEngine(caching=flag),
                problem,
                n_particles=scale.timing_particles,
                full_iters=scale.timing_iters,
                sample_iters=scale.sample_iters,
            )
            out[pname] = tr.projected_seconds
    return Table4Result(
        caching_seconds=caching, realloc_seconds=realloc, scale=scale.name
    )


def main() -> None:  # pragma: no cover - CLI entry
    print(run().to_text())


if __name__ == "__main__":  # pragma: no cover
    main()
