"""Table 2 — errors to the optimal values.

These runs execute every iteration for real (errors are data-dependent), so
the ``quick`` scale uses a reduced workload; the separation the paper shows
— CPU libraries orders of magnitude from the optimum, the clamped
fastpso/GPU family close to it — is scale-independent.  Easom errors are
measured against the paper's plateau reference (see
:mod:`repro.functions.easom` for the documented convention).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.bench.config import BenchScale, scale_from_env
from repro.bench.runner import build_problem
from repro.engines import ENGINE_NAMES, make_engine
from repro.utils.tables import format_table

__all__ = ["Table2Result", "run", "main"]

#: Table 2 covers the three closed-form problems only.
PROBLEMS = ("sphere", "griewank", "easom")


@dataclass(frozen=True)
class Table2Result:
    errors: dict[str, dict[str, float]]  # engine -> problem -> error
    best_values: dict[str, dict[str, float]]
    scale: str
    workload: tuple[int, int, int]  # (particles, dim, iters)

    def to_text(self) -> str:
        n, d, iters = self.workload
        body = [
            [engine, *(self.errors[engine][p] for p in PROBLEMS)]
            for engine in ENGINE_NAMES
        ]
        return format_table(
            ["implementation", *PROBLEMS],
            body,
            title=(
                f"Table 2: errors to the optimal values "
                f"[scale={self.scale}: n={n} d={d} iters={iters}]"
            ),
            float_fmt=".4g",
        )


def run(scale: BenchScale | None = None) -> Table2Result:
    scale = scale or scale_from_env()
    errors: dict[str, dict[str, float]] = {}
    best: dict[str, dict[str, float]] = {}
    for engine_name in ENGINE_NAMES:
        errors[engine_name] = {}
        best[engine_name] = {}
        for pname in PROBLEMS:
            problem = build_problem(pname, scale.error_dim)
            engine = make_engine(engine_name)
            result = engine.optimize(
                problem,
                n_particles=scale.error_particles,
                max_iter=scale.error_iters,
            )
            errors[engine_name][pname] = result.error
            best[engine_name][pname] = result.best_value
    return Table2Result(
        errors=errors,
        best_values=best,
        scale=scale.name,
        workload=(scale.error_particles, scale.error_dim, scale.error_iters),
    )


def main() -> None:  # pragma: no cover - CLI entry
    print(run().to_text())


if __name__ == "__main__":  # pragma: no cover
    main()
