"""Device what-if sweep — the same workload priced across the catalog.

Runs the paper's timing workload (Sphere, paper shapes) on every entry of
the :mod:`repro.devices` catalog and reports, per device: the projected
simulated wall time, the speedup over the catalog V100, the update
kernel's modelled L1/L2 hit fractions, and the run's best value.  Two
properties are on display:

* **Trajectories are device-independent.**  The cost model only prices
  launches; kernel semantics never see the spec, so every device row
  reports the bit-identical best value (asserted here, and by the golden
  suite in ``tests/devices``).
* **Predicted times are not.**  The memory-hierarchy model (cost model
  v2) makes the margin concrete: the paper workload's velocity-update
  working set (~12 MB at d=200, n=5000 fp32) fits entirely in an A100's
  40 MiB L2 but only partially in a V100's 6 MiB, so the A100 row is
  faster by more than its DRAM-bandwidth ratio alone would predict.

``benchmarks/bench_devices.py`` serialises this sweep (plus the
calibration residual report) to ``BENCH_devices.json``, and the CI
device-sweep smoke job asserts the output is byte-identical across runs.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.bench.config import BenchScale, scale_from_env
from repro.bench.runner import build_problem, timed_run
from repro.engines import make_engine
from repro.utils.tables import format_table

__all__ = ["DeviceRow", "DevicesResult", "run", "main"]

#: Catalog entries in sweep order (every machine file ships in the sweep).
DEVICES = ("v100", "a100", "h100", "laptop", "cpu-xeon")

#: The engine being priced across devices.
ENGINE = "fastpso"


@dataclass(frozen=True)
class DeviceRow:
    """One catalog device's predicted numbers for the fixed workload."""

    device: str
    elapsed_seconds: float
    speedup_vs_v100: float
    update_microseconds: float
    l1_hit: float
    l2_hit: float
    best_value: float

    def to_dict(self) -> dict:
        return {
            "device": self.device,
            "elapsed_seconds": self.elapsed_seconds,
            "speedup_vs_v100": self.speedup_vs_v100,
            "update_microseconds": self.update_microseconds,
            "l1_hit": self.l1_hit,
            "l2_hit": self.l2_hit,
            "best_value": self.best_value,
        }


@dataclass(frozen=True)
class DevicesResult:
    rows: tuple[DeviceRow, ...]
    #: Catalog V100 time over catalog A100 time — the documented
    #: hierarchy-model margin (> DRAM ratio because of the L2 fit).
    v100_over_a100: float
    #: Every device produced the same best value (trajectory invariance).
    trajectories_identical: bool
    scale: str

    def to_text(self) -> str:
        body = [
            [
                r.device,
                r.elapsed_seconds,
                r.speedup_vs_v100,
                r.update_microseconds,
                r.l1_hit,
                r.l2_hit,
                r.best_value,
            ]
            for r in self.rows
        ]
        table = format_table(
            [
                "device",
                "elapsed (s)",
                "vs v100",
                "update (us)",
                "L1 hit",
                "L2 hit",
                "best",
            ],
            body,
            title=(
                f"Device sweep: {ENGINE} on sphere "
                f"[scale={self.scale}]"
            ),
            float_fmt=".4g",
        )
        footer = (
            f"v100/a100 margin={self.v100_over_a100:.2f}x "
            f"trajectories identical={self.trajectories_identical}"
        )
        return f"{table}\n{footer}"

    def to_dict(self) -> dict:
        return {
            "engine": ENGINE,
            "scale": self.scale,
            "v100_over_a100": self.v100_over_a100,
            "trajectories_identical": self.trajectories_identical,
            "rows": [r.to_dict() for r in self.rows],
        }


def _update_kernel_cost(engine, spec, n_elems: int) -> object:
    """Modelled cost of the engine's velocity-update launch on *spec*.

    The velocity update is the hierarchy model's showcase kernel (largest
    re-read working set); its :class:`~repro.gpusim.costmodel.KernelCost`
    carries the L1/L2 hit fractions the sweep reports.  Reads the kernel
    table the run just built, so backend variants price their own spec.
    """
    from repro.gpusim.costmodel import kernel_cost
    from repro.gpusim.launch import resource_aware_config

    kern = engine._kernels["velocity"]
    config = resource_aware_config(spec, n_elems, kernel_spec=kern.spec)
    return kernel_cost(spec, kern.spec, config, n_elems)


def run(scale: BenchScale | None = None) -> DevicesResult:
    scale = scale or scale_from_env()
    from repro.devices import resolve_device

    problem = build_problem("sphere", scale.timing_dim)
    rows: list[DeviceRow] = []
    for name in DEVICES:
        spec = resolve_device(name)
        engine = make_engine(ENGINE, device=spec)
        tr = timed_run(
            engine,
            problem,
            n_particles=scale.timing_particles,
            full_iters=scale.timing_iters,
            sample_iters=scale.sample_iters,
        )
        cost = _update_kernel_cost(
            engine, spec, scale.timing_particles * scale.timing_dim
        )
        rows.append(
            DeviceRow(
                device=name,
                elapsed_seconds=tr.projected_seconds,
                speedup_vs_v100=0.0,  # filled below
                update_microseconds=cost.seconds * 1e6,
                l1_hit=cost.l1_hit_fraction,
                l2_hit=cost.l2_hit_fraction,
                best_value=tr.result.best_value,
            )
        )
    baseline = rows[0].elapsed_seconds
    rows = [
        DeviceRow(
            device=r.device,
            elapsed_seconds=r.elapsed_seconds,
            speedup_vs_v100=(
                baseline / r.elapsed_seconds if r.elapsed_seconds > 0 else 0.0
            ),
            update_microseconds=r.update_microseconds,
            l1_hit=r.l1_hit,
            l2_hit=r.l2_hit,
            best_value=r.best_value,
        )
        for r in rows
    ]
    by_name = {r.device: r for r in rows}
    return DevicesResult(
        rows=tuple(rows),
        v100_over_a100=(
            by_name["v100"].elapsed_seconds / by_name["a100"].elapsed_seconds
        ),
        trajectories_identical=(
            len({r.best_value for r in rows}) == 1
        ),
        scale=scale.name,
    )


def main() -> None:  # pragma: no cover - CLI entry
    print(run().to_text())


if __name__ == "__main__":  # pragma: no cover
    main()
