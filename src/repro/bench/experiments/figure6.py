"""Figure 6 — comparison of different swarm-update techniques.

Isolates the *swarm update* step (the paper's identified bottleneck) and
compares five techniques per problem: the sequential CPU for-loop, OpenMP,
and the three GPU backends (global memory, shared memory, tensor cores).
The paper's shape: >10 s for the CPU for-loop, well under a second for every
GPU technique, with the three GPU variants nearly tied because the update is
bandwidth-bound.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.bench.config import BenchScale, scale_from_env
from repro.bench.runner import PAPER_PROBLEMS, THREADCONF_DIM, build_problem, timed_run
from repro.engines import FastPSOEngine, OpenMPEngine, SequentialEngine
from repro.utils.ascii_plot import bar_chart
from repro.utils.tables import format_table

__all__ = ["Figure6Result", "run", "main"]

TECHNIQUES = ("for-loop", "OpenMP", "global-mem", "shared-mem", "tensorcore")


def _engine_for(technique: str):
    if technique == "for-loop":
        return SequentialEngine()
    if technique == "OpenMP":
        return OpenMPEngine()
    backend = {
        "global-mem": "global",
        "shared-mem": "shared",
        "tensorcore": "tensorcore",
    }[technique]
    return FastPSOEngine(backend=backend)


@dataclass(frozen=True)
class Figure6Result:
    swarm_seconds: dict[str, dict[str, float]]  # problem -> technique -> sec
    scale: str

    def to_text(self) -> str:
        body = [
            [p, *(self.swarm_seconds[p][t] for t in TECHNIQUES)]
            for p in self.swarm_seconds
        ]
        table = format_table(
            ["problem", *TECHNIQUES],
            body,
            title=f"Figure 6: swarm-update techniques, time of the swarm "
            f"step (sec) [scale={self.scale}]",
            float_fmt=".4f",
        )
        first = next(iter(self.swarm_seconds))
        chart = bar_chart(
            self.swarm_seconds[first],
            log=True,
            title=f"\n{first} (log scale):",
        )
        return f"{table}\n{chart}"


def run(scale: BenchScale | None = None) -> Figure6Result:
    scale = scale or scale_from_env()
    out: dict[str, dict[str, float]] = {}
    for pname in PAPER_PROBLEMS:
        dim = THREADCONF_DIM if pname == "threadconf" else scale.timing_dim
        problem = build_problem(pname, dim)
        out[pname] = {}
        for technique in TECHNIQUES:
            tr = timed_run(
                _engine_for(technique),
                problem,
                n_particles=scale.timing_particles,
                full_iters=scale.timing_iters,
                sample_iters=scale.sample_iters,
            )
            out[pname][technique] = tr.projected_steps.swarm
    return Figure6Result(swarm_seconds=out, scale=scale.name)


def main() -> None:  # pragma: no cover - CLI entry
    print(run().to_text())


if __name__ == "__main__":  # pragma: no cover
    main()
