"""Table 5 — ThunderGBM execution time with and without FastPSO tuning.

The case study: FastPSO searches the 50-dimensional thread/block
configuration space of the 25 simulated ThunderGBM kernels (40 trees,
depth 6) for each dataset.  Reports the stock-configuration training time
(``tgbm``), the tuned time (``tgbm+pso``) and the speedup — the paper's
shape being covtype ~1.0 (defaults already good) and measurable gains on
susy/higgs/e2006.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.bench.config import BenchScale, scale_from_env
from repro.threadconf import DATASETS, TuneResult, tune
from repro.utils.tables import format_table

__all__ = ["Table5Result", "run", "main"]

DATASET_ORDER = ("covtype", "susy", "higgs", "e2006")


@dataclass(frozen=True)
class Table5Result:
    results: dict[str, TuneResult]
    scale: str

    def to_text(self) -> str:
        body = []
        for name in DATASET_ORDER:
            ds = DATASETS[name]
            res = self.results[name]
            body.append(
                [
                    name,
                    f"{ds.n_samples:,}",
                    f"{ds.n_features:,}",
                    res.default_seconds,
                    res.tuned_seconds,
                    res.speedup,
                ]
            )
        return format_table(
            ["data set", "# card", "# dim", "tgbm", "tgbm+pso", "speedup"],
            body,
            title=f"Table 5: ThunderGBM execution time w/ and w/o FastPSO "
            f"[scale={self.scale}]",
            float_fmt=".3f",
        )


def run(scale: BenchScale | None = None) -> Table5Result:
    scale = scale or scale_from_env()
    results = {
        name: tune(
            name,
            n_particles=scale.tune_particles,
            max_iter=scale.tune_iters,
        )
        for name in DATASET_ORDER
    }
    return Table5Result(results=results, scale=scale.name)


def main() -> None:  # pragma: no cover - CLI entry
    print(run().to_text())


if __name__ == "__main__":  # pragma: no cover
    main()
