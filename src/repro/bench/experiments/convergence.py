"""Convergence study (extension experiment, not a paper artefact).

The paper reports only *final* errors (Table 2); this driver records the
full gbest trajectory per engine and renders it, answering the follow-up a
practitioner always asks: not just *where* each implementation ends up but
*how fast* it gets there.  The clamped fastpso family descends throughout
the run (the adaptive bound keeps refining); the library baselines plateau
within the first ~10 % of iterations once their velocities diverge.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.bench.config import BenchScale, scale_from_env
from repro.bench.runner import build_problem
from repro.engines import make_engine
from repro.errors import BenchmarkError
from repro.utils.ascii_plot import line_chart
from repro.utils.tables import format_table

__all__ = ["ConvergenceResult", "run", "main"]

ENGINES = ("pyswarms", "scikit-opt", "fastpso")
CHECKPOINT_COUNT = 8


@dataclass(frozen=True)
class ConvergenceResult:
    problem: str
    iterations: int
    traces: dict[str, list[float]]  # engine -> gbest value per iteration
    scale: str

    def checkpoints(self, engine: str) -> list[float]:
        """The trace thinned to :data:`CHECKPOINT_COUNT` evenly spaced points."""
        trace = self.traces[engine]
        if len(trace) < CHECKPOINT_COUNT:
            raise BenchmarkError("trace shorter than the checkpoint count")
        step = (len(trace) - 1) / (CHECKPOINT_COUNT - 1)
        return [trace[round(i * step)] for i in range(CHECKPOINT_COUNT)]

    def plateau_fraction(self, engine: str, tolerance: float = 0.01) -> float:
        """Fraction of the run after which gbest improves < *tolerance* x."""
        trace = self.traces[engine]
        final = trace[-1]
        span = trace[0] - final
        if span <= 0:
            return 0.0
        for i, v in enumerate(trace):
            if (v - final) <= tolerance * span:
                return i / len(trace)
        return 1.0

    def to_text(self) -> str:
        step = (self.iterations - 1) / (CHECKPOINT_COUNT - 1)
        labels = [round(i * step) for i in range(CHECKPOINT_COUNT)]
        table = format_table(
            [f"{self.problem} / iteration", *map(str, labels)],
            [[e, *self.checkpoints(e)] for e in self.traces],
            title=f"Convergence: gbest value over the run "
            f"[scale={self.scale}]",
            float_fmt=".4g",
        )
        positive = {
            e: [max(v, 1e-12) for v in self.checkpoints(e)]
            for e in self.traces
        }
        chart = line_chart(positive, x_labels=labels, log_y=True)
        return f"{table}\n{chart}"


def run(scale: BenchScale | None = None, problem_name: str = "sphere") -> ConvergenceResult:
    scale = scale or scale_from_env()
    problem = build_problem(problem_name, scale.error_dim)
    traces: dict[str, list[float]] = {}
    for engine_name in ENGINES:
        result = make_engine(engine_name).optimize(
            problem,
            n_particles=scale.error_particles,
            max_iter=scale.error_iters,
            record_history=True,
        )
        assert result.history is not None
        traces[engine_name] = list(result.history.gbest_values)
    return ConvergenceResult(
        problem=problem_name,
        iterations=scale.error_iters,
        traces=traces,
        scale=scale.name,
    )


def main() -> None:  # pragma: no cover - CLI entry
    print(run().to_text())


if __name__ == "__main__":  # pragma: no cover
    main()
