"""One driver module per paper table/figure, plus design ablations."""

from repro.bench.experiments import (
    ablations,
    convergence,
    devices,
    figure4,
    figure5,
    figure6,
    table1,
    table2,
    table3,
    table4,
    table5,
)

#: CLI name -> experiment module (each exposes ``run(scale) -> result``
#: where the result has a ``to_text()`` method).
EXPERIMENTS = {
    "table1": table1,
    "table2": table2,
    "table3": table3,
    "table4": table4,
    "table5": table5,
    "figure4": figure4,
    "figure5": figure5,
    "figure6": figure6,
    "ablations": ablations,
    "convergence": convergence,
    "devices": devices,
}

__all__ = [
    "EXPERIMENTS",
    "table1",
    "table2",
    "table3",
    "table4",
    "table5",
    "figure4",
    "figure5",
    "figure6",
    "ablations",
    "convergence",
    "devices",
]
