"""Table 3 — FLOPs and memory bandwidth of the GPU implementations.

Reproduces the nvprof-style whole-run metrics: achieved DRAM read
throughput over active kernel time, plus arithmetic throughput and the
per-iteration FLOP count.  The paper's observation — all implementations
execute essentially the same arithmetic (its "FLOPs ... is similar" row)
while FastPSO's element-wise kernels sustain roughly twice the baselines'
DRAM read throughput — is checked via the per-iteration FLOP column and the
GB/s column respectively.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.bench.config import BenchScale, scale_from_env
from repro.bench.runner import build_problem, timed_run
from repro.engines import make_engine
from repro.utils.tables import format_table

__all__ = ["Table3Result", "run", "main"]

GPU_ENGINES = ("gpu-pso", "hgpu-pso", "fastpso")


@dataclass(frozen=True)
class Table3Result:
    read_gbs: dict[str, float]
    write_gbs: dict[str, float]
    gflops_rate: dict[str, float]
    gflop_per_iter: dict[str, float]
    scale: str

    def to_text(self) -> str:
        body = [
            [
                e,
                self.read_gbs[e],
                self.write_gbs[e],
                self.gflops_rate[e],
                self.gflop_per_iter[e],
            ]
            for e in GPU_ENGINES
        ]
        return format_table(
            [
                "metrics",
                "dram_read_throughput (GB/s)",
                "dram_write (GB/s)",
                "GFLOP/s",
                "GFLOP/iter",
            ],
            body,
            title=f"Table 3: FLOPs and memory bandwidth [scale={self.scale}]",
            float_fmt=".2f",
        )


def run(scale: BenchScale | None = None) -> Table3Result:
    scale = scale or scale_from_env()
    problem = build_problem("sphere", scale.timing_dim)
    read, write, rate, per_iter = {}, {}, {}, {}
    for name in GPU_ENGINES:
        # Full per-launch records keep the nvprof-style totals identical to
        # the pre-aggregation profiler (summation order down to the ulp).
        engine = make_engine(name, record_launches=True)
        tr = timed_run(
            engine,
            problem,
            n_particles=scale.timing_particles,
            full_iters=scale.timing_iters,
            sample_iters=scale.sample_iters,
        )
        report = engine.profile_report()
        read[name] = report.dram_read_throughput_gbs
        write[name] = report.dram_write_throughput_gbs
        rate[name] = report.gflops
        per_iter[name] = report.total_flops / tr.result.iterations / 1e9
    return Table3Result(
        read_gbs=read,
        write_gbs=write,
        gflops_rate=rate,
        gflop_per_iter=per_iter,
        scale=scale.name,
    )


def main() -> None:  # pragma: no cover - CLI entry
    print(run().to_text())


if __name__ == "__main__":  # pragma: no cover
    main()
