"""Figure 5 — elapsed time of each step in FastPSO.

Per-step breakdown (init / eval / pbest / gbest / swarm) for fastpso-seq,
fastpso-omp and fastpso at n=5000, d=200.  The paper's headline shape: the
CPU implementations spend >80 % of their time in the swarm update (~10 s
sequential), which fastpso's element-wise kernels reduce below 0.1 s.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.bench.config import BenchScale, scale_from_env
from repro.bench.runner import PAPER_PROBLEMS, THREADCONF_DIM, build_problem, timed_run
from repro.core.results import STEP_LABELS, StepTimes
from repro.utils.tables import format_table

__all__ = ["Figure5Result", "run", "main"]

ENGINES = ("fastpso-seq", "fastpso-omp", "fastpso")


@dataclass(frozen=True)
class Figure5Result:
    breakdowns: dict[str, dict[str, StepTimes]]  # problem -> engine -> steps
    scale: str

    def to_text(self) -> str:
        parts = [f"Figure 5: per-step breakdown (sec) [scale={self.scale}]"]
        for problem, engines in self.breakdowns.items():
            body = [
                [engine, *(getattr(engines[engine], s) for s in STEP_LABELS)]
                for engine in ENGINES
            ]
            parts.append(
                format_table([problem, *STEP_LABELS], body, float_fmt=".4f")
            )
        return "\n\n".join(parts)

    def swarm_fraction(self, problem: str, engine: str) -> float:
        steps = self.breakdowns[problem][engine]
        return steps.swarm / steps.total


def run(scale: BenchScale | None = None) -> Figure5Result:
    scale = scale or scale_from_env()
    breakdowns: dict[str, dict[str, StepTimes]] = {}
    for pname in PAPER_PROBLEMS:
        dim = THREADCONF_DIM if pname == "threadconf" else scale.timing_dim
        problem = build_problem(pname, dim)
        breakdowns[pname] = {}
        for engine in ENGINES:
            tr = timed_run(
                engine,
                problem,
                n_particles=scale.timing_particles,
                full_iters=scale.timing_iters,
                sample_iters=scale.sample_iters,
            )
            breakdowns[pname][engine] = tr.projected_steps
    return Figure5Result(breakdowns=breakdowns, scale=scale.name)


def main() -> None:  # pragma: no cover - CLI entry
    print(run().to_text())


if __name__ == "__main__":  # pragma: no cover
    main()
