"""Ablation studies for the design choices DESIGN.md calls out.

Not paper tables — these isolate the mechanisms behind them:

* ``mapping``       — element-wise vs thread-per-particle kernel mapping
  (the paper's core claim) as a pure kernel-cost comparison across swarm
  sizes.
* ``tile_size``     — shared-memory tile size sweep for the update kernel.
* ``adaptive``      — adaptive velocity bounds on/off: final error impact.
* ``topology``      — global vs ring information topology: error impact.
* ``multigpu``      — particle-splitting vs tile-matrix scaling, 1-8 GPUs.
* ``variants``      — engine-level update variants: split kernels vs the
  fused kernel vs half-precision storage (per-iteration time and quality).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.bench.config import BenchScale, scale_from_env
from repro.bench.runner import build_problem
from repro.core.parameters import PSOParams
from repro.engines import FastPSOEngine
from repro.gpusim.costmodel import kernel_cost
from repro.gpusim.device import tesla_v100
from repro.gpusim.kernel import KernelSpec
from repro.gpusim.launch import resource_aware_config, thread_per_item_config
from repro.gpusim.multigpu import (
    ExchangeCost,
    partition_particles,
    particle_split_time,
    tile_matrix_time,
)
from repro.gpusim.sharedmem import shared_mem_spec
from repro.utils.tables import format_table

__all__ = [
    "mapping_ablation",
    "tile_size_ablation",
    "adaptive_velocity_ablation",
    "topology_ablation",
    "multigpu_ablation",
    "update_variant_ablation",
    "run",
    "AblationReport",
]


def mapping_ablation(
    swarm_sizes=(500, 2000, 5000, 20000, 100000), dim: int = 200
) -> str:
    """Swarm-update kernel time: element-wise vs thread-per-particle."""
    spec = tesla_v100()
    update = KernelSpec(
        name="swarm_velocity_update",
        flops_per_elem=12.0,
        bytes_read_per_elem=20.0,
        bytes_written_per_elem=4.0,
    )
    per_particle = update.scaled(dependent_loads_per_elem=2.0)
    rows = []
    for n in swarm_sizes:
        n_elems = n * dim
        elem = kernel_cost(
            spec, update, resource_aware_config(spec, n_elems), n_elems
        ).seconds
        part = kernel_cost(
            spec,
            per_particle,
            thread_per_item_config(spec, n, threads_per_block=128),
            n_elems,
        ).seconds
        rows.append([f"n={n}", elem * 1e6, part * 1e6, part / elem])
    return format_table(
        ["swarm", "element-wise (us)", "per-particle (us)", "ratio"],
        rows,
        title=f"Ablation: kernel mapping, one update launch at d={dim}",
        float_fmt=".1f",
    )


def tile_size_ablation(tile_sizes=(8, 16, 32, 64), n: int = 5000, dim: int = 200) -> str:
    """Shared-memory tile size: occupancy/footprint trade-off."""
    spec = tesla_v100()
    base = KernelSpec(
        name="swarm_velocity_update",
        flops_per_elem=12.0,
        bytes_read_per_elem=20.0,
        bytes_written_per_elem=4.0,
    )
    rows = []
    n_elems = n * dim
    for tile in tile_sizes:
        smem = shared_mem_spec(base, n_input_matrices=5, tile_size=tile)
        cost = kernel_cost(
            spec, smem, resource_aware_config(spec, n_elems), n_elems
        )
        rows.append(
            [
                f"{tile}x{tile}",
                smem.shared_mem_per_block,
                cost.occupancy,
                cost.seconds * 1e6,
            ]
        )
    return format_table(
        ["tile", "smem/block (B)", "occupancy", "time (us)"],
        rows,
        title="Ablation: shared-memory tile size (one update launch)",
        float_fmt=".2f",
    )


def adaptive_velocity_ablation(scale: BenchScale) -> str:
    """Final error with and without the Kaucic adaptive velocity bound."""
    rows = []
    for pname in ("sphere", "griewank"):
        problem = build_problem(pname, scale.error_dim)
        errs = []
        for adaptive in (True, False):
            engine = FastPSOEngine()
            res = engine.optimize(
                problem,
                n_particles=scale.error_particles,
                max_iter=scale.error_iters,
                params=PSOParams(adaptive_velocity=adaptive),
            )
            errs.append(res.error)
        rows.append([pname, errs[0], errs[1], errs[1] / max(errs[0], 1e-30)])
    return format_table(
        ["problem", "adaptive", "fixed clamp", "degradation"],
        rows,
        title="Ablation: adaptive velocity bound (error to optimum)",
        float_fmt=".4g",
    )


def topology_ablation(scale: BenchScale) -> str:
    """Global vs ring topology on a multimodal problem."""
    rows = []
    for pname in ("rastrigin", "griewank"):
        problem = build_problem(pname, min(scale.error_dim, 50))
        errs = []
        for topology in ("global", "ring"):
            engine = FastPSOEngine()
            res = engine.optimize(
                problem,
                n_particles=min(scale.error_particles, 500),
                max_iter=scale.error_iters,
                params=PSOParams(topology=topology),
            )
            errs.append(res.error)
        rows.append([pname, errs[0], errs[1]])
    return format_table(
        ["problem", "global", "ring"],
        rows,
        title="Ablation: information topology (error to optimum)",
        float_fmt=".4g",
    )


def multigpu_ablation(
    device_counts=(1, 2, 4, 8), n: int = 100_000, dim: int = 200
) -> str:
    """Particle-splitting vs tile-matrix multi-GPU strategies."""
    spec = tesla_v100()
    update = KernelSpec(
        name="swarm_velocity_update",
        flops_per_elem=12.0,
        bytes_read_per_elem=20.0,
        bytes_written_per_elem=4.0,
    )
    exchange = ExchangeCost(spec)
    iters = 2000
    rows = []
    for n_dev in device_counts:
        shard_sizes = partition_particles(n, n_dev)
        iter_times = [
            kernel_cost(
                spec, update, resource_aware_config(spec, s * dim), s * dim
            ).seconds
            for s in shard_sizes
        ]
        split = particle_split_time(
            iter_times, iters, exchange_interval=50, exchange=exchange,
            gbest_bytes=dim * 4,
        )
        tile = tile_matrix_time(
            iter_times, iters, exchange, shard_bytes=shard_sizes[0] * 8
        )
        rows.append([f"{n_dev} GPU", split, tile, tile / split])
    return format_table(
        ["devices", "particle-split (s)", "tile-matrix (s)", "ratio"],
        rows,
        title=f"Ablation: multi-GPU strategies (n={n}, d={dim}, 2000 iters)",
        float_fmt=".3f",
    )


def update_variant_ablation(
    n: int = 5000, dim: int = 200, iters: int = 5
) -> str:
    """Split vs fused vs fp16 engine variants on one workload."""
    problem = build_problem("sphere", dim)
    params = PSOParams(seed=13)
    variants = {
        "split fp32": FastPSOEngine(),
        "fused fp32": FastPSOEngine(fuse_update=True),
        "split fp16": FastPSOEngine(half_storage=True),
        "fused fp16": FastPSOEngine(fuse_update=True, half_storage=True),
    }
    rows = []
    for label, engine in variants.items():
        r = engine.optimize(
            problem, n_particles=n, max_iter=iters, params=params
        )
        rows.append([label, r.iteration_seconds * 1e6, r.best_value])
    return format_table(
        ["variant", "us/iteration", "best value @5 iters"],
        rows,
        title=f"Ablation: update-kernel variants (n={n}, d={dim})",
        float_fmt=".2f",
    )


@dataclass(frozen=True)
class AblationReport:
    sections: list[str]

    def to_text(self) -> str:
        return "\n\n".join(self.sections)


def run(scale: BenchScale | None = None) -> AblationReport:
    scale = scale or scale_from_env()
    return AblationReport(
        sections=[
            mapping_ablation(),
            tile_size_ablation(),
            adaptive_velocity_ablation(scale),
            topology_ablation(scale),
            multigpu_ablation(),
            update_variant_ablation(),
        ]
    )


def main() -> None:  # pragma: no cover - CLI entry
    print(run().to_text())


if __name__ == "__main__":  # pragma: no cover
    main()
