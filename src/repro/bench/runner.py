"""Shared execution helpers for the experiment drivers.

The central primitive is :func:`timed_run`: execute an engine for a sampled
number of iterations (real numerics), then *project* the simulated time to
the paper's full iteration budget.  The projection is exact for the
simulated clock because per-iteration kernel costs depend only on array
shapes — running 2000 real iterations would produce the same number while
spending three orders of magnitude more wall-clock on NumPy arithmetic.
Engines with data-dependent early stopping are the exception; they are run
for real in the error experiments.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.engine import Engine
from repro.core.parameters import PAPER_DEFAULTS, PSOParams
from repro.core.problem import Problem
from repro.core.results import OptimizeResult, StepTimes
from repro.engines import make_engine
from repro.errors import BenchmarkError
from repro.threadconf.tuner import make_threadconf_problem

__all__ = ["TimedRun", "timed_run", "build_problem", "PAPER_PROBLEMS"]

#: The paper's four benchmark workloads in presentation order.
PAPER_PROBLEMS = ("sphere", "griewank", "easom", "threadconf")

#: The case study's dimensionality, used for ThreadConf rows whose dimension
#: is not explicitly swept.
THREADCONF_DIM = 50


def build_problem(name: str, dim: int) -> Problem:
    """A paper workload by name: a benchmark function or ThreadConf."""
    if name == "threadconf":
        d = dim if dim % 2 == 0 else dim + 1
        return make_threadconf_problem("higgs", dim=d)
    return Problem.from_benchmark(name, dim)


@dataclass(frozen=True)
class TimedRun:
    """A sampled engine run projected to a full iteration budget."""

    engine: str
    problem: str
    n_particles: int
    dim: int
    projected_seconds: float
    projected_steps: StepTimes
    result: OptimizeResult


def timed_run(
    engine: str | Engine,
    problem: Problem,
    *,
    n_particles: int,
    full_iters: int,
    sample_iters: int,
    params: PSOParams = PAPER_DEFAULTS,
) -> TimedRun:
    """Run ``sample_iters`` real iterations, project timing to ``full_iters``."""
    if sample_iters < 1 or full_iters < sample_iters:
        raise BenchmarkError(
            f"need 1 <= sample_iters <= full_iters, got "
            f"{sample_iters}/{full_iters}"
        )
    eng = make_engine(engine) if isinstance(engine, str) else engine
    result = eng.optimize(
        problem,
        n_particles=n_particles,
        max_iter=sample_iters,
        params=params,
    )
    return TimedRun(
        engine=eng.name,
        problem=problem.name,
        n_particles=n_particles,
        dim=problem.dim,
        projected_seconds=result.projected_time(full_iters),
        projected_steps=result.projected_step_times(full_iters),
        result=result,
    )
