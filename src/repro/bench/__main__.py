"""``python -m repro.bench`` dispatches to the CLI."""

import sys

from repro.bench.cli import main

if __name__ == "__main__":
    sys.exit(main())
