"""Declarative device catalog: versioned machine files -> DeviceSpec.

The in-code presets (:func:`repro.gpusim.device.tesla_v100` and friends)
describe the paper's exact testbed and stay *flat* — no memory-hierarchy
fields — so every golden timing pinned against them holds forever.  The
catalog is the growth surface: each ``machines/*.json`` file is a versioned,
reviewable description of one device (a V100/A100/H100-class GPU or a
CPU-fallback expressed in the same vocabulary), including the L1/L2
capacities and bandwidths that activate cost model v2
(:mod:`repro.gpusim.costmodel`).

Lookup mirrors the other public registries (engines, policies, functions):
:func:`resolve_device` accepts canonical names and aliases
case-insensitively and raises :class:`~repro.errors.UnknownDeviceError`
with a did-you-mean suggestion otherwise.  :func:`make_device` is the
factory flavour (``make_device("a100", sm_count=96)`` applies overrides),
and :func:`use_device`/:func:`set_default_device` install an *ambient
default* that :func:`repro.gpusim.make_context` consults when no explicit
spec is passed — the mechanism behind ``repro bench --device a100``.
"""

from __future__ import annotations

import json
from contextlib import contextmanager
from dataclasses import dataclass
from pathlib import Path

from repro.errors import ConfigurationError, UnknownDeviceError
from repro.gpusim.device import PRESETS, DeviceSpec
from repro.utils.naming import unknown_name

__all__ = [
    "CatalogEntry",
    "MACHINES_DIR",
    "device_entries",
    "device_names",
    "get_default_device",
    "load_machine_file",
    "make_device",
    "register_machine_file",
    "resolve_device",
    "resolve_entry",
    "set_default_device",
    "use_device",
]

#: Directory holding the built-in machine files shipped with the package.
MACHINES_DIR = Path(__file__).resolve().parent / "machines"

#: The one machine-file schema this loader understands.
SCHEMA_VERSION = 1

_SPEC_FIELDS = frozenset(f.name for f in DeviceSpec.__dataclass_fields__.values())


@dataclass(frozen=True)
class CatalogEntry:
    """One catalog device: metadata plus its resolved :class:`DeviceSpec`."""

    #: Canonical lookup name (lower-case, e.g. ``"a100"``).
    name: str
    #: Device class: ``"gpu"`` or ``"cpu"`` (a CPU fallback expressed in the
    #: device vocabulary so the same cost model and scheduler apply).
    kind: str
    #: One-line human description.
    summary: str
    #: Where the numbers come from (datasheet, paper table).
    source: str
    #: Additional lookup spellings.
    aliases: tuple[str, ...]
    #: The architectural spec the simulator consumes.
    spec: DeviceSpec
    #: Machine file this entry was loaded from (``None`` for programmatic
    #: registrations).
    path: Path | None = None

    def to_row(self) -> dict:
        """JSON-safe summary row (used by ``repro devices list``)."""
        return {
            "name": self.name,
            "kind": self.kind,
            "summary": self.summary,
            "aliases": list(self.aliases),
            "sm_count": self.spec.sm_count,
            "dram_bandwidth_gbs": self.spec.dram_bandwidth / 1e9,
            "global_mem_gib": self.spec.global_mem_bytes / 1024**3,
            "l2_cache_mib": self.spec.l2_cache_bytes / 1024**2,
            "l2_bandwidth_gbs": self.spec.l2_bandwidth / 1e9,
            "memory_hierarchy": self.spec.has_memory_hierarchy,
        }


def load_machine_file(path: str | Path) -> CatalogEntry:
    """Parse one machine file into a :class:`CatalogEntry`.

    Raises :class:`~repro.errors.ConfigurationError` for unreadable JSON, a
    schema-version mismatch, unknown spec fields, or spec values the
    :class:`DeviceSpec` constructor rejects — always naming the file so a
    bad catalog edit fails with one actionable message.
    """
    path = Path(path)
    try:
        data = json.loads(path.read_text())
    except OSError as exc:
        raise ConfigurationError(f"cannot read machine file {path}: {exc}") from exc
    except json.JSONDecodeError as exc:
        raise ConfigurationError(
            f"machine file {path} is not valid JSON: {exc}"
        ) from exc
    if not isinstance(data, dict):
        raise ConfigurationError(
            f"machine file {path} must hold a JSON object, got "
            f"{type(data).__name__}"
        )
    version = data.get("schema_version")
    if version != SCHEMA_VERSION:
        raise ConfigurationError(
            f"machine file {path} has schema_version={version!r}; this "
            f"loader understands version {SCHEMA_VERSION}"
        )
    name = data.get("name")
    if not isinstance(name, str) or not name:
        raise ConfigurationError(f"machine file {path} needs a 'name' string")
    kind = data.get("kind", "gpu")
    if kind not in ("gpu", "cpu"):
        raise ConfigurationError(
            f"machine file {path}: kind must be 'gpu' or 'cpu', got {kind!r}"
        )
    spec_data = data.get("spec")
    if not isinstance(spec_data, dict):
        raise ConfigurationError(
            f"machine file {path} needs a 'spec' object with DeviceSpec fields"
        )
    unknown = sorted(set(spec_data) - _SPEC_FIELDS)
    if unknown:
        raise ConfigurationError(
            f"machine file {path} has unknown spec field(s) {unknown}; "
            f"valid fields: {sorted(_SPEC_FIELDS)}"
        )
    try:
        spec = DeviceSpec(**spec_data)
    except (ConfigurationError, TypeError) as exc:
        raise ConfigurationError(
            f"machine file {path} has an invalid spec: {exc}"
        ) from exc
    aliases = data.get("aliases", [])
    if not isinstance(aliases, list) or not all(
        isinstance(a, str) for a in aliases
    ):
        raise ConfigurationError(
            f"machine file {path}: aliases must be a list of strings"
        )
    return CatalogEntry(
        name=name.lower(),
        kind=kind,
        summary=str(data.get("summary", "")),
        source=str(data.get("source", "")),
        aliases=tuple(a.lower() for a in aliases),
        spec=spec,
        path=path,
    )


# Canonical name -> entry, populated lazily from MACHINES_DIR (sorted for
# a deterministic load order) plus any register_machine_file() additions.
_CATALOG: dict[str, CatalogEntry] | None = None
# Alias -> canonical name.
_ALIASES: dict[str, str] = {}


def _catalog() -> dict[str, CatalogEntry]:
    global _CATALOG
    if _CATALOG is None:
        _CATALOG = {}
        for path in sorted(MACHINES_DIR.glob("*.json")):
            _register(load_machine_file(path))
    return _CATALOG


def _register(entry: CatalogEntry) -> CatalogEntry:
    assert _CATALOG is not None
    taken = set(_CATALOG) | set(_ALIASES)
    for label in (entry.name, *entry.aliases):
        if label in taken:
            raise ConfigurationError(
                f"device name {label!r} (from {entry.path}) is already "
                f"registered"
            )
    _CATALOG[entry.name] = entry
    for alias in entry.aliases:
        _ALIASES[alias] = entry.name
    return entry


def register_machine_file(path: str | Path) -> CatalogEntry:
    """Add a user-supplied machine file to the live catalog.

    The entry becomes resolvable by name/alias exactly like a built-in;
    re-registering a name raises :class:`~repro.errors.ConfigurationError`.
    """
    _catalog()
    return _register(load_machine_file(path))


def device_names() -> tuple[str, ...]:
    """Canonical catalog names, sorted."""
    return tuple(sorted(_catalog()))


def device_entries() -> tuple[CatalogEntry, ...]:
    """Every catalog entry, in canonical-name order."""
    cat = _catalog()
    return tuple(cat[name] for name in sorted(cat))


def resolve_entry(name: str) -> CatalogEntry:
    """Resolve *name* (canonical or alias, case-insensitive) to its entry."""
    cat = _catalog()
    key = str(name).lower()
    key = _ALIASES.get(key, key)
    entry = cat.get(key)
    if entry is None:
        raise unknown_name(
            "device",
            name,
            sorted({*cat, *_ALIASES}),
            exc_type=UnknownDeviceError,
        )
    return entry


def resolve_device(name: "str | DeviceSpec") -> DeviceSpec:
    """Resolve a device name to its :class:`DeviceSpec`.

    Accepts catalog names and aliases plus the historical in-code preset
    names (``v100``/``a100``/``laptop``, which the catalog shadows with
    hierarchy-enabled variants of the same silicon); a ready
    :class:`DeviceSpec` passes through untouched so call sites can take
    "name or spec" arguments uniformly.
    """
    if isinstance(name, DeviceSpec):
        return name
    return resolve_entry(name).spec


def make_device(name: "str | DeviceSpec", **overrides: object) -> DeviceSpec:
    """Build a spec from the catalog with optional field overrides.

    ``make_device("a100", sm_count=96)`` is the device analogue of
    ``make_engine("fastpso", backend="shared")``: resolve the canonical
    entry, then apply configuration.  Overrides go through
    :meth:`DeviceSpec.with_overrides`, so invalid values raise
    :class:`~repro.errors.ConfigurationError` immediately.
    """
    spec = resolve_device(name)
    if overrides:
        spec = spec.with_overrides(**overrides)
    return spec


# -- ambient default --------------------------------------------------------
# The default device make_context() uses when no spec is passed.  None means
# "the paper's V100" (tesla_v100(), flat), preserving every historical
# default-constructed engine bit for bit.
_DEFAULT_SPEC: DeviceSpec | None = None


def set_default_device(device: "str | DeviceSpec | None") -> DeviceSpec | None:
    """Install the ambient default device; returns the previous one.

    ``None`` restores the library default (the paper's flat V100).  The
    ambient default only affects contexts built *without* an explicit spec;
    engines given a ``device=`` argument ignore it.
    """
    global _DEFAULT_SPEC
    previous = _DEFAULT_SPEC
    _DEFAULT_SPEC = None if device is None else resolve_device(device)
    return previous


def get_default_device() -> DeviceSpec | None:
    """The ambient default spec, or ``None`` when unset."""
    return _DEFAULT_SPEC


@contextmanager
def use_device(device: "str | DeviceSpec | None"):
    """Context manager scoping :func:`set_default_device` to a block."""
    previous = set_default_device(device)
    try:
        yield get_default_device()
    finally:
        global _DEFAULT_SPEC
        _DEFAULT_SPEC = previous


def _reset_catalog_for_tests() -> None:
    """Drop lazy state (catalog + ambient default); test isolation hook."""
    global _CATALOG, _DEFAULT_SPEC
    _CATALOG = None
    _ALIASES.clear()
    _DEFAULT_SPEC = None


# The in-code presets must never drift out of the lookup surface: every
# PRESETS key is expected to have a catalog entry shadowing it (validated
# by the test suite, not at import time, to keep imports cheap).
PRESET_NAMES = tuple(sorted(PRESETS))
