"""Cost-model calibration against the paper's published numbers.

The flat v1 roofline was calibrated once by hand from Table 3's achieved
throughputs.  This harness makes that step reproducible and extensible to
new catalog devices: it *fits* :class:`~repro.gpusim.costmodel.GpuCostParams`
to the paper's measured wall times by

1. **capturing** each target engine's launch workload — two short real runs
   with ``record_launches=True`` at different iteration counts, diffed and
   linearly extrapolated to the paper's full iteration budget (per-iteration
   kernel cadence is exact for these engines: costs depend only on shapes);
2. **re-costing** the captured launches analytically under candidate
   parameters (no re-simulation per candidate — pure arithmetic over the
   recorded ``(kernel spec, launch config, n_elems)`` groups);
3. **descending** deterministically: coordinate descent over a fixed,
   log-spaced multiplicative grid, a fixed sweep count, strict-improvement
   acceptance — same inputs, same fitted parameters, bit for bit.

The residual report states, per target, the paper's seconds, the model's
seconds under the fitted parameters and the relative error; the regression
test pins both the fitted values and the maximum residual, so a cost-model
change that silently un-fits the paper's numbers fails CI.
"""

from __future__ import annotations

from dataclasses import dataclass, replace

from repro.core.problem import Problem
from repro.errors import CalibrationError
from repro.gpusim.costmodel import DEFAULT_GPU_COST_PARAMS, GpuCostParams, kernel_cost
from repro.gpusim.device import DeviceSpec, tesla_v100

__all__ = [
    "CalibrationTarget",
    "CalibrationResult",
    "CapturedWorkload",
    "PAPER_TARGETS",
    "capture_workload",
    "calibrate",
]


@dataclass(frozen=True)
class CalibrationTarget:
    """One published timing the fitted model must reproduce.

    The defaults describe the paper's headline workload: Sphere, n=5000
    particles, d=200 dimensions, 1000 iterations on the V100 testbed.
    """

    engine: str
    seconds: float  # published wall time for the full run
    n_particles: int = 5000
    dim: int = 200
    iters: int = 1000
    function: str = "sphere"

    def __post_init__(self) -> None:
        if self.seconds <= 0:
            raise CalibrationError(
                f"target seconds must be positive, got {self.seconds}"
            )
        if self.n_particles < 1 or self.dim < 1 or self.iters < 2:
            raise CalibrationError(
                "target workload needs n_particles>=1, dim>=1, iters>=2"
            )


#: The paper's Table 1 wall times for the two pure-GPU engines on the
#: Sphere n=5000 d=200 workload (seconds).  CPU-hybrid and library rows are
#: excluded: their times are dominated by the CPU-side models, which
#: GpuCostParams does not touch.
PAPER_TARGETS: tuple[CalibrationTarget, ...] = (
    CalibrationTarget(engine="fastpso", seconds=0.67),
    CalibrationTarget(engine="gpu-pso", seconds=4.90),
)

# Parameters the default fit adjusts, in sweep order.
DEFAULT_PARAM_NAMES: tuple[str, ...] = (
    "dram_peak_fraction",
    "latency_hiding_half_occ",
    "fp32_peak_fraction",
    "l2_peak_fraction",
)

# Legal range per fittable parameter (values are clamped to these).
_BOUNDS: dict[str, tuple[float, float]] = {
    "dram_peak_fraction": (0.01, 1.0),
    "latency_hiding_half_occ": (1e-4, 0.5),
    "uncoalesced_penalty": (0.01, 1.0),
    "sfu_throughput_fraction": (0.05, 1.0),
    "instr_overhead_per_elem": (0.0, 64.0),
    "memory_level_parallelism": (1.0, 16.0),
    "fp32_peak_fraction": (0.05, 1.0),
    "l2_peak_fraction": (0.05, 1.0),
}

# Fixed multiplicative probe grid (log-spaced around 1.0) and sweep count:
# the whole search is a deterministic, finite enumeration.
_GRID: tuple[float, ...] = (0.6, 0.75, 0.9, 0.95, 1.05, 1.1, 1.25, 1.6)
_DEFAULT_SWEEPS = 3


@dataclass(frozen=True)
class CapturedWorkload:
    """One target's launch workload, extrapolated over iterations.

    ``groups`` holds ``(kernel_spec, launch_config, n_elems, per_iter,
    fixed)`` tuples: *per_iter* launches per iteration plus *fixed*
    iteration-independent launches (init, RNG seeding, result copy).
    """

    target: CalibrationTarget
    groups: tuple

    def predict_seconds(
        self, device: DeviceSpec, params: GpuCostParams
    ) -> float:
        """Modelled wall time of the full run under *params* on *device*."""
        total = 0.0
        iters = self.target.iters
        for kspec, config, n_elems, per_iter, fixed in self.groups:
            count = fixed + per_iter * iters
            if count <= 0:
                continue
            cost = kernel_cost.uncached(device, kspec, config, n_elems, params)
            total += count * cost.seconds
        return total


def _run_workload(
    target: CalibrationTarget, device: DeviceSpec, iters: int
) -> tuple[dict, dict]:
    """One real run; returns (launch counts by key, kernel spec by name).

    The launch log stores kernel *names*; re-costing needs the kernel
    *specs*, harvested from the engine's kernel table and the context
    reducer's two fixed kernels after the run.
    """
    from repro.engines import make_engine

    engine = make_engine(target.engine, device=device, record_launches=True)
    problem = Problem.from_benchmark(target.function, target.dim)
    engine.optimize(
        problem,
        n_particles=target.n_particles,
        max_iter=iters,
    )
    records = []
    spec_by_name: dict = {}
    contexts = [getattr(engine, "ctx", None)] + [
        getattr(w, "ctx", None) for w in getattr(engine, "workers", ())
    ]
    for ctx in contexts:
        if ctx is None:
            continue
        records.extend(ctx.launcher.records)
        reducer = getattr(ctx, "reducer", None)
        for attr in ("_pass1", "_pass2"):
            kern = getattr(reducer, attr, None)
            if kern is not None:
                spec_by_name[kern.spec.name] = kern.spec
    for kern in getattr(engine, "_kernels", {}).values():
        spec_by_name[kern.spec.name] = kern.spec
    if not records:
        raise CalibrationError(
            f"engine {target.engine!r} produced no launch records; only "
            "GPU engines with record_launches support can be calibrated"
        )
    counts: dict = {}
    for rec in records:
        key = (rec.kernel_name, rec.config, rec.n_elems)
        counts[key] = counts.get(key, 0) + 1
    return counts, spec_by_name


def capture_workload(
    target: CalibrationTarget,
    device: DeviceSpec | None = None,
    *,
    sample_iters: tuple[int, int] = (3, 6),
) -> CapturedWorkload:
    """Capture *target*'s launch workload by running it twice.

    Two real runs at ``sample_iters`` iterations are diffed to separate
    per-iteration launches from fixed setup work, then extrapolated to the
    target's full iteration count.  The runs execute genuine NumPy
    semantics, so this is the expensive step — everything downstream is
    arithmetic.
    """
    i1, i2 = sample_iters
    if not 1 <= i1 < i2:
        raise CalibrationError(
            f"need 1 <= sample_iters[0] < sample_iters[1], got {sample_iters}"
        )
    device = device if device is not None else tesla_v100()
    c1, spec_by_name = _run_workload(target, device, i1)
    c2, specs2 = _run_workload(target, device, i2)
    spec_by_name.update(specs2)

    span = i2 - i1
    groups = []
    for key in sorted(
        set(c1) | set(c2),
        key=lambda k: (k[0], k[1].grid_blocks, k[1].threads_per_block, k[2]),
    ):
        name, config, n_elems = key
        kspec = spec_by_name.get(name)
        if kspec is None:
            raise CalibrationError(
                f"kernel {name!r} appears in the launch log but not in the "
                f"engine's kernel table; cannot re-cost it analytically"
            )
        n1 = c1.get(key, 0)
        n2 = c2.get(key, 0)
        per_iter = (n2 - n1) / span
        fixed = n1 - per_iter * i1
        groups.append((kspec, config, n_elems, per_iter, fixed))
    return CapturedWorkload(target=target, groups=tuple(groups))


@dataclass(frozen=True)
class CalibrationResult:
    """Fitted parameters plus the residual report."""

    params: GpuCostParams
    device_name: str
    #: Per-target rows: engine, paper seconds, predicted seconds, rel error.
    residuals: tuple
    #: Largest absolute relative error across targets.
    max_abs_rel_error: float
    #: Final objective (sum of squared relative errors).
    objective: float
    #: Which parameters the descent adjusted.
    param_names: tuple
    #: Candidate evaluations spent (deterministic for fixed inputs).
    n_evaluations: int

    def to_json_dict(self) -> dict:
        from dataclasses import asdict

        return {
            "device": self.device_name,
            "fitted_params": asdict(self.params),
            "param_names": list(self.param_names),
            "residuals": [dict(r) for r in self.residuals],
            "max_abs_rel_error": self.max_abs_rel_error,
            "objective": self.objective,
            "n_evaluations": self.n_evaluations,
        }

    def report_text(self) -> str:
        lines = [
            f"calibration vs paper tables on {self.device_name}",
            f"  fitted over {', '.join(self.param_names)}",
        ]
        for row in self.residuals:
            lines.append(
                f"  {row['engine']:<10} paper {row['paper_seconds']:7.3f}s  "
                f"model {row['predicted_seconds']:7.3f}s  "
                f"rel err {row['rel_error']:+7.1%}"
            )
        lines.append(
            f"  max |rel err| {self.max_abs_rel_error:.1%}  "
            f"objective {self.objective:.3e}  "
            f"({self.n_evaluations} evaluations)"
        )
        return "\n".join(lines)


def _clamp(name: str, value: float) -> float:
    lo, hi = _BOUNDS[name]
    return min(max(value, lo), hi)


def calibrate(
    targets: tuple[CalibrationTarget, ...] = PAPER_TARGETS,
    *,
    device: DeviceSpec | None = None,
    start: GpuCostParams = DEFAULT_GPU_COST_PARAMS,
    param_names: tuple[str, ...] = DEFAULT_PARAM_NAMES,
    sweeps: int = _DEFAULT_SWEEPS,
    sample_iters: tuple[int, int] = (3, 6),
) -> CalibrationResult:
    """Fit *param_names* so the model reproduces *targets* on *device*.

    Deterministic coordinate descent: for each of ``sweeps`` passes over
    the parameters (in the given order), each parameter probes the fixed
    multiplicative grid, keeping the best strictly-improving value.  The
    objective is the sum of squared relative errors across targets.
    """
    if not targets:
        raise CalibrationError("calibration needs at least one target")
    unknown = [n for n in param_names if n not in _BOUNDS]
    if unknown:
        raise CalibrationError(
            f"cannot fit unknown parameter(s) {unknown}; "
            f"fittable: {sorted(_BOUNDS)}"
        )
    if sweeps < 1:
        raise CalibrationError(f"sweeps must be >= 1, got {sweeps}")
    device = device if device is not None else tesla_v100()

    workloads = [
        capture_workload(t, device, sample_iters=sample_iters) for t in targets
    ]

    n_evals = 0

    def objective(params: GpuCostParams) -> float:
        nonlocal n_evals
        n_evals += 1
        total = 0.0
        for wl in workloads:
            pred = wl.predict_seconds(device, params)
            rel = (pred - wl.target.seconds) / wl.target.seconds
            total += rel * rel
        return total

    params = start
    best = objective(params)
    for _sweep in range(sweeps):
        for name in param_names:
            current = getattr(params, name)
            best_value = current
            for mult in _GRID:
                candidate_value = _clamp(name, current * mult)
                if candidate_value == best_value:
                    continue
                candidate = replace(params, **{name: candidate_value})
                score = objective(candidate)
                # Strict improvement with a deterministic margin: ties keep
                # the incumbent, so the search cannot oscillate.
                if score < best * (1.0 - 1e-12):
                    best = score
                    best_value = candidate_value
            if best_value != current:
                params = replace(params, **{name: best_value})

    residuals = []
    max_abs = 0.0
    for wl in workloads:
        pred = wl.predict_seconds(device, params)
        rel = (pred - wl.target.seconds) / wl.target.seconds
        max_abs = max(max_abs, abs(rel))
        residuals.append(
            {
                "engine": wl.target.engine,
                "paper_seconds": wl.target.seconds,
                "predicted_seconds": pred,
                "rel_error": rel,
            }
        )
    return CalibrationResult(
        params=params,
        device_name=device.name,
        residuals=tuple(residuals),
        max_abs_rel_error=max_abs,
        objective=best,
        param_names=tuple(param_names),
        n_evaluations=n_evals,
    )
