"""Command line for the device catalog and calibration harness.

Usage::

    python -m repro.devices list                 # catalog table
    python -m repro.devices show a100            # one entry, full spec
    python -m repro.devices calibrate --out calib.json
"""

from __future__ import annotations

import argparse
import json
import sys
from dataclasses import asdict

from repro.devices.calibrate import PAPER_TARGETS, calibrate
from repro.devices.catalog import device_entries, resolve_entry
from repro.errors import ReproError

__all__ = ["main"]


def _cmd_list(_args: argparse.Namespace) -> int:
    rows = [e.to_row() for e in device_entries()]
    header = (
        f"{'name':<10} {'kind':<4} {'SMs':>4} {'DRAM GB/s':>10} "
        f"{'mem GiB':>8} {'L2 MiB':>7} {'L2 GB/s':>8}  summary"
    )
    print(header)
    print("-" * len(header))
    for row in rows:
        print(
            f"{row['name']:<10} {row['kind']:<4} {row['sm_count']:>4} "
            f"{row['dram_bandwidth_gbs']:>10.1f} "
            f"{row['global_mem_gib']:>8.1f} "
            f"{row['l2_cache_mib']:>7.1f} {row['l2_bandwidth_gbs']:>8.1f}  "
            f"{row['summary']}"
        )
    return 0


def _cmd_show(args: argparse.Namespace) -> int:
    entry = resolve_entry(args.name)
    payload = {
        "name": entry.name,
        "kind": entry.kind,
        "summary": entry.summary,
        "source": entry.source,
        "aliases": list(entry.aliases),
        "machine_file": str(entry.path) if entry.path else None,
        "spec": asdict(entry.spec),
    }
    print(json.dumps(payload, indent=2, sort_keys=True))
    return 0


def _cmd_calibrate(args: argparse.Namespace) -> int:
    from repro.devices.catalog import resolve_device

    device = resolve_device(args.device) if args.device else None
    result = calibrate(PAPER_TARGETS, device=device, sweeps=args.sweeps)
    print(result.report_text())
    if args.out:
        with open(args.out, "w") as fh:
            json.dump(result.to_json_dict(), fh, indent=2, sort_keys=True)
            fh.write("\n")
        print(f"residual report written to {args.out}")
    return 0


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro devices",
        description="Inspect the device catalog and calibrate the cost model.",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("list", help="print the catalog summary table")

    show = sub.add_parser("show", help="print one entry's full spec as JSON")
    show.add_argument("name", help="catalog name or alias")

    calib = sub.add_parser(
        "calibrate",
        help="fit cost params against the paper tables; print residuals",
    )
    calib.add_argument(
        "--device",
        default=None,
        help="catalog device to calibrate on (default: the paper's flat V100)",
    )
    calib.add_argument(
        "--sweeps",
        type=int,
        default=3,
        help="coordinate-descent sweeps (default: 3)",
    )
    calib.add_argument(
        "--out", default=None, help="also write the residual report as JSON"
    )

    args = parser.parse_args(argv)
    try:
        if args.command == "list":
            return _cmd_list(args)
        if args.command == "show":
            return _cmd_show(args)
        return _cmd_calibrate(args)
    except ReproError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
