"""Device catalog and cost-model calibration (:mod:`repro.devices`).

Three pieces:

* **catalog** — versioned machine files (``machines/*.json``) describing
  V100/A100/H100-class GPUs and a CPU fallback, resolved by name/alias with
  the same did-you-mean surface as the engine/function/policy registries
  (:func:`resolve_device`, :func:`make_device`).
* **ambient default** — :func:`use_device`/:func:`set_default_device`
  retarget every context built without an explicit spec, which is how
  ``repro bench --device a100`` re-runs an experiment on different silicon
  without touching the experiment code.
* **calibration** — :func:`calibrate` fits
  :class:`~repro.gpusim.costmodel.GpuCostParams` to the paper's published
  wall times by deterministic coordinate descent over analytically
  re-costed launch captures (:mod:`repro.devices.calibrate`).

``python -m repro.devices list`` prints the catalog;
``python -m repro.devices calibrate`` runs the fit and emits the residual
report.
"""

from repro.devices.calibrate import (
    PAPER_TARGETS,
    CalibrationResult,
    CalibrationTarget,
    CapturedWorkload,
    calibrate,
    capture_workload,
)
from repro.devices.catalog import (
    MACHINES_DIR,
    CatalogEntry,
    device_entries,
    device_names,
    get_default_device,
    load_machine_file,
    make_device,
    register_machine_file,
    resolve_device,
    resolve_entry,
    set_default_device,
    use_device,
)

__all__ = [
    "CalibrationResult",
    "CalibrationTarget",
    "CapturedWorkload",
    "CatalogEntry",
    "MACHINES_DIR",
    "PAPER_TARGETS",
    "calibrate",
    "capture_workload",
    "device_entries",
    "device_names",
    "get_default_device",
    "load_machine_file",
    "make_device",
    "register_machine_file",
    "resolve_device",
    "resolve_entry",
    "set_default_device",
    "use_device",
]
