"""The ``repro`` console entry point: one front door to the sub-CLIs.

``repro <command> [args...]`` dispatches to the per-subsystem CLIs that
also exist as runnable modules:

* ``repro serve``   → :mod:`repro.serve.__main__` (load-generator drill)
* ``repro batch``   → :mod:`repro.batch.__main__` (batch scheduler)
* ``repro bench``   → :mod:`repro.bench.cli` (paper experiment driver)
* ``repro devices`` → :mod:`repro.devices.__main__` (device catalog,
  cost-model calibration)

Each command's own ``--help`` documents its flags; exit codes pass
through unchanged.
"""

from __future__ import annotations

import sys


def _serve(argv: list[str]) -> int:
    from repro.serve.__main__ import main

    return main(argv)


def _batch(argv: list[str]) -> int:
    from repro.batch.__main__ import main

    return main(argv)


def _bench(argv: list[str]) -> int:
    from repro.bench.cli import main

    return main(argv)


def _devices(argv: list[str]) -> int:
    from repro.devices.__main__ import main

    return main(argv)


_COMMANDS = {
    "serve": _serve,
    "batch": _batch,
    "bench": _bench,
    "devices": _devices,
}

_USAGE = (
    "usage: repro {serve,batch,bench,devices} [args...]\n"
    "\n"
    "commands:\n"
    "  serve    run the serving-layer load drill (python -m repro.serve);\n"
    "           'repro serve recover --journal-dir DIR' resumes a\n"
    "           crashed drill from its write-ahead journal\n"
    "  batch    run the batch scheduler CLI (python -m repro.batch)\n"
    "  bench    run paper experiments (fastpso-bench)\n"
    "  devices  inspect the device catalog / calibrate the cost model\n"
    "           (python -m repro.devices)\n"
)


def main(argv: list[str] | None = None) -> int:
    argv = list(sys.argv[1:] if argv is None else argv)
    if not argv or argv[0] in ("-h", "--help"):
        print(_USAGE, end="")
        return 0
    command, rest = argv[0], argv[1:]
    handler = _COMMANDS.get(command)
    if handler is None:
        print(f"repro: unknown command {command!r}\n{_USAGE}", file=sys.stderr)
        return 2
    return handler(rest)


if __name__ == "__main__":
    sys.exit(main())
