"""Plain-text table rendering for the benchmark harness.

The experiment drivers print tables shaped like the paper's (same rows and
columns); this module owns the column sizing and alignment so every table in
the harness renders consistently without pulling in a formatting dependency.
"""

from __future__ import annotations

from typing import Sequence

__all__ = ["format_table"]


def _cell(value: object, fmt: str | None) -> str:
    if value is None:
        return "-"
    if fmt is not None and isinstance(value, (int, float)) and not isinstance(
        value, bool
    ):
        return format(value, fmt)
    return str(value)


def format_table(
    headers: Sequence[str],
    rows: Sequence[Sequence[object]],
    *,
    title: str | None = None,
    float_fmt: str = ".3f",
) -> str:
    """Render *rows* under *headers* as an aligned monospace table.

    Numeric cells are formatted with *float_fmt*; ``None`` renders as ``-``.
    The first column is left-aligned (row labels), the rest right-aligned
    (measurements), matching the layout of the paper's tables.
    """
    headers = [str(h) for h in headers]
    ncols = len(headers)
    body: list[list[str]] = []
    for row in rows:
        if len(row) != ncols:
            raise ValueError(
                f"row has {len(row)} cells but table has {ncols} columns: {row!r}"
            )
        body.append([_cell(v, float_fmt) for v in row])

    widths = [len(h) for h in headers]
    for row in body:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))

    def render_row(cells: Sequence[str]) -> str:
        parts = []
        for i, cell in enumerate(cells):
            if i == 0:
                parts.append(cell.ljust(widths[i]))
            else:
                parts.append(cell.rjust(widths[i]))
        return "  ".join(parts).rstrip()

    sep = "  ".join("-" * w for w in widths)
    lines: list[str] = []
    if title:
        lines.append(title)
        lines.append("=" * max(len(title), len(sep)))
    lines.append(render_row(headers))
    lines.append(sep)
    lines.extend(render_row(row) for row in body)
    return "\n".join(lines)
