"""Shared fuzzy name resolution for the public registries.

Three lookup surfaces accept user-supplied names — engines
(:func:`repro.engines.make_engine`), benchmark functions
(:func:`repro.functions.make_function`) and the batch scheduler's packing
policies (:func:`repro.batch.resolve_policy`) — and all promise the same
failure shape: an :class:`~repro.errors.InvalidParameterError` whose
message leads with the nearest valid spelling before listing every choice.
This module is the one implementation behind that promise; registries call
:func:`unknown_name` instead of hand-rolling ``difflib`` hints.
"""

from __future__ import annotations

import difflib

from repro.errors import InvalidParameterError

__all__ = ["suggest", "unknown_name"]


def suggest(name: object, choices) -> str | None:
    """The closest valid spelling of *name* among *choices*, or ``None``.

    Case-insensitive on the query side (registries lower-case their keys),
    with ``difflib``'s default similarity cutoff — a wild guess gets no
    suggestion rather than a misleading one.
    """
    close = difflib.get_close_matches(
        str(name).lower(), [str(c) for c in choices], n=1
    )
    return close[0] if close else None


def unknown_name(
    kind: str,
    name: object,
    choices,
    *,
    exc_type: type[InvalidParameterError] = InvalidParameterError,
) -> InvalidParameterError:
    """Build (not raise) the canonical unknown-name error for a registry.

    The message is a one-glance fix for a typo::

        unknown policy 'fuzed'; did you mean 'fused'? choose from
        'fifo', 'packed', 'fused'

    *exc_type* lets a registry keep a compatible exception class (the
    functions registry raises a subclass that is also an
    :class:`~repro.errors.InvalidProblemError` so historical ``except``
    clauses keep working).
    """
    choices = [str(c) for c in choices]
    near = suggest(name, choices)
    hint = f"; did you mean {near!r}?" if near else ""
    listing = ", ".join(repr(c) for c in choices)
    return exc_type(f"unknown {kind} {name!r}{hint} choose from {listing}")
