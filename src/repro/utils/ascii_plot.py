"""Terminal plots for the figure-regenerating experiment drivers.

The paper's Figures 4-6 are line/bar charts; without a plotting dependency
the drivers render them as ASCII so `python -m repro.bench figure4` shows
the *shape* directly in the terminal (flat fastpso lines under steep CPU
ones), not just a table.  Log-scale support matters because the series span
three orders of magnitude.
"""

from __future__ import annotations

import math
from typing import Mapping, Sequence

__all__ = ["line_chart", "bar_chart"]

_GLYPHS = "ox+*#@%&"


def _scale(value: float, lo: float, hi: float, height: int, log: bool) -> int:
    if log:
        value, lo, hi = math.log10(value), math.log10(lo), math.log10(hi)
    if hi <= lo:
        return 0
    frac = (value - lo) / (hi - lo)
    return min(height - 1, max(0, round(frac * (height - 1))))


def line_chart(
    series: Mapping[str, Sequence[float]],
    *,
    x_labels: Sequence[object],
    height: int = 12,
    log_y: bool = True,
    title: str | None = None,
) -> str:
    """Multi-series chart: one glyph per series, one column per x point.

    All series must share the x axis.  Values must be positive when
    ``log_y`` is set (the default — benchmark times always are).
    """
    if not series:
        raise ValueError("need at least one series")
    n_points = len(x_labels)
    for name, values in series.items():
        if len(values) != n_points:
            raise ValueError(
                f"series {name!r} has {len(values)} points, axis has {n_points}"
            )
        if log_y and any(v <= 0 for v in values):
            raise ValueError(f"series {name!r} has non-positive values (log axis)")
    all_values = [v for vs in series.values() for v in vs]
    lo, hi = min(all_values), max(all_values)

    col_width = 7
    width = n_points * col_width
    grid = [[" "] * width for _ in range(height)]
    for idx, (name, values) in enumerate(series.items()):
        glyph = _GLYPHS[idx % len(_GLYPHS)]
        for i, v in enumerate(values):
            row = height - 1 - _scale(v, lo, hi, height, log_y)
            col = i * col_width + col_width // 2
            grid[row][col] = glyph

    unit = "log10(s)" if log_y else "s"
    lines = []
    if title:
        lines.append(title)
    top_label = f"{hi:.3g}"
    bottom_label = f"{lo:.3g}"
    for r, row in enumerate(grid):
        margin = top_label if r == 0 else bottom_label if r == height - 1 else ""
        lines.append(f"{margin:>9s} |" + "".join(row))
    axis = " " * 10 + "+" + "-" * width
    lines.append(axis)
    lines.append(
        " " * 11
        + "".join(str(x).center(col_width) for x in x_labels)
        + f"  [{unit}]"
    )
    legend = "  ".join(
        f"{_GLYPHS[i % len(_GLYPHS)]}={name}" for i, name in enumerate(series)
    )
    lines.append(" " * 11 + legend)
    return "\n".join(lines)


def bar_chart(
    values: Mapping[str, float],
    *,
    width: int = 50,
    log: bool = False,
    title: str | None = None,
    unit: str = "s",
) -> str:
    """Horizontal bars, labelled and value-annotated."""
    if not values:
        raise ValueError("need at least one bar")
    if any(v < 0 for v in values.values()):
        raise ValueError("bar values must be non-negative")
    if log and any(v <= 0 for v in values.values()):
        raise ValueError("log-scale bars need positive values")
    label_w = max(len(k) for k in values)
    vmax = max(values.values())
    lines = [title] if title else []
    for name, v in values.items():
        if vmax == 0:
            n = 0
        elif log:
            lo = min(x for x in values.values())
            n = (
                width
                if vmax == lo
                else round(
                    width
                    * (math.log10(v) - math.log10(lo) + 0.3)
                    / (math.log10(vmax) - math.log10(lo) + 0.3)
                )
            )
        else:
            n = round(width * v / vmax)
        lines.append(f"{name:>{label_w}s} | {'#' * n} {v:.4g} {unit}")
    return "\n".join(lines)
