"""Shared utilities: array validation, units, statistics and table rendering."""

from repro.utils.arrays import (
    as_float_matrix,
    as_float_vector,
    check_finite,
    ensure_2d,
)
from repro.utils.stats import RunStats, geometric_mean, speedup, summarize_repeats
from repro.utils.tables import format_table
from repro.utils.units import (
    GIB,
    KIB,
    MIB,
    format_bytes,
    format_seconds,
    gb_per_s,
)

__all__ = [
    "as_float_matrix",
    "as_float_vector",
    "check_finite",
    "ensure_2d",
    "RunStats",
    "geometric_mean",
    "speedup",
    "summarize_repeats",
    "format_table",
    "KIB",
    "MIB",
    "GIB",
    "format_bytes",
    "format_seconds",
    "gb_per_s",
]
