"""Byte/time unit constants and human-readable formatting.

The simulator stores every quantity in SI base units (bytes, seconds) and
converts only at the presentation layer; these helpers are that layer.
"""

from __future__ import annotations

__all__ = [
    "KIB",
    "MIB",
    "GIB",
    "KB",
    "MB",
    "GB",
    "format_bytes",
    "format_seconds",
    "gb_per_s",
]

KIB = 1024
MIB = 1024**2
GIB = 1024**3

KB = 10**3
MB = 10**6
GB = 10**9


def format_bytes(n: int | float) -> str:
    """Render a byte count with a binary-prefix unit (e.g. ``'4.00 MiB'``)."""
    n = float(n)
    sign = "-" if n < 0 else ""
    n = abs(n)
    for unit, scale in (("GiB", GIB), ("MiB", MIB), ("KiB", KIB)):
        if n >= scale:
            return f"{sign}{n / scale:.2f} {unit}"
    return f"{sign}{n:.0f} B"


def format_seconds(t: float) -> str:
    """Render a duration at a sensible resolution (ns through minutes)."""
    t = float(t)
    sign = "-" if t < 0 else ""
    t = abs(t)
    if t >= 60.0:
        return f"{sign}{t / 60.0:.2f} min"
    if t >= 1.0:
        return f"{sign}{t:.3f} s"
    if t >= 1e-3:
        return f"{sign}{t * 1e3:.3f} ms"
    if t >= 1e-6:
        return f"{sign}{t * 1e6:.3f} us"
    return f"{sign}{t * 1e9:.1f} ns"


def gb_per_s(num_bytes: float, seconds: float) -> float:
    """Throughput in decimal GB/s, the unit used by ``nvprof`` and the paper.

    Returns 0.0 for a zero-duration interval rather than raising, because
    profiler records for empty kernels legitimately have zero elapsed time.
    """
    if seconds <= 0.0:
        return 0.0
    return num_bytes / seconds / GB
