"""Array validation and coercion helpers.

The optimizer moves ``(n_particles, dim)`` float matrices between engines;
these helpers centralise the dtype/shape/finiteness checks so every engine
fails fast with the same error messages.  All helpers return C-contiguous
float64 arrays (float32 on request) because the hot element-wise paths in
:mod:`repro.gpusim` assume contiguous row-major layout, matching the CUDA
implementation's coalesced-access design.
"""

from __future__ import annotations

from typing import Iterable

import numpy as np

from repro.errors import InvalidProblemError

__all__ = ["as_float_matrix", "as_float_vector", "check_finite", "ensure_2d"]


def as_float_vector(
    values: Iterable[float] | np.ndarray,
    *,
    name: str = "array",
    dim: int | None = None,
    dtype: np.dtype | type = np.float64,
) -> np.ndarray:
    """Coerce *values* to a contiguous 1-D float array.

    Parameters
    ----------
    values:
        Any iterable of numbers (list, tuple, ndarray, scalar broadcastable).
    name:
        Label used in error messages.
    dim:
        If given, the required length of the vector.
    dtype:
        Target floating dtype.

    Raises
    ------
    InvalidProblemError
        If the input is not 1-D, has the wrong length, or is not numeric.
    """
    try:
        arr = np.asarray(values, dtype=dtype)
    except (TypeError, ValueError) as exc:
        raise InvalidProblemError(f"{name} is not numeric: {exc}") from exc
    if arr.ndim == 0:
        if dim is None:
            raise InvalidProblemError(
                f"{name} is a scalar; pass dim= to broadcast it"
            )
        arr = np.full(dim, float(arr), dtype=dtype)
    arr = np.ascontiguousarray(arr)
    if arr.ndim != 1:
        raise InvalidProblemError(
            f"{name} must be 1-D, got shape {arr.shape}"
        )
    if dim is not None and arr.shape[0] != dim:
        raise InvalidProblemError(
            f"{name} must have length {dim}, got {arr.shape[0]}"
        )
    return arr


def as_float_matrix(
    values: np.ndarray,
    *,
    name: str = "matrix",
    shape: tuple[int, int] | None = None,
    dtype: np.dtype | type = np.float64,
) -> np.ndarray:
    """Coerce *values* to a contiguous 2-D float matrix, validating shape."""
    try:
        arr = np.ascontiguousarray(values, dtype=dtype)
    except (TypeError, ValueError) as exc:
        raise InvalidProblemError(f"{name} is not numeric: {exc}") from exc
    if arr.ndim != 2:
        raise InvalidProblemError(
            f"{name} must be 2-D, got shape {arr.shape}"
        )
    if shape is not None and arr.shape != tuple(shape):
        raise InvalidProblemError(
            f"{name} must have shape {tuple(shape)}, got {arr.shape}"
        )
    return arr


def ensure_2d(arr: np.ndarray) -> np.ndarray:
    """View a 1-D vector as a single-row matrix; pass 2-D through unchanged."""
    a = np.asarray(arr)
    if a.ndim == 1:
        return a[np.newaxis, :]
    if a.ndim == 2:
        return a
    raise InvalidProblemError(f"expected 1-D or 2-D array, got shape {a.shape}")


def check_finite(arr: np.ndarray, *, name: str = "array") -> np.ndarray:
    """Raise :class:`InvalidProblemError` if *arr* contains NaN or inf."""
    if not np.all(np.isfinite(arr)):
        bad = int(np.size(arr) - np.count_nonzero(np.isfinite(arr)))
        raise InvalidProblemError(
            f"{name} contains {bad} non-finite value(s)"
        )
    return arr
