"""Statistics helpers for repeated experiment runs.

The paper reports averages over 10 repetitions; :func:`summarize_repeats`
reproduces that protocol and additionally records the spread so EXPERIMENTS.md
can state variability.  Speedups are reported as plain ratios (baseline over
candidate) as in the paper's Table 1.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Callable, Sequence

__all__ = [
    "RunStats",
    "geometric_mean",
    "percentile",
    "speedup",
    "summarize_repeats",
]


@dataclass(frozen=True)
class RunStats:
    """Summary of a repeated measurement.

    Attributes
    ----------
    mean, std, minimum, maximum:
        Usual summary statistics over the repeats.
    n:
        Number of repeats aggregated.
    """

    mean: float
    std: float
    minimum: float
    maximum: float
    n: int

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return f"{self.mean:.4g} ± {self.std:.2g} (n={self.n})"


def summarize_repeats(samples: Sequence[float]) -> RunStats:
    """Aggregate repeated measurements into a :class:`RunStats`.

    Uses the population standard deviation (ddof=0) because the repeats are
    the full set of observations for the experiment, not a sample of a wider
    population.  Raises :class:`ValueError` on an empty sequence.
    """
    vals = [float(s) for s in samples]
    if not vals:
        raise ValueError("cannot summarize zero repeats")
    n = len(vals)
    mean = sum(vals) / n
    var = sum((v - mean) ** 2 for v in vals) / n
    return RunStats(
        mean=mean,
        std=math.sqrt(var),
        minimum=min(vals),
        maximum=max(vals),
        n=n,
    )


def repeat_and_summarize(fn: Callable[[], float], repeats: int) -> RunStats:
    """Call *fn* ``repeats`` times and summarize the returned measurements."""
    if repeats < 1:
        raise ValueError("repeats must be >= 1")
    return summarize_repeats([fn() for _ in range(repeats)])


def speedup(baseline: float, candidate: float) -> float:
    """Speedup of *candidate* over *baseline* (``baseline / candidate``).

    Returns ``inf`` when the candidate time is zero, matching the convention
    that an instantaneous candidate is infinitely faster.
    """
    if candidate <= 0.0:
        return math.inf
    return float(baseline) / float(candidate)


def percentile(values: Sequence[float], q: float) -> float:
    """Nearest-rank percentile (inclusive), deterministic by construction.

    The serving benchmarks report p50/p99 latencies; nearest-rank avoids
    interpolation so the reported value is always an actually-observed
    latency and byte-stable across reruns.  *q* is in [0, 100].
    """
    if not 0.0 <= q <= 100.0:
        raise ValueError(f"percentile q must be in [0, 100], got {q}")
    vals = sorted(float(v) for v in values)
    if not vals:
        raise ValueError("cannot take a percentile of zero values")
    rank = math.ceil(q / 100.0 * len(vals))
    return vals[max(rank, 1) - 1]


def geometric_mean(values: Sequence[float]) -> float:
    """Geometric mean, the standard aggregate for speedup ratios."""
    vals = [float(v) for v in values]
    if not vals:
        raise ValueError("cannot take geometric mean of zero values")
    if any(v <= 0.0 for v in vals):
        raise ValueError("geometric mean requires strictly positive values")
    return math.exp(sum(math.log(v) for v in vals) / len(vals))
