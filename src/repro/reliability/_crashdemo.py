"""Subprocess target for the crash/resume smoke test.

Runs a checkpointed optimization with a real wall-clock sleep per
iteration so a parent process can SIGKILL it mid-run — the hard-crash
scenario the checkpoint format must survive (atomic writes mean any
``*.ckpt`` file on disk is complete, never a torn partial).

Used by ``tests/reliability/test_crash_resume.py`` and the CI smoke job::

    python -m repro.reliability._crashdemo --dir /tmp/ckpts --sleep 0.02

The parent watches the directory for checkpoints, kills the child, then
resumes in-process and checks the gbest trajectory against a golden
uninterrupted run.
"""

from __future__ import annotations

import argparse
import json
import sys
import time
from dataclasses import replace


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(prog="python -m repro.reliability._crashdemo")
    parser.add_argument("--dir", required=True, help="checkpoint directory")
    parser.add_argument("--problem", default="sphere")
    parser.add_argument("--dim", type=int, default=8)
    parser.add_argument("--particles", type=int, default=64)
    parser.add_argument("--iters", type=int, default=60)
    parser.add_argument("--every", type=int, default=1)
    parser.add_argument("--keep", type=int, default=5)
    parser.add_argument("--seed", type=int, default=123)
    parser.add_argument("--engine", default="fastpso")
    parser.add_argument(
        "--sleep",
        type=float,
        default=0.02,
        help="wall-clock seconds to sleep per iteration (kill window)",
    )
    args = parser.parse_args(argv)

    from repro.core.parameters import PAPER_DEFAULTS
    from repro.core.problem import Problem
    from repro.engines import make_engine
    from repro.reliability import CheckpointManager

    problem = Problem.from_benchmark(args.problem, args.dim)
    manager = CheckpointManager(args.dir, every=args.every, keep=args.keep)

    def heartbeat(t, state):
        print(f"iter {t} gbest {state.gbest_value:.17g}", flush=True)
        time.sleep(args.sleep)
        return False

    engine = make_engine(args.engine)
    result = engine.optimize(
        problem,
        n_particles=args.particles,
        max_iter=args.iters,
        params=replace(PAPER_DEFAULTS, seed=args.seed),
        record_history=True,
        callback=heartbeat,
        checkpoint=manager,
    )
    # Only reached when the parent never killed us: emit the golden result.
    print(
        json.dumps(
            {
                "best_value": result.best_value,
                "iterations": result.iterations,
                "elapsed_seconds": result.elapsed_seconds,
            }
        ),
        flush=True,
    )
    return 0


if __name__ == "__main__":
    sys.exit(main())
