"""Retry/failover policy: turn transient faults into completed runs.

:func:`run_with_recovery` wraps one optimization run in an attempt loop.
Each attempt runs on a **fresh engine** — a fresh engine is a fresh
simulated device, which is exactly what failover means here: a sticky
device-lost fault clears when the injector is re-attached to the new
context, an OOM'd allocator is gone with its device, and a corrupted buffer
never existed on the replacement.  Attempts resume from the newest readable
checkpoint, so completed work is kept; a run with no checkpoints restarts
from scratch (correct, just slower).

On the final attempt the policy can *degrade to a CPU engine*
(``cpu_fallback``, default ``fastpso-seq``): the CPU substrate is immune to
the injected GPU faults, and the fastpso family's bit-identical numerics
contract means the trajectory and final gbest are unchanged — only the
simulated timings differ.  The fallback first tries to restore the GPU
checkpoint (same dtypes on both substrates); if the snapshot is
incompatible (e.g. an fp16-storage variant), it reruns from scratch rather
than failing.

Everything the recovery machinery "spends" is accounted in **simulated
time** on a dedicated recovery clock with two sections — ``lost_work``
(simulated seconds computed since the last checkpoint and thrown away with
the failed device) and ``retry_backoff`` (the exponential backoff delays) —
which the batch layer merges into the fleet profile, so recovery overhead
shows up in the same report as kernel time.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core.parameters import PAPER_DEFAULTS, PSOParams
from repro.core.problem import Problem
from repro.core.results import OptimizeResult
from repro.core.stopping import StopCriterion
from repro.errors import CheckpointError, GpuSimError, InvalidParameterError
from repro.gpusim.clock import SimClock
from repro.reliability.checkpoint import CheckpointManager
from repro.reliability.faults import FaultInjector

__all__ = ["RetryPolicy", "RecoveryReport", "run_with_recovery"]


@dataclass(frozen=True)
class RetryPolicy:
    """How failures are retried: attempts, simulated backoff, CPU fallback.

    ``backoff_seconds`` grows by ``backoff_factor`` per failure (exponential
    backoff), charged to the recovery clock's ``retry_backoff`` section —
    simulated seconds, never wall time.  ``retry_on`` is the tuple of
    exception types considered transient; anything else propagates
    immediately (a bug should crash, not burn retries).
    """

    max_attempts: int = 4
    backoff_seconds: float = 1.0
    backoff_factor: float = 2.0
    cpu_fallback: str | None = "fastpso-seq"
    retry_on: tuple = (GpuSimError,)

    def __post_init__(self) -> None:
        if self.max_attempts < 1:
            raise InvalidParameterError(
                f"max_attempts must be >= 1, got {self.max_attempts}"
            )
        if self.backoff_seconds < 0:
            raise InvalidParameterError("backoff_seconds must be non-negative")
        if self.backoff_factor < 1.0:
            raise InvalidParameterError("backoff_factor must be >= 1")
        if not self.retry_on:
            raise InvalidParameterError("retry_on must name at least one type")

    def backoff_for(self, failure_index: int) -> float:
        """Simulated backoff after the Nth failure (0-based)."""
        return self.backoff_seconds * self.backoff_factor**failure_index


@dataclass
class RecoveryReport:
    """Outcome of :func:`run_with_recovery`: the result plus the price paid."""

    result: OptimizeResult | None
    attempts: int
    engines: tuple = field(repr=False, default=())
    errors: tuple[str, ...] = ()
    fell_back_to_cpu: bool = False
    #: Dedicated clock holding the ``lost_work``/``retry_backoff`` sections.
    recovery_clock: SimClock = field(repr=False, default_factory=SimClock)

    @property
    def succeeded(self) -> bool:
        return self.result is not None

    @property
    def error(self) -> str | None:
        """Last failure message, or ``None`` for a first-try success."""
        return self.errors[-1] if self.errors else None

    @property
    def engine(self):
        """The engine of the final attempt (its profile covers the result)."""
        return self.engines[-1] if self.engines else None

    @property
    def retries(self) -> int:
        return self.attempts - 1

    @property
    def lost_seconds(self) -> float:
        """Simulated seconds computed and discarded with failed attempts."""
        return self.recovery_clock.total("lost_work")

    @property
    def backoff_seconds(self) -> float:
        """Simulated seconds spent backing off between attempts."""
        return self.recovery_clock.total("retry_backoff")

    @property
    def recovery_seconds(self) -> float:
        """Total simulated recovery overhead (lost work + backoff)."""
        return self.recovery_clock.now


def run_with_recovery(
    *,
    engine_name: str,
    problem: Problem,
    n_particles: int,
    max_iter: int,
    params: PSOParams = PAPER_DEFAULTS,
    stop: StopCriterion | None = None,
    record_history: bool = False,
    engine_options: dict | None = None,
    policy: RetryPolicy | None = None,
    injector: FaultInjector | None = None,
    checkpoint: CheckpointManager | None = None,
) -> RecoveryReport:
    """Run one optimization under *policy*, retrying transient failures.

    Never raises for exceptions in ``policy.retry_on``: after the attempt
    budget is exhausted the report carries ``result=None`` and the error
    trail.  Other exceptions propagate unchanged.

    With a *checkpoint* manager, every attempt resumes from the newest
    readable snapshot and keeps checkpointing as it goes, so repeated
    faults only ever lose work since the last checkpoint.  The *injector*
    (if any) is re-attached to each fresh engine; its fault ordinals count
    across attempts, so one-shot faults don't re-fire on the retried run.
    """
    # Local import: repro.engines -> core.engine would otherwise complete a
    # cycle through this module when the package initialises.
    from repro.engines import make_engine

    policy = policy or RetryPolicy()
    options = dict(engine_options or {})
    recovery_clock = SimClock()
    engines: list = []
    errors: list[str] = []
    fell_back = False

    for attempt in range(1, policy.max_attempts + 1):
        name, opts = engine_name, options
        if (
            attempt == policy.max_attempts
            and attempt > 1
            and policy.cpu_fallback
            and policy.cpu_fallback != engine_name
        ):
            # Last chance: degrade to the CPU substrate, which the injected
            # GPU faults cannot touch.  Bit-identical numerics by contract.
            name, opts, fell_back = policy.cpu_fallback, {}, True

        engine = make_engine(name, **opts)
        engines.append(engine)
        if injector is not None:
            engine.attach_fault_injector(injector)
        restore = checkpoint.load_latest() if checkpoint is not None else None

        try:
            try:
                result = engine.optimize(
                    problem,
                    n_particles=n_particles,
                    max_iter=max_iter,
                    params=params,
                    stop=stop,
                    record_history=record_history,
                    checkpoint=checkpoint,
                    restore=restore,
                )
            except CheckpointError:
                if restore is None:
                    raise
                # Snapshot incompatible with this attempt's engine (e.g. a
                # CPU fallback reading an fp16-storage checkpoint): rerun
                # from scratch on yet another fresh engine instead of dying
                # on the recovery path itself.
                engine = make_engine(name, **opts)
                engines.append(engine)
                if injector is not None:
                    engine.attach_fault_injector(injector)
                result = engine.optimize(
                    problem,
                    n_particles=n_particles,
                    max_iter=max_iter,
                    params=params,
                    stop=stop,
                    record_history=record_history,
                    checkpoint=checkpoint,
                )
            return RecoveryReport(
                result=result,
                attempts=attempt,
                engines=tuple(engines),
                errors=tuple(errors),
                fell_back_to_cpu=fell_back,
                recovery_clock=recovery_clock,
            )
        except policy.retry_on as exc:
            errors.append(f"attempt {attempt} [{engine.name}]: {exc}")
            # Work since the newest checkpoint dies with this device.
            latest = (
                checkpoint.load_latest() if checkpoint is not None else None
            )
            banked = (
                float(latest.clock_state["now"]) if latest is not None else 0.0
            )
            with recovery_clock.section("lost_work"):
                recovery_clock.advance(max(0.0, engine.clock.now - banked))
            if attempt < policy.max_attempts:
                with recovery_clock.section("retry_backoff"):
                    recovery_clock.advance(policy.backoff_for(attempt - 1))

    return RecoveryReport(
        result=None,
        attempts=policy.max_attempts,
        engines=tuple(engines),
        errors=tuple(errors),
        fell_back_to_cpu=fell_back,
        recovery_clock=recovery_clock,
    )
