"""Retry/failover policy: turn transient faults into completed runs.

:func:`run_with_recovery` wraps one optimization run in an attempt loop.
Each attempt runs on a **fresh engine** — a fresh engine is a fresh
simulated device, which is exactly what failover means here: a sticky
device-lost fault clears when the injector is re-attached to the new
context, an OOM'd allocator is gone with its device, and a corrupted buffer
never existed on the replacement.  Attempts resume from the newest readable
checkpoint, so completed work is kept; a run with no checkpoints restarts
from scratch (correct, just slower).

On the final attempt the policy can *degrade to a CPU engine*
(``cpu_fallback``, default ``fastpso-seq``): the CPU substrate is immune to
the injected GPU faults, and the fastpso family's bit-identical numerics
contract means the trajectory and final gbest are unchanged — only the
simulated timings differ.  The fallback first tries to restore the GPU
checkpoint (same dtypes on both substrates); if the snapshot is
incompatible (e.g. an fp16-storage variant), it reruns from scratch rather
than failing.

Everything the recovery machinery "spends" is accounted in **simulated
time** on a dedicated recovery clock with two sections — ``lost_work``
(simulated seconds computed since the last checkpoint and thrown away with
the failed device) and ``retry_backoff`` (the exponential backoff delays) —
which the batch layer merges into the fleet profile, so recovery overhead
shows up in the same report as kernel time.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.core.parameters import PAPER_DEFAULTS, PSOParams
from repro.core.problem import Problem
from repro.core.results import OptimizeResult
from repro.core.stopping import StopCriterion
from repro.errors import (
    CheckpointError,
    CircuitOpenError,
    GpuSimError,
    InvalidParameterError,
    ReproError,
)
from repro.gpusim.clock import SimClock
from repro.reliability.checkpoint import CheckpointManager
from repro.reliability.faults import FaultInjector

__all__ = ["RetryPolicy", "RecoveryReport", "run_with_recovery"]


@dataclass(frozen=True)
class RetryPolicy:
    """How failures are retried: attempts, simulated backoff, CPU fallback.

    ``backoff_seconds`` grows by ``backoff_factor`` per failure (exponential
    backoff), charged to the recovery clock's ``retry_backoff`` section —
    simulated seconds, never wall time.  ``retry_on`` is the tuple of
    exception types considered transient; anything else propagates
    immediately (a bug should crash, not burn retries).
    """

    max_attempts: int = 4
    backoff_seconds: float = 1.0
    backoff_factor: float = 2.0
    cpu_fallback: str | None = "fastpso-seq"
    retry_on: tuple = (GpuSimError,)

    def __post_init__(self) -> None:
        if self.max_attempts < 1:
            raise InvalidParameterError(
                f"max_attempts must be >= 1, got {self.max_attempts}"
            )
        if self.backoff_seconds < 0:
            raise InvalidParameterError("backoff_seconds must be non-negative")
        if self.backoff_factor < 1.0:
            raise InvalidParameterError("backoff_factor must be >= 1")
        if not self.retry_on:
            raise InvalidParameterError("retry_on must name at least one type")

    def backoff_for(self, failure_index: int) -> float:
        """Simulated backoff after the Nth failure (0-based)."""
        return self.backoff_seconds * self.backoff_factor**failure_index

    def fallback_engine(self, engine_name: str) -> str | None:
        """The CPU engine to degrade to, or ``None`` when there is no
        *distinct* fallback (disabled, or the job already runs on it)."""
        if self.cpu_fallback and self.cpu_fallback != engine_name:
            return self.cpu_fallback
        return None


@dataclass
class RecoveryReport:
    """Outcome of :func:`run_with_recovery`: the result plus the price paid."""

    result: OptimizeResult | None
    attempts: int
    engines: tuple = field(repr=False, default=())
    errors: tuple[str, ...] = ()
    fell_back_to_cpu: bool = False
    #: Dedicated clock holding the ``lost_work``/``retry_backoff`` sections.
    recovery_clock: SimClock = field(repr=False, default_factory=SimClock)
    #: Structured ``ReproError.to_row()`` rows, one per failed attempt.
    error_rows: tuple = ()
    #: Simulated device the final attempt ran on (``None`` on CPU fallback
    #: or when no circuit-breaker fleet was supplied).
    device_index: int | None = None

    @property
    def succeeded(self) -> bool:
        return self.result is not None

    @property
    def error(self) -> str | None:
        """Last failure message, or ``None`` for a first-try success."""
        return self.errors[-1] if self.errors else None

    @property
    def engine(self):
        """The engine of the final attempt (its profile covers the result)."""
        return self.engines[-1] if self.engines else None

    @property
    def retries(self) -> int:
        return self.attempts - 1

    @property
    def lost_seconds(self) -> float:
        """Simulated seconds computed and discarded with failed attempts."""
        return self.recovery_clock.total("lost_work")

    @property
    def backoff_seconds(self) -> float:
        """Simulated seconds spent backing off between attempts."""
        return self.recovery_clock.total("retry_backoff")

    @property
    def recovery_seconds(self) -> float:
        """Total simulated recovery overhead (lost work + backoff)."""
        return self.recovery_clock.now


def run_with_recovery(
    *,
    engine_name: str,
    problem: Problem,
    n_particles: int,
    max_iter: int,
    params: PSOParams = PAPER_DEFAULTS,
    stop: StopCriterion | None = None,
    record_history: bool = False,
    engine_options: dict | None = None,
    policy: RetryPolicy | None = None,
    injector: FaultInjector | None = None,
    checkpoint: CheckpointManager | None = None,
    budget=None,
    guard=None,
    health=None,
    job_label: str | None = None,
    preferred_device: int | None = None,
    base_now: float = 0.0,
) -> RecoveryReport:
    """Run one optimization under *policy*, retrying transient failures.

    Never raises for exceptions in ``policy.retry_on``: after the attempt
    budget is exhausted the report carries ``result=None`` and the error
    trail.  Other exceptions propagate unchanged.

    With a *checkpoint* manager, every attempt resumes from the newest
    readable snapshot and keeps checkpointing as it goes, so repeated
    faults only ever lose work since the last checkpoint.  The *injector*
    (if any) is re-attached to each fresh engine; its fault ordinals count
    across attempts, so one-shot faults don't re-fire on the retried run.

    ``budget``/``guard`` pass straight through to ``engine.optimize`` —
    a budgeted attempt that expires returns a normal result with a
    ``status`` instead of raising, so it never burns a retry.

    ``health`` (a :class:`~repro.reliability.breaker.FleetHealth`) places
    each attempt on a device whose circuit breaker admits work: failures
    feed the breaker, so a device that keeps failing trips open and stops
    receiving attempts; when *every* breaker is open the run degrades
    straight to the CPU fallback (or fails with
    :class:`~repro.errors.CircuitOpenError` if there is none).  Breaker
    time is ``base_now`` plus this job's simulated recovery overhead, so
    trip/cool-down ordinals are deterministic for a fixed workload.
    """
    # Local import: repro.engines -> core.engine would otherwise complete a
    # cycle through this module when the package initialises.
    from repro.engines import make_engine

    policy = policy or RetryPolicy()
    options = dict(engine_options or {})
    recovery_clock = SimClock()
    engines: list = []
    errors: list[str] = []
    error_rows: list[dict] = []
    fell_back = False
    device: int | None = None

    def _annotate(exc, attempt):
        if isinstance(exc, ReproError):
            exc.with_context(job=job_label, device=device, attempt=attempt)
            error_rows.append(exc.to_row())

    for attempt in range(1, policy.max_attempts + 1):
        name, opts = engine_name, options
        on_cpu = False
        fallback = policy.fallback_engine(engine_name)
        if attempt == policy.max_attempts and attempt > 1 and fallback:
            # Last chance: degrade to the CPU substrate, which the injected
            # GPU faults cannot touch.  Bit-identical numerics by contract.
            name, opts, fell_back, on_cpu = fallback, {}, True, True

        device = None
        if health is not None and not on_cpu:
            device = health.pick_device(
                now=base_now + recovery_clock.now, preferred=preferred_device
            )
            if device is None:
                # Every breaker is open: no healthy device to place this
                # attempt on.  Degrade to the CPU substrate if the policy
                # allows it, otherwise record the refusal and give up.
                if fallback:
                    name, opts, fell_back, on_cpu = fallback, {}, True, True
                else:
                    exc = CircuitOpenError(
                        f"all {health.n_devices} device breaker(s) open; "
                        "no CPU fallback configured"
                    )
                    _annotate(exc, attempt)
                    errors.append(f"attempt {attempt}: {exc}")
                    break

        engine = make_engine(name, **opts)
        engines.append(engine)
        if injector is not None:
            engine.attach_fault_injector(injector)
        restore = checkpoint.load_latest() if checkpoint is not None else None

        try:
            try:
                result = engine.optimize(
                    problem,
                    n_particles=n_particles,
                    max_iter=max_iter,
                    params=params,
                    stop=stop,
                    record_history=record_history,
                    checkpoint=checkpoint,
                    restore=restore,
                    budget=budget,
                    guard=guard,
                )
            except CheckpointError:
                if restore is None:
                    raise
                # Snapshot incompatible with this attempt's engine (e.g. a
                # CPU fallback reading an fp16-storage checkpoint): rerun
                # from scratch on yet another fresh engine instead of dying
                # on the recovery path itself.
                engine = make_engine(name, **opts)
                engines.append(engine)
                if injector is not None:
                    engine.attach_fault_injector(injector)
                result = engine.optimize(
                    problem,
                    n_particles=n_particles,
                    max_iter=max_iter,
                    params=params,
                    stop=stop,
                    record_history=record_history,
                    checkpoint=checkpoint,
                    budget=budget,
                    guard=guard,
                )
            if health is not None and device is not None:
                health.record_success(
                    device,
                    now=base_now + recovery_clock.now + engine.clock.now,
                )
            return RecoveryReport(
                result=result,
                attempts=attempt,
                engines=tuple(engines),
                errors=tuple(errors),
                fell_back_to_cpu=fell_back,
                recovery_clock=recovery_clock,
                error_rows=tuple(error_rows),
                device_index=None if on_cpu else device,
            )
        except policy.retry_on as exc:
            _annotate(exc, attempt)
            errors.append(f"attempt {attempt} [{engine.name}]: {exc}")
            # Work since the newest checkpoint dies with this device.
            latest = (
                checkpoint.load_latest() if checkpoint is not None else None
            )
            banked = (
                float(latest.clock_state["now"]) if latest is not None else 0.0
            )
            with recovery_clock.section("lost_work"):
                recovery_clock.advance(max(0.0, engine.clock.now - banked))
            if health is not None and device is not None:
                health.record_failure(
                    device, now=base_now + recovery_clock.now
                )
            if attempt < policy.max_attempts:
                with recovery_clock.section("retry_backoff"):
                    recovery_clock.advance(policy.backoff_for(attempt - 1))

    return RecoveryReport(
        result=None,
        attempts=attempt,
        engines=tuple(engines),
        errors=tuple(errors),
        fell_back_to_cpu=fell_back,
        recovery_clock=recovery_clock,
        error_rows=tuple(error_rows),
        device_index=None,
    )
