"""Versioned on-disk checkpoints with atomic writes and rolling retention.

File format (version 1)::

    FASTPSO-CKPT 1 <crc32-hex> <payload-bytes>\\n
    <payload: UTF-8 JSON snapshot document>

The one-line ASCII header makes a checkpoint identifiable with ``head -1``
and carries everything needed to validate the payload without parsing it:
the format version, a CRC-32 of the payload bytes, and the payload length.
Writes go through :func:`repro.io.atomic_write_bytes` (tmp file +
``os.replace``), so a crash mid-write leaves the previous checkpoint
intact, never a truncated file — and the CRC catches the remaining failure
mode of a corrupted disk block.

:class:`CheckpointManager` adds the policy layer: *when* to checkpoint
(``every`` iterations), *where* (one directory, one file per retained
iteration) and *how many* to keep (``keep`` newest; older files are pruned
after each successful write).  ``load_latest`` walks the retained files
newest-first and silently skips corrupt ones, so a damaged newest
checkpoint degrades to the previous good one instead of failing the
resume.
"""

from __future__ import annotations

import json
import re
import zlib
from pathlib import Path

from repro.errors import CheckpointError, InvalidParameterError
from repro.io import atomic_write_bytes
from repro.reliability.snapshot import RunSnapshot

__all__ = [
    "CHECKPOINT_SCHEMA_VERSION",
    "CheckpointManager",
    "write_snapshot",
    "read_snapshot",
]

_MAGIC = "FASTPSO-CKPT"
#: Version written into every checkpoint header.
CHECKPOINT_SCHEMA_VERSION = 1

_FILE_RE = re.compile(r"^(?P<label>.+)-iter(?P<iteration>\d{7})\.ckpt$")


def write_snapshot(snapshot: RunSnapshot, path: str | Path) -> Path:
    """Serialize *snapshot* to *path* atomically; returns the path."""
    payload = json.dumps(
        snapshot.to_payload(), separators=(",", ":")
    ).encode("utf-8")
    crc = zlib.crc32(payload) & 0xFFFFFFFF
    header = (
        f"{_MAGIC} {CHECKPOINT_SCHEMA_VERSION} {crc:08x} {len(payload)}\n"
    ).encode("ascii")
    return atomic_write_bytes(path, header + payload)


def read_snapshot(path: str | Path) -> RunSnapshot:
    """Read and verify a checkpoint file written by :func:`write_snapshot`.

    Raises :class:`~repro.errors.CheckpointError` on a bad magic, an
    unsupported version, a truncated payload or a CRC mismatch.
    """
    path = Path(path)
    try:
        raw = path.read_bytes()
    except OSError as exc:
        raise CheckpointError(f"cannot read checkpoint {path}: {exc}") from exc
    newline = raw.find(b"\n")
    if newline < 0:
        raise CheckpointError(f"{path}: not a checkpoint (no header line)")
    parts = raw[:newline].decode("ascii", errors="replace").split()
    if len(parts) != 4 or parts[0] != _MAGIC:
        raise CheckpointError(f"{path}: not a {_MAGIC} file")
    try:
        version = int(parts[1])
        expected_crc = int(parts[2], 16)
        expected_len = int(parts[3])
    except ValueError as exc:
        raise CheckpointError(f"{path}: malformed header") from exc
    if version != CHECKPOINT_SCHEMA_VERSION:
        raise CheckpointError(
            f"{path}: checkpoint version {version} unsupported "
            f"(this build reads {CHECKPOINT_SCHEMA_VERSION})"
        )
    payload = raw[newline + 1 :]
    if len(payload) != expected_len:
        raise CheckpointError(
            f"{path}: truncated payload ({len(payload)} of "
            f"{expected_len} bytes)"
        )
    actual_crc = zlib.crc32(payload) & 0xFFFFFFFF
    if actual_crc != expected_crc:
        raise CheckpointError(
            f"{path}: CRC mismatch (header {expected_crc:08x}, "
            f"payload {actual_crc:08x})"
        )
    try:
        document = json.loads(payload.decode("utf-8"))
    except (UnicodeDecodeError, json.JSONDecodeError) as exc:
        raise CheckpointError(f"{path}: payload is not JSON: {exc}") from exc
    return RunSnapshot.from_payload(document)


class CheckpointManager:
    """Checkpoint policy for one run: cadence, location, retention.

    Parameters
    ----------
    directory:
        Where checkpoint files live; created if missing.
    every:
        Checkpoint cadence in completed iterations (``every=10`` writes
        after iterations 10, 20, ...).
    keep:
        Number of newest checkpoints retained; older ones are deleted after
        each successful write.  ``keep >= 2`` tolerates a corrupted newest
        file (``load_latest`` falls back).
    label:
        Filename prefix, so several runs can share one directory.
    """

    def __init__(
        self,
        directory: str | Path,
        *,
        every: int = 10,
        keep: int = 3,
        label: str = "run",
    ) -> None:
        if every < 1:
            raise InvalidParameterError(f"every must be >= 1, got {every}")
        if keep < 1:
            raise InvalidParameterError(f"keep must be >= 1, got {keep}")
        if not label or "/" in label:
            raise InvalidParameterError(
                f"label must be a non-empty filename fragment, got {label!r}"
            )
        self.directory = Path(directory)
        try:
            self.directory.mkdir(parents=True, exist_ok=True)
        except OSError as exc:
            # A read-only or vanished checkpoint volume is a reliability
            # failure, not a programming error: surface it as the same
            # type every checkpoint consumer already handles.
            raise CheckpointError(
                f"cannot create checkpoint directory {self.directory}: {exc}"
            ) from exc
        self.every = int(every)
        self.keep = int(keep)
        self.label = label
        #: Checkpoints written through this manager (monotonic counter).
        self.saves = 0

    # -- policy ---------------------------------------------------------------
    def due(self, completed_iterations: int) -> bool:
        """Whether a checkpoint is due after *completed_iterations*."""
        return completed_iterations > 0 and completed_iterations % self.every == 0

    def path_for(self, iteration: int) -> Path:
        return self.directory / f"{self.label}-iter{iteration:07d}.ckpt"

    # -- persistence ----------------------------------------------------------
    def save(self, snapshot: RunSnapshot) -> Path:
        """Write *snapshot*, then prune beyond the retention window."""
        path = write_snapshot(snapshot, self.path_for(snapshot.iteration))
        self.saves += 1
        self._prune()
        return path

    def checkpoints(self) -> list[Path]:
        """Retained checkpoint files for this label, oldest first."""
        found = []
        for path in self.directory.iterdir():
            m = _FILE_RE.match(path.name)
            if m and m.group("label") == self.label:
                found.append((int(m.group("iteration")), path))
        found.sort()
        return [path for _, path in found]

    def latest_path(self) -> Path | None:
        """Newest retained checkpoint file, or ``None``."""
        files = self.checkpoints()
        return files[-1] if files else None

    def load_latest(self) -> RunSnapshot | None:
        """Newest *readable* snapshot, skipping corrupt files; ``None`` if none.

        A file that fails the CRC/format checks is left in place (for post
        mortems) and the next-newest is tried — the rolling retention
        window is what makes this fallback possible.
        """
        for path in reversed(self.checkpoints()):
            try:
                return read_snapshot(path)
            except CheckpointError:
                continue
        return None

    def _prune(self) -> None:
        files = self.checkpoints()
        for path in files[: -self.keep]:
            try:
                path.unlink()
            except OSError:
                pass  # retention is best-effort; never fail the run for it

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"<CheckpointManager dir={str(self.directory)!r} "
            f"every={self.every} keep={self.keep} label={self.label!r}>"
        )
