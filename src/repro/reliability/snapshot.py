"""Complete run-state capture for checkpoint/resume.

A :class:`RunSnapshot` holds everything a resumed run needs to continue
**bit-identically**: the swarm arrays (raw bytes, not decimal round-trips),
the Philox stream position (counter-based RNG makes a seek exact — see
:meth:`repro.gpusim.rng.ParallelRNG.seek`), the simulated clock with its
per-section totals, the hyper-parameter set including the inertia-schedule
spec, and the stopping criterion's spec plus mutable state.

Serialization is JSON with arrays encoded as base64 raw bytes, so float32
and float64 values survive exactly (JSON decimal text would also round-trip
via repr, but raw bytes make the bit-exactness contract self-evident and
cheap).  Scalars (clock seconds, gbest value) rely on Python's shortest
round-trip float repr, which is exact by construction.

The snapshot intentionally stores *specs*, not pickles: a checkpoint is a
plain versioned document that any build of the library can read, and
restoring never executes arbitrary code.  The price is that only built-in
problems (benchmark names), built-in stop criteria and registry inertia
schedules are serializable — custom callables raise
:class:`~repro.errors.CheckpointError` at capture time, when the caller can
still react.
"""

from __future__ import annotations

import base64
from dataclasses import asdict, dataclass, fields

import numpy as np

from repro.core.parameters import PSOParams
from repro.core.problem import Problem
from repro.core.schedules import _SCHEDULES, InertiaSchedule
from repro.core.stopping import (
    AnyOf,
    MaxIterations,
    StallStop,
    StopCriterion,
    TargetValue,
)
from repro.core.swarm import SwarmState
from repro.errors import CheckpointError

__all__ = [
    "RunSnapshot",
    "capture_live_run",
    "capture_run",
    "ensure_capturable",
    "params_to_spec",
    "params_from_spec",
    "stop_to_spec",
    "stop_from_spec",
]

#: Version of the snapshot *payload* layout (the checkpoint file framing has
#: its own version in the header; see :mod:`repro.reliability.checkpoint`).
SNAPSHOT_VERSION = 1

_SWARM_ARRAYS = ("positions", "velocities", "pbest_positions", "pbest_values")


# -- array codec: raw bytes, bit-exact ---------------------------------------
def _encode_array(a: np.ndarray) -> dict:
    a = np.ascontiguousarray(a)
    return {
        "dtype": a.dtype.str,
        "shape": list(a.shape),
        "data": base64.b64encode(a.tobytes()).decode("ascii"),
    }


def _decode_array(spec: dict) -> np.ndarray:
    try:
        raw = base64.b64decode(spec["data"])
        arr = np.frombuffer(raw, dtype=np.dtype(spec["dtype"]))
        return arr.reshape(tuple(spec["shape"])).copy()
    except (KeyError, TypeError, ValueError) as exc:
        raise CheckpointError(f"malformed array in snapshot: {exc}") from exc


# -- spec round-trips ---------------------------------------------------------
def _schedule_to_spec(schedule: InertiaSchedule) -> dict:
    for name, cls in _SCHEDULES.items():
        if type(schedule) is cls:
            return {"name": name, "config": asdict(schedule)}
    raise CheckpointError(
        f"inertia schedule {type(schedule).__name__} is not a registry "
        "schedule and cannot be checkpointed"
    )


def _schedule_from_spec(spec: dict) -> InertiaSchedule:
    from repro.core.schedules import make_schedule

    return make_schedule(spec["name"], **spec["config"])


def params_to_spec(params: PSOParams) -> dict:
    """JSON-safe dictionary of a :class:`PSOParams` (schedules by name)."""
    spec = {
        f.name: getattr(params, f.name)
        for f in fields(PSOParams)
        if f.name != "inertia_schedule"
    }
    if params.inertia_schedule is not None:
        spec["inertia_schedule"] = _schedule_to_spec(params.inertia_schedule)
    else:
        spec["inertia_schedule"] = None
    return spec


def params_from_spec(spec: dict) -> PSOParams:
    """Inverse of :func:`params_to_spec`."""
    spec = dict(spec)
    schedule_spec = spec.pop("inertia_schedule", None)
    schedule = (
        _schedule_from_spec(schedule_spec) if schedule_spec is not None else None
    )
    return PSOParams(inertia_schedule=schedule, **spec)


def stop_to_spec(stop: StopCriterion) -> dict:
    """Serializable spec of a built-in stop criterion (recursive for AnyOf)."""
    if type(stop) is MaxIterations:
        return {"kind": "max_iterations", "config": {"max_iter": stop.max_iter}}
    if type(stop) is TargetValue:
        return {
            "kind": "target_value",
            "config": {"target": stop.target, "tolerance": stop.tolerance},
        }
    if type(stop) is StallStop:
        return {
            "kind": "stall",
            "config": {"patience": stop.patience, "min_delta": stop.min_delta},
        }
    if type(stop) is AnyOf:
        return {
            "kind": "any_of",
            "config": {"members": [stop_to_spec(c) for c in stop.criteria]},
        }
    raise CheckpointError(
        f"stop criterion {type(stop).__name__} is not a built-in and "
        "cannot be checkpointed"
    )


def stop_from_spec(spec: dict) -> StopCriterion:
    """Inverse of :func:`stop_to_spec` (state is loaded separately)."""
    kind = spec.get("kind")
    config = spec.get("config", {})
    if kind == "max_iterations":
        return MaxIterations(int(config["max_iter"]))
    if kind == "target_value":
        return TargetValue(float(config["target"]), float(config["tolerance"]))
    if kind == "stall":
        return StallStop(int(config["patience"]), float(config["min_delta"]))
    if kind == "any_of":
        return AnyOf(tuple(stop_from_spec(m) for m in config["members"]))
    raise CheckpointError(f"unknown stop criterion kind {kind!r} in snapshot")


# -- the snapshot -------------------------------------------------------------
@dataclass
class RunSnapshot:
    """Everything needed to continue an interrupted run bit-identically.

    ``iteration`` counts *completed* iterations: a snapshot taken after
    iteration ``t`` (0-based) has ``iteration == t + 1`` and a resumed run
    continues at loop index ``t + 1``.
    """

    engine: str
    problem: str
    dim: int
    n_particles: int
    max_iter: int
    iteration: int
    record_history: bool
    setup_seconds: float
    params_spec: dict
    rng_state: dict
    clock_state: dict
    stop_spec: dict | None
    stop_state: dict | None
    swarm: SwarmState
    history_state: dict | None
    #: Budget the run was given (``Budget.to_spec()``), or ``None``.  The
    #: state carries wall-clock seconds already consumed so a resumed run
    #: honours the *remaining* deadline.  Optional with defaults so
    #: snapshots written before budgets existed still load.
    budget_spec: dict | None = None
    budget_state: dict | None = None

    # -- serialization ------------------------------------------------------
    def to_payload(self) -> dict:
        swarm = {
            name: _encode_array(getattr(self.swarm, name))
            for name in _SWARM_ARRAYS
        }
        swarm["gbest_value"] = float(self.swarm.gbest_value)
        swarm["gbest_index"] = int(self.swarm.gbest_index)
        swarm["gbest_position"] = _encode_array(self.swarm.gbest_position)
        return {
            "snapshot_version": SNAPSHOT_VERSION,
            "engine": self.engine,
            "problem": self.problem,
            "dim": self.dim,
            "n_particles": self.n_particles,
            "max_iter": self.max_iter,
            "iteration": self.iteration,
            "record_history": self.record_history,
            "setup_seconds": self.setup_seconds,
            "params": self.params_spec,
            "rng": self.rng_state,
            "clock": self.clock_state,
            "stop_spec": self.stop_spec,
            "stop_state": self.stop_state,
            "swarm": swarm,
            "history": self.history_state,
            "budget_spec": self.budget_spec,
            "budget_state": self.budget_state,
        }

    @classmethod
    def from_payload(cls, payload: dict) -> "RunSnapshot":
        version = payload.get("snapshot_version")
        if version != SNAPSHOT_VERSION:
            raise CheckpointError(
                f"unsupported snapshot version {version!r} "
                f"(this build reads {SNAPSHOT_VERSION})"
            )
        try:
            raw = payload["swarm"]
            swarm = SwarmState(
                positions=_decode_array(raw["positions"]),
                velocities=_decode_array(raw["velocities"]),
                pbest_values=_decode_array(raw["pbest_values"]),
                pbest_positions=_decode_array(raw["pbest_positions"]),
                gbest_value=float(raw["gbest_value"]),
                gbest_index=int(raw["gbest_index"]),
                gbest_position=_decode_array(raw["gbest_position"]),
            )
            return cls(
                engine=str(payload["engine"]),
                problem=str(payload["problem"]),
                dim=int(payload["dim"]),
                n_particles=int(payload["n_particles"]),
                max_iter=int(payload["max_iter"]),
                iteration=int(payload["iteration"]),
                record_history=bool(payload["record_history"]),
                setup_seconds=float(payload["setup_seconds"]),
                params_spec=dict(payload["params"]),
                rng_state=dict(payload["rng"]),
                clock_state=dict(payload["clock"]),
                stop_spec=payload["stop_spec"],
                stop_state=payload["stop_state"],
                swarm=swarm,
                history_state=payload["history"],
                budget_spec=payload.get("budget_spec"),
                budget_state=payload.get("budget_state"),
            )
        except (KeyError, TypeError, ValueError) as exc:
            raise CheckpointError(f"malformed snapshot payload: {exc}") from exc

    # -- reconstruction helpers ---------------------------------------------
    def make_params(self) -> PSOParams:
        """The :class:`PSOParams` the checkpointed run was using."""
        return params_from_spec(self.params_spec)

    def make_stop(self) -> StopCriterion | None:
        """A fresh stop criterion matching the checkpointed run's spec.

        State is *not* loaded here — ``Engine.optimize(restore=...)`` loads
        it after calling ``reset()``, so the criterion observes the resumed
        iterations exactly as the original would have.
        """
        return stop_from_spec(self.stop_spec) if self.stop_spec else None

    def make_problem(self) -> Problem:
        """Rebuild the benchmark problem the snapshot refers to."""
        return Problem.from_benchmark(self.problem, self.dim)

    def make_budget(self):
        """The :class:`~repro.core.budget.Budget` of the checkpointed run."""
        if self.budget_spec is None:
            return None
        from repro.core.budget import Budget

        return Budget.from_spec(self.budget_spec)

    # -- restore-side checks --------------------------------------------------
    def validate_for(
        self,
        *,
        problem: Problem,
        n_particles: int,
        max_iter: int,
        params: PSOParams,
        record_history: bool,
    ) -> None:
        """Reject resumes whose run shape differs from the capture."""
        if self.iteration >= self.max_iter:
            raise CheckpointError(
                f"snapshot is already complete ({self.iteration}/"
                f"{self.max_iter} iterations); nothing to resume"
            )
        if problem.name != self.problem:
            raise CheckpointError(
                f"snapshot is for problem {self.problem!r}, run provides "
                f"{problem.name!r}"
            )
        if problem.dim != self.dim:
            raise CheckpointError(
                f"snapshot is {self.dim}-dimensional, problem is "
                f"{problem.dim}-dimensional"
            )
        if n_particles != self.n_particles:
            raise CheckpointError(
                f"snapshot has {self.n_particles} particles, run requests "
                f"{n_particles}"
            )
        if max_iter != self.max_iter:
            # max_iter feeds run progress (adaptive velocity, schedules), so
            # changing it would silently alter the remaining trajectory.
            raise CheckpointError(
                f"snapshot budget is {self.max_iter} iterations, run "
                f"requests {max_iter}"
            )
        if params_to_spec(params) != self.params_spec:
            raise CheckpointError(
                "run hyper-parameters differ from the checkpointed ones; "
                "resume with snapshot.make_params()"
            )
        if record_history != self.record_history:
            raise CheckpointError(
                f"snapshot was captured with record_history="
                f"{self.record_history}, run requests {record_history}"
            )

    def apply_to(self, state: SwarmState) -> None:
        """Overwrite a freshly initialised swarm with the captured state.

        Shape *and* dtype must match exactly — a float16-storage engine
        cannot silently absorb a float32 checkpoint (the cast would break
        bit-identity), and vice versa.
        """
        for name in _SWARM_ARRAYS:
            src = getattr(self.swarm, name)
            dst = getattr(state, name)
            if dst.shape != src.shape or dst.dtype != src.dtype:
                raise CheckpointError(
                    f"snapshot array {name!r} is {src.dtype}{src.shape}, "
                    f"engine state is {dst.dtype}{dst.shape}"
                )
            np.copyto(dst, src)
        state.gbest_value = self.swarm.gbest_value
        state.gbest_index = self.swarm.gbest_index
        state.gbest_position = self.swarm.gbest_position.copy()


def ensure_capturable(problem: Problem) -> None:
    """Raise :class:`CheckpointError` if *problem* cannot be snapshotted.

    Called at ``optimize()`` entry when checkpointing is requested, so a
    run with a custom (non-benchmark) objective fails immediately instead
    of at the first due checkpoint mid-run.
    """
    from repro.core.schema import BuiltinEvaluation
    from repro.functions.base import resolve_function

    if not isinstance(problem.evaluator, BuiltinEvaluation):
        raise CheckpointError(
            "only benchmark problems can be checkpointed (custom objectives "
            "cannot be rebuilt from a snapshot document)"
        )
    try:
        resolve_function(problem.name)
    except Exception as exc:
        raise CheckpointError(
            f"problem {problem.name!r} is not a registered benchmark"
        ) from exc


def capture_live_run(run) -> RunSnapshot:
    """Snapshot an in-flight :class:`~repro.core.engine.EngineRun`.

    Captures the run at its current iteration (the iterations completed so
    far) — the periodic checkpoint path and checkpoint-backed cancellation
    (:mod:`repro.serve`) both go through here, so a cancelled job's
    snapshot resumes exactly like a crash-recovery one.
    """
    return capture_run(
        engine_name=run.engine.name,
        problem=run.problem,
        params=run.params,
        n_particles=run.n_particles,
        max_iter=run.max_iter,
        iteration=run.iterations_run,
        record_history=run.record_history,
        rng=run.rng,
        clock=run.engine.clock,
        setup_seconds=run.setup_seconds,
        stop=run.stop,
        state=run.state,
        history=run.history,
        budget=run.budget,
        budget_tracker=run.tracker,
    )


def capture_run(
    *,
    engine_name: str,
    problem: Problem,
    params: PSOParams,
    n_particles: int,
    max_iter: int,
    iteration: int,
    record_history: bool,
    rng,
    clock,
    setup_seconds: float,
    stop: StopCriterion | None,
    state: SwarmState,
    history,
    budget=None,
    budget_tracker=None,
) -> RunSnapshot:
    """Snapshot a live run (called by ``Engine.optimize`` between iterations).

    Only benchmark problems (constructed by name) can be captured: a custom
    callable objective cannot be rebuilt from a plain document, so the
    checkpoint would be unusable — fail at capture, not at resume.
    """
    ensure_capturable(problem)

    return RunSnapshot(
        engine=engine_name,
        problem=problem.name,
        dim=problem.dim,
        n_particles=n_particles,
        max_iter=max_iter,
        iteration=iteration,
        record_history=record_history,
        setup_seconds=float(setup_seconds),
        params_spec=params_to_spec(params),
        rng_state={
            "seed": rng.seed,
            "stream_id": rng.stream_id,
            "position": rng.position,
        },
        clock_state={
            "now": float(clock.now),
            "section_totals": dict(clock.section_totals),
        },
        stop_spec=stop_to_spec(stop) if stop is not None else None,
        stop_state=stop.state_dict() if stop is not None else None,
        swarm=state.copy(),
        history_state=(
            {
                "gbest_values": list(history.gbest_values),
                "mean_pbest_values": list(history.mean_pbest_values),
            }
            if history is not None
            else None
        ),
        budget_spec=budget.to_spec() if budget is not None else None,
        budget_state=(
            budget_tracker.state_dict() if budget_tracker is not None else None
        ),
    )
