"""Per-device circuit breakers for the simulated fleet.

A device that keeps failing under fault injection should stop receiving
work instead of being retried into the ground.  Each simulated device gets
a :class:`CircuitBreaker` with the classic three-state machine:

* **closed** — healthy; work flows.  Consecutive failures count up; at
  ``failure_threshold`` the breaker trips **open**.
* **open** — no work is placed on the device until ``cooldown_seconds`` of
  *simulated* time have passed since the trip.
* **half-open** — after the cool-down one probe attempt is allowed
  through; success closes the breaker, failure re-opens it (and restarts
  the cool-down).

All transitions happen in simulated time, so a drill with a fixed seed
reproduces the exact same trip/close ordinals run after run.
:class:`FleetHealth` aggregates one breaker per device, picks the next
healthy device for an attempt, and keeps an ordinal-numbered event log that
feeds the fleet profile.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import ConfigurationError

__all__ = ["BreakerPolicy", "CircuitBreaker", "FleetHealth"]


@dataclass(frozen=True)
class BreakerPolicy:
    """Trip/cool-down configuration shared by a fleet's breakers."""

    #: Consecutive failures that trip a closed breaker open.
    failure_threshold: int = 3
    #: Simulated seconds an open breaker waits before allowing a probe.
    cooldown_seconds: float = 30.0

    def __post_init__(self) -> None:
        if self.failure_threshold < 1:
            raise ConfigurationError(
                f"failure_threshold must be >= 1, got {self.failure_threshold}"
            )
        if self.cooldown_seconds <= 0:
            raise ConfigurationError(
                f"cooldown_seconds must be > 0, got {self.cooldown_seconds}"
            )


class CircuitBreaker:
    """Three-state breaker for one device (closed → open → half-open)."""

    def __init__(self, policy: BreakerPolicy) -> None:
        self.policy = policy
        self.state = "closed"
        self.failures = 0  # consecutive, in the closed state
        self.opened_at: float | None = None

    def allows(self, now: float) -> bool:
        """Whether an attempt may be placed on this device at *now*.

        An open breaker whose cool-down has elapsed transitions to
        half-open (and admits exactly the probe attempt that asked).
        """
        if self.state == "open":
            assert self.opened_at is not None
            if now - self.opened_at >= self.policy.cooldown_seconds:
                self.state = "half_open"
        return self.state != "open"

    def record_success(self, now: float) -> bool:
        """An attempt on this device succeeded; True if this closed it."""
        reopened = self.state == "half_open"
        self.state = "closed"
        self.failures = 0
        self.opened_at = None
        return reopened

    def record_failure(self, now: float) -> bool:
        """An attempt on this device failed; True if this tripped it open."""
        if self.state == "half_open":
            # The probe failed: straight back to open, fresh cool-down.
            self.state = "open"
            self.opened_at = now
            return True
        self.failures += 1
        if self.failures >= self.policy.failure_threshold:
            self.state = "open"
            self.opened_at = now
            self.failures = 0
            return True
        return False


class FleetHealth:
    """One breaker per simulated device plus a deterministic event log.

    The scheduler/retry layer asks :meth:`pick_device` for the next
    attempt's placement: the preferred device if its breaker admits work,
    otherwise the lowest-numbered healthy device (deterministic — no
    randomness, so a drill re-run reproduces identical placements).  When
    every breaker is open, ``None`` comes back and the caller falls over
    to the CPU or records a failure.
    """

    def __init__(
        self, n_devices: int, policy: BreakerPolicy | None = None
    ) -> None:
        if n_devices < 1:
            raise ConfigurationError(
                f"need at least one device, got {n_devices}"
            )
        self.policy = policy or BreakerPolicy()
        self.breakers = [CircuitBreaker(self.policy) for _ in range(n_devices)]
        self.events: list[dict] = []
        self._ordinal = 0

    @property
    def n_devices(self) -> int:
        return len(self.breakers)

    def _log(self, device: int, event: str, now: float) -> None:
        self.events.append(
            {
                "ordinal": self._ordinal,
                "device": device,
                "event": event,
                "sim_seconds": round(float(now), 9),
            }
        )
        self._ordinal += 1

    def pick_device(
        self, *, now: float, preferred: int | None = None
    ) -> int | None:
        """The device the next attempt should run on, or ``None`` if all
        breakers are open."""
        order = list(range(self.n_devices))
        if preferred is not None and 0 <= preferred < self.n_devices:
            order.remove(preferred)
            order.insert(0, preferred)
        for device in order:
            if self.breakers[device].allows(now):
                return device
        return None

    def record_success(self, device: int, *, now: float) -> None:
        if self.breakers[device].record_success(now):
            self._log(device, "close", now)

    def record_failure(self, device: int, *, now: float) -> None:
        if self.breakers[device].record_failure(now):
            self._log(device, "open", now)

    def open_devices(self) -> tuple[int, ...]:
        return tuple(
            i for i, b in enumerate(self.breakers) if b.state == "open"
        )

    def to_rows(self) -> list[dict]:
        """The breaker event log (trip/close ordinals) for the profile."""
        return [dict(row) for row in self.events]
