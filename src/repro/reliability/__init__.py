"""repro.reliability: checkpoint/resume, fault injection, retry/failover.

The reliability subsystem makes long simulated runs and batch fleets
survivable without giving up the repo's determinism contract:

* :mod:`~repro.reliability.snapshot` / :mod:`~repro.reliability.checkpoint`
  — complete run-state capture (swarm arrays as raw bytes, Philox counter,
  simulated clock, schedule and stop-criterion state) in versioned,
  CRC-protected, atomically-written files; a resumed run is bit-identical
  to the uninterrupted one.
* :mod:`~repro.reliability.faults` — seeded, deterministic fault injection
  into the simulated GPU substrate: launch failures, sticky device loss,
  stream stalls, allocator OOM, memory corruption of named buffers.
* :mod:`~repro.reliability.retry` — retry with exponential backoff in
  *simulated* time, resume-from-checkpoint, and failover to a fresh
  simulated device or the CPU engine family.

:func:`resume` is the front door for continuing an interrupted run from a
checkpoint file (or the newest checkpoint in a directory).
"""

from __future__ import annotations

from pathlib import Path

from repro.errors import CheckpointError
from repro.reliability.checkpoint import (
    CHECKPOINT_SCHEMA_VERSION,
    CheckpointManager,
    read_snapshot,
    write_snapshot,
)
from repro.reliability.breaker import (
    BreakerPolicy,
    CircuitBreaker,
    FleetHealth,
)
from repro.reliability.faults import (
    FAULT_KINDS,
    FaultInjector,
    FaultPlan,
    FaultSpec,
)
from repro.reliability.guard import GuardEvent, SwarmHealthGuard
from repro.reliability.retry import (
    RecoveryReport,
    RetryPolicy,
    run_with_recovery,
)
from repro.reliability.snapshot import (
    RunSnapshot,
    capture_live_run,
    capture_run,
)

__all__ = [
    "BreakerPolicy",
    "CHECKPOINT_SCHEMA_VERSION",
    "CheckpointManager",
    "CircuitBreaker",
    "FAULT_KINDS",
    "FaultInjector",
    "FaultPlan",
    "FaultSpec",
    "FleetHealth",
    "GuardEvent",
    "RecoveryReport",
    "RetryPolicy",
    "RunSnapshot",
    "SwarmHealthGuard",
    "capture_live_run",
    "capture_run",
    "read_snapshot",
    "resume",
    "run_with_recovery",
    "write_snapshot",
]

_CKPT_SUFFIX = ".ckpt"


def _resolve_snapshot(path: str | Path) -> RunSnapshot:
    """Load a snapshot from a checkpoint file, or the newest one in a dir."""
    path = Path(path)
    if not path.is_dir():
        return read_snapshot(path)
    candidates = sorted(
        path.glob(f"*{_CKPT_SUFFIX}"), key=lambda p: p.name, reverse=True
    )
    for candidate in candidates:
        try:
            return read_snapshot(candidate)
        except CheckpointError:
            continue
    raise CheckpointError(f"no readable checkpoint found in {path}")


def resume(
    path: str | Path,
    *,
    engine: str | None = None,
    checkpoint=None,
    callback=None,
    **engine_options: object,
):
    """Continue an interrupted run from a checkpoint; returns its result.

    *path* is a checkpoint file or a directory of them (the newest readable
    one wins — filenames sort by iteration).  The run's problem,
    hyper-parameters, stop criterion and remaining budget are all rebuilt
    from the snapshot; the continuation is bit-identical to the
    uninterrupted run.

    ``engine`` overrides the engine the snapshot was captured on (any
    member of the bit-identical fastpso family works, provided its storage
    dtypes match the snapshot's); ``engine_options`` go to the factory.
    Pass ``checkpoint`` (a :class:`CheckpointManager` or a directory path)
    to keep checkpointing as the resumed run proceeds.
    """
    from repro.engines import make_engine

    snapshot = _resolve_snapshot(path)
    eng = make_engine(engine or snapshot.engine, **engine_options)
    return eng.optimize(
        snapshot.make_problem(),
        n_particles=snapshot.n_particles,
        max_iter=snapshot.max_iter,
        params=snapshot.make_params(),
        stop=snapshot.make_stop(),
        record_history=snapshot.record_history,
        callback=callback,
        checkpoint=checkpoint,
        restore=snapshot,
        budget=snapshot.make_budget(),
    )
