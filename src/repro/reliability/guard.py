"""Swarm health guards: NaN/Inf and velocity-explosion detection.

The PSO literature treats divergence detection and re-seeding as a
first-class reliability concern: a swarm whose velocities explode (or whose
objective returns NaN) burns its whole iteration budget producing garbage
while still "succeeding" from the scheduler's point of view.  A
:class:`SwarmHealthGuard` is an opt-in per-iteration check the engine loop
calls after each completed iteration:

* **non-finite positions / velocities** — offending particles are
  deterministically re-seeded uniformly inside the search box, drawing from
  *the run's own Philox stream* (so the repaired trajectory is a pure
  function of the seed), with their velocities zeroed;
* **non-finite personal bests** — reset to ``+inf`` value / current
  position, so the particle re-claims a finite best on its next
  improvement;
* **velocity explosion** — any component beyond ``velocity_factor`` domain
  widths is clamped back to that limit (sign-preserving);
* **poisoned global best** — recomputed from the repaired personal bests.

The guard is **off by default** and consumes RNG draws *only when it
intervenes*: a guarded run of a healthy swarm is bit-identical to an
unguarded one, which is what keeps the pinned golden trajectories valid.
Every intervention is recorded as a :class:`GuardEvent` for the run report.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.errors import ConfigurationError

__all__ = ["GuardEvent", "SwarmHealthGuard"]


@dataclass(frozen=True)
class GuardEvent:
    """One intervention by the guard."""

    iteration: int
    kind: str  # "reseed" | "clamp" | "pbest_reset" | "gbest_recompute"
    count: int

    def to_row(self) -> dict:
        return {
            "iteration": self.iteration,
            "kind": self.kind,
            "count": self.count,
        }


class SwarmHealthGuard:
    """Per-iteration divergence detector and deterministic repairer.

    ``velocity_factor``
        A velocity component larger than this many domain widths counts as
        an explosion and is clamped.
    ``reseed``
        Re-seed non-finite particles from the run's RNG (``True``) or only
        zero them at the box centre (``False``).
    ``check_every``
        Inspect every *k*-th iteration (1 = every iteration).
    """

    def __init__(
        self,
        *,
        velocity_factor: float = 8.0,
        reseed: bool = True,
        check_every: int = 1,
    ) -> None:
        if not np.isfinite(velocity_factor) or velocity_factor <= 0:
            raise ConfigurationError(
                f"velocity_factor must be finite and > 0, got {velocity_factor!r}"
            )
        if check_every < 1:
            raise ConfigurationError(
                f"check_every must be >= 1, got {check_every}"
            )
        self.velocity_factor = float(velocity_factor)
        self.reseed = bool(reseed)
        self.check_every = int(check_every)
        self.events: list[GuardEvent] = []

    def reset(self) -> None:
        """Clear the event log before a new run (the engine calls this)."""
        self.events = []

    @property
    def interventions(self) -> int:
        return sum(e.count for e in self.events)

    def to_rows(self) -> list[dict]:
        return [e.to_row() for e in self.events]

    # -- the check ---------------------------------------------------------
    def inspect(self, state, problem, rng, *, iteration: int) -> bool:
        """Detect and repair divergence in *state*; True when it intervened.

        Repairs draw from *rng* — the run's own Philox stream — only when a
        particle actually needs re-seeding, so a healthy run consumes
        exactly the same draws as an unguarded one.
        """
        if iteration % self.check_every:
            return False

        intervened = False
        pos = state.positions
        vel = state.velocities
        lo = problem.lower_bounds.astype(pos.dtype)
        hi = problem.upper_bounds.astype(pos.dtype)

        # (1) Non-finite particles: re-seed position, zero velocity.
        bad = ~(
            np.isfinite(pos).all(axis=1) & np.isfinite(vel).all(axis=1)
        )
        n_bad = int(bad.sum())
        if n_bad:
            if self.reseed:
                unit = rng.uniform((n_bad, state.dim))
                fresh = lo + unit.astype(pos.dtype) * (hi - lo)
            else:
                fresh = np.broadcast_to(
                    ((lo + hi) * 0.5), (n_bad, state.dim)
                ).astype(pos.dtype)
            pos[bad] = fresh
            vel[bad] = 0
            self.events.append(GuardEvent(iteration, "reseed", n_bad))
            intervened = True

        # (2) Exploding velocities: clamp to +/- factor * domain width.
        limit = (self.velocity_factor * problem.domain_width).astype(vel.dtype)
        over = np.abs(vel) > limit
        n_over = int(over.sum())
        if n_over:
            np.clip(vel, -limit, limit, out=vel)
            self.events.append(GuardEvent(iteration, "clamp", n_over))
            intervened = True

        # (3) Poisoned personal bests: worst-possible value, current
        # position — the particle re-claims a finite best next improvement.
        bad_pb = ~(
            np.isfinite(state.pbest_values)
            & np.isfinite(state.pbest_positions).all(axis=1)
        )
        n_bad_pb = int(bad_pb.sum())
        if n_bad_pb:
            state.pbest_values[bad_pb] = np.inf
            state.pbest_positions[bad_pb] = pos[bad_pb]
            self.events.append(GuardEvent(iteration, "pbest_reset", n_bad_pb))
            intervened = True

        # (4) Poisoned global best: recompute from the repaired pbests.
        if not np.isfinite(state.gbest_value) and np.isfinite(
            state.pbest_values
        ).any():
            index = int(np.argmin(state.pbest_values))
            state.gbest_index = index
            state.gbest_value = float(state.pbest_values[index])
            state.gbest_position = state.pbest_positions[index].copy()
            self.events.append(GuardEvent(iteration, "gbest_recompute", 1))
            intervened = True

        return intervened
