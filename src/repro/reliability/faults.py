"""Deterministic fault injection for the simulated GPU substrate.

Failure handling is only trustworthy if failures are *reproducible*: the
same plan against the same batch must fail the same launches of the same
jobs every time.  The injector therefore counts deterministic events —
kernel launches and allocator requests, both of which occur in a fixed
order for a fixed workload — and fires each :class:`FaultSpec` at an exact
ordinal.  No wall clock, no randomness outside a seeded Philox stream (used
only to choose *which* elements a corruption fault damages).

Fault taxonomy (mirroring the CUDA error surface):

``launch_failure``
    The Nth kernel launch raises :class:`~repro.errors.LaunchFailedError`
    (``cudaErrorLaunchFailure``): transient, a bare retry suffices.
``device_lost``
    The Nth launch raises :class:`~repro.errors.DeviceLostError` and the
    fault is *sticky*: every later launch or allocation on the same device
    fails too, until :meth:`FaultInjector.on_new_device` is called — which
    happens when a fresh context attaches, i.e. failover to a healthy
    device.
``stall``
    The Nth launch is delayed by ``stall_seconds`` of simulated time (a
    latency spike on the stream).  Not an error: the run completes with the
    same numerics and a longer simulated duration.
``oom``
    The Nth allocator request raises
    :class:`~repro.errors.DeviceOutOfMemoryError` as if the pool were
    exhausted.
``corrupt``
    At the Nth launch, NaNs are written into a watched named buffer
    (``positions``, ``velocities``, ``pbest_positions`` or
    ``pbest_values``).  The engine's end-of-iteration integrity guard
    detects the damage and raises
    :class:`~repro.errors.MemoryCorruptionError`.

Every spec fires **once** (transient-fault semantics) and the ordinal
counters persist across retry attempts, so a retried run does not re-hit
the same fault — the property that makes the default retry policy converge.
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from pathlib import Path
from typing import Iterable, Mapping

import numpy as np

from repro.core.swarm import SwarmState
from repro.errors import (
    DeviceLostError,
    DeviceOutOfMemoryError,
    InvalidParameterError,
    LaunchFailedError,
    MemoryCorruptionError,
)
from repro.gpusim.rng import ParallelRNG

__all__ = ["FAULT_KINDS", "FaultSpec", "FaultInjector", "FaultPlan"]

#: Kinds triggered by the launch counter.
_LAUNCH_KINDS = ("launch_failure", "device_lost", "stall", "corrupt")
#: Kinds triggered by the allocator-request counter.
_ALLOC_KINDS = ("oom",)
FAULT_KINDS = _LAUNCH_KINDS + _ALLOC_KINDS

#: Buffers an engine registers with :meth:`FaultInjector.watch_state`.
_WATCHABLE = ("positions", "velocities", "pbest_positions", "pbest_values")

#: Stream id namespace for corruption-index draws (arbitrary constant, kept
#: away from the engines' stream ids so plans never alias a run's RNG).
_CORRUPT_STREAM = 0xFA17


@dataclass(frozen=True)
class FaultSpec:
    """One injected fault: what happens, and at which event ordinal.

    ``after`` is 1-based: ``after=3`` fires on the third launch (or third
    allocation, for ``oom``) observed by the injector — counted across all
    retry attempts of the run it is attached to.
    """

    kind: str
    after: int = 1
    stall_seconds: float = 0.0
    buffer: str = "positions"
    elems: int = 4

    def __post_init__(self) -> None:
        if self.kind not in FAULT_KINDS:
            raise InvalidParameterError(
                f"unknown fault kind {self.kind!r}; choose from {FAULT_KINDS}"
            )
        if self.after < 1:
            raise InvalidParameterError(
                f"fault ordinal 'after' must be >= 1, got {self.after}"
            )
        if self.kind == "stall" and self.stall_seconds <= 0.0:
            raise InvalidParameterError(
                "stall faults need a positive stall_seconds"
            )
        if self.kind == "corrupt":
            if self.buffer not in _WATCHABLE:
                raise InvalidParameterError(
                    f"corrupt buffer must be one of {_WATCHABLE}, "
                    f"got {self.buffer!r}"
                )
            if self.elems < 1:
                raise InvalidParameterError(
                    f"corrupt elems must be >= 1, got {self.elems}"
                )

    def to_dict(self) -> dict:
        out: dict = {"kind": self.kind, "after": self.after}
        if self.kind == "stall":
            out["stall_seconds"] = self.stall_seconds
        if self.kind == "corrupt":
            out["buffer"] = self.buffer
            out["elems"] = self.elems
        return out

    @classmethod
    def from_dict(cls, spec: Mapping) -> "FaultSpec":
        return cls(**dict(spec))


class FaultInjector:
    """Per-run fault driver, hooked into the launcher and allocator.

    One injector follows one job across all of its retry attempts: attach
    it to each fresh engine with ``engine.attach_fault_injector(injector)``.
    Attaching wires the engine's launcher/allocator hooks and signals
    :meth:`on_new_device` (a fresh context is a healthy device, clearing a
    sticky device-lost state).
    """

    def __init__(
        self,
        specs: Iterable[FaultSpec] = (),
        *,
        seed: int = 0,
        label: str = "",
    ) -> None:
        self.specs = tuple(specs)
        for spec in self.specs:
            if not isinstance(spec, FaultSpec):
                raise InvalidParameterError(
                    f"FaultInjector takes FaultSpecs, got {type(spec).__name__}"
                )
        self.seed = int(seed)
        self.label = label
        self._fired = [False] * len(self.specs)
        self._launches = 0
        self._allocs = 0
        self._device_lost = False
        self._watched: dict[str, np.ndarray] = {}
        self._corrupt_rng = ParallelRNG(self.seed, _CORRUPT_STREAM)
        #: Simulated seconds added by stall faults so far.
        self.stalled_seconds = 0.0
        #: Log of fired faults: ``(kind, detail)`` tuples, in firing order.
        self.triggered: list[tuple[str, str]] = []

    # -- introspection --------------------------------------------------------
    @property
    def pending(self) -> tuple[FaultSpec, ...]:
        """Specs that have not fired yet."""
        return tuple(
            s for s, fired in zip(self.specs, self._fired) if not fired
        )

    @property
    def device_lost(self) -> bool:
        return self._device_lost

    # -- persistence ----------------------------------------------------------
    def state_dict(self) -> dict:
        """JSON-safe mutable state: ordinal counters, fired flags, RNG.

        The spec list itself is *not* included — it is configuration, not
        state, and the serve journal re-derives it from the fault plan.
        Restoring this onto a fresh injector built from the same specs
        reproduces the remaining fault schedule exactly (the property that
        keeps crash-recovered drills byte-identical: a one-shot fault that
        fired before the crash does not re-fire after it).
        """
        return {
            "fired": [bool(f) for f in self._fired],
            "launches": self._launches,
            "allocs": self._allocs,
            "device_lost": self._device_lost,
            "stalled_seconds": self.stalled_seconds,
            "rng_position": self._corrupt_rng.position,
            "triggered": [list(t) for t in self.triggered],
        }

    def load_state(self, state: Mapping) -> None:
        """Restore counters captured by :meth:`state_dict`."""
        fired = list(state["fired"])
        if len(fired) != len(self.specs):
            raise InvalidParameterError(
                f"injector state has {len(fired)} fired flags for "
                f"{len(self.specs)} specs"
            )
        self._fired = [bool(f) for f in fired]
        self._launches = int(state["launches"])
        self._allocs = int(state["allocs"])
        self._device_lost = bool(state["device_lost"])
        self.stalled_seconds = float(state["stalled_seconds"])
        self._corrupt_rng.seek(int(state["rng_position"]))
        self.triggered = [
            (str(kind), str(detail)) for kind, detail in state["triggered"]
        ]

    # -- wiring ---------------------------------------------------------------
    def watch(self, name: str, array: np.ndarray) -> None:
        """Register a named buffer as a corruption target."""
        self._watched[name] = array

    def watch_state(self, state: SwarmState) -> None:
        """Register all corruptible swarm buffers of a live run."""
        for name in _WATCHABLE:
            self.watch(name, getattr(state, name))

    def on_new_device(self) -> None:
        """A fresh (healthy) context attached: clear sticky device loss."""
        self._device_lost = False

    # -- hooks called by gpusim ----------------------------------------------
    def on_launch(self, kernel_name: str) -> float:
        """Called before every kernel launch; returns extra stall seconds.

        Raises the injected error when a launch-ordinal fault is due.
        """
        if self._device_lost:
            raise DeviceLostError(
                f"device lost (injected){self._ctx()}: launch of "
                f"{kernel_name!r} rejected"
            ).with_context(job=self.label or None, launch_ordinal=self._launches)
        self._launches += 1
        stall = 0.0
        for i, spec in enumerate(self.specs):
            if (
                self._fired[i]
                or spec.kind not in _LAUNCH_KINDS
                or spec.after != self._launches
            ):
                continue
            self._fired[i] = True
            detail = f"launch #{self._launches} ({kernel_name})"
            self.triggered.append((spec.kind, detail))
            if spec.kind == "launch_failure":
                raise LaunchFailedError(
                    f"injected launch failure at {detail}{self._ctx()}"
                ).with_context(
                    job=self.label or None, launch_ordinal=self._launches
                )
            if spec.kind == "device_lost":
                self._device_lost = True
                raise DeviceLostError(
                    f"injected device loss at {detail}{self._ctx()}"
                ).with_context(
                    job=self.label or None, launch_ordinal=self._launches
                )
            if spec.kind == "stall":
                stall += spec.stall_seconds
                self.stalled_seconds += spec.stall_seconds
            elif spec.kind == "corrupt":
                self._corrupt(spec)
        return stall

    def on_alloc(self, nbytes: int, memory=None) -> None:
        """Called before every allocator request."""
        if self._device_lost:
            raise DeviceLostError(
                f"device lost (injected){self._ctx()}: allocation of "
                f"{nbytes} bytes rejected"
            ).with_context(job=self.label or None)
        self._allocs += 1
        for i, spec in enumerate(self.specs):
            if (
                self._fired[i]
                or spec.kind not in _ALLOC_KINDS
                or spec.after != self._allocs
            ):
                continue
            self._fired[i] = True
            self.triggered.append(
                ("oom", f"alloc #{self._allocs} ({nbytes} bytes)")
            )
            free = getattr(memory, "free_bytes", 0)
            total = getattr(memory, "total_bytes", 0)
            # Model pool exhaustion: report zero free regardless of the
            # real accounting, as a fragmented/oversubscribed device would.
            raise DeviceOutOfMemoryError(
                nbytes, min(free, 0), total
            ).with_context(job=self.label or None)

    # -- the integrity guard --------------------------------------------------
    def check_integrity(self) -> None:
        """Raise if any watched buffer contains injected NaN damage.

        Engines call this once per iteration; PSO state is NaN-free by
        construction (fitness is finite, weights are strictly positive), so
        any NaN is evidence of the injected bit-flips.
        """
        for name, array in self._watched.items():
            if np.isnan(array).any():
                raise MemoryCorruptionError(
                    f"integrity check failed: buffer {name!r} contains "
                    f"{int(np.isnan(array).sum())} NaN element(s)"
                    f"{self._ctx()}"
                ).with_context(job=self.label or None)

    # -- internals ------------------------------------------------------------
    def _corrupt(self, spec: FaultSpec) -> None:
        array = self._watched.get(spec.buffer)
        if array is None or array.size == 0:
            # Nothing watched under that name (e.g. a CPU engine that never
            # registered): the fault fizzles, recorded as triggered above.
            return
        flat = array.reshape(-1)
        idx = (
            self._corrupt_rng.random_uint32(spec.elems).astype(np.int64)
            % flat.size
        )
        flat[idx] = np.nan

    def _ctx(self) -> str:
        return f" [{self.label}]" if self.label else ""

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"<FaultInjector specs={len(self.specs)} "
            f"fired={sum(self._fired)} launches={self._launches} "
            f"allocs={self._allocs}>"
        )


class FaultPlan:
    """A seeded, per-job assignment of fault specs for a batch.

    Jobs are addressed by submit index (as int or string) or by job label;
    :meth:`injector_for` returns a fresh :class:`FaultInjector` for jobs
    with assigned faults and ``None`` otherwise (fault-free jobs run with
    zero injection overhead).
    """

    def __init__(
        self,
        jobs: Mapping[object, Iterable[FaultSpec]] | None = None,
        *,
        seed: int = 0,
    ) -> None:
        self.seed = int(seed)
        self._jobs: dict[str, tuple[FaultSpec, ...]] = {}
        for key, specs in (jobs or {}).items():
            specs = tuple(specs)
            for spec in specs:
                if not isinstance(spec, FaultSpec):
                    raise InvalidParameterError(
                        f"FaultPlan values must be FaultSpecs, "
                        f"got {type(spec).__name__}"
                    )
            if specs:
                self._jobs[str(key)] = specs

    def __len__(self) -> int:
        return len(self._jobs)

    def specs_for(self, index: int, label: str | None = None):
        """Fault specs assigned to a job, or an empty tuple."""
        by_index = self._jobs.get(str(index))
        if by_index:
            return by_index
        if label is not None:
            return self._jobs.get(label, ())
        return ()

    def injector_for(
        self, index: int, label: str | None = None
    ) -> FaultInjector | None:
        """A fresh injector for job *index*, or ``None`` if fault-free.

        The injector's corruption stream is namespaced by the job index so
        two corrupted jobs damage different elements deterministically.
        """
        specs = self.specs_for(index, label)
        if not specs:
            return None
        return FaultInjector(
            specs, seed=self.seed + index, label=label or f"job{index}"
        )

    # -- serialization (the CLI's --faults file) ------------------------------
    def to_dict(self) -> dict:
        return {
            "seed": self.seed,
            "jobs": {
                key: [s.to_dict() for s in specs]
                for key, specs in sorted(self._jobs.items())
            },
        }

    @classmethod
    def from_dict(cls, payload: Mapping) -> "FaultPlan":
        jobs = {
            key: tuple(FaultSpec.from_dict(s) for s in specs)
            for key, specs in dict(payload.get("jobs", {})).items()
        }
        return cls(jobs, seed=int(payload.get("seed", 0)))

    @classmethod
    def from_json_file(cls, path: str | Path) -> "FaultPlan":
        payload = json.loads(Path(path).read_text())
        if not isinstance(payload, Mapping):
            raise InvalidParameterError(
                f"{path}: fault plan must be a JSON object"
            )
        return cls.from_dict(payload)

    # -- the reference drill --------------------------------------------------
    @classmethod
    def drill(cls, n_jobs: int, *, seed: int = 0) -> "FaultPlan":
        """The reference mixed-fault plan used by tests, docs and the CLI.

        Spreads one of every fault kind (two launch failures) across the
        batch: at least 1 device-lost, 2 launch failures, 1 OOM, plus a
        stall and a corruption — the ISSUE-3 fault drill.  Deterministic
        for a given ``(n_jobs, seed)``.
        """
        if n_jobs < 1:
            raise InvalidParameterError(f"n_jobs must be >= 1, got {n_jobs}")
        assignments = [
            ("launch_failure", FaultSpec("launch_failure", after=7)),
            ("device_lost", FaultSpec("device_lost", after=12)),
            ("oom", FaultSpec("oom", after=9)),
            ("launch_failure", FaultSpec("launch_failure", after=21)),
            ("stall", FaultSpec("stall", after=5, stall_seconds=2.5e-3)),
            (
                # Fires just before the swarm update of iteration 2 (the
                # steady-state iteration is 7 launches since the pbest-copy
                # no-op dispatch was folded into a charge), so the NaN
                # damage propagates through V/P and the end-of-iteration
                # integrity guard — not the evaluator — reports it.
                "corrupt",
                FaultSpec("corrupt", after=15, buffer="positions", elems=4),
            ),
        ]
        jobs: dict[object, list[FaultSpec]] = {}
        for slot, (_kind, spec) in enumerate(assignments):
            # Spread across the batch; wraps for small batches (several
            # faults may then share one job, which retries still absorb).
            index = (slot * max(1, n_jobs // len(assignments))) % n_jobs
            jobs.setdefault(index, []).append(spec)
        return cls(
            {k: tuple(v) for k, v in jobs.items()}, seed=seed
        )
