"""Profiling views over the launcher's kernel log.

Produces the two artefact families the paper derives from ``nvprof``:

* per-kernel and per-section elapsed-time breakdowns (Figure 5), and
* whole-run DRAM throughput / GFLOPs metrics (Table 3).

Throughput metrics follow nvprof's convention: bytes are divided by *kernel
body* time (excluding launch overhead), because ``dram_read_throughput`` is
a per-kernel average over active kernel cycles.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Mapping

from repro.gpusim.launch import LaunchRecord, LaunchStats
from repro.utils.units import GB

__all__ = [
    "KernelSummary",
    "ProfileReport",
    "build_report",
    "build_report_from_stats",
]


@dataclass(frozen=True)
class KernelSummary:
    """Aggregate statistics for all launches of one kernel."""

    name: str
    launches: int
    total_seconds: float
    total_bytes_read: float
    total_bytes_written: float
    total_flops: float
    mean_occupancy: float

    @property
    def read_throughput_gbs(self) -> float:
        return (
            self.total_bytes_read / self.total_seconds / GB
            if self.total_seconds > 0
            else 0.0
        )

    @property
    def gflops(self) -> float:
        return (
            self.total_flops / self.total_seconds / 1e9
            if self.total_seconds > 0
            else 0.0
        )


@dataclass(frozen=True)
class ProfileReport:
    """Whole-run profiling summary built from a launch log."""

    kernels: Mapping[str, KernelSummary]
    sections: Mapping[str, float]
    total_kernel_seconds: float
    total_bytes_read: float
    total_bytes_written: float
    total_flops: float

    @property
    def dram_read_throughput_gbs(self) -> float:
        """Average DRAM read throughput over active kernel time (Table 3)."""
        if self.total_kernel_seconds <= 0:
            return 0.0
        return self.total_bytes_read / self.total_kernel_seconds / GB

    @property
    def dram_write_throughput_gbs(self) -> float:
        if self.total_kernel_seconds <= 0:
            return 0.0
        return self.total_bytes_written / self.total_kernel_seconds / GB

    @property
    def gflops(self) -> float:
        """Average arithmetic throughput over active kernel time (Table 3)."""
        if self.total_kernel_seconds <= 0:
            return 0.0
        return self.total_flops / self.total_kernel_seconds / 1e9


def build_report(
    records: Iterable[LaunchRecord],
    sections: Mapping[str, float] | None = None,
) -> ProfileReport:
    """Aggregate a launch log (and optional clock sections) into a report."""
    acc: dict[str, dict[str, float]] = {}
    total_body = 0.0
    total_read = 0.0
    total_written = 0.0
    total_flops = 0.0
    for rec in records:
        body_time = rec.cost.seconds - rec.cost.t_launch_overhead
        entry = acc.setdefault(
            rec.kernel_name,
            {
                "launches": 0.0,
                "seconds": 0.0,
                "read": 0.0,
                "written": 0.0,
                "flops": 0.0,
                "occ_sum": 0.0,
            },
        )
        entry["launches"] += 1
        entry["seconds"] += body_time
        entry["read"] += rec.cost.bytes_read
        entry["written"] += rec.cost.bytes_written
        entry["flops"] += rec.cost.flops
        entry["occ_sum"] += rec.cost.occupancy
        total_body += body_time
        total_read += rec.cost.bytes_read
        total_written += rec.cost.bytes_written
        total_flops += rec.cost.flops

    kernels = {
        name: KernelSummary(
            name=name,
            launches=int(e["launches"]),
            total_seconds=e["seconds"],
            total_bytes_read=e["read"],
            total_bytes_written=e["written"],
            total_flops=e["flops"],
            mean_occupancy=e["occ_sum"] / e["launches"] if e["launches"] else 0.0,
        )
        for name, e in acc.items()
    }
    return ProfileReport(
        kernels=kernels,
        sections=dict(sections or {}),
        total_kernel_seconds=total_body,
        total_bytes_read=total_read,
        total_bytes_written=total_written,
        total_flops=total_flops,
    )


def build_report_from_stats(
    stats: Mapping[tuple[str, str | None], LaunchStats],
    sections: Mapping[str, float] | None = None,
) -> ProfileReport:
    """Aggregate the launcher's always-on accumulators into a report.

    Equivalent to :func:`build_report` over the full launch log whenever
    each kernel runs inside a single section (true for every engine here);
    a kernel spanning sections may differ from the record-order sum in the
    last ulp, which is why the Figure 5 / Table 3 experiment paths opt into
    ``record_launches=True`` and use :func:`build_report` instead.
    """
    acc: dict[str, dict[str, float]] = {}
    total_body = 0.0
    total_read = 0.0
    total_written = 0.0
    total_flops = 0.0
    for bucket in stats.values():
        entry = acc.setdefault(
            bucket.kernel_name,
            {
                "launches": 0.0,
                "seconds": 0.0,
                "read": 0.0,
                "written": 0.0,
                "flops": 0.0,
                "occ_sum": 0.0,
            },
        )
        entry["launches"] += bucket.launches
        entry["seconds"] += bucket.body_seconds
        entry["read"] += bucket.bytes_read
        entry["written"] += bucket.bytes_written
        entry["flops"] += bucket.flops
        entry["occ_sum"] += bucket.occupancy_sum
        total_body += bucket.body_seconds
        total_read += bucket.bytes_read
        total_written += bucket.bytes_written
        total_flops += bucket.flops

    kernels = {
        name: KernelSummary(
            name=name,
            launches=int(e["launches"]),
            total_seconds=e["seconds"],
            total_bytes_read=e["read"],
            total_bytes_written=e["written"],
            total_flops=e["flops"],
            mean_occupancy=e["occ_sum"] / e["launches"] if e["launches"] else 0.0,
        )
        for name, e in acc.items()
    }
    return ProfileReport(
        kernels=kernels,
        sections=dict(sections or {}),
        total_kernel_seconds=total_body,
        total_bytes_read=total_read,
        total_bytes_written=total_written,
        total_flops=total_flops,
    )
