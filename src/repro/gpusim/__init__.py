"""Simulated GPU substrate for the FastPSO reproduction.

This package stands in for the CUDA runtime and a Tesla V100: device specs,
global/shared memory, a caching allocator, kernel launches with occupancy
and roofline timing, counter-based parallel RNG, parallel reductions, tensor
cores, streams and multi-GPU coordination.  Kernel *semantics* execute for
real (NumPy); kernel *timing* comes from the analytic models in
:mod:`repro.gpusim.costmodel`, so optimization results are genuine while
elapsed times reproduce the paper's hardware behaviour.
"""

from repro.gpusim.alloc import (
    AllocatorStats,
    CachingAllocator,
    DirectAllocator,
    size_class,
)
from repro.gpusim.clock import SimClock
from repro.gpusim.context import GpuContext, make_context
from repro.gpusim.costmodel import (
    DEFAULT_GPU_COST_PARAMS,
    CpuSpec,
    GpuCostParams,
    KernelCost,
    cpu_loop_cost,
    kernel_cost,
    xeon_e5_2640v4,
)
from repro.gpusim.device import (
    Device,
    DeviceSpec,
    get_preset,
    laptop_gpu,
    tesla_a100,
    tesla_v100,
)
from repro.gpusim.hostcache import (
    cache_enabled,
    clear_all_caches,
    set_enabled,
)
from repro.gpusim.kernel import Kernel, KernelSpec, LaunchConfig
from repro.gpusim.launch import (
    Launcher,
    LaunchRecord,
    LaunchStats,
    resource_aware_config,
    thread_per_item_config,
)
from repro.gpusim.memory import DeviceBuffer, GlobalMemory, TransferEngine
from repro.gpusim.occupancy import OccupancyResult, achieved_occupancy, occupancy
from repro.gpusim.profiler import (
    KernelSummary,
    ProfileReport,
    build_report,
    build_report_from_stats,
)
from repro.gpusim.reduction import ParallelReducer
from repro.gpusim.rng import ParallelRNG, philox4x32
from repro.gpusim.sharedmem import (
    DEFAULT_TILE_SIZE,
    apply_tiled,
    shared_mem_spec,
    tile_count,
    tile_iter,
)
from repro.gpusim.streams import Event, Stream
from repro.gpusim.tensorcore import (
    FRAGMENT_DIM,
    fragment_multiply_add,
    supports_tensor_cores,
    tensor_core_spec,
    to_half,
)

__all__ = [
    "AllocatorStats",
    "CachingAllocator",
    "DirectAllocator",
    "size_class",
    "SimClock",
    "GpuContext",
    "make_context",
    "DEFAULT_GPU_COST_PARAMS",
    "CpuSpec",
    "GpuCostParams",
    "KernelCost",
    "cpu_loop_cost",
    "kernel_cost",
    "xeon_e5_2640v4",
    "Device",
    "DeviceSpec",
    "get_preset",
    "laptop_gpu",
    "tesla_a100",
    "tesla_v100",
    "Kernel",
    "KernelSpec",
    "LaunchConfig",
    "Launcher",
    "LaunchRecord",
    "LaunchStats",
    "resource_aware_config",
    "thread_per_item_config",
    "cache_enabled",
    "clear_all_caches",
    "set_enabled",
    "DeviceBuffer",
    "GlobalMemory",
    "TransferEngine",
    "OccupancyResult",
    "achieved_occupancy",
    "occupancy",
    "KernelSummary",
    "ProfileReport",
    "build_report",
    "build_report_from_stats",
    "ParallelReducer",
    "ParallelRNG",
    "philox4x32",
    "DEFAULT_TILE_SIZE",
    "apply_tiled",
    "shared_mem_spec",
    "tile_count",
    "tile_iter",
    "Event",
    "Stream",
    "FRAGMENT_DIM",
    "fragment_multiply_add",
    "supports_tensor_cores",
    "tensor_core_spec",
    "to_half",
]
