"""Launch-graph capture & replay: the CUDA-Graphs-style iteration fast path.

PR 1 made every step of the launch pipeline a dictionary hit; this module
removes the pipeline from the steady state entirely.  The idea is the same
as CUDA Graphs in production inference stacks: a PSO iteration launches the
same kernels with the same geometry every time, so after observing one
steady-state iteration the host can *replay* the whole iteration as a flat
sequence of pre-bound calls — no kernel dict lookups, no spec hashing, no
config resolution, no per-launch profiler updates.

The lifecycle, driven by :class:`IterationRunner`:

``warmup``
    The first iteration runs eagerly, untraced.  It differs from the steady
    state (allocator pool misses, cold launch caches) and is never captured.
``capture``
    The second iteration runs eagerly with the clock trace and the
    launcher's capture sink attached, recording every clock charge
    ``(section, seconds, dynamic)`` and every launch ``(kernel, section,
    n_elems, config, cost)`` plus the iteration's RNG block consumption.
``validate``
    The third iteration runs eagerly, traced again.  If its charge and
    launch sequences don't match the capture (outside slots explicitly
    marked *dynamic*, e.g. the pbest-copy charge whose size is the number
    of improved particles), the iteration shape is data-dependent and the
    run permanently falls back to eager — by design, not as an error.  On a
    match, the engine builds its replay plan
    (:meth:`~repro.core.engine.Engine._graph_build_replay`) and the plan's
    declared launches are cross-checked against the capture.
``replay``
    Every further iteration is one call into the pre-bound plan.  The first
    replay runs traced and is verified against the capture
    (:class:`~repro.errors.GraphReplayError` on divergence — that would be
    a repro bug, not a user condition); later replays run flat.
``native-verify`` / ``native``
    The third tier (``_fastpath.c``): after the first verified Python
    replay, a native-eligible plan (global-memory float32 engines with the
    global topology; see ``Engine._graph_build_native``) is promoted to one
    C call per iteration.  Promotion is gated by one shadow-verified
    iteration — the trusted Python replay runs on the real state while the
    C step runs on copies, and every output buffer must match bitwise.  Any
    mismatch, missing compiler, failed self-test, unsupported shape or
    ``REPRO_NO_NATIVE_FASTPATH=1`` silently keeps the run on the Python
    replay tier; the trajectory is bit-identical on every tier by
    construction.  ``info["native"]`` records the outcome (``"active"`` or
    the demotion reason), ``info["native_replays"]`` counts the C-call
    iterations (also included in ``info["replays"]``, so profiler
    reconciliation is tier-agnostic).

Replay preserves bit-identical simulated time because it performs the *same
sequence of float additions* on the clock as the eager path: one
``advance(cost.seconds)`` per launch in eager order, real allocator
alloc/free calls (pool hits advance the clock natively and keep the
allocator statistics truthful), and the same dynamic charges through the
same helpers.  The native tier keeps this exactly: the C call replaces the
array *semantics* only, while the clock charges, allocator calls and
dynamic pbest-copy accounting still run through the same Python helpers in
the same order.  Profiler statistics are aggregated per graph — replayed
launches touch no :class:`~repro.gpusim.launch.LaunchStats` until
:meth:`IterationRunner.finalize` folds ``replays x captured-cost`` into the
launcher's buckets in one update per kernel.

Eager fallbacks (the graph is simply not used): ``graph=False``, a stop
criterion, a callback, an attached fault injector, ``record_launches=True``
or an engine without a replay plan.  Checkpoint *capture* composes with
replay (snapshots read state the replay keeps current); a *restored* run
rebuilds its runner from scratch, so the graph is re-captured after resume
and can never replay stale bindings — and re-promotes to the native tier
when eligible.  Hosts that drive a runner's replay directly (the fused
multi-swarm ramp) set ``allow_native = False`` before stepping, pinning
the runner to the Python replay tier whose phase transitions they rely on.
"""

from __future__ import annotations

import os
from dataclasses import dataclass, field
from typing import Callable

from repro.errors import GraphReplayError

__all__ = ["CapturedLaunch", "LaunchGraph", "IterationRunner"]


#: One recorded launch: (kernel_name, section, n_elems, config, cost).
CapturedLaunch = tuple


@dataclass
class LaunchGraph:
    """The record of one captured steady-state iteration.

    ``trace`` is the clock charge sequence; ``launches`` the kernel launch
    sequence (empty for CPU engines, which charge the clock directly);
    ``rng_blocks`` the Philox blocks one iteration consumes.
    """

    trace: list[tuple[str | None, float, bool]] = field(default_factory=list)
    launches: list[CapturedLaunch] = field(default_factory=list)
    rng_blocks: int = 0

    def trace_matches(
        self, other: list[tuple[str | None, float, bool]]
    ) -> bool:
        """Exact charge-sequence match, wildcarding dynamic slots' seconds."""
        if len(other) != len(self.trace):
            return False
        for (label, seconds, dynamic), (o_label, o_seconds, o_dynamic) in zip(
            self.trace, other
        ):
            if label != o_label or dynamic != o_dynamic:
                return False
            if not dynamic and seconds != o_seconds:
                return False
        return True

    def launches_match(self, other: list[CapturedLaunch]) -> bool:
        """Same kernels, sections, sizes, geometry and cost, in order."""
        if len(other) != len(self.launches):
            return False
        for mine, theirs in zip(self.launches, other):
            name, section, n_elems, config, cost = mine
            o_name, o_section, o_elems, o_config, o_cost = theirs
            if (
                name != o_name
                or section != o_section
                or n_elems != o_elems
                or config != o_config
                or cost.seconds != o_cost.seconds
            ):
                return False
        return True

    def flush_stats(self, stats: dict, replays: int) -> None:
        """Fold *replays* executions of every captured launch into *stats*.

        One :meth:`~repro.gpusim.launch.LaunchStats.add_many` per distinct
        launch — O(graph size), not O(replays x launches).
        """
        if replays <= 0:
            return
        from repro.gpusim.launch import LaunchStats

        for name, section, n_elems, _config, cost in self.launches:
            key = (name, section)
            bucket = stats.get(key)
            if bucket is None:
                bucket = LaunchStats(kernel_name=name, section=section)
                stats[key] = bucket
            bucket.add_many(cost, n_elems, replays)


#: Clock section labels of Algorithm 1's loop body, in execution order.
SECTIONS = ("eval", "pbest", "gbest", "swarm")


class IterationRunner:
    """Drives one engine's iterations through the capture/replay lifecycle.

    Built once per ``optimize()`` call (and per worker, for multi-GPU).
    :meth:`run_iteration` either runs the eager four-section body or replays
    the captured graph; :meth:`finalize` reconciles profiler statistics.
    The runner publishes its state on ``engine.graph_info`` for tests and
    diagnostics.
    """

    __slots__ = (
        "engine",
        "problem",
        "params",
        "state",
        "rng",
        "phase",
        "graph",
        "allow_native",
        "_replay",
        "_native",
        "_native_verify",
        "_launcher",
        "info",
    )

    def __init__(
        self,
        engine,
        problem,
        params,
        state,
        rng,
        *,
        eager_reason: str | None = None,
    ) -> None:
        self.engine = engine
        self.problem = problem
        self.params = params
        self.state = state
        self.rng = rng
        self.phase = "eager" if eager_reason is not None else "warmup"
        self.graph: LaunchGraph | None = None
        #: Hosts that drive the Python replay directly (fused multi-swarm
        #: ramp) set this False before stepping to pin the replay tier.
        self.allow_native = True
        self._replay: Callable[[], None] | None = None
        self._native: Callable[[], None] | None = None
        self._native_verify = None
        ctx = getattr(engine, "ctx", None)
        self._launcher = getattr(ctx, "launcher", None)
        self.info = {
            "mode": "eager" if eager_reason is not None else "graph",
            "eager_reason": eager_reason,
            "captured_at": None,
            "replays": 0,
            # An eager run can never reach the native tier; record the
            # demotion reason up front so fault drills and health guards
            # leave an auditable trail instead of a silent ``None``.
            "native": eager_reason,
            "native_replays": 0,
        }
        engine.graph_info = self.info

    # -- the eager body ------------------------------------------------------
    def _run_eager(self) -> None:
        engine, clock = self.engine, self.engine.clock
        with clock.section("eval"):
            values = engine._evaluate(self.problem, self.state)
        with clock.section("pbest"):
            engine._update_pbest(self.state, values)
        with clock.section("gbest"):
            engine._update_gbest(self.state)
        with clock.section("swarm"):
            engine._update_swarm(self.problem, self.params, self.state, self.rng)

    def _run_traced(self) -> tuple[list, list, int]:
        """One eager iteration with the trace and capture sinks attached."""
        clock = self.engine.clock
        captured: list = []
        if self._launcher is not None:
            self._launcher.capture = captured
        clock.begin_trace()
        rng_before = self.rng.position
        try:
            self._run_eager()
        finally:
            trace = clock.end_trace()
            if self._launcher is not None:
                self._launcher.capture = None
        return trace, captured, self.rng.position - rng_before

    # -- lifecycle -----------------------------------------------------------
    def run_iteration(self, t: int) -> None:
        phase = self.phase
        if phase == "native":
            self._native()
            self.info["replays"] += 1
            self.info["native_replays"] += 1
            return
        if phase == "replay":
            self._replay()
            self.info["replays"] += 1
            return
        if phase == "native-verify":
            # One shadow-verified iteration: the trusted Python replay runs
            # on the real state, the C step on copies (see
            # repro.gpusim.fastpath.verify_step).  The real trajectory is
            # identical whichever way the verdict goes.
            ok = self._native_verify(self._replay)
            self.info["replays"] += 1
            if ok:
                self.phase = "native"
                self.info["native"] = "active"
            else:
                self.phase = "replay"
                self._native = None
                self._native_verify = None
                self.info["native"] = "parity-mismatch"
            return
        if phase in ("eager", "warmup"):
            self._run_eager()
            if phase == "warmup":
                self.phase = "capture"
            return
        if phase == "capture":
            trace, launches, rng_blocks = self._run_traced()
            self.graph = LaunchGraph(
                trace=trace, launches=launches, rng_blocks=rng_blocks
            )
            self.info["captured_at"] = t
            self.phase = "validate"
            return
        if phase == "validate":
            trace, launches, rng_blocks = self._run_traced()
            graph = self.graph
            if not (
                graph.trace_matches(trace)
                and graph.launches_match(launches)
                and graph.rng_blocks == rng_blocks
            ):
                # Data-dependent iteration shape: stay eager for this run.
                self._demote("iteration-shape-changed")
                return
            replay, plan_launches = self.engine._graph_build_replay(
                self.problem, self.params, self.state, self.rng
            )
            if not graph.launches_match(plan_launches):
                # The engine's plan disagrees with what eager actually did;
                # refuse to replay it (a repro bug — surface loudly in the
                # suite via graph_info, but never corrupt a user run).
                self._demote("replay-plan-mismatch")
                return
            self._replay = replay
            self.phase = "first-replay"
            return
        # phase == "first-replay": verified replay, then go flat.
        clock = self.engine.clock
        clock.begin_trace()
        rng_before = self.rng.position
        try:
            self._replay()
        finally:
            trace = clock.end_trace()
        self.info["replays"] += 1
        graph = self.graph
        if not graph.trace_matches(trace):
            raise GraphReplayError(
                "replayed iteration charged the clock differently from its "
                "captured iteration; the engine's replay plan is out of "
                "sync with its eager path"
            )
        if self.rng.position - rng_before != graph.rng_blocks:
            raise GraphReplayError(
                "replayed iteration consumed "
                f"{self.rng.position - rng_before} RNG blocks; capture "
                f"recorded {graph.rng_blocks}"
            )
        self.phase = "replay"
        self._try_native()

    def _try_native(self) -> None:
        """Attempt promotion to the native (one-C-call) tier.

        Called once, after the first verified Python replay.  Every failure
        mode records its reason on ``info["native"]`` and leaves the run on
        the Python replay tier — promotion is strictly best-effort.
        """
        if not self.allow_native:
            self.info["native"] = "host-managed"
            return
        if os.environ.get("REPRO_NO_NATIVE_FASTPATH"):
            self.info["native"] = "disabled-by-env"
            return
        try:
            built = self.engine._graph_build_native(
                self.graph, self.problem, self.params, self.state, self.rng
            )
        except Exception:
            self.info["native"] = "native-build-failed"
            return
        if built is None or isinstance(built, str):
            self.info["native"] = built or "engine-has-no-native-plan"
            return
        self._native, self._native_verify = built
        self.phase = "native-verify"

    def _demote(self, reason: str) -> None:
        self.phase = "eager"
        self.graph = None
        self._replay = None
        self.info["mode"] = "eager"
        self.info["eager_reason"] = reason
        if self.info["native"] in (None, "active"):
            self.info["native"] = reason

    def finalize(self) -> None:
        """Reconcile aggregated profiling for the replayed iterations."""
        if (
            self.graph is not None
            and self._launcher is not None
            and self.info["replays"]
        ):
            self.graph.flush_stats(self._launcher.stats, self.info["replays"])
