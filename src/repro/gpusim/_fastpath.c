/* The captured FastPSO iteration body as one native call.
 *
 * Compiled on demand by repro.gpusim.fastpath (via repro.gpusim.native)
 * and called through ctypes once per replayed iteration.  The call fuses
 * everything the Python replay does between the objective evaluation and
 * the clock charges:
 *
 *   1. pbest compare-and-claim (strict <, so NaN never claims and ties
 *      keep the earlier best) with the d-wide position row copy;
 *   2. the gbest argmin scan + claim.  The scan reproduces np.argmin's
 *      tie/NaN order exactly: the first NaN wins if any is present,
 *      otherwise the first minimum — which is also what the simulated
 *      two-pass block-tree reduction produces, since its inf padding
 *      never displaces a real candidate;
 *   3. the two n*d Philox4x32-10 uniform draws (L then G) into the
 *      workspace weight buffers, consuming ceil(n*d/4) counter blocks
 *      each — the same stream consumption as ParallelRNG.uniform;
 *   4. the fused velocity + position update.  The float expression
 *      replicates, per element, the exact IEEE op order of the NumPy
 *      scratch fast path in repro.core.swarm.velocity_update:
 *        s1 = pb - p;  s1 = l * s1;   s1 = s1 * c1;
 *        s2 = soc - p; s2 = g * s2;   s2 = s2 * c2;
 *        v' = v * w;   v' = v' + s1;  v' = v' + s2;  clip(v', vlo, vhi)
 *        p' = p + v';  [clip(p', plo, phi)]
 *      All arithmetic is float32; the build uses -ffp-contract=off so no
 *      multiply-add is fused into an FMA (which would change rounding).
 *      The clip matches np.clip: NaN propagates, bounds compare with <,>.
 *
 * The per-run constants and stable buffer addresses live in a
 * fastpath_plan struct built once at plan-install time (mirrored by a
 * ctypes.Structure in fastpath.py — field order and types must match);
 * per-iteration values (fitness vector, RNG block cursor, scheduled
 * inertia, adaptive velocity bounds) arrive as call arguments.  Returns
 * the number of particles whose pbest improved (the dynamic-size input of
 * the pbest-copy clock charge).
 */
#include <string.h>

#include "_philox.c"

typedef struct {
    uint64_t n;         /* particles */
    uint64_t d;         /* dimensions */
    uint64_t stream_id; /* RNG stream (counter lanes 2/3) */
    float* positions;        /* (n, d) */
    float* velocities;       /* (n, d) */
    float* pbest_positions;  /* (n, d) */
    double* pbest_values;    /* (n,)  */
    float* l_weights;        /* (n, d) workspace */
    float* g_weights;        /* (n, d) workspace */
    double* gbest_value;     /* (1,) plan-owned */
    int64_t* gbest_index;    /* (1,) plan-owned */
    float* gbest_position;   /* (d,) plan-owned */
    const uint32_t* keys;    /* flat Philox key schedule (2 * ROUNDS) */
    const float* pos_lo;     /* (d,) or NULL when clip_positions is off */
    const float* pos_hi;     /* (d,) or NULL */
    float c1;                /* cognitive coefficient, float32 */
    float c2;                /* social coefficient, float32 */
} fastpath_plan;

/* count unit-uniform float32 values starting at counter block0; handles a
 * partial final block (count % 4 != 0) so any n*d is supported.  The unit
 * mapping (double)(word + 0.5) * 2^-32 rounded once to float matches the
 * NumPy float64 -> float32 cast bit-for-bit.
 *
 * The bulk of the work is SIMD where the ISA allows it: counter blocks are
 * mutually independent, so the AVX-512/AVX2 paths run 16/8 blocks per
 * vector across PHILOX_CHAINS independent register chains (enough
 * parallel work to hide the 32x32->64 vpmuludq latency that a single
 * chain stalls on).  SIMD cannot change the output: every round op is
 * exact integer arithmetic, and the unit mapping's int->double->float
 * conversions are exact per lane.  The scalar loop handles the remainder
 * and non-x86 builds. */
#define PHILOX_CHAINS 4

#if defined(__AVX512F__)
#include <immintrin.h>

static void fill_unit_f32_simd(uint64_t block0, uint32_t sid_lo,
                               uint32_t sid_hi, uint64_t* i_io, uint64_t full,
                               const uint32_t* keys, float* restrict out) {
    const __m512i vM0 = _mm512_set1_epi32((int)M0);
    const __m512i vM1 = _mm512_set1_epi32((int)M1);
    const __mmask16 ODD = 0xAAAA; /* odd 32-bit lanes of each 64-bit pair */
    uint64_t i = *i_io;
    for (; i + 16 * PHILOX_CHAINS <= full; i += 16 * PHILOX_CHAINS) {
        __m512i c0[PHILOX_CHAINS], c1[PHILOX_CHAINS];
        __m512i c2[PHILOX_CHAINS], c3[PHILOX_CHAINS];
        for (int q = 0; q < PHILOX_CHAINS; q++) {
            uint32_t t0[16], t1[16];
            for (int k = 0; k < 16; k++) {
                uint64_t b = block0 + i + (uint64_t)(16 * q + k);
                t0[k] = (uint32_t)b;
                t1[k] = (uint32_t)(b >> 32);
            }
            c0[q] = _mm512_loadu_si512(t0);
            c1[q] = _mm512_loadu_si512(t1);
            c2[q] = _mm512_set1_epi32((int)sid_lo);
            c3[q] = _mm512_set1_epi32((int)sid_hi);
        }
        for (int r = 0; r < ROUNDS; r++) {
            __m512i k0 = _mm512_set1_epi32((int)keys[2 * r]);
            __m512i k1 = _mm512_set1_epi32((int)keys[2 * r + 1]);
            for (int q = 0; q < PHILOX_CHAINS; q++) {
                /* vpmuludq multiplies the even 32-bit lane of each 64-bit
                 * pair; the shifted twin covers the odd lanes, and the
                 * masked moves reassemble full lo/hi vectors. */
                __m512i pe0 = _mm512_mul_epu32(c0[q], vM0);
                __m512i po0 =
                    _mm512_mul_epu32(_mm512_srli_epi64(c0[q], 32), vM0);
                __m512i pe1 = _mm512_mul_epu32(c2[q], vM1);
                __m512i po1 =
                    _mm512_mul_epu32(_mm512_srli_epi64(c2[q], 32), vM1);
                __m512i lo0 = _mm512_mask_mov_epi32(
                    pe0, ODD, _mm512_slli_epi64(po0, 32));
                __m512i hi0 = _mm512_mask_mov_epi32(
                    _mm512_srli_epi64(pe0, 32), ODD, po0);
                __m512i lo1 = _mm512_mask_mov_epi32(
                    pe1, ODD, _mm512_slli_epi64(po1, 32));
                __m512i hi1 = _mm512_mask_mov_epi32(
                    _mm512_srli_epi64(pe1, 32), ODD, po1);
                c0[q] = _mm512_xor_si512(_mm512_xor_si512(hi1, c1[q]), k0);
                c1[q] = lo1;
                c2[q] = _mm512_xor_si512(_mm512_xor_si512(hi0, c3[q]), k1);
                c3[q] = lo0;
            }
        }
        for (int q = 0; q < PHILOX_CHAINS; q++) {
            uint32_t w0[16], w1[16], w2[16], w3[16];
            _mm512_storeu_si512(w0, c0[q]);
            _mm512_storeu_si512(w1, c1[q]);
            _mm512_storeu_si512(w2, c2[q]);
            _mm512_storeu_si512(w3, c3[q]);
            float* restrict o = out + 4 * (i + 16 * q);
            for (int k = 0; k < 16; k++) {
                o[4 * k + 0] = (float)(((double)w0[k] + 0.5) * 0x1p-32);
                o[4 * k + 1] = (float)(((double)w1[k] + 0.5) * 0x1p-32);
                o[4 * k + 2] = (float)(((double)w2[k] + 0.5) * 0x1p-32);
                o[4 * k + 3] = (float)(((double)w3[k] + 0.5) * 0x1p-32);
            }
        }
    }
    *i_io = i;
}

#elif defined(__AVX2__)
#include <immintrin.h>

static void fill_unit_f32_simd(uint64_t block0, uint32_t sid_lo,
                               uint32_t sid_hi, uint64_t* i_io, uint64_t full,
                               const uint32_t* keys, float* restrict out) {
    const __m256i vM0 = _mm256_set1_epi32((int)M0);
    const __m256i vM1 = _mm256_set1_epi32((int)M1);
    uint64_t i = *i_io;
    for (; i + 8 * PHILOX_CHAINS <= full; i += 8 * PHILOX_CHAINS) {
        __m256i c0[PHILOX_CHAINS], c1[PHILOX_CHAINS];
        __m256i c2[PHILOX_CHAINS], c3[PHILOX_CHAINS];
        for (int q = 0; q < PHILOX_CHAINS; q++) {
            uint32_t t0[8], t1[8];
            for (int k = 0; k < 8; k++) {
                uint64_t b = block0 + i + (uint64_t)(8 * q + k);
                t0[k] = (uint32_t)b;
                t1[k] = (uint32_t)(b >> 32);
            }
            c0[q] = _mm256_loadu_si256((const __m256i*)t0);
            c1[q] = _mm256_loadu_si256((const __m256i*)t1);
            c2[q] = _mm256_set1_epi32((int)sid_lo);
            c3[q] = _mm256_set1_epi32((int)sid_hi);
        }
        for (int r = 0; r < ROUNDS; r++) {
            __m256i k0 = _mm256_set1_epi32((int)keys[2 * r]);
            __m256i k1 = _mm256_set1_epi32((int)keys[2 * r + 1]);
            for (int q = 0; q < PHILOX_CHAINS; q++) {
                __m256i pe0 = _mm256_mul_epu32(c0[q], vM0);
                __m256i po0 =
                    _mm256_mul_epu32(_mm256_srli_epi64(c0[q], 32), vM0);
                __m256i pe1 = _mm256_mul_epu32(c2[q], vM1);
                __m256i po1 =
                    _mm256_mul_epu32(_mm256_srli_epi64(c2[q], 32), vM1);
                __m256i lo0 = _mm256_blend_epi32(
                    pe0, _mm256_slli_epi64(po0, 32), 0xAA);
                __m256i hi0 = _mm256_blend_epi32(
                    _mm256_srli_epi64(pe0, 32), po0, 0xAA);
                __m256i lo1 = _mm256_blend_epi32(
                    pe1, _mm256_slli_epi64(po1, 32), 0xAA);
                __m256i hi1 = _mm256_blend_epi32(
                    _mm256_srli_epi64(pe1, 32), po1, 0xAA);
                c0[q] = _mm256_xor_si256(_mm256_xor_si256(hi1, c1[q]), k0);
                c1[q] = lo1;
                c2[q] = _mm256_xor_si256(_mm256_xor_si256(hi0, c3[q]), k1);
                c3[q] = lo0;
            }
        }
        for (int q = 0; q < PHILOX_CHAINS; q++) {
            uint32_t w0[8], w1[8], w2[8], w3[8];
            _mm256_storeu_si256((__m256i*)w0, c0[q]);
            _mm256_storeu_si256((__m256i*)w1, c1[q]);
            _mm256_storeu_si256((__m256i*)w2, c2[q]);
            _mm256_storeu_si256((__m256i*)w3, c3[q]);
            float* restrict o = out + 4 * (i + 8 * q);
            for (int k = 0; k < 8; k++) {
                o[4 * k + 0] = (float)(((double)w0[k] + 0.5) * 0x1p-32);
                o[4 * k + 1] = (float)(((double)w1[k] + 0.5) * 0x1p-32);
                o[4 * k + 2] = (float)(((double)w2[k] + 0.5) * 0x1p-32);
                o[4 * k + 3] = (float)(((double)w3[k] + 0.5) * 0x1p-32);
            }
        }
    }
    *i_io = i;
}

#else

static void fill_unit_f32_simd(uint64_t block0, uint32_t sid_lo,
                               uint32_t sid_hi, uint64_t* i_io, uint64_t full,
                               const uint32_t* keys, float* restrict out) {
    (void)block0; (void)sid_lo; (void)sid_hi; (void)i_io; (void)full;
    (void)keys; (void)out;
}

#endif

static void fill_unit_f32(uint64_t block0, uint64_t stream_id, uint64_t count,
                          const uint32_t* keys, float* restrict out) {
    uint32_t sid_lo = (uint32_t)stream_id;
    uint32_t sid_hi = (uint32_t)(stream_id >> 32);
    uint64_t full = count / 4;
    uint64_t i = 0;
    fill_unit_f32_simd(block0, sid_lo, sid_hi, &i, full, keys, out);
    for (; i < full; i++) {
        uint64_t b = block0 + i;
        uint32_t w[4];
        philox_block((uint32_t)b, (uint32_t)(b >> 32), sid_lo, sid_hi, keys,
                     w);
        out[4 * i + 0] = (float)(((double)w[0] + 0.5) * 0x1p-32);
        out[4 * i + 1] = (float)(((double)w[1] + 0.5) * 0x1p-32);
        out[4 * i + 2] = (float)(((double)w[2] + 0.5) * 0x1p-32);
        out[4 * i + 3] = (float)(((double)w[3] + 0.5) * 0x1p-32);
    }
    uint64_t tail = count - 4 * full;
    if (tail) {
        uint64_t b = block0 + full;
        uint32_t w[4];
        philox_block((uint32_t)b, (uint32_t)(b >> 32), sid_lo, sid_hi, keys,
                     w);
        for (uint64_t k = 0; k < tail; k++) {
            out[4 * full + k] = (float)(((double)w[k] + 0.5) * 0x1p-32);
        }
    }
}

/* Eq. 4 velocity + Eq. 5 clamp + Eq. 2 position, one pass.  A standalone
 * function with restrict parameters: every buffer is distinct by
 * construction (plan-owned gbest copy included), all elements are
 * independent, and the clamp/clip branches are loop-invariant — the
 * compiler versions the inner loop and vectorises each variant.
 * Per-element IEEE op order is unchanged by SIMD; -ffp-contract=off keeps
 * FMAs out. */
static void fused_update(uint64_t n, uint64_t d, float w, float c1, float c2,
                         const float* restrict pbp, float* restrict pos,
                         float* restrict vel, const float* restrict lw,
                         const float* restrict gw,
                         const float* restrict gbest,
                         const float* restrict vlo, const float* restrict vhi,
                         const float* restrict plo,
                         const float* restrict phi) {
    for (uint64_t i = 0; i < n; i++) {
        const uint64_t row = i * d;
        const float* restrict pb = pbp + row;
        float* restrict p = pos + row;
        float* restrict v = vel + row;
        const float* restrict l = lw + row;
        const float* restrict g = gw + row;
        for (uint64_t j = 0; j < d; j++) {
            float s1 = pb[j] - p[j];
            s1 = l[j] * s1;
            s1 = s1 * c1;
            float s2 = gbest[j] - p[j];
            s2 = g[j] * s2;
            s2 = s2 * c2;
            float nv = v[j] * w;
            nv = nv + s1;
            nv = nv + s2;
            if (vlo != NULL) {
                if (nv < vlo[j]) nv = vlo[j];
                if (nv > vhi[j]) nv = vhi[j];
            }
            v[j] = nv;
            float np_ = p[j] + nv;
            if (plo != NULL) {
                if (np_ < plo[j]) np_ = plo[j];
                if (np_ > phi[j]) np_ = phi[j];
            }
            p[j] = np_;
        }
    }
}

int64_t fastpath_step(const fastpath_plan* pl, const double* values,
                      uint64_t block0, float w, const float* vlo,
                      const float* vhi) {
    const uint64_t n = pl->n, d = pl->d;
    const uint64_t nd = n * d;

    /* -- pbest compare-and-claim (Algorithm 1 lines 6-9) ------------------ */
    int64_t improved = 0;
    for (uint64_t i = 0; i < n; i++) {
        if (values[i] < pl->pbest_values[i]) {
            pl->pbest_values[i] = values[i];
            memcpy(pl->pbest_positions + i * d, pl->positions + i * d,
                   d * sizeof(float));
            improved++;
        }
    }

    /* -- gbest scan + claim (lines 10-12) --------------------------------- */
    {
        uint64_t bi = 0;
        double bv = pl->pbest_values[0];
        for (uint64_t i = 1; i < n; i++) {
            double v = pl->pbest_values[i];
            /* first minimum; a NaN claims only over a non-NaN best, which
             * reproduces np.argmin's first-NaN-wins order. */
            if (v < bv || (v != v && bv == bv)) {
                bv = v;
                bi = i;
            }
        }
        if (bv < *pl->gbest_value) {
            *pl->gbest_value = bv;
            *pl->gbest_index = (int64_t)bi;
            memcpy(pl->gbest_position, pl->pbest_positions + bi * d,
                   d * sizeof(float));
        }
    }

    /* -- weight draws: L then G (Eq. 4's random matrices) ------------------ */
    uint64_t blocks_per_draw = (nd + 3) / 4;
    fill_unit_f32(block0, pl->stream_id, nd, pl->keys, pl->l_weights);
    fill_unit_f32(block0 + blocks_per_draw, pl->stream_id, nd, pl->keys,
                  pl->g_weights);

    /* -- fused velocity (Eq. 4 + Eq. 5 clamp) + position (Eq. 2) ---------- */
    fused_update(n, d, w, pl->c1, pl->c2, pl->pbest_positions, pl->positions,
                 pl->velocities, pl->l_weights, pl->g_weights,
                 pl->gbest_position, vlo, vhi, pl->pos_lo, pl->pos_hi);
    return improved;
}
