"""Parallel reduction primitives (min / argmin) for the gbest update.

The paper implements the gbest update as "a process of finding the minimum
and its corresponding index in all the pbest of the particles ... using a
GPU-based parallel reduction".  We model the canonical two-pass tree
reduction: a first kernel reduces each block's slice in shared memory and
writes one candidate per block; a second single-block kernel reduces the
candidates.  The semantics are exact (NumPy ``argmin`` with first-match tie
breaking, the same deterministic order a sequential scan produces), and the
timing is two launches with the appropriate byte/FLOP mixes.
"""

from __future__ import annotations

import numpy as np

from repro.gpusim.costmodel import kernel_cost
from repro.gpusim.kernel import Kernel, KernelSpec, LaunchConfig
from repro.gpusim.launch import Launcher, resource_aware_config

__all__ = ["ParallelReducer", "REDUCE_BLOCK_SIZE"]

REDUCE_BLOCK_SIZE = 256


def _argmin_first(values: np.ndarray) -> tuple[int, float]:
    idx = int(np.argmin(values))
    return idx, float(values[idx])


class ParallelReducer:
    """Two-pass block-tree min/argmin reduction on a simulated device."""

    def __init__(self, launcher: Launcher) -> None:
        self._launcher = launcher
        smem = REDUCE_BLOCK_SIZE * 8  # value + index per thread
        self._pass1 = Kernel(
            KernelSpec(
                name="reduce_argmin_pass1",
                flops_per_elem=1.0,  # one compare per element
                bytes_read_per_elem=4.0,
                bytes_written_per_elem=8.0 / REDUCE_BLOCK_SIZE,  # one pair/block
                registers_per_thread=24,
                shared_mem_per_block=smem,
            ),
            semantics=self._pass1_semantics,
        )
        self._pass2 = Kernel(
            KernelSpec(
                name="reduce_argmin_pass2",
                flops_per_elem=1.0,
                bytes_read_per_elem=8.0,
                bytes_written_per_elem=8.0 / REDUCE_BLOCK_SIZE,
                registers_per_thread=24,
                shared_mem_per_block=smem,
            ),
            semantics=_argmin_first,
        )

    @staticmethod
    def _pass1_semantics(values: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
        """Per-block partial argmin: one (value, index) candidate per block."""
        n = values.shape[0]
        n_blocks = -(-n // REDUCE_BLOCK_SIZE)
        pad = n_blocks * REDUCE_BLOCK_SIZE - n
        padded = np.concatenate([values, np.full(pad, np.inf, values.dtype)])
        tiles = padded.reshape(n_blocks, REDUCE_BLOCK_SIZE)
        local_idx = np.argmin(tiles, axis=1)
        block_vals = tiles[np.arange(n_blocks), local_idx]
        block_idx = local_idx + np.arange(n_blocks) * REDUCE_BLOCK_SIZE
        return block_vals, block_idx

    def argmin(self, values: np.ndarray) -> tuple[int, float]:
        """Index and value of the minimum of a 1-D device-resident array.

        Ties resolve to the lowest index, matching both ``np.argmin`` and a
        deterministic sequential scan — required so the simulated engines
        stay bit-identical to the CPU reference trajectories.
        """
        values = np.ascontiguousarray(values)
        if values.ndim != 1 or values.shape[0] == 0:
            raise ValueError(
                f"argmin reduction needs a non-empty 1-D array, got shape {values.shape}"
            )
        n = values.shape[0]
        if n == 1:
            # Degenerate reduction still costs one (tiny) kernel.
            self._launcher.launch(
                self._pass2,
                1,
                values,
                config=LaunchConfig(1, REDUCE_BLOCK_SIZE),
            )
            return 0, float(values[0])

        block_vals, block_idx = self._launcher.launch(self._pass1, n, values)
        local, _ = self._launcher.launch(
            self._pass2,
            block_vals.shape[0],
            block_vals,
            config=LaunchConfig(1, REDUCE_BLOCK_SIZE),
        )
        return int(block_idx[local]), float(block_vals[local])

    def prebound_argmin(self, n: int, *, section: str = "gbest"):
        """Pre-bound replay form of :meth:`argmin` for *n*-element inputs.

        Returns ``(run, launches)``: ``run(values)`` executes the reduction
        with geometry and modelled costs resolved once, charging the clock
        with the *same* per-launch float additions the eager path performs;
        *launches* is the launch sequence it will charge, for validation
        against a captured iteration.  Costs come from the same memoized
        :func:`~repro.gpusim.costmodel.kernel_cost` front door, so they are
        bitwise-equal to the eager path's.
        """
        launcher = self._launcher
        clock = launcher.clock
        if n == 1:
            cfg2 = LaunchConfig(1, REDUCE_BLOCK_SIZE)
            c2 = kernel_cost(
                launcher.spec, self._pass2.spec, cfg2, 1, launcher.cost_params
            )
            launches = [("reduce_argmin_pass2", section, 1, cfg2, c2)]

            def run_single(values: np.ndarray) -> tuple[int, float]:
                clock.advance(c2.seconds)
                return 0, float(values[0])

            return run_single, launches

        cfg1 = resource_aware_config(
            launcher.spec, n, kernel_spec=self._pass1.spec
        )
        c1 = kernel_cost(
            launcher.spec, self._pass1.spec, cfg1, n, launcher.cost_params
        )
        n_blocks = -(-n // REDUCE_BLOCK_SIZE)
        cfg2 = LaunchConfig(1, REDUCE_BLOCK_SIZE)
        c2 = kernel_cost(
            launcher.spec, self._pass2.spec, cfg2, n_blocks, launcher.cost_params
        )
        launches = [
            ("reduce_argmin_pass1", section, n, cfg1, c1),
            ("reduce_argmin_pass2", section, n_blocks, cfg2, c2),
        ]
        pass1 = self._pass1_semantics

        def run(values: np.ndarray) -> tuple[int, float]:
            block_vals, block_idx = pass1(np.ascontiguousarray(values))
            clock.advance(c1.seconds)
            local, _ = _argmin_first(block_vals)
            clock.advance(c2.seconds)
            return int(block_idx[local]), float(block_vals[local])

        return run, launches
