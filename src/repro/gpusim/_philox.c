/* Philox4x32-10 counter-mode uniform generation, scalar C.
 *
 * Compiled on demand by repro.gpusim.philox_native into a shared object and
 * called through ctypes.  The output must be bit-identical to the NumPy
 * uint64-lane pipeline in repro.gpusim.rng:
 *
 *   - counter block i contributes words philox(counter=(lo(i), hi(i),
 *     sid_lo, sid_hi), key=key_schedule(seed)) in lane order w0..w3;
 *   - the unit mapping is (double)(word + 0.5) * 2^-32, optionally rounded
 *     once to float32 (exactly what numpy's float64 -> float32 cast does).
 *
 * `keys` is the precomputed per-round schedule: 2*ROUNDS uint32 values laid
 * out as k0_r0, k1_r0, k0_r1, k1_r1, ...  Passing the schedule instead of
 * the seed keeps the key bump out of the hot loop and guarantees the C and
 * NumPy paths share one schedule implementation.
 */
#include <stdint.h>

#define ROUNDS 10
#define M0 0xD2511F53u
#define M1 0xCD9E8D57u

static inline void philox_block(uint32_t c0, uint32_t c1, uint32_t c2,
                                uint32_t c3, const uint32_t* keys,
                                uint32_t* out) {
    for (int r = 0; r < ROUNDS; r++) {
        uint64_t p0 = (uint64_t)M0 * c0;
        uint64_t p1 = (uint64_t)M1 * c2;
        uint32_t hi0 = (uint32_t)(p0 >> 32), lo0 = (uint32_t)p0;
        uint32_t hi1 = (uint32_t)(p1 >> 32), lo1 = (uint32_t)p1;
        uint32_t n0 = hi1 ^ c1 ^ keys[2 * r];
        uint32_t n2 = hi0 ^ c3 ^ keys[2 * r + 1];
        c0 = n0;
        c1 = lo1;
        c2 = n2;
        c3 = lo0;
    }
    out[0] = c0;
    out[1] = c1;
    out[2] = c2;
    out[3] = c3;
}

void philox_unit_f32(uint64_t block0, uint64_t stream_id, uint64_t n_blocks,
                     const uint32_t* keys, float* out) {
    uint32_t sid_lo = (uint32_t)stream_id;
    uint32_t sid_hi = (uint32_t)(stream_id >> 32);
    for (uint64_t i = 0; i < n_blocks; i++) {
        uint64_t b = block0 + i;
        uint32_t w[4];
        philox_block((uint32_t)b, (uint32_t)(b >> 32), sid_lo, sid_hi, keys,
                     w);
        out[4 * i + 0] = (float)(((double)w[0] + 0.5) * 0x1p-32);
        out[4 * i + 1] = (float)(((double)w[1] + 0.5) * 0x1p-32);
        out[4 * i + 2] = (float)(((double)w[2] + 0.5) * 0x1p-32);
        out[4 * i + 3] = (float)(((double)w[3] + 0.5) * 0x1p-32);
    }
}

void philox_unit_f64(uint64_t block0, uint64_t stream_id, uint64_t n_blocks,
                     const uint32_t* keys, double* out) {
    uint32_t sid_lo = (uint32_t)stream_id;
    uint32_t sid_hi = (uint32_t)(stream_id >> 32);
    for (uint64_t i = 0; i < n_blocks; i++) {
        uint64_t b = block0 + i;
        uint32_t w[4];
        philox_block((uint32_t)b, (uint32_t)(b >> 32), sid_lo, sid_hi, keys,
                     w);
        out[4 * i + 0] = ((double)w[0] + 0.5) * 0x1p-32;
        out[4 * i + 1] = ((double)w[1] + 0.5) * 0x1p-32;
        out[4 * i + 2] = ((double)w[2] + 0.5) * 0x1p-32;
        out[4 * i + 3] = ((double)w[3] + 0.5) * 0x1p-32;
    }
}
