"""Host-side memoization for the launch/cost pipeline.

The analytic cost model only pays off if it is cheap to evaluate: a
steady-state PSO run launches the same handful of kernels with the same
geometry thousands of times, and recomputing occupancy/roofline arithmetic
for each one is pure host overhead — the simulator-side analogue of the
per-iteration setup the paper's technique (i) removes on the GPU.

Everything memoized here is a *pure* function of immutable (frozen
dataclass) inputs: :func:`repro.gpusim.occupancy.occupancy`,
:func:`repro.gpusim.launch.resource_aware_config` and
:func:`repro.gpusim.costmodel.kernel_cost`.  Cache keys are the argument
tuples themselves, so a different :class:`~repro.gpusim.device.DeviceSpec`
or :class:`~repro.gpusim.costmodel.GpuCostParams` is simply a different key
— there is no invalidation to get wrong, and simulated time is unaffected
by construction (cached values are bit-identical to recomputed ones).

Debugging escape hatches:

* set the environment variable ``REPRO_NO_HOST_CACHE=1`` before import, or
  call :func:`set_enabled` ``(False)`` at runtime, to route every call to
  the uncached implementation (the per-:class:`~repro.gpusim.launch.Launcher`
  launch cache honours the same switch);
* each memoized function keeps its original as ``fn.uncached`` and exposes
  ``fn.cache_clear()`` / ``fn.cache_info()``; :func:`clear_all_caches`
  empties every registered cache at once.
"""

from __future__ import annotations

import functools
import os
from typing import Callable, TypeVar

__all__ = [
    "memoized",
    "cache_enabled",
    "set_enabled",
    "clear_all_caches",
]

F = TypeVar("F", bound=Callable[..., object])

_REGISTRY: list[Callable[..., object]] = []

_enabled = os.environ.get("REPRO_NO_HOST_CACHE", "").lower() not in (
    "1",
    "true",
    "yes",
)


def cache_enabled() -> bool:
    """Whether the host-side memoization layer is active."""
    return _enabled


def set_enabled(flag: bool) -> None:
    """Enable/disable all host-side caches (for debugging and tests).

    Disabling does not drop cached entries; re-enabling reuses them.
    Call :func:`clear_all_caches` to actually empty the caches.
    """
    global _enabled
    _enabled = bool(flag)


def clear_all_caches() -> None:
    """Empty every cache registered via :func:`memoized`."""
    for fn in _REGISTRY:
        fn.cache_clear()  # type: ignore[attr-defined]


def memoized(fn: F) -> F:
    """Memoize a pure function of hashable (frozen-dataclass) arguments.

    The wrapper honours the global enable switch on every call and keeps
    the original implementation reachable as ``wrapper.uncached`` so tests
    can compare cached and uncached results directly.
    """
    cached = functools.lru_cache(maxsize=None)(fn)

    @functools.wraps(fn)
    def wrapper(*args: object, **kwargs: object) -> object:
        if _enabled:
            return cached(*args, **kwargs)
        return fn(*args, **kwargs)

    wrapper.uncached = fn  # type: ignore[attr-defined]
    wrapper.cache_clear = cached.cache_clear  # type: ignore[attr-defined]
    wrapper.cache_info = cached.cache_info  # type: ignore[attr-defined]
    _REGISTRY.append(wrapper)
    return wrapper  # type: ignore[return-value]
