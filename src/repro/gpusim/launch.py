"""Kernel launch machinery: resource-aware thread creation + grid-stride.

Implements the paper's technique (i).  FastPSO never launches more threads
than the device can keep resident: the thread workload is
``tw = ceil(n_elems / resident_capacity)`` (the practical reading of the
paper's Eq. 3), realised as a grid-stride loop.  Baseline engines instead use
:func:`thread_per_item_config`, which launches exactly one thread per work
item regardless of device capacity — the behaviour the paper identifies as
wasteful for large problems and starving for small ones.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import InvalidLaunchError
from repro.gpusim.clock import SimClock
from repro.gpusim.costmodel import (
    DEFAULT_GPU_COST_PARAMS,
    GpuCostParams,
    KernelCost,
    kernel_cost,
)
from repro.gpusim.device import DeviceSpec
from repro.gpusim.kernel import Kernel, KernelSpec, LaunchConfig

__all__ = [
    "resource_aware_config",
    "thread_per_item_config",
    "Launcher",
    "LaunchRecord",
]

DEFAULT_THREADS_PER_BLOCK = 256


def resource_aware_config(
    spec: DeviceSpec,
    n_elems: int,
    *,
    threads_per_block: int = DEFAULT_THREADS_PER_BLOCK,
    kernel_spec: "KernelSpec | None" = None,
) -> LaunchConfig:
    """FastPSO's launch geometry: saturate the device, never oversubscribe.

    Total threads are capped at the device's resident capacity; the
    kernel's grid-stride loop assigns ``ceil(n_elems / total_threads)``
    elements to each thread (the paper's thread-workload formula).

    When *kernel_spec* is supplied the cap also honours the kernel's own
    occupancy limits (registers, shared memory): the grid never exceeds one
    full wave of resident blocks, so register-heavy kernels don't spill a
    tail of blocks into a second wave.  This is the full reading of the
    paper's "GPU resource-aware thread creation".
    """
    if n_elems <= 0:
        raise InvalidLaunchError("cannot size a launch for zero elements")
    spec.validate_block(
        threads_per_block,
        kernel_spec.shared_mem_per_block if kernel_spec is not None else 0,
    )
    capacity_threads = spec.max_resident_threads
    if kernel_spec is not None:
        from repro.gpusim.occupancy import occupancy

        theo = occupancy(
            spec,
            threads_per_block,
            registers_per_thread=kernel_spec.registers_per_thread,
            shared_mem_per_block=kernel_spec.shared_mem_per_block,
        )
        capacity_threads = min(
            capacity_threads,
            theo.blocks_per_sm * spec.sm_count * threads_per_block,
        )
    wanted_threads = min(n_elems, capacity_threads)
    blocks = max(1, -(-wanted_threads // threads_per_block))
    return LaunchConfig(grid_blocks=blocks, threads_per_block=threads_per_block)


def thread_per_item_config(
    spec: DeviceSpec,
    n_items: int,
    *,
    threads_per_block: int = DEFAULT_THREADS_PER_BLOCK,
) -> LaunchConfig:
    """Baseline geometry: one thread per work item, however many that is.

    For small swarms this under-fills the device (the inefficiency FastPSO
    fixes); for huge element counts it creates an excessive grid — both are
    faithfully reproduced rather than corrected.
    """
    if n_items <= 0:
        raise InvalidLaunchError("cannot size a launch for zero items")
    spec.validate_block(threads_per_block)
    blocks = max(1, -(-n_items // threads_per_block))
    return LaunchConfig(grid_blocks=blocks, threads_per_block=threads_per_block)


@dataclass(frozen=True)
class LaunchRecord:
    """One completed kernel launch, as stored by the profiler."""

    kernel_name: str
    n_elems: int
    config: LaunchConfig
    cost: KernelCost
    section: str | None = None


@dataclass
class Launcher:
    """Executes kernels on a simulated device: semantics + clock + profile.

    The launcher is the single choke point where simulated time advances for
    kernels, so instrumenting it (see :mod:`repro.gpusim.profiler`) yields
    the complete launch log that Table 3 and Figure 5 are derived from.
    """

    spec: DeviceSpec
    clock: SimClock
    cost_params: GpuCostParams = field(default_factory=lambda: DEFAULT_GPU_COST_PARAMS)
    records: list[LaunchRecord] = field(default_factory=list)

    def launch(
        self,
        kernel: Kernel,
        n_elems: int,
        *args: object,
        config: LaunchConfig | None = None,
        **kwargs: object,
    ) -> object:
        """Run *kernel* over *n_elems* elements and charge its modelled time.

        Returns whatever the kernel's semantics callable returns.  If
        *config* is omitted the resource-aware geometry is used.
        """
        if config is None:
            config = resource_aware_config(
                self.spec, max(1, n_elems), kernel_spec=kernel.spec
            )
        config.validate(self.spec, kernel.spec.shared_mem_per_block)

        result = kernel.semantics(*args, **kwargs)

        cost = kernel_cost(self.spec, kernel.spec, config, n_elems, self.cost_params)
        section = self.clock._stack[-1] if self.clock._stack else None
        self.clock.advance(cost.seconds)
        self.records.append(
            LaunchRecord(
                kernel_name=kernel.name,
                n_elems=n_elems,
                config=config,
                cost=cost,
                section=section,
            )
        )
        return result

    def reset_records(self) -> None:
        self.records.clear()
