"""Kernel launch machinery: resource-aware thread creation + grid-stride.

Implements the paper's technique (i).  FastPSO never launches more threads
than the device can keep resident: the thread workload is
``tw = ceil(n_elems / resident_capacity)`` (the practical reading of the
paper's Eq. 3), realised as a grid-stride loop.  Baseline engines instead use
:func:`thread_per_item_config`, which launches exactly one thread per work
item regardless of device capacity — the behaviour the paper identifies as
wasteful for large problems and starving for small ones.

Host fast path: launch geometry and modelled cost are pure functions of
``(device, kernel spec, config, n_elems, cost params)``, all immutable, so a
steady-state PSO run recomputes nothing after its first iteration — the
memoized front doors (:mod:`repro.gpusim.hostcache`) plus a per-launcher
``(spec, config, n_elems) -> (config, cost)`` table make repeat launches
pure dictionary hits.  Profiling is aggregation-first: the launcher always
maintains per-``(kernel, section)`` accumulators (:class:`LaunchStats`,
O(distinct kernels) memory) and only keeps the full per-launch log when
``record_launches=True`` is requested (the Figure 5 / Table 3 paths that
need individual records).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import InvalidLaunchError
from repro.gpusim import hostcache
from repro.gpusim.clock import SimClock
from repro.gpusim.costmodel import (
    DEFAULT_GPU_COST_PARAMS,
    GpuCostParams,
    KernelCost,
    kernel_cost,
)
from repro.gpusim.device import DeviceSpec
from repro.gpusim.hostcache import memoized
from repro.gpusim.kernel import Kernel, KernelSpec, LaunchConfig

__all__ = [
    "resource_aware_config",
    "thread_per_item_config",
    "Launcher",
    "LaunchRecord",
    "LaunchStats",
]

DEFAULT_THREADS_PER_BLOCK = 256


@memoized
def resource_aware_config(
    spec: DeviceSpec,
    n_elems: int,
    *,
    threads_per_block: int = DEFAULT_THREADS_PER_BLOCK,
    kernel_spec: "KernelSpec | None" = None,
) -> LaunchConfig:
    """FastPSO's launch geometry: saturate the device, never oversubscribe.

    Total threads are capped at the device's resident capacity; the
    kernel's grid-stride loop assigns ``ceil(n_elems / total_threads)``
    elements to each thread (the paper's thread-workload formula).

    When *kernel_spec* is supplied the cap also honours the kernel's own
    occupancy limits (registers, shared memory): the grid never exceeds one
    full wave of resident blocks, so register-heavy kernels don't spill a
    tail of blocks into a second wave.  This is the full reading of the
    paper's "GPU resource-aware thread creation".

    Pure function of immutable inputs, so results are memoized (see
    :mod:`repro.gpusim.hostcache`); ``resource_aware_config.uncached``
    bypasses the cache.
    """
    if n_elems <= 0:
        raise InvalidLaunchError("cannot size a launch for zero elements")
    spec.validate_block(
        threads_per_block,
        kernel_spec.shared_mem_per_block if kernel_spec is not None else 0,
    )
    capacity_threads = spec.max_resident_threads
    if kernel_spec is not None:
        from repro.gpusim.occupancy import occupancy

        theo = occupancy(
            spec,
            threads_per_block,
            registers_per_thread=kernel_spec.registers_per_thread,
            shared_mem_per_block=kernel_spec.shared_mem_per_block,
        )
        capacity_threads = min(
            capacity_threads,
            theo.blocks_per_sm * spec.sm_count * threads_per_block,
        )
    wanted_threads = min(n_elems, capacity_threads)
    blocks = max(1, -(-wanted_threads // threads_per_block))
    return LaunchConfig(grid_blocks=blocks, threads_per_block=threads_per_block)


def thread_per_item_config(
    spec: DeviceSpec,
    n_items: int,
    *,
    threads_per_block: int = DEFAULT_THREADS_PER_BLOCK,
) -> LaunchConfig:
    """Baseline geometry: one thread per work item, however many that is.

    For small swarms this under-fills the device (the inefficiency FastPSO
    fixes); for huge element counts it creates an excessive grid — both are
    faithfully reproduced rather than corrected.
    """
    if n_items <= 0:
        raise InvalidLaunchError("cannot size a launch for zero items")
    spec.validate_block(threads_per_block)
    blocks = max(1, -(-n_items // threads_per_block))
    return LaunchConfig(grid_blocks=blocks, threads_per_block=threads_per_block)


@dataclass(frozen=True)
class LaunchRecord:
    """One completed kernel launch, as stored by the opt-in launch log."""

    kernel_name: str
    n_elems: int
    config: LaunchConfig
    cost: KernelCost
    section: str | None = None


@dataclass
class LaunchStats:
    """Aggregated profile for every launch of one kernel in one section.

    This is the launcher's always-on profiling state: O(1) per distinct
    ``(kernel, section)`` pair regardless of how many launches occur.
    ``seconds`` includes launch overhead; ``body_seconds`` excludes it
    (nvprof's active-cycles convention, used for throughput metrics).
    """

    kernel_name: str
    section: str | None
    launches: int = 0
    total_elems: int = 0
    seconds: float = 0.0
    body_seconds: float = 0.0
    bytes_read: float = 0.0
    bytes_written: float = 0.0
    bytes_l2: float = 0.0
    flops: float = 0.0
    occupancy_sum: float = 0.0

    def add(self, cost: KernelCost, n_elems: int) -> None:
        self.launches += 1
        self.total_elems += n_elems
        self.seconds += cost.seconds
        self.body_seconds += cost.seconds - cost.t_launch_overhead
        self.bytes_read += cost.bytes_read
        self.bytes_written += cost.bytes_written
        self.bytes_l2 += cost.bytes_l2
        self.flops += cost.flops
        self.occupancy_sum += cost.occupancy

    def add_many(self, cost: KernelCost, n_elems: int, count: int) -> None:
        """Fold *count* identical launches in one update.

        Used by launch-graph replay, which executes a launch's semantics
        ``count`` times without touching the stats and reconciles the
        profile here when the graph is flushed.
        """
        self.launches += count
        self.total_elems += count * n_elems
        self.seconds += count * cost.seconds
        self.body_seconds += count * (cost.seconds - cost.t_launch_overhead)
        self.bytes_read += count * cost.bytes_read
        self.bytes_written += count * cost.bytes_written
        self.bytes_l2 += count * cost.bytes_l2
        self.flops += count * cost.flops
        self.occupancy_sum += count * cost.occupancy

    @property
    def mean_occupancy(self) -> float:
        return self.occupancy_sum / self.launches if self.launches else 0.0


@dataclass
class Launcher:
    """Executes kernels on a simulated device: semantics + clock + profile.

    The launcher is the single choke point where simulated time advances for
    kernels.  By default it keeps only aggregated :class:`LaunchStats`
    (memory O(distinct kernels)); construct with ``record_launches=True`` to
    additionally retain the full per-launch :class:`LaunchRecord` log that
    the Figure 5 / Table 3 experiment paths consume.
    """

    spec: DeviceSpec
    clock: SimClock
    cost_params: GpuCostParams = field(default_factory=lambda: DEFAULT_GPU_COST_PARAMS)
    records: list[LaunchRecord] = field(default_factory=list)
    record_launches: bool = False
    stats: dict[tuple[str, str | None], LaunchStats] = field(default_factory=dict)
    # (kernel spec, explicit config or None, n_elems) -> (config, cost).
    # Engine kernels are long-lived objects, so steady-state launches hit
    # this table on an identity-shortcut dict lookup and recompute nothing.
    _launch_cache: dict = field(default_factory=dict, repr=False)
    #: Optional :class:`repro.reliability.faults.FaultInjector` consulted
    #: before every launch (may raise injected errors or stall the stream).
    fault_injector: object = field(default=None, repr=False)
    #: Optional capture sink: while set, every launch appends
    #: ``(kernel_name, section, n_elems, config, cost)``.  Launch-graph
    #: capture (:mod:`repro.gpusim.graph`) points this at its record list
    #: for exactly one iteration, then detaches it.
    capture: "list | None" = field(default=None, repr=False)

    def launch(
        self,
        kernel: Kernel,
        n_elems: int,
        *args: object,
        config: LaunchConfig | None = None,
        **kwargs: object,
    ) -> object:
        """Run *kernel* over *n_elems* elements and charge its modelled time.

        Returns whatever the kernel's semantics callable returns.  If
        *config* is omitted the resource-aware geometry is used.
        """
        if self.fault_injector is not None:
            stall = self.fault_injector.on_launch(kernel.spec.name)
            if stall:
                # A stream stall: extra latency attributed to the current
                # clock section, deliberately *not* to LaunchStats — the
                # kernel itself ran at its modelled speed.
                self.clock.advance(stall)
        key = (kernel.spec, config, n_elems)
        cached = (
            self._launch_cache.get(key) if hostcache.cache_enabled() else None
        )
        if cached is not None:
            config, cost = cached
            result = kernel.semantics(*args, **kwargs)
        else:
            if config is None:
                config = resource_aware_config(
                    self.spec, max(1, n_elems), kernel_spec=kernel.spec
                )
            config.validate(self.spec, kernel.spec.shared_mem_per_block)

            result = kernel.semantics(*args, **kwargs)

            cost = kernel_cost(
                self.spec, kernel.spec, config, n_elems, self.cost_params
            )
            if hostcache.cache_enabled():
                self._launch_cache[key] = (config, cost)

        section = self.clock.current_section
        if self.capture is not None:
            self.capture.append(
                (kernel.spec.name, section, n_elems, config, cost)
            )
        self.clock.advance(cost.seconds)
        stats_key = (kernel.spec.name, section)
        bucket = self.stats.get(stats_key)
        if bucket is None:
            bucket = LaunchStats(kernel_name=kernel.spec.name, section=section)
            self.stats[stats_key] = bucket
        bucket.add(cost, n_elems)
        if self.record_launches:
            self.records.append(
                LaunchRecord(
                    kernel_name=kernel.name,
                    n_elems=n_elems,
                    config=config,
                    cost=cost,
                    section=section,
                )
            )
        return result

    def charge(
        self,
        kernel: Kernel,
        n_elems: int,
        *,
        config: LaunchConfig | None = None,
        dynamic: bool = False,
    ) -> KernelCost:
        """Charge a kernel's modelled time without dispatching it.

        For work whose *semantics* already happened as a side effect of an
        earlier kernel (the pbest-position copy lives inside
        ``pbest_update``): same cost model, same clock accounting, same
        profiling rows as :meth:`launch`, but no semantics callable, no
        fault hook and no per-launch dispatch overhead.  ``dynamic=True``
        marks the clock charge as data-dependent for launch-graph capture.
        """
        key = (kernel.spec, config, n_elems)
        cached = (
            self._launch_cache.get(key) if hostcache.cache_enabled() else None
        )
        if cached is not None:
            config, cost = cached
        else:
            if config is None:
                config = resource_aware_config(
                    self.spec, max(1, n_elems), kernel_spec=kernel.spec
                )
            config.validate(self.spec, kernel.spec.shared_mem_per_block)
            cost = kernel_cost(
                self.spec, kernel.spec, config, n_elems, self.cost_params
            )
            if hostcache.cache_enabled():
                self._launch_cache[key] = (config, cost)
        section = self.clock.current_section
        if dynamic:
            self.clock.advance_dynamic(cost.seconds)
        else:
            self.clock.advance(cost.seconds)
        stats_key = (kernel.spec.name, section)
        bucket = self.stats.get(stats_key)
        if bucket is None:
            bucket = LaunchStats(kernel_name=kernel.spec.name, section=section)
            self.stats[stats_key] = bucket
        bucket.add(cost, n_elems)
        if self.record_launches:
            self.records.append(
                LaunchRecord(
                    kernel_name=kernel.name,
                    n_elems=n_elems,
                    config=config,
                    cost=cost,
                    section=section,
                )
            )
        return cost

    def reset_records(self) -> None:
        """Drop all profiling state (both the stats and the opt-in log)."""
        self.records.clear()
        self.stats.clear()
