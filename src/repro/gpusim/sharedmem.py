"""Shared-memory tiling for element-wise matrix kernels.

Section 3.5 of the paper stages the swarm-update matrices through shared
memory in ``(TILE_SIZE, TILE_SIZE)`` sub-matrices.  For a purely element-wise
kernel this does not reduce DRAM traffic (each element is touched once), but
it does change the kernel's resource profile: the tile buffers consume
shared memory (which can lower occupancy) while guaranteeing coalesced,
bank-conflict-free access during the compute phase.  The paper's Figure 6
finds the global-memory and shared-memory variants nearly tied — exactly the
behaviour this model produces for a bandwidth-bound update.

:func:`tile_iter` provides the actual tiled traversal (used by the semantics
of the shared-memory backend so the tiling logic is executed and testable),
and :func:`shared_mem_spec` derives the modified :class:`KernelSpec`.
"""

from __future__ import annotations

from typing import Iterator

import numpy as np

from repro.errors import InvalidLaunchError
from repro.gpusim.kernel import KernelSpec

__all__ = ["DEFAULT_TILE_SIZE", "tile_iter", "tile_count", "shared_mem_spec"]

DEFAULT_TILE_SIZE = 32


def tile_count(shape: tuple[int, int], tile_size: int = DEFAULT_TILE_SIZE) -> int:
    """Number of ``tile_size x tile_size`` tiles covering *shape*."""
    if tile_size <= 0:
        raise InvalidLaunchError("tile size must be positive")
    rows, cols = shape
    return (-(-rows // tile_size)) * (-(-cols // tile_size))


def tile_iter(
    shape: tuple[int, int], tile_size: int = DEFAULT_TILE_SIZE
) -> Iterator[tuple[slice, slice]]:
    """Yield row/column slices covering *shape* in row-major tile order.

    Edge tiles are clipped to the matrix bounds, mirroring the guarded loads
    a real tiled kernel performs for non-multiple dimensions.
    """
    if tile_size <= 0:
        raise InvalidLaunchError("tile size must be positive")
    rows, cols = shape
    for r0 in range(0, rows, tile_size):
        for c0 in range(0, cols, tile_size):
            yield (
                slice(r0, min(r0 + tile_size, rows)),
                slice(c0, min(c0 + tile_size, cols)),
            )


def apply_tiled(
    out: np.ndarray,
    fn,
    *inputs: np.ndarray,
    tile_size: int = DEFAULT_TILE_SIZE,
) -> np.ndarray:
    """Apply an element-wise *fn* tile by tile (shared-memory staging order).

    ``fn`` receives one tile from each input and must return the output
    tile.  Results are bit-identical to the unfused global-memory path; the
    traversal order is what differs, and tests assert the equivalence.
    """
    for rows, cols in tile_iter(out.shape, tile_size):
        out[rows, cols] = fn(*(arr[rows, cols] for arr in inputs))
    return out


def shared_mem_spec(
    base: KernelSpec,
    n_input_matrices: int,
    *,
    tile_size: int = DEFAULT_TILE_SIZE,
    dtype_bytes: int = 4,
    block_threads: int = 256,
) -> KernelSpec:
    """Derive the shared-memory variant of an element-wise kernel spec.

    Each resident block stages ``n_input_matrices`` input tiles plus one
    output tile.  Staging guarantees coalesced DRAM access (tiles are loaded
    row-contiguously) and adds a small per-element instruction cost for the
    extra shared-memory load/store pair and the two ``__syncthreads``.
    """
    if n_input_matrices < 1:
        raise InvalidLaunchError("tiled kernel needs at least one input matrix")
    if block_threads <= 0:
        raise InvalidLaunchError("block_threads must be positive")
    tile_bytes = tile_size * tile_size * dtype_bytes
    smem = (n_input_matrices + 1) * tile_bytes
    return base.scaled(
        name=f"{base.name}_smem",
        shared_mem_per_block=smem,
        coalesced=True,
        flops_per_elem=base.flops_per_elem + 2.0,  # smem ld/st pair
        registers_per_thread=base.registers_per_thread + 4,
    )
