"""Wiring: a ready-to-use simulated GPU (spec + clock + memory + launcher).

:class:`GpuContext` is the object the optimizer engines hold.  It owns one
device's clock, global-memory accounting, allocator (direct or caching — the
paper's Table 4 toggle), transfer engine, kernel launcher and reducer, and
can produce a profiling report over everything launched so far.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.gpusim.alloc import CachingAllocator, DirectAllocator, _AllocatorBase
from repro.gpusim.clock import SimClock
from repro.gpusim.costmodel import DEFAULT_GPU_COST_PARAMS, GpuCostParams
from repro.gpusim.device import DeviceSpec, tesla_v100
from repro.gpusim.launch import Launcher
from repro.gpusim.memory import DeviceBuffer, GlobalMemory, TransferEngine
from repro.gpusim.profiler import (
    ProfileReport,
    build_report,
    build_report_from_stats,
)
from repro.gpusim.reduction import ParallelReducer
from repro.gpusim.rng import ParallelRNG
from repro.gpusim.streams import Stream

__all__ = ["GpuContext", "make_context"]


@dataclass
class GpuContext:
    """One simulated device with all of its runtime services attached."""

    spec: DeviceSpec
    clock: SimClock
    memory: GlobalMemory
    allocator: _AllocatorBase
    transfers: TransferEngine
    launcher: Launcher
    reducer: ParallelReducer
    device_index: int = 0
    streams: list[Stream] = field(default_factory=list)

    # -- convenience --------------------------------------------------------
    @property
    def now(self) -> float:
        """Current simulated time on this device, in seconds."""
        return self.clock.now

    def new_stream(self) -> Stream:
        stream = Stream(self.clock)
        self.streams.append(stream)
        return stream

    def make_rng(self, seed: int, stream_id: int = 0) -> ParallelRNG:
        """A counter-based generator namespaced to this device."""
        return ParallelRNG(seed, (self.device_index << 32) | stream_id)

    def alloc_matrix(self, n: int, d: int, dtype=np.float32) -> DeviceBuffer:
        return self.allocator.alloc_like((n, d), np.dtype(dtype))

    def alloc_vector(self, n: int, dtype=np.float32) -> DeviceBuffer:
        return self.allocator.alloc_like((n,), np.dtype(dtype))

    def free(self, buf: DeviceBuffer) -> None:
        self.allocator.free(buf)

    def attach_fault_injector(self, injector) -> None:
        """Route this device's launches and allocations through *injector*.

        See :class:`repro.reliability.faults.FaultInjector`; pass ``None``
        to detach.
        """
        self.launcher.fault_injector = injector
        self.allocator.fault_injector = injector

    def profile_report(self) -> ProfileReport:
        """Aggregate every launch so far plus the clock's section totals.

        Uses the full per-launch log when the launcher records one
        (``record_launches=True``), the O(distinct kernels) accumulators
        otherwise.
        """
        if self.launcher.record_launches:
            return build_report(self.launcher.records, self.clock.section_totals)
        return build_report_from_stats(
            self.launcher.stats, self.clock.section_totals
        )

    def reset_timeline(self) -> None:
        """Zero the clock and drop launch records (memory state persists)."""
        self.clock.reset()
        self.launcher.reset_records()


def make_context(
    spec: DeviceSpec | None = None,
    *,
    caching: bool = True,
    cost_params: GpuCostParams | None = None,
    device_index: int = 0,
    record_launches: bool = False,
) -> GpuContext:
    """Build a :class:`GpuContext` for *spec* (default: the paper's V100).

    ``caching`` selects the allocator flavour — ``True`` is FastPSO's
    memory-caching technique, ``False`` the per-request cudaMalloc baseline
    of Table 4.  ``record_launches`` keeps the full per-launch log (needed
    by the Figure 5 / Table 3 experiment paths); the default keeps only the
    aggregated per-kernel statistics.

    When *spec* is omitted, an ambient catalog default installed via
    :func:`repro.devices.set_default_device` / :func:`repro.devices.use_device`
    takes precedence over the paper's V100 — that is how
    ``repro bench --device a100`` retargets every engine it constructs
    without threading a spec through each call site.
    """
    if spec is None:
        from repro.devices import get_default_device

        spec = get_default_device() or tesla_v100()
    clock = SimClock()
    memory = GlobalMemory(total_bytes=spec.global_mem_bytes)
    alloc_cls = CachingAllocator if caching else DirectAllocator
    allocator = alloc_cls(spec, memory, clock)
    launcher = Launcher(
        spec=spec,
        clock=clock,
        cost_params=cost_params or DEFAULT_GPU_COST_PARAMS,
        record_launches=record_launches,
    )
    return GpuContext(
        spec=spec,
        clock=clock,
        memory=memory,
        allocator=allocator,
        transfers=TransferEngine(spec, clock),
        launcher=launcher,
        reducer=ParallelReducer(launcher),
        device_index=device_index,
    )
