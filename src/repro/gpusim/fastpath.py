"""Native iteration fast path: one C call per captured PSO iteration.

Graph replay (PR 4) removed the launch pipeline from the steady state but
still executes the iteration *body* — pbest claim, gbest reduction, two
Philox draws, velocity/position update — as a chain of NumPy ufunc sweeps.
This module compiles that body (``_fastpath.c``, via the shared
:mod:`repro.gpusim.native` loader) into a single ``fastpath_step`` call
operating in place on the run's stable buffers, and provides:

* :class:`NativePlan` — the per-run binding: a C-side ``fastpath_plan``
  struct built once at plan-install time from the swarm state, the
  workspace weight buffers and the RNG key schedule, plus the per-call
  :meth:`~NativePlan.step` that syncs the scalar gbest fields in/out and
  advances the Philox cursor;
* :func:`verify_step` — the promotion gate used by
  :class:`~repro.gpusim.graph.IterationRunner`: it runs the *trusted*
  Python replay on the real state and the C step on shadow copies of the
  pre-iteration state, then compares every output buffer bitwise.  The
  real run is therefore never touched by unverified native code; any
  mismatch simply keeps the run on the Python replay tier.

Bit-parity contract: the C step performs, per element, the exact IEEE
operation sequence of the NumPy scratch fast path (see ``_fastpath.c``),
claims pbest/gbest with the same strict-``<`` / first-NaN order, and
consumes exactly ``2 * ceil(n*d / 4)`` Philox blocks per iteration — the
same stream consumption :func:`repro.core.swarm.draw_weights` performs.

Set ``REPRO_NO_NATIVE_FASTPATH=1`` to disable (checked on every load);
no compiler or a failed known-answer self-test silently fall back to the
Python replay tier.
"""

from __future__ import annotations

import ctypes
from pathlib import Path

import numpy as np

from repro.gpusim import native

__all__ = ["load", "available", "NativePlan", "verify_step", "ENV_GATE"]

ENV_GATE = "REPRO_NO_NATIVE_FASTPATH"

_SOURCE = Path(__file__).with_name("_fastpath.c")
_PHILOX_SOURCE = Path(__file__).with_name("_philox.c")


class _PlanStruct(ctypes.Structure):
    """ctypes mirror of ``fastpath_plan`` in ``_fastpath.c`` (same order)."""

    _fields_ = [
        ("n", ctypes.c_uint64),
        ("d", ctypes.c_uint64),
        ("stream_id", ctypes.c_uint64),
        ("positions", ctypes.c_void_p),
        ("velocities", ctypes.c_void_p),
        ("pbest_positions", ctypes.c_void_p),
        ("pbest_values", ctypes.c_void_p),
        ("l_weights", ctypes.c_void_p),
        ("g_weights", ctypes.c_void_p),
        ("gbest_value", ctypes.c_void_p),
        ("gbest_index", ctypes.c_void_p),
        ("gbest_position", ctypes.c_void_p),
        ("keys", ctypes.c_void_p),
        ("pos_lo", ctypes.c_void_p),
        ("pos_hi", ctypes.c_void_p),
        ("c1", ctypes.c_float),
        ("c2", ctypes.c_float),
    ]


def _require_f32(name: str, arr: np.ndarray, shape: tuple) -> None:
    if arr.dtype != np.float32 or not arr.flags.c_contiguous or arr.shape != shape:
        raise ValueError(f"{name} must be C-contiguous float32 {shape}")


def _make_struct(
    n: int,
    d: int,
    stream_id: int,
    positions: np.ndarray,
    velocities: np.ndarray,
    pbest_positions: np.ndarray,
    pbest_values: np.ndarray,
    l_weights: np.ndarray,
    g_weights: np.ndarray,
    gbest_value: np.ndarray,
    gbest_index: np.ndarray,
    gbest_position: np.ndarray,
    keys_addr: int,
    pos_lo: np.ndarray | None,
    pos_hi: np.ndarray | None,
    c1: float,
    c2: float,
) -> _PlanStruct:
    for name, arr in (
        ("positions", positions),
        ("velocities", velocities),
        ("pbest_positions", pbest_positions),
        ("l_weights", l_weights),
        ("g_weights", g_weights),
    ):
        _require_f32(name, arr, (n, d))
    _require_f32("gbest_position", gbest_position, (d,))
    if pbest_values.dtype != np.float64 or not pbest_values.flags.c_contiguous:
        raise ValueError("pbest_values must be C-contiguous float64")
    return _PlanStruct(
        n=n,
        d=d,
        stream_id=stream_id,
        positions=positions.ctypes.data,
        velocities=velocities.ctypes.data,
        pbest_positions=pbest_positions.ctypes.data,
        pbest_values=pbest_values.ctypes.data,
        l_weights=l_weights.ctypes.data,
        g_weights=g_weights.ctypes.data,
        gbest_value=gbest_value.ctypes.data,
        gbest_index=gbest_index.ctypes.data,
        gbest_position=gbest_position.ctypes.data,
        keys=keys_addr,
        pos_lo=None if pos_lo is None else pos_lo.ctypes.data,
        pos_hi=None if pos_hi is None else pos_hi.ctypes.data,
        c1=c1,
        c2=c2,
    )


def _self_test(lib: ctypes.CDLL) -> bool:
    """One full iteration, C vs the reference numerics, compared bitwise.

    The case is deliberately awkward: ``n*d = 30`` exercises the partial
    final Philox block, ``values`` contains a NaN (must never claim) and an
    exact tie (strict ``<`` keeps the earlier best), and both the velocity
    clamp and the position clip are active.
    """
    from repro.core.parameters import PAPER_DEFAULTS
    from repro.core.swarm import (
        SwarmState,
        draw_weights,
        gbest_scan,
        pbest_update,
        velocity_update,
    )
    from repro.gpusim.rng import ParallelRNG

    n, d = 6, 5
    params = PAPER_DEFAULTS
    init = ParallelRNG(seed=123, stream_id=0)
    positions = init.uniform((n, d), -5.0, 5.0, dtype=np.float32)
    velocities = init.uniform((n, d), -1.0, 1.0, dtype=np.float32)
    pbest_pos = init.uniform((n, d), -5.0, 5.0, dtype=np.float32)
    pbest_val = init.uniform((n,), 0.0, 50.0, dtype=np.float64)
    values = init.uniform((n,), 0.0, 60.0, dtype=np.float64)
    values[0] = np.nan  # NaN never claims
    values[1] = -1.0  # guaranteed claim -> guaranteed gbest claim
    values[3] = pbest_val[3]  # exact tie keeps the earlier best
    gval0, gidx0 = float(pbest_val[2]), 2
    gpos0 = pbest_pos[2].copy()
    vb64 = (np.full(d, -2.5, dtype=np.float64), np.full(d, 2.5, dtype=np.float64))
    plo = np.full(d, -4.0, dtype=np.float32)
    phi = np.full(d, 4.0, dtype=np.float32)

    # Reference: the shared module numerics, in replay order.
    rng_ref = ParallelRNG(seed=0xC0FFEE, stream_id=9)
    state = SwarmState(
        positions=positions.copy(),
        velocities=velocities.copy(),
        pbest_values=pbest_val.copy(),
        pbest_positions=pbest_pos.copy(),
        gbest_value=gval0,
        gbest_index=gidx0,
        gbest_position=gpos0.copy(),
    )
    mask = pbest_update(state, values)
    gbest_scan(state)
    l_ref = np.empty((n, d), dtype=np.float32)
    g_ref = np.empty((n, d), dtype=np.float32)
    draw_weights(rng_ref, n, d, out=(l_ref, g_ref))
    velocity_update(
        state.velocities,
        state.positions,
        state.pbest_positions,
        state.gbest_position,
        l_ref,
        g_ref,
        params,
        vb64,
        out=state.velocities,
        scratch=(
            np.empty((n, d), dtype=np.float32),
            np.empty((n, d), dtype=np.float32),
        ),
    )
    state.positions += state.velocities
    np.clip(state.positions, plo, phi, out=state.positions)

    # Native: same inputs through the C step.
    rng_nat = ParallelRNG(seed=0xC0FFEE, stream_id=9)
    c_pos, c_vel = positions.copy(), velocities.copy()
    c_pbv, c_pbp = pbest_val.copy(), pbest_pos.copy()
    c_l = np.empty((n, d), dtype=np.float32)
    c_g = np.empty((n, d), dtype=np.float32)
    c_gval = np.array([gval0], dtype=np.float64)
    c_gidx = np.array([gidx0], dtype=np.int64)
    c_gpos = gpos0.copy()
    struct = _make_struct(
        n, d, rng_nat.stream_id,
        c_pos, c_vel, c_pbp, c_pbv, c_l, c_g,
        c_gval, c_gidx, c_gpos, rng_nat._keys_addr,
        plo, phi, float(params.cognitive), float(params.social),
    )
    vlo32 = vb64[0].astype(np.float32)
    vhi32 = vb64[1].astype(np.float32)
    improved = lib.fastpath_step(
        ctypes.addressof(struct),
        values.ctypes.data,
        rng_nat.position,
        float(params.inertia),
        vlo32.ctypes.data,
        vhi32.ctypes.data,
    )
    return (
        int(improved) == int(np.count_nonzero(mask))
        and c_pos.tobytes() == state.positions.tobytes()
        and c_vel.tobytes() == state.velocities.tobytes()
        and c_pbv.tobytes() == state.pbest_values.tobytes()
        and c_pbp.tobytes() == state.pbest_positions.tobytes()
        and c_l.tobytes() == l_ref.tobytes()
        and c_g.tobytes() == g_ref.tobytes()
        and float(c_gval[0]) == state.gbest_value
        and int(c_gidx[0]) == state.gbest_index
        and c_gpos.tobytes()
        == np.ascontiguousarray(state.gbest_position, dtype=np.float32).tobytes()
    )


_MODULE = native.NativeModule(
    "fastpath",
    [_SOURCE, _PHILOX_SOURCE],
    env_gate=ENV_GATE,
    fn_specs={
        "fastpath_step": (
            ctypes.c_int64,
            # plan*, values*, block0, w, vlo*, vhi* — raw addresses so the
            # per-iteration call builds no ctypes wrapper objects.
            [
                ctypes.c_void_p,
                ctypes.c_void_p,
                ctypes.c_uint64,
                ctypes.c_float,
                ctypes.c_void_p,
                ctypes.c_void_p,
            ],
        ),
    },
    self_test=_self_test,
)


def load() -> ctypes.CDLL | None:
    """The bound fast-path library, or ``None`` when unavailable/disabled."""
    return _MODULE.load()


def available() -> bool:
    return _MODULE.available()


class NativePlan:
    """The per-run native binding: one struct, one hot call per iteration.

    Built by an engine's ``_graph_build_native`` hook after the first
    verified Python replay.  The struct holds raw addresses of the run's
    stable buffers (swarm matrices, workspace weight buffers, RNG key
    schedule) plus three small plan-owned buffers for the scalar gbest
    fields; :meth:`step` syncs those scalars from/to the ``SwarmState``
    around the C call, so host-side observers (history recording,
    multi-GPU best exchange) keep seeing plain Python floats.

    ``state.gbest_position`` is re-pointed at the plan's own ``(d,)``
    buffer so the C claim can update it in place; an identity check each
    step re-syncs if outside code (e.g. multi-GPU ``_exchange_best``)
    re-assigned the attribute between iterations.
    """

    __slots__ = (
        "state",
        "rng",
        "n",
        "d",
        "blocks",
        "l_weights",
        "g_weights",
        "gval",
        "gidx",
        "gpos",
        "_fn",
        "_struct",
        "_addr",
        "_pos_lo",
        "_pos_hi",
        "_c1",
        "_c2",
    )

    def __init__(
        self,
        lib: ctypes.CDLL,
        state,
        rng,
        l_weights: np.ndarray,
        g_weights: np.ndarray,
        params,
        pos_bounds: tuple[np.ndarray, np.ndarray] | None,
    ) -> None:
        n, d = state.positions.shape
        self.state = state
        self.rng = rng
        self.n, self.d = n, d
        self.blocks = 2 * ((n * d + 3) // 4)
        self.l_weights = l_weights
        self.g_weights = g_weights
        self.gval = np.array([state.gbest_value], dtype=np.float64)
        self.gidx = np.array([state.gbest_index], dtype=np.int64)
        self.gpos = np.ascontiguousarray(state.gbest_position, dtype=np.float32).copy()
        if pos_bounds is None:
            self._pos_lo = self._pos_hi = None
        else:
            self._pos_lo = np.ascontiguousarray(pos_bounds[0], dtype=np.float32)
            self._pos_hi = np.ascontiguousarray(pos_bounds[1], dtype=np.float32)
        self._c1 = float(params.cognitive)
        self._c2 = float(params.social)
        self._fn = lib.fastpath_step
        self._struct = _make_struct(
            n, d, rng.stream_id,
            state.positions, state.velocities,
            state.pbest_positions, state.pbest_values,
            l_weights, g_weights,
            self.gval, self.gidx, self.gpos, rng._keys_addr,
            self._pos_lo, self._pos_hi, self._c1, self._c2,
        )
        self._addr = ctypes.addressof(self._struct)

    def step(
        self,
        values: np.ndarray,
        w: float,
        vlo: np.ndarray | None,
        vhi: np.ndarray | None,
    ) -> int:
        """One full iteration body in C; returns the improved-pbest count.

        *values* is this iteration's fitness vector (float64, contiguous —
        guaranteed by the evaluator contract and checked once during the
        verification iteration); *w* the scheduled inertia; *vlo*/*vhi* the
        current float32 velocity bounds or ``None``.
        """
        state, rng = self.state, self.rng
        # Sync the scalar gbest fields in (they are plain Python attributes
        # that outside code may have replaced since the last step).
        self.gval[0] = state.gbest_value
        self.gidx[0] = state.gbest_index
        if state.gbest_position is not self.gpos:
            np.copyto(self.gpos, state.gbest_position)
            state.gbest_position = self.gpos
        improved = self._fn(
            self._addr,
            values.ctypes.data,
            rng._block,
            w,
            None if vlo is None else vlo.ctypes.data,
            None if vhi is None else vhi.ctypes.data,
        )
        rng._block += self.blocks
        state.gbest_value = float(self.gval[0])
        state.gbest_index = int(self.gidx[0])
        return int(improved)


def verify_step(plan: NativePlan, run_replay, eval_fn, engine, problem, params) -> bool:
    """Promotion gate: replay the real iteration, shadow-run the C step.

    Snapshots the pre-iteration state, lets the *trusted* Python replay
    mutate the real run, then executes the C step on the shadow copies
    (re-evaluating the objective on the pre-iteration positions — the
    evaluators are pure by contract) and compares every output buffer
    bitwise.  Returns ``True`` only on an exact match; the real run's
    trajectory is identical either way.  Exceptions from the replay
    propagate (they are real-run failures); exceptions from the shadow
    path just return ``False``.
    """
    state, rng = plan.state, plan.rng
    n, d = plan.n, plan.d
    pre_pos = state.positions.copy()
    pre_vel = state.velocities.copy()
    pre_pbv = state.pbest_values.copy()
    pre_pbp = state.pbest_positions.copy()
    pre_gval = float(state.gbest_value)
    pre_gidx = int(state.gbest_index)
    pre_gpos = np.ascontiguousarray(state.gbest_position, dtype=np.float32).copy()
    pre_block = rng.position
    p = engine._scheduled_params(params)
    vb = engine._current_velocity_bounds(problem, p)

    run_replay()

    try:
        if rng.position - pre_block != plan.blocks:
            return False
        values = eval_fn(pre_pos)
        if not (
            isinstance(values, np.ndarray)
            and values.dtype == np.float64
            and values.flags.c_contiguous
            and values.shape == (n,)
        ):
            return False
        vlo = vhi = None
        if vb is not None:
            vlo = vb[0].astype(np.float32)
            vhi = vb[1].astype(np.float32)
        sh_l = np.empty((n, d), dtype=np.float32)
        sh_g = np.empty((n, d), dtype=np.float32)
        sh_gval = np.array([pre_gval], dtype=np.float64)
        sh_gidx = np.array([pre_gidx], dtype=np.int64)
        struct = _make_struct(
            n, d, rng.stream_id,
            pre_pos, pre_vel, pre_pbp, pre_pbv, sh_l, sh_g,
            sh_gval, sh_gidx, pre_gpos, rng._keys_addr,
            plan._pos_lo, plan._pos_hi, plan._c1, plan._c2,
        )
        plan._fn(
            ctypes.addressof(struct),
            values.ctypes.data,
            pre_block,
            float(p.inertia),
            None if vlo is None else vlo.ctypes.data,
            None if vhi is None else vhi.ctypes.data,
        )
        return (
            pre_pos.tobytes() == state.positions.tobytes()
            and pre_vel.tobytes() == state.velocities.tobytes()
            and pre_pbv.tobytes() == state.pbest_values.tobytes()
            and pre_pbp.tobytes() == state.pbest_positions.tobytes()
            and sh_l.tobytes() == plan.l_weights.tobytes()
            and sh_g.tobytes() == plan.g_weights.tobytes()
            and float(sh_gval[0]) == state.gbest_value
            and int(sh_gidx[0]) == int(state.gbest_index)
            and pre_gpos.tobytes()
            == np.ascontiguousarray(
                state.gbest_position, dtype=np.float32
            ).tobytes()
        )
    except Exception:
        return False
