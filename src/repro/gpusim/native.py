"""Shared loader for the optional native (C) fast paths.

Two C modules ride on this machinery: ``_philox.c`` (the Philox RNG hot
path, PR 4) and ``_fastpath.c`` (the whole captured PSO iteration as one
call).  Both follow one convention, implemented here exactly once:

* compiled on demand with the system C compiler (``cc``/``gcc``/``clang``)
  into a per-user cache directory (``$TMPDIR/repro-native-<uid>``), keyed by
  a hash of *all* source files plus the extra compile flags — editing either
  source or the flags produces a new cache entry, never a stale load;
* built next to the final name and atomically renamed, so concurrent
  processes (pytest-xdist, batch workers) never load a half-written object;
* bound through :mod:`ctypes` with raw ``void*`` addresses for array
  arguments (callers pass ``arr.ctypes.data`` ints — no per-call wrapper
  objects on hot paths);
* gated by a ``REPRO_NO_NATIVE_*`` environment variable that is re-checked
  on **every** :meth:`NativeModule.load` call, so tests and benchmarks can
  toggle lanes within one process;
* verified by a known-answer self-test before first use.  No compiler, a
  failed compile, a missing symbol or a failed self-test all silently fall
  back to the pure-Python path — the two paths are bit-identical by
  contract, so which one runs is invisible except in wall-clock time.
"""

from __future__ import annotations

import ctypes
import hashlib
import os
import shutil
import subprocess
import tempfile
from pathlib import Path
from typing import Callable, Sequence

__all__ = ["NativeModule", "compiler_path", "BASE_CFLAGS"]

#: Flags shared by every native module.  ``-ffp-contract=off`` matters: with
#: GCC's default (``fast``) a ``-O3 -march=native`` build may fuse the
#: float multiply-adds of the velocity update into FMAs, which changes the
#: intermediate rounding and breaks bit-parity with the NumPy ufunc path.
BASE_CFLAGS = (
    "-O3",
    "-march=native",
    "-ffp-contract=off",
    "-funroll-loops",
    "-shared",
    "-fPIC",
)

#: Tri-state cache sentinel: not yet attempted / None (unavailable) / CDLL.
_UNSET = object()


def compiler_path() -> str | None:
    """The first available system C compiler, or ``None``."""
    for name in ("cc", "gcc", "clang"):
        path = shutil.which(name)
        if path:
            return path
    return None


def cache_dir() -> Path:
    """Per-user shared-object cache directory (not created here)."""
    uid = os.getuid() if hasattr(os, "getuid") else 0
    return Path(tempfile.gettempdir()) / f"repro-native-{uid}"


class NativeModule:
    """One compile-on-demand C module: sources -> cached .so -> bound fns.

    Parameters
    ----------
    name:
        Cache-file stem (``<name>-<hash>.so``).
    sources:
        Source files; the first is compiled, the rest are ``#include``\\ d by
        it and participate only in the cache hash.
    env_gate:
        Environment variable that disables the module when set (checked on
        every :meth:`load`).
    fn_specs:
        ``{symbol: (restype, argtypes)}`` bound onto the library handle.
    self_test:
        Optional ``lib -> bool`` known-answer check; a falsy result (or any
        exception) rejects the library.
    """

    def __init__(
        self,
        name: str,
        sources: Sequence[os.PathLike | str],
        *,
        env_gate: str,
        fn_specs: dict[str, tuple[object, list]],
        self_test: Callable[[ctypes.CDLL], bool] | None = None,
    ) -> None:
        self.name = name
        self.sources = tuple(Path(s) for s in sources)
        self.env_gate = env_gate
        self.fn_specs = dict(fn_specs)
        self.self_test = self_test
        self._lib: object = _UNSET

    # -- build ---------------------------------------------------------------
    def _build(self) -> ctypes.CDLL | None:
        cc = compiler_path()
        if cc is None:
            return None
        hasher = hashlib.sha256()
        for src in self.sources:
            hasher.update(src.read_bytes())
            hasher.update(b"\x00")
        hasher.update(" ".join(BASE_CFLAGS).encode())
        tag = hasher.hexdigest()[:16]
        so_dir = cache_dir()
        so_path = so_dir / f"{self.name}-{tag}.so"
        if not so_path.exists():
            so_dir.mkdir(mode=0o700, parents=True, exist_ok=True)
            with tempfile.NamedTemporaryFile(
                dir=so_dir, suffix=".so", delete=False
            ) as tmp:
                tmp_path = Path(tmp.name)
            cmd = [cc, *BASE_CFLAGS, "-o", str(tmp_path), str(self.sources[0])]
            try:
                subprocess.run(cmd, check=True, capture_output=True, timeout=120)
                os.replace(tmp_path, so_path)
            except (OSError, subprocess.SubprocessError):
                tmp_path.unlink(missing_ok=True)
                return None
        try:
            lib = ctypes.CDLL(str(so_path))
        except OSError:
            return None
        try:
            for fn_name, (restype, argtypes) in self.fn_specs.items():
                fn = getattr(lib, fn_name)
                fn.restype = restype
                fn.argtypes = argtypes
        except AttributeError:
            return None
        return lib

    # -- public --------------------------------------------------------------
    def load(self) -> ctypes.CDLL | None:
        """The bound library handle, or ``None`` when unavailable/disabled.

        The environment gate is consulted before the cache, so flipping it
        mid-process takes effect on the next call; the compile/bind/self-test
        result itself is cached for the life of the process.
        """
        if os.environ.get(self.env_gate):
            return None
        if self._lib is not _UNSET:
            return self._lib  # type: ignore[return-value]
        lib = None
        if all(src.exists() for src in self.sources):
            try:
                lib = self._build()
                if (
                    lib is not None
                    and self.self_test is not None
                    and not self.self_test(lib)
                ):
                    lib = None
            except Exception:
                lib = None
        self._lib = lib
        return lib

    def available(self) -> bool:
        return self.load() is not None

    def invalidate(self) -> None:
        """Drop the cached handle so the next :meth:`load` re-resolves.

        Test hook: combined with monkeypatching :func:`shutil.which` or the
        environment gate it exercises the fallback paths in-process.
        """
        self._lib = _UNSET
