"""Counter-based parallel random number generation (Philox4x32-10).

The paper's technique (ii) initialises the swarm and regenerates the two
``n x d`` weight matrices *every iteration* with fast GPU RNG.  cuRAND's
default generator family and Thrust's parallel RNG are counter-based
(Philox), which is what makes them embarrassingly parallel: output block
``i`` is a pure function ``philox(counter=i, key=seed)`` with no sequential
state, so any range of the stream can be produced by any thread
independently.

This module implements Philox4x32-10 exactly (validated against the
Random123 known-answer vectors) with NumPy vector operations standing in for
the per-thread lanes.  :class:`ParallelRNG` layers a consumable stream on
top: each call advances a 64-bit block counter, and distinct ``stream_id``
values (e.g. one per sub-swarm on multi-GPU) yield provably disjoint
counter spaces.

Two implementations of the bijection coexist:

* :func:`philox4x32` — the reference path, shaped like the Random123
  specification (uint32 lanes, per-round key bumps).  Used for validation
  and for callers that bring their own counters/keys.
* a uint64 in-place fast path used by :meth:`ParallelRNG.uniform` /
  :meth:`ParallelRNG.random_uint32` — identical output words, but all round
  arithmetic runs ``out=``-style in a handful of preallocated uint64
  buffers and the key schedule is precomputed once per generator, so the
  steady-state per-iteration cost is pure ufunc work with zero Python-side
  allocation.  This is the host-side analogue of the paper's "no per-draw
  state traffic" argument, and it is what the wall-clock benchmark
  (``benchmarks/bench_wallclock.py``) measures.

The contrast kernel for the baselines — stateful per-thread cuRAND XORWOW
with a 48-byte state block loaded and stored around every draw — is modelled
in the baseline engines' kernel specs; see
:mod:`repro.engines.gpu_particle`.
"""

from __future__ import annotations

import numpy as np

from repro.errors import InvalidParameterError
from repro.gpusim import philox_native as _philox_native

__all__ = ["philox4x32", "ParallelRNG", "PHILOX_ROUNDS"]

PHILOX_ROUNDS = 10

_M0 = np.uint64(0xD2511F53)
_M1 = np.uint64(0xCD9E8D57)
_W0 = np.uint32(0x9E3779B9)  # golden-ratio key bump
_W1 = np.uint32(0xBB67AE85)  # sqrt(3)-1 key bump
_MASK32 = np.uint64(0xFFFFFFFF)
_SHIFT32 = np.uint64(32)

#: Open-interval mapping constant: ``(word + 0.5) * 2**-32``.
_INV_2_32 = 2.0**-32


def _mulhilo(m: np.uint64, a: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
    """32x32 -> 64-bit multiply, returned as (high, low) 32-bit halves."""
    prod = m * a.astype(np.uint64)
    hi = (prod >> np.uint64(32)).astype(np.uint32)
    lo = (prod & _MASK32).astype(np.uint32)
    return hi, lo


def _key_schedule(k0: int, k1: int, rounds: int) -> list[tuple[int, int]]:
    """Per-round (k0, k1) pairs, bumped by the Weyl constants mod 2**32."""
    w0, w1 = int(_W0), int(_W1)
    out = []
    for r in range(rounds):
        out.append(((k0 + r * w0) & 0xFFFFFFFF, (k1 + r * w1) & 0xFFFFFFFF))
    return out


def philox4x32(
    counter: np.ndarray, key: np.ndarray, rounds: int = PHILOX_ROUNDS
) -> np.ndarray:
    """Apply the Philox4x32 bijection to a batch of counter blocks.

    Parameters
    ----------
    counter:
        ``(n, 4)`` uint32 array of counter blocks.  Never mutated.
    key:
        ``(2,)`` or ``(n, 2)`` uint32 key(s).
    rounds:
        Number of S-P rounds; 10 is the standard (crush-resistant) choice.

    Returns
    -------
    ``(n, 4)`` uint32 array of random blocks.
    """
    ctr = np.asarray(counter, dtype=np.uint32)
    if ctr.ndim != 2 or ctr.shape[1] != 4:
        raise ValueError(f"counter must have shape (n, 4), got {ctr.shape}")
    k = np.asarray(key, dtype=np.uint32)
    if rounds < 1:
        raise ValueError("rounds must be >= 1")

    c0, c1, c2, c3 = ctr[:, 0], ctr[:, 1], ctr[:, 2], ctr[:, 3]
    if k.shape == (2,):
        # Scalar key schedule: no per-lane key splat on this (common) path.
        for k0, k1 in _key_schedule(int(k[0]), int(k[1]), rounds):
            hi0, lo0 = _mulhilo(_M0, c0)
            hi1, lo1 = _mulhilo(_M1, c2)
            c0, c1, c2, c3 = (
                hi1 ^ c1 ^ np.uint32(k0),
                lo1,
                hi0 ^ c3 ^ np.uint32(k1),
                lo0,
            )
    elif k.ndim == 2 and k.shape == (ctr.shape[0], 2):
        k0, k1 = k[:, 0].copy(), k[:, 1].copy()
        for r in range(rounds):
            if r > 0:
                k0 = k0 + _W0  # uint32 wraps naturally
                k1 = k1 + _W1
            hi0, lo0 = _mulhilo(_M0, c0)
            hi1, lo1 = _mulhilo(_M1, c2)
            c0, c1, c2, c3 = hi1 ^ c1 ^ k0, lo1, hi0 ^ c3 ^ k1, lo0
    else:
        raise ValueError(f"key must have shape (2,) or (n, 2), got {k.shape}")

    return np.stack([c0, c1, c2, c3], axis=1)


class ParallelRNG:
    """A consumable uniform stream over the Philox4x32-10 bijection.

    Each generator is identified by ``(seed, stream_id)``; two generators
    with different stream ids never produce overlapping counter blocks, so
    per-device or per-sub-swarm streams can be split without coordination —
    the property multi-GPU FastPSO relies on.

    The generator owns a small set of reusable uint64/float64 scratch
    buffers sized to the last draw; steady-state PSO iterations (same
    ``n x d`` every time) therefore run the whole Philox pipeline without
    allocating.  The buffers are an implementation detail: outputs are
    always freshly allocated unless the caller passes ``out=``.
    """

    __slots__ = (
        "seed",
        "stream_id",
        "_block",
        "_keys",
        "_flat_keys",
        "_keys_addr",
        "_native",
        "_sid_lo",
        "_sid_hi",
        "_n_blocks",
        "_lanes",
        "_base",
        "_unit",
    )

    def __init__(self, seed: int, stream_id: int = 0) -> None:
        if not 0 <= int(seed) < 2**64:
            raise InvalidParameterError("seed must fit in 64 bits")
        if not 0 <= int(stream_id) < 2**64:
            raise InvalidParameterError("stream_id must fit in 64 bits")
        self.seed = int(seed)
        self.stream_id = int(stream_id)
        self._block = 0  # next unconsumed 128-bit counter block
        # Key schedule is a pure function of the seed: compute it once.
        schedule = _key_schedule(
            self.seed & 0xFFFFFFFF,
            (self.seed >> 32) & 0xFFFFFFFF,
            PHILOX_ROUNDS,
        )
        self._keys = [
            (np.uint64(k0), np.uint64(k1)) for k0, k1 in schedule
        ]
        # Same schedule, flattened for the (optional) native C kernel.
        self._flat_keys = np.array(
            [half for pair in schedule for half in pair], dtype=np.uint32
        )
        self._native = _philox_native.load()
        # Raw address of the (immutable) flat key schedule: the native
        # kernels take void* addresses, so the hot draw path passes this
        # precomputed int instead of building ctypes wrappers per call.
        self._keys_addr = self._flat_keys.ctypes.data
        self._sid_lo = np.uint64(self.stream_id & 0xFFFFFFFF)
        self._sid_hi = np.uint64((self.stream_id >> 32) & 0xFFFFFFFF)
        self._n_blocks = 0  # scratch capacity, in counter blocks
        self._lanes: list[np.ndarray] = []
        self._base: np.ndarray | None = None
        self._unit: np.ndarray | None = None

    @property
    def position(self) -> int:
        """Number of 4-word blocks consumed so far (for tests/checkpoints)."""
        return self._block

    def seek(self, position: int) -> None:
        """Jump the stream to an absolute block *position*.

        Philox is counter-based — output block ``i`` is a pure function of
        ``(seed, stream_id, i)`` — so seeking is O(1) and exact.  This is
        what makes checkpoint/resume bit-identical: restoring ``(seed,
        stream_id, position)`` reproduces the remaining stream verbatim.
        """
        if not 0 <= int(position) < 2**64:
            raise InvalidParameterError("position must fit in 64 bits")
        self._block = int(position)

    def _key(self) -> np.ndarray:
        return np.array(
            [self.seed & 0xFFFFFFFF, (self.seed >> 32) & 0xFFFFFFFF],
            dtype=np.uint32,
        )

    def _counters(self, n_blocks: int) -> np.ndarray:
        idx = np.arange(self._block, self._block + n_blocks, dtype=np.uint64)
        ctr = np.empty((n_blocks, 4), dtype=np.uint32)
        ctr[:, 0] = (idx & _MASK32).astype(np.uint32)
        ctr[:, 1] = (idx >> np.uint64(32)).astype(np.uint32)
        ctr[:, 2] = np.uint32(self.stream_id & 0xFFFFFFFF)
        ctr[:, 3] = np.uint32((self.stream_id >> 32) & 0xFFFFFFFF)
        return ctr

    # -- fast path ----------------------------------------------------------
    def _ensure_scratch(self, n_blocks: int) -> None:
        """(Re)size the reusable uint64 lane + float64 unit buffers."""
        if n_blocks == self._n_blocks:
            return
        self._lanes = [np.empty(n_blocks, dtype=np.uint64) for _ in range(6)]
        self._base = np.arange(n_blocks, dtype=np.uint64)
        self._unit = np.empty((n_blocks, 4), dtype=np.float64)
        self._n_blocks = n_blocks

    def _philox_blocks(self, n_blocks: int) -> tuple[np.ndarray, ...]:
        """Run Philox4x32-10 over the next *n_blocks* counters, in place.

        Returns the four uint64 lane arrays (values < 2**32) holding the
        output words.  The lanes alias this generator's scratch buffers and
        are only valid until the next draw; callers must copy/cast out.
        Does NOT advance the block counter — callers do, after consuming.
        """
        self._ensure_scratch(n_blocks)
        c0, c1, c2, c3, t0, t1 = self._lanes
        # Counter layout matches :meth:`_counters`: lane0/1 are the low/high
        # halves of the 64-bit block index, lane2/3 the stream id halves.
        np.add(self._base, np.uint64(self._block & 0xFFFFFFFFFFFFFFFF), out=t0)
        np.bitwise_and(t0, _MASK32, out=c0)
        np.right_shift(t0, _SHIFT32, out=c1)
        c2.fill(self._sid_lo)
        c3.fill(self._sid_hi)
        for k0, k1 in self._keys:
            # hi/lo of the two 32x32 multiplies, all in uint64 lanes.
            np.multiply(c0, _M0, out=t0)
            np.multiply(c2, _M1, out=t1)
            np.right_shift(t0, _SHIFT32, out=c0)  # c0 <- hi0 (old c0 dead)
            np.bitwise_and(t0, _MASK32, out=t0)  # t0 <- lo0
            np.right_shift(t1, _SHIFT32, out=c2)  # c2 <- hi1 (old c2 dead)
            np.bitwise_and(t1, _MASK32, out=t1)  # t1 <- lo1
            np.bitwise_xor(c2, c1, out=c2)
            np.bitwise_xor(c2, k0, out=c2)  # c2 <- new c0
            np.bitwise_xor(c0, c3, out=c0)
            np.bitwise_xor(c0, k1, out=c0)  # c0 <- new c2
            # new lanes: (c0, c1, c2, c3) = (c2, t1, c0, t0)
            c0, c1, c2, c3, t0, t1 = c2, t1, c0, t0, c1, c3
        return c0, c1, c2, c3

    def _draw_unit(self, n: int) -> np.ndarray:
        """Next *n* uniforms on (0, 1) as a flat float64 view.

        The view aliases the reusable unit buffer — consume (copy/cast)
        before the next draw.  Word order matches :meth:`random_uint32`.
        """
        n_blocks = -(-n // 4)
        if self._native is not None:
            # Scalar C kernel: same words, same (word + 0.5) * 2**-32 double
            # mapping, written straight into the reusable unit buffer.
            self._ensure_scratch(n_blocks)
            unit = self._unit
            self._native.philox_unit_f64(
                self._block,
                self.stream_id,
                n_blocks,
                self._keys_addr,
                unit.ctypes.data,
            )
            self._block += n_blocks
            return unit.reshape(-1)[:n]
        c0, c1, c2, c3 = self._philox_blocks(n_blocks)
        unit = self._unit
        unit[:, 0] = c0
        unit[:, 1] = c1
        unit[:, 2] = c2
        unit[:, 3] = c3
        flat = unit.reshape(-1)
        np.add(flat, 0.5, out=flat)
        np.multiply(flat, _INV_2_32, out=flat)
        self._block += n_blocks
        return flat[:n]

    # -- public draws --------------------------------------------------------
    def random_uint32(self, n: int) -> np.ndarray:
        """Next *n* raw 32-bit words from the stream."""
        if n < 0:
            raise ValueError("n must be non-negative")
        if n == 0:
            return np.empty(0, dtype=np.uint32)
        n_blocks = -(-n // 4)
        c0, c1, c2, c3 = self._philox_blocks(n_blocks)
        words = np.empty((n_blocks, 4), dtype=np.uint32)
        words[:, 0] = c0
        words[:, 1] = c1
        words[:, 2] = c2
        words[:, 3] = c3
        self._block += n_blocks
        return words.reshape(-1)[:n]

    def uniform(
        self,
        shape: int | tuple[int, ...],
        low: float = 0.0,
        high: float = 1.0,
        dtype: np.dtype | type = np.float32,
        *,
        out: np.ndarray | None = None,
    ) -> np.ndarray:
        """Uniform variates on ``[low, high)`` with the requested shape.

        Uses the open-ended mapping ``(word + 0.5) * 2**-32`` so 0 and 1 are
        never produced exactly — matching cuRAND's ``curand_uniform`` contract
        that the weights in Eq. (1) are strictly positive.

        When *out* is given the variates are written into it in place (its
        dtype wins over *dtype*); this is the zero-allocation path the
        engines' workspace arena uses for the per-iteration weight matrices.
        The stream consumes exactly the same counter blocks either way.
        """
        if not isinstance(shape, (tuple, list)):
            shape = (int(shape),)
        n = 1
        for extent in shape:
            n *= int(extent)
        if n < 0:
            raise ValueError("shape must be non-negative")
        # The unit range [0, 1) — the per-iteration weight draws — is
        # trivially valid; skip the finiteness checks on the hot path.
        if (low != 0.0 or high != 1.0) and (
            not (np.isfinite(low) and np.isfinite(high)) or high < low
        ):
            raise InvalidParameterError(
                f"invalid uniform range [{low}, {high})"
            )
        if out is not None and out.shape != tuple(shape):
            raise ValueError(
                f"out has shape {out.shape}, expected {tuple(shape)}"
            )
        if n == 0:
            return out if out is not None else np.empty(shape, dtype=dtype)
        if (
            self._native is not None
            and out is not None
            and low == 0.0
            and high == 1.0
            and n % 4 == 0
            and out.dtype == np.float32
            and out.flags["C_CONTIGUOUS"]
        ):
            # Hottest call shape (the per-iteration weight matrices): unit
            # float32 straight into the caller's buffer, no float64 staging.
            # The C kernel rounds each double once to float32 — exactly what
            # ``copyto(float32_out, float64_unit)`` does below, so values
            # and stream consumption are bit-identical to the NumPy path.
            n_blocks = n // 4
            self._native.philox_unit_f32(
                self._block,
                self.stream_id,
                n_blocks,
                self._keys_addr,
                out.ctypes.data,
            )
            self._block += n_blocks
            return out
        unit = self._draw_unit(n)
        if low != 0.0 or high != 1.0:
            # Same expression as ``low + unit * (high - low)``, evaluated in
            # place on the float64 scratch (term order is bit-preserving).
            np.multiply(unit, high - low, out=unit)
            np.add(unit, low, out=unit)
        if out is not None:
            np.copyto(out, unit.reshape(shape))
            return out
        return unit.reshape(shape).astype(dtype)

    def normal(
        self,
        shape: int | tuple[int, ...],
        mean: float = 0.0,
        std: float = 1.0,
        dtype: np.dtype | type = np.float32,
    ) -> np.ndarray:
        """Gaussian variates via the Box-Muller transform (cuRAND's method)."""
        if np.isscalar(shape):
            shape = (int(shape),)
        n = int(np.prod(shape, dtype=np.int64))
        if std < 0:
            raise InvalidParameterError("std must be non-negative")
        # Box-Muller consumes pairs; draw an even count.
        m = n + (n & 1)
        words = self.random_uint32(2 * m).astype(np.float64)
        u1 = (words[:m] + 0.5) * 2.0**-32
        u2 = (words[m:] + 0.5) * 2.0**-32
        r = np.sqrt(-2.0 * np.log(u1))
        z = r * np.cos(2.0 * np.pi * u2)
        out = mean + std * z[:n]
        return out.reshape(shape).astype(dtype)

    def spawn(self, stream_id: int) -> "ParallelRNG":
        """Create an independent generator sharing this seed."""
        return ParallelRNG(self.seed, stream_id)
