"""Counter-based parallel random number generation (Philox4x32-10).

The paper's technique (ii) initialises the swarm and regenerates the two
``n x d`` weight matrices *every iteration* with fast GPU RNG.  cuRAND's
default generator family and Thrust's parallel RNG are counter-based
(Philox), which is what makes them embarrassingly parallel: output block
``i`` is a pure function ``philox(counter=i, key=seed)`` with no sequential
state, so any range of the stream can be produced by any thread
independently.

This module implements Philox4x32-10 exactly (validated against the
Random123 known-answer vectors) with NumPy vector operations standing in for
the per-thread lanes.  :class:`ParallelRNG` layers a consumable stream on
top: each call advances a 64-bit block counter, and distinct ``stream_id``
values (e.g. one per sub-swarm on multi-GPU) yield provably disjoint
counter spaces.

The contrast kernel for the baselines — stateful per-thread cuRAND XORWOW
with a 48-byte state block loaded and stored around every draw — is modelled
in the baseline engines' kernel specs; see
:mod:`repro.engines.gpu_particle`.
"""

from __future__ import annotations

import numpy as np

from repro.errors import InvalidParameterError

__all__ = ["philox4x32", "ParallelRNG", "PHILOX_ROUNDS"]

PHILOX_ROUNDS = 10

_M0 = np.uint64(0xD2511F53)
_M1 = np.uint64(0xCD9E8D57)
_W0 = np.uint32(0x9E3779B9)  # golden-ratio key bump
_W1 = np.uint32(0xBB67AE85)  # sqrt(3)-1 key bump
_MASK32 = np.uint64(0xFFFFFFFF)


def _mulhilo(m: np.uint64, a: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
    """32x32 -> 64-bit multiply, returned as (high, low) 32-bit halves."""
    prod = m * a.astype(np.uint64)
    hi = (prod >> np.uint64(32)).astype(np.uint32)
    lo = (prod & _MASK32).astype(np.uint32)
    return hi, lo


def philox4x32(
    counter: np.ndarray, key: np.ndarray, rounds: int = PHILOX_ROUNDS
) -> np.ndarray:
    """Apply the Philox4x32 bijection to a batch of counter blocks.

    Parameters
    ----------
    counter:
        ``(n, 4)`` uint32 array of counter blocks.
    key:
        ``(2,)`` or ``(n, 2)`` uint32 key(s).
    rounds:
        Number of S-P rounds; 10 is the standard (crush-resistant) choice.

    Returns
    -------
    ``(n, 4)`` uint32 array of random blocks.
    """
    ctr = np.array(counter, dtype=np.uint32, copy=True)
    if ctr.ndim != 2 or ctr.shape[1] != 4:
        raise ValueError(f"counter must have shape (n, 4), got {ctr.shape}")
    k = np.asarray(key, dtype=np.uint32)
    if k.shape == (2,):
        k0 = np.full(ctr.shape[0], k[0], dtype=np.uint32)
        k1 = np.full(ctr.shape[0], k[1], dtype=np.uint32)
    elif k.ndim == 2 and k.shape == (ctr.shape[0], 2):
        k0, k1 = k[:, 0].copy(), k[:, 1].copy()
    else:
        raise ValueError(f"key must have shape (2,) or (n, 2), got {k.shape}")
    if rounds < 1:
        raise ValueError("rounds must be >= 1")

    c0, c1, c2, c3 = ctr[:, 0], ctr[:, 1], ctr[:, 2], ctr[:, 3]
    for r in range(rounds):
        if r > 0:
            k0 = k0 + _W0  # uint32 wraps naturally
            k1 = k1 + _W1
        hi0, lo0 = _mulhilo(_M0, c0)
        hi1, lo1 = _mulhilo(_M1, c2)
        c0, c1, c2, c3 = hi1 ^ c1 ^ k0, lo1, hi0 ^ c3 ^ k1, lo0

    return np.stack([c0, c1, c2, c3], axis=1)


class ParallelRNG:
    """A consumable uniform stream over the Philox4x32-10 bijection.

    Each generator is identified by ``(seed, stream_id)``; two generators
    with different stream ids never produce overlapping counter blocks, so
    per-device or per-sub-swarm streams can be split without coordination —
    the property multi-GPU FastPSO relies on.
    """

    __slots__ = ("seed", "stream_id", "_block")

    def __init__(self, seed: int, stream_id: int = 0) -> None:
        if not 0 <= int(seed) < 2**64:
            raise InvalidParameterError("seed must fit in 64 bits")
        if not 0 <= int(stream_id) < 2**64:
            raise InvalidParameterError("stream_id must fit in 64 bits")
        self.seed = int(seed)
        self.stream_id = int(stream_id)
        self._block = 0  # next unconsumed 128-bit counter block

    @property
    def position(self) -> int:
        """Number of 4-word blocks consumed so far (for tests/checkpoints)."""
        return self._block

    def _key(self) -> np.ndarray:
        return np.array(
            [self.seed & 0xFFFFFFFF, (self.seed >> 32) & 0xFFFFFFFF],
            dtype=np.uint32,
        )

    def _counters(self, n_blocks: int) -> np.ndarray:
        idx = np.arange(self._block, self._block + n_blocks, dtype=np.uint64)
        ctr = np.empty((n_blocks, 4), dtype=np.uint32)
        ctr[:, 0] = (idx & _MASK32).astype(np.uint32)
        ctr[:, 1] = (idx >> np.uint64(32)).astype(np.uint32)
        ctr[:, 2] = np.uint32(self.stream_id & 0xFFFFFFFF)
        ctr[:, 3] = np.uint32((self.stream_id >> 32) & 0xFFFFFFFF)
        return ctr

    def random_uint32(self, n: int) -> np.ndarray:
        """Next *n* raw 32-bit words from the stream."""
        if n < 0:
            raise ValueError("n must be non-negative")
        if n == 0:
            return np.empty(0, dtype=np.uint32)
        n_blocks = -(-n // 4)
        words = philox4x32(self._counters(n_blocks), self._key()).reshape(-1)
        self._block += n_blocks
        return words[:n]

    def uniform(
        self,
        shape: int | tuple[int, ...],
        low: float = 0.0,
        high: float = 1.0,
        dtype: np.dtype | type = np.float32,
    ) -> np.ndarray:
        """Uniform variates on ``[low, high)`` with the requested shape.

        Uses the open-ended mapping ``(word + 0.5) * 2**-32`` so 0 and 1 are
        never produced exactly — matching cuRAND's ``curand_uniform`` contract
        that the weights in Eq. (1) are strictly positive.
        """
        if np.isscalar(shape):
            shape = (int(shape),)
        n = int(np.prod(shape, dtype=np.int64))
        if n < 0:
            raise ValueError("shape must be non-negative")
        if not (np.isfinite(low) and np.isfinite(high)) or high < low:
            raise InvalidParameterError(
                f"invalid uniform range [{low}, {high})"
            )
        words = self.random_uint32(n)
        unit = (words.astype(np.float64) + 0.5) * 2.0**-32
        out = low + unit * (high - low)
        return out.reshape(shape).astype(dtype)

    def normal(
        self,
        shape: int | tuple[int, ...],
        mean: float = 0.0,
        std: float = 1.0,
        dtype: np.dtype | type = np.float32,
    ) -> np.ndarray:
        """Gaussian variates via the Box-Muller transform (cuRAND's method)."""
        if np.isscalar(shape):
            shape = (int(shape),)
        n = int(np.prod(shape, dtype=np.int64))
        if std < 0:
            raise InvalidParameterError("std must be non-negative")
        # Box-Muller consumes pairs; draw an even count.
        m = n + (n & 1)
        words = self.random_uint32(2 * m).astype(np.float64)
        u1 = (words[:m] + 0.5) * 2.0**-32
        u2 = (words[m:] + 0.5) * 2.0**-32
        r = np.sqrt(-2.0 * np.log(u1))
        z = r * np.cos(2.0 * np.pi * u2)
        out = mean + std * z[:n]
        return out.reshape(shape).astype(dtype)

    def spawn(self, stream_id: int) -> "ParallelRNG":
        """Create an independent generator sharing this seed."""
        return ParallelRNG(self.seed, stream_id)
