"""CUDA occupancy calculator.

Occupancy — resident warps per SM over the hardware maximum — determines how
well a kernel hides memory latency, and is the mechanism behind the paper's
central claim: a thread-per-particle kernel with 5000 threads leaves a V100
(163 840 resident-thread capacity) almost idle, while the element-wise
mapping saturates it.  The calculation here follows the CUDA occupancy
calculator's rules: resident blocks per SM are limited by the thread,
block-slot, register-file and shared-memory budgets, and the binding
constraint wins.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import InvalidLaunchError
from repro.gpusim.device import DeviceSpec
from repro.gpusim.hostcache import memoized

__all__ = ["OccupancyResult", "occupancy", "achieved_occupancy"]

def _round_up(value: int, unit: int) -> int:
    return ((value + unit - 1) // unit) * unit


@dataclass(frozen=True)
class OccupancyResult:
    """Outcome of the occupancy calculation for one kernel configuration."""

    blocks_per_sm: int
    warps_per_sm: int
    occupancy: float  # resident warps / max warps per SM, in [0, 1]
    limiter: str  # which resource bound the block count

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"{self.occupancy:.0%} ({self.warps_per_sm} warps/SM, "
            f"{self.blocks_per_sm} blocks/SM, limited by {self.limiter})"
        )


@memoized
def occupancy(
    spec: DeviceSpec,
    threads_per_block: int,
    *,
    registers_per_thread: int = 32,
    shared_mem_per_block: int = 0,
) -> OccupancyResult:
    """Theoretical occupancy of a kernel configuration on *spec*.

    Raises :class:`InvalidLaunchError` for configurations no real launch
    could use (block too large, shared memory over the per-block limit, or a
    register footprint so large not even one block fits).

    Pure function of immutable inputs, so results are memoized (see
    :mod:`repro.gpusim.hostcache`); ``occupancy.uncached`` bypasses the
    cache.
    """
    spec.validate_block(threads_per_block, shared_mem_per_block)
    if registers_per_thread <= 0:
        raise InvalidLaunchError("registers_per_thread must be positive")

    warps_per_block = -(-threads_per_block // spec.warp_size)  # ceil div

    limits: dict[str, int] = {}
    limits["threads"] = spec.max_threads_per_sm // (
        warps_per_block * spec.warp_size
    )
    limits["blocks"] = spec.max_blocks_per_sm

    # Registers are allocated per warp and shared memory per block, each in
    # hardware-specific granules carried on the device spec (256 on Volta).
    regs_per_block = warps_per_block * _round_up(
        registers_per_thread * spec.warp_size, spec.register_alloc_unit
    )
    limits["registers"] = spec.registers_per_sm // regs_per_block

    if shared_mem_per_block > 0:
        smem = _round_up(shared_mem_per_block, spec.smem_alloc_unit)
        limits["shared_memory"] = spec.shared_mem_per_sm // smem

    limiter, blocks = min(limits.items(), key=lambda kv: kv[1])
    if blocks == 0:
        raise InvalidLaunchError(
            f"kernel needs more {limiter} than one SM provides "
            f"(threads/block={threads_per_block}, regs/thread="
            f"{registers_per_thread}, smem/block={shared_mem_per_block})"
        )

    warps = blocks * warps_per_block
    return OccupancyResult(
        blocks_per_sm=blocks,
        warps_per_sm=warps,
        occupancy=warps / spec.max_warps_per_sm,
        limiter=limiter,
    )


def achieved_occupancy(
    spec: DeviceSpec,
    total_blocks: int,
    threads_per_block: int,
    *,
    registers_per_thread: int = 32,
    shared_mem_per_block: int = 0,
) -> float:
    """Occupancy actually achieved by a launch of *total_blocks* blocks.

    The theoretical figure assumes an unlimited supply of blocks; a launch
    with fewer blocks than the device can host gets proportionally less.
    This is what penalises thread-per-particle PSO: 5000 threads in blocks of
    128 is 40 blocks — half the SMs receive no work at all.
    """
    if total_blocks <= 0:
        raise InvalidLaunchError("launch must contain at least one block")
    theo = occupancy(
        spec,
        threads_per_block,
        registers_per_thread=registers_per_thread,
        shared_mem_per_block=shared_mem_per_block,
    )
    device_capacity_blocks = theo.blocks_per_sm * spec.sm_count
    fill = min(1.0, total_blocks / device_capacity_blocks)
    return theo.occupancy * fill
