"""Kernel abstraction: an instruction/byte mix plus NumPy semantics.

A simulated kernel has two halves:

* a :class:`KernelSpec` describing its per-element resource demands — FLOPs,
  bytes read/written, special-function (transcendental) ops, dependent global
  loads, register and shared-memory footprint, and whether its global-memory
  accesses coalesce.  The cost model consumes only the spec.
* a ``semantics`` callable that performs the actual array computation with
  NumPy when the kernel is launched, so optimization results are genuinely
  computed rather than modelled.

This mirrors how the paper reasons about its kernels: the element-wise
swarm-update kernel is characterised by its arithmetic intensity and access
pattern, independent of the PSO mathematics it encodes.
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import Callable

from repro.errors import InvalidLaunchError
from repro.gpusim.device import DeviceSpec

__all__ = ["KernelSpec", "Kernel", "LaunchConfig"]


@dataclass(frozen=True)
class KernelSpec:
    """Per-element resource demands of a kernel.

    Attributes
    ----------
    name:
        Profiler label.
    flops_per_elem:
        FP32 arithmetic operations per element (FMA counts as 2).
    bytes_read_per_elem / bytes_written_per_elem:
        Global-memory traffic per element.  RNG *state* traffic must be
        included here when a kernel keeps per-thread generator state (the
        mechanism that makes curand-state baselines memory-heavy).
    sfu_per_elem:
        Special-function-unit operations (sin/cos/exp/sqrt) per element.
    dependent_loads_per_elem:
        Global loads on the critical path of a serial per-thread loop; this
        drives the latency-bound term for low-occupancy launches.
    registers_per_thread / shared_mem_per_block:
        Static resource footprint, consumed by the occupancy calculation.
    coalesced:
        Whether consecutive threads touch consecutive addresses.
    tensor_core:
        Whether the kernel issues its arithmetic on tensor cores (mixed
        precision); affects both timing and numerics.
    reread_fraction / working_set_bytes_per_elem:
        Access-pattern hints for the memory-hierarchy cost model v2
        (:mod:`repro.gpusim.costmodel`).  ``reread_fraction`` is the share
        of ``bytes_read_per_elem`` that *re-references* data touched
        recently — by an earlier launch of the iteration loop (swarm state
        re-read every iteration) or by other threads of the same launch (a
        broadcast gbest row).  ``working_set_bytes_per_elem`` is the
        per-element footprint of that re-referenced data; whether it fits
        in L1/L2 decides the hit rate.  ``0.0`` (the default) marks a
        purely streaming kernel, for which the hierarchy model degenerates
        to the flat v1 roofline bit for bit.
    """

    name: str
    flops_per_elem: float = 1.0
    bytes_read_per_elem: float = 4.0
    bytes_written_per_elem: float = 4.0
    sfu_per_elem: float = 0.0
    dependent_loads_per_elem: float = 0.0
    registers_per_thread: int = 32
    shared_mem_per_block: int = 0
    coalesced: bool = True
    tensor_core: bool = False
    reread_fraction: float = 0.0
    working_set_bytes_per_elem: float = 0.0

    def __post_init__(self) -> None:
        if not self.name:
            raise ValueError("kernel must be named")
        for field_name in (
            "flops_per_elem",
            "bytes_read_per_elem",
            "bytes_written_per_elem",
            "sfu_per_elem",
            "dependent_loads_per_elem",
        ):
            if getattr(self, field_name) < 0:
                raise ValueError(f"{field_name} must be non-negative")
        if self.registers_per_thread <= 0:
            raise ValueError("registers_per_thread must be positive")
        if self.shared_mem_per_block < 0:
            raise ValueError("shared_mem_per_block must be non-negative")
        if not 0.0 <= self.reread_fraction <= 1.0:
            raise ValueError("reread_fraction must lie in [0, 1]")
        if self.working_set_bytes_per_elem < 0:
            raise ValueError("working_set_bytes_per_elem must be non-negative")

    def __hash__(self) -> int:
        # Same field-tuple hash a frozen dataclass generates, but computed
        # once: specs are dict keys on the memoized launch/cost hot path.
        try:
            return self._hash  # type: ignore[attr-defined]
        except AttributeError:
            h = hash(
                (
                    self.name,
                    self.flops_per_elem,
                    self.bytes_read_per_elem,
                    self.bytes_written_per_elem,
                    self.sfu_per_elem,
                    self.dependent_loads_per_elem,
                    self.registers_per_thread,
                    self.shared_mem_per_block,
                    self.coalesced,
                    self.tensor_core,
                    self.reread_fraction,
                    self.working_set_bytes_per_elem,
                )
            )
            object.__setattr__(self, "_hash", h)
            return h

    @property
    def bytes_per_elem(self) -> float:
        return self.bytes_read_per_elem + self.bytes_written_per_elem

    @property
    def arithmetic_intensity(self) -> float:
        """FLOPs per byte of DRAM traffic (the roofline x-axis)."""
        b = self.bytes_per_elem
        return self.flops_per_elem / b if b > 0 else float("inf")

    def scaled(self, **overrides: object) -> "KernelSpec":
        """Copy with selected fields replaced (for backend variants)."""
        return replace(self, **overrides)  # type: ignore[arg-type]


@dataclass(frozen=True)
class LaunchConfig:
    """Grid/block geometry of one kernel launch."""

    grid_blocks: int
    threads_per_block: int

    def __post_init__(self) -> None:
        if self.grid_blocks <= 0:
            raise InvalidLaunchError(
                f"grid must contain at least one block, got {self.grid_blocks}"
            )
        if self.threads_per_block <= 0:
            raise InvalidLaunchError(
                f"block must contain at least one thread, got {self.threads_per_block}"
            )

    def __hash__(self) -> int:
        # Cached for the same reason as :meth:`KernelSpec.__hash__`.
        try:
            return self._hash  # type: ignore[attr-defined]
        except AttributeError:
            h = hash((self.grid_blocks, self.threads_per_block))
            object.__setattr__(self, "_hash", h)
            return h

    @property
    def total_threads(self) -> int:
        return self.grid_blocks * self.threads_per_block

    def validate(self, spec: DeviceSpec, shared_mem: int = 0) -> None:
        """Check this geometry against a device's hardware limits."""
        spec.validate_block(self.threads_per_block, shared_mem)

    def workload_per_thread(self, n_elems: int) -> int:
        """Grid-stride iterations each thread executes for *n_elems*."""
        if n_elems <= 0:
            return 0
        return -(-n_elems // self.total_threads)


class Kernel:
    """A launchable kernel: spec + NumPy semantics.

    ``semantics`` receives whatever positional/keyword arguments the caller
    passes to :meth:`repro.gpusim.launch.Launcher.launch` and mutates device
    buffers in place (or returns derived arrays).  The cost model never sees
    the semantics; the semantics never see the clock.
    """

    def __init__(self, spec: KernelSpec, semantics: Callable[..., object]) -> None:
        if not callable(semantics):
            raise TypeError("kernel semantics must be callable")
        self.spec = spec
        self.semantics = semantics

    @property
    def name(self) -> str:
        return self.spec.name

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"Kernel({self.spec.name!r})"
