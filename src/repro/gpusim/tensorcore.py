"""Tensor-core (wmma) execution model with genuine mixed-precision effects.

Section 3.5 of the paper maps the element-wise swarm update onto tensor
cores by treating it as warp-level tiled matrix work: matrices are loaded
into 16x16 *fragments*, multiplied in half precision with fp32 accumulation,
and the results are synchronised back to global memory.  Two consequences
are modelled faithfully:

* **numerics** — multiplicand fragments are rounded to IEEE float16 before
  multiplication (accumulation stays fp32), exactly like Volta HMMA.  The
  element-wise products in Eq. (4) therefore carry ~1e-3 relative rounding,
  which is why fastpso's Table 2 errors match but do not beat the fp32
  baselines.  :func:`fragment_multiply_add` implements this and is what the
  tensor-core backend's kernel semantics call.
* **performance** — the update is bandwidth-bound, so using HMMA arithmetic
  does not reduce elapsed time; the kernel spec swaps the arithmetic
  throughput term and adds fragment load/sync instruction overhead.  The
  paper's Figure 6 observes exactly this near-tie with the other GPU
  backends.
"""

from __future__ import annotations

import numpy as np

from repro.errors import InvalidLaunchError
from repro.gpusim.device import DeviceSpec
from repro.gpusim.kernel import KernelSpec

__all__ = [
    "FRAGMENT_DIM",
    "to_half",
    "fragment_multiply_add",
    "tensor_core_spec",
    "supports_tensor_cores",
]

FRAGMENT_DIM = 16  # wmma fragments are 16x16 on Volta


def supports_tensor_cores(spec: DeviceSpec) -> bool:
    """Whether the device has tensor cores (the laptop preset does not)."""
    return spec.tensor_cores_per_sm > 0


def to_half(arr: np.ndarray) -> np.ndarray:
    """Round an fp32/fp64 array to IEEE binary16, keeping the input shape.

    Values beyond float16 range saturate to +/-inf exactly as hardware
    conversion does; callers that must avoid this (none in PSO's [0,1)
    weights) should pre-scale.
    """
    with np.errstate(over="ignore"):  # saturation to inf is the hw contract
        return np.asarray(arr).astype(np.float16)


def fragment_multiply_add(
    a: np.ndarray,
    b: np.ndarray,
    acc: np.ndarray | None = None,
) -> np.ndarray:
    """Element-wise ``a * b + acc`` with HMMA precision semantics.

    ``a`` and ``b`` are rounded to fp16 (fragment load), the product and
    accumulation are carried out in fp32 (Volta accumulates HMMA partial
    products at full precision).  Shapes must match; broadcasting is
    deliberately not supported because wmma fragments are fixed-shape.
    """
    a = np.asarray(a)
    b = np.asarray(b)
    if a.shape != b.shape:
        raise InvalidLaunchError(
            f"fragment operands must have identical shapes, got {a.shape} vs {b.shape}"
        )
    prod = to_half(a).astype(np.float32) * to_half(b).astype(np.float32)
    if acc is None:
        return prod
    acc = np.asarray(acc, dtype=np.float32)
    if acc.shape != a.shape:
        raise InvalidLaunchError(
            f"accumulator shape {acc.shape} does not match operands {a.shape}"
        )
    return prod + acc


def tensor_core_spec(
    base: KernelSpec,
    *,
    block_threads: int = 256,
) -> KernelSpec:
    """Derive the tensor-core variant of an element-wise kernel spec.

    Fragments are staged through shared memory (wmma requires aligned
    16x16 tiles), arithmetic moves to the tensor pipes, and each fragment
    costs a load/sync/store instruction bundle amortised over its 256
    elements.
    """
    if block_threads % 32:
        raise InvalidLaunchError("tensor-core blocks must be warp-multiples")
    frag_bytes = FRAGMENT_DIM * FRAGMENT_DIM * 2  # fp16 staging
    # Two input fragments + one fp32 accumulator tile per warp; a 256-thread
    # block holds 8 warps.
    warps = block_threads // 32
    smem = warps * (2 * frag_bytes + FRAGMENT_DIM * FRAGMENT_DIM * 4)
    return base.scaled(
        name=f"{base.name}_wmma",
        tensor_core=True,
        shared_mem_per_block=smem,
        flops_per_elem=base.flops_per_elem + 1.0,  # fragment shuffle overhead
        registers_per_thread=base.registers_per_thread + 8,
        coalesced=True,
    )
