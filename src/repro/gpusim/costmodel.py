"""Analytic performance models for simulated GPU kernels and CPU loops.

The GPU side is a roofline model extended with two effects that matter for
PSO specifically:

* **latency hiding** — effective memory/compute throughput scales with
  achieved occupancy through a saturating curve.  This is the mechanism that
  separates FastPSO's element-wise mapping (one thread per matrix element,
  occupancy ~1) from the thread-per-particle baselines (5000 threads on a
  device with 163k thread slots, occupancy ~3%).
* **latency-bound serial loops** — a kernel whose threads iterate serially
  over ``d`` elements with dependent global loads pays DRAM latency on the
  loop's critical path when too few warps are resident to overlap it.

The CPU side is the matching roofline for scalar/SIMD loops with a
multi-core bandwidth ceiling (the paper's OpenMP port only reaches ~1.4x
over sequential — a NUMA-unaware bandwidth wall we model directly) and an
interpreter-overhead model for the NumPy-library baselines.

All calibration constants live in :class:`GpuCostParams` /
:class:`CpuSpec`; they are set once from the paper's own measured
throughputs (Table 3: ~107 GB/s achieved DRAM read throughput for FastPSO
on a 900 GB/s part) and never tweaked per experiment.
"""

from __future__ import annotations

from dataclasses import dataclass, fields

from repro.gpusim.device import DeviceSpec
from repro.gpusim.hostcache import memoized
from repro.gpusim.kernel import KernelSpec, LaunchConfig
from repro.gpusim.occupancy import achieved_occupancy
from repro.gpusim.occupancy import occupancy as theoretical_occupancy

__all__ = [
    "GpuCostParams",
    "DEFAULT_GPU_COST_PARAMS",
    "KernelCost",
    "kernel_cost",
    "CpuSpec",
    "xeon_e5_2640v4",
    "CpuLoopCost",
    "cpu_loop_cost",
    "PythonOverheadModel",
]


@dataclass(frozen=True)
class GpuCostParams:
    """Calibration constants for the GPU kernel model.

    ``dram_peak_fraction`` is the fraction of datasheet bandwidth a fully
    occupied, perfectly coalesced element-wise kernel achieves end to end
    (ECC, DRAM refresh, small-kernel ramp-up).  The paper's Table 3 reports
    ~107 GB/s achieved *read* throughput for FastPSO's bandwidth-bound update
    on a 900 GB/s V100, which pins this constant near 0.2.
    """

    dram_peak_fraction: float = 0.20
    # Occupancy at which latency hiding reaches half of its asymptote.
    # Volta saturates DRAM bandwidth at remarkably low occupancy (a handful
    # of resident warps per SM sustain near-peak streaming), hence 0.03.
    latency_hiding_half_occ: float = 0.03
    # Multiplier on effective bandwidth for fully uncoalesced access
    # (one 32-byte sector useful per 32-thread transaction).
    uncoalesced_penalty: float = 0.125
    # SFU lanes relative to FP32 lanes (Volta: 1:4).
    sfu_throughput_fraction: float = 0.25
    # Instruction issue slots per SM per cycle (4 schedulers).
    issue_slots_per_sm: int = 4
    # Non-FLOP instructions (addressing, predicates, loop) per element.
    instr_overhead_per_elem: float = 6.0
    # In-flight dependent loads a single thread sustains (MLP).
    memory_level_parallelism: float = 4.0
    # Fraction of peak FP32 a real kernel sustains at full occupancy.
    fp32_peak_fraction: float = 0.55
    # Fraction of datasheet L2 bandwidth sustained by hits (cost model v2;
    # only consulted for specs with a memory hierarchy configured).
    l2_peak_fraction: float = 0.55

    def __hash__(self) -> int:
        # Cost params key the memoized kernel-cost cache; hash once.
        try:
            return self._hash  # type: ignore[attr-defined]
        except AttributeError:
            h = hash(tuple(getattr(self, f.name) for f in fields(self)))
            object.__setattr__(self, "_hash", h)
            return h

    def latency_hiding(self, occ: float) -> float:
        """Saturating efficiency curve in (0, 1], equal to 1 at occupancy 1."""
        occ = min(max(occ, 1e-6), 1.0)
        h = self.latency_hiding_half_occ
        return (1.0 + h) * occ / (occ + h)


DEFAULT_GPU_COST_PARAMS = GpuCostParams()


@dataclass(frozen=True)
class KernelCost:
    """Per-launch cost breakdown; the maximum component is the bound.

    The memory-hierarchy fields are zero for flat specs (no L2 configured)
    or purely streaming kernels: ``bytes_l2`` is traffic served from L2
    instead of DRAM, ``t_l2`` the time to stream it at effective L2
    bandwidth (``t_memory`` is then the max of the DRAM and L2 legs), and
    the hit fractions record how much of the kernel's *re-read* traffic each
    cache level absorbed.
    """

    seconds: float
    t_memory: float
    t_compute: float
    t_sfu: float
    t_issue: float
    t_latency: float
    t_launch_overhead: float
    bytes_read: float
    bytes_written: float
    flops: float
    occupancy: float
    t_l2: float = 0.0
    bytes_l2: float = 0.0
    l1_hit_fraction: float = 0.0
    l2_hit_fraction: float = 0.0

    @property
    def bound(self) -> str:
        """Name of the binding component (excluding launch overhead)."""
        parts = {
            "memory": self.t_memory,
            "compute": self.t_compute,
            "sfu": self.t_sfu,
            "issue": self.t_issue,
            "latency": self.t_latency,
        }
        return max(parts, key=parts.__getitem__)


@memoized
def kernel_cost(
    device: DeviceSpec,
    kspec: KernelSpec,
    launch: LaunchConfig,
    n_elems: int,
    params: GpuCostParams = DEFAULT_GPU_COST_PARAMS,
) -> KernelCost:
    """Model the elapsed time of launching *kspec* over *n_elems* elements.

    The kernel is assumed to use a grid-stride loop: each of the launch's
    threads processes ``ceil(n_elems / total_threads)`` elements serially.

    Pure function of immutable inputs, so results are memoized (see
    :mod:`repro.gpusim.hostcache`); the uncached implementation remains
    available as ``kernel_cost.uncached``.
    """
    if n_elems < 0:
        raise ValueError("n_elems must be non-negative")
    launch.validate(device, kspec.shared_mem_per_block)
    if n_elems == 0:
        return KernelCost(
            seconds=device.kernel_launch_overhead_s,
            t_memory=0.0,
            t_compute=0.0,
            t_sfu=0.0,
            t_issue=0.0,
            t_latency=0.0,
            t_launch_overhead=device.kernel_launch_overhead_s,
            bytes_read=0.0,
            bytes_written=0.0,
            flops=0.0,
            occupancy=0.0,
        )

    occ = achieved_occupancy(
        device,
        launch.grid_blocks,
        launch.threads_per_block,
        registers_per_thread=kspec.registers_per_thread,
        shared_mem_per_block=kspec.shared_mem_per_block,
    )
    hide = params.latency_hiding(occ)

    # --- memory ------------------------------------------------------------
    bytes_read = kspec.bytes_read_per_elem * n_elems
    bytes_written = kspec.bytes_written_per_elem * n_elems
    coalesce = 1.0 if kspec.coalesced else params.uncoalesced_penalty
    eff_bw = device.dram_bandwidth * params.dram_peak_fraction * hide * coalesce
    t_l2 = 0.0
    bytes_l2 = 0.0
    l1_hit = 0.0
    l2_hit = 0.0
    if device.has_memory_hierarchy and kspec.reread_fraction > 0.0:
        # Cost model v2: capacity-hit model.  The share of read traffic that
        # re-references recently touched data hits a cache level with
        # probability capacity/working-set; hits are served hierarchically
        # (L1 first, then L2), misses fall through to DRAM.  Writes always
        # stream to DRAM (write-through at this granularity).  L1 hits are
        # free — at PSO's arithmetic intensity an L1-resident operand never
        # binds — and L2 hits stream at effective L2 bandwidth on their own
        # leg, so t_memory is the max of the DRAM and L2 pipes.
        working_set = kspec.working_set_bytes_per_elem * n_elems
        if working_set > 0:
            l2_hit = min(1.0, device.l2_cache_bytes / working_set)
            l1_total = device.l1_cache_per_sm * device.sm_count
            l1_hit = min(min(1.0, l1_total / working_set), l2_hit)
        else:
            l2_hit = 1.0
            l1_hit = 1.0 if device.l1_cache_per_sm > 0 else 0.0
        reread_bytes = kspec.reread_fraction * bytes_read
        bytes_l2 = (l2_hit - l1_hit) * reread_bytes
        dram_bytes = (
            bytes_written
            + (bytes_read - reread_bytes)
            + (1.0 - l2_hit) * reread_bytes
        )
        eff_l2_bw = device.l2_bandwidth * params.l2_peak_fraction * hide * coalesce
        t_dram = dram_bytes / eff_bw if eff_bw > 0 else 0.0
        t_l2 = bytes_l2 / eff_l2_bw if eff_l2_bw > 0 else 0.0
        t_memory = max(t_dram, t_l2)
    else:
        # Flat v1 roofline, bit-for-bit: all traffic streams from DRAM.
        t_memory = (bytes_read + bytes_written) / eff_bw if eff_bw > 0 else 0.0

    # --- arithmetic ----------------------------------------------------------
    flops = kspec.flops_per_elem * n_elems
    if kspec.tensor_core and device.tensor_flops > 0:
        peak_flops = device.tensor_flops * params.fp32_peak_fraction
    else:
        peak_flops = device.fp32_flops * params.fp32_peak_fraction
    t_compute = flops / (peak_flops * hide) if flops else 0.0

    sfu_ops = kspec.sfu_per_elem * n_elems
    sfu_peak = device.fp32_flops * params.sfu_throughput_fraction
    t_sfu = sfu_ops / (sfu_peak * hide) if sfu_ops else 0.0

    instrs = (kspec.flops_per_elem + params.instr_overhead_per_elem) * n_elems
    issue_peak = (
        device.sm_count * params.issue_slots_per_sm * device.clock_ghz * 1e9
    ) * device.warp_size
    t_issue = instrs / (issue_peak * hide)

    # --- latency-bound serial loop ------------------------------------------
    # A thread's grid-stride loop with dependent loads forms a dependency
    # chain other warps cannot shorten; only the thread's own memory-level
    # parallelism overlaps it.  This is the floor on kernels launched with
    # too few threads for their element count.
    serial_iters = launch.workload_per_thread(n_elems)
    t_latency = 0.0
    if kspec.dependent_loads_per_elem > 0 and serial_iters > 0:
        t_latency = (
            serial_iters
            * kspec.dependent_loads_per_elem
            * device.dram_latency_s
            / params.memory_level_parallelism
        )

    body = max(t_memory, t_compute, t_sfu, t_issue, t_latency)

    # --- wave quantization -----------------------------------------------------
    # Blocks execute in waves of (blocks_per_sm x sm_count); a grid that
    # spills a few blocks into an extra wave pays for the whole wave.  This
    # is the effect block-count tuning (the ThreadConf case study) exploits;
    # resource-aware launches never exceed one wave, so FastPSO is immune.
    theo = theoretical_occupancy(
        device,
        launch.threads_per_block,
        registers_per_thread=kspec.registers_per_thread,
        shared_mem_per_block=kspec.shared_mem_per_block,
    )
    wave_capacity = theo.blocks_per_sm * device.sm_count
    waves = -(-launch.grid_blocks // wave_capacity)
    wave_penalty = waves * wave_capacity / launch.grid_blocks
    if waves > 1 and wave_penalty > 1.0:
        body *= wave_penalty
    total = device.kernel_launch_overhead_s + body
    return KernelCost(
        seconds=total,
        t_memory=t_memory,
        t_compute=t_compute,
        t_sfu=t_sfu,
        t_issue=t_issue,
        t_latency=t_latency,
        t_launch_overhead=device.kernel_launch_overhead_s,
        bytes_read=bytes_read,
        bytes_written=bytes_written,
        flops=flops,
        occupancy=occ,
        t_l2=t_l2,
        bytes_l2=bytes_l2,
        l1_hit_fraction=l1_hit,
        l2_hit_fraction=l2_hit,
    )


# ---------------------------------------------------------------------------
# CPU side
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class CpuSpec:
    """Model of the host CPU used by the sequential/OpenMP/library engines.

    ``effective`` figures are end-to-end achieved values for compiled loops,
    not datasheet peaks; the multi-core bandwidth ceiling deliberately sits
    well below ``cores x per-core`` to reproduce the NUMA-unaware scaling the
    paper measured for its OpenMP port (~1.4x over sequential).
    """

    name: str
    cores: int
    clock_ghz: float
    flops_per_cycle: float = 4.0  # scalar FMA + modest ILP
    simd_width: int = 8  # float32 lanes (AVX2), for vectorized loops
    transcendental_cycles: float = 4.0  # vectorized libm (libmvec, 8-wide)
    rng_cycles: float = 4.5  # one inline counter-based PRNG draw
    mem_bandwidth_core: float = 11.0e9  # bytes/s, single-threaded effective
    mem_bandwidth_all: float = 21.0e9  # bytes/s ceiling with all threads

    def bandwidth(self, threads: int) -> float:
        """Aggregate streaming bandwidth available to *threads* threads."""
        if threads <= 0:
            raise ValueError("threads must be positive")
        return min(self.mem_bandwidth_core * threads, self.mem_bandwidth_all)

    def flops_rate(self, threads: int, *, vectorized: bool) -> float:
        """FLOP/s for a compiled loop on *threads* threads."""
        width = self.simd_width if vectorized else 1
        return (
            min(threads, self.cores)
            * self.clock_ghz
            * 1e9
            * self.flops_per_cycle
            * width
        )


def xeon_e5_2640v4() -> CpuSpec:
    """The paper's host: dual Xeon E5-2640 v4 (2 x 10 cores, 2.4 GHz)."""
    return CpuSpec(name="2x Xeon E5-2640v4", cores=20, clock_ghz=2.4)


@dataclass(frozen=True)
class CpuLoopCost:
    """Cost breakdown of one compiled CPU loop nest."""

    seconds: float
    t_memory: float
    t_compute: float
    t_transcendental: float
    t_rng: float

    @property
    def bound(self) -> str:
        parts = {
            "memory": self.t_memory,
            "compute": self.t_compute,
            "transcendental": self.t_transcendental,
            "rng": self.t_rng,
        }
        return max(parts, key=parts.__getitem__)


def cpu_loop_cost(
    cpu: CpuSpec,
    n_elems: int,
    *,
    flops_per_elem: float = 0.0,
    bytes_per_elem: float = 0.0,
    transcendental_per_elem: float = 0.0,
    rng_per_elem: float = 0.0,
    threads: int = 1,
    vectorized: bool = True,
) -> CpuLoopCost:
    """Roofline time for a compiled loop over *n_elems* elements.

    Arithmetic, transcendental and RNG work run on the cores; streaming
    traffic is capped by the (thread-count-dependent) bandwidth ceiling.
    RNG and transcendental costs are charged per call at scalar throughput
    divided across threads — libm and PRNG streams parallelise cleanly but
    do not vectorise as well as FMA arithmetic.
    """
    if n_elems < 0:
        raise ValueError("n_elems must be non-negative")
    if n_elems == 0:
        return CpuLoopCost(0.0, 0.0, 0.0, 0.0, 0.0)
    eff_threads = max(1, min(threads, cpu.cores))

    t_memory = bytes_per_elem * n_elems / cpu.bandwidth(eff_threads)
    t_compute = (
        flops_per_elem * n_elems / cpu.flops_rate(eff_threads, vectorized=vectorized)
        if flops_per_elem
        else 0.0
    )
    scalar_rate = cpu.clock_ghz * 1e9 * eff_threads
    t_trans = (
        transcendental_per_elem * n_elems * cpu.transcendental_cycles / scalar_rate
        if transcendental_per_elem
        else 0.0
    )
    t_rng = (
        rng_per_elem * n_elems * cpu.rng_cycles / scalar_rate
        if rng_per_elem
        else 0.0
    )

    # Memory overlaps with compute on modern OoO cores: take the max of the
    # streaming bound and the arithmetic bound, then add the serial RNG /
    # libm call costs, which do not overlap with the vector loop.
    seconds = max(t_memory, t_compute) + t_trans + t_rng
    return CpuLoopCost(seconds, t_memory, t_compute, t_trans, t_rng)


@dataclass(frozen=True)
class PythonOverheadModel:
    """Interpreter/dispatch overhead model for NumPy-library baselines.

    ``per_ufunc_overhead`` is the fixed cost of one NumPy operation on a
    large array (dispatch + temporary allocation); ``per_python_call`` is a
    plain interpreted function call (used by per-particle evaluation loops);
    ``temp_traffic_factor`` multiplies streaming traffic to account for
    temporaries materialised by unfused expression evaluation.
    """

    per_ufunc_overhead: float = 45e-6
    per_python_call: float = 2.0e-6
    # Extra streaming traffic from unfused temporaries, relative to the
    # minimal read+write volume of the expression.
    temp_traffic_factor: float = 1.5
    # One NumPy operation on a *small* (d-element) array, as issued inside
    # per-particle evaluation loops: dispatch without the big-array body.
    per_small_ufunc: float = 1.2e-6

    def ufunc_time(self, n_ops: int) -> float:
        if n_ops < 0:
            raise ValueError("n_ops must be non-negative")
        return n_ops * self.per_ufunc_overhead

    def call_time(self, n_calls: int) -> float:
        if n_calls < 0:
            raise ValueError("n_calls must be non-negative")
        return n_calls * self.per_python_call
