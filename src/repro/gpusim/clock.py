"""Simulated time base for a device.

The simulator never reads wall-clock time: every kernel launch, memory
transfer and allocation advances a :class:`SimClock` by a model-computed
duration.  Experiment harnesses read the clock to report "elapsed seconds"
exactly the way the paper reports nvprof timings.

The clock also supports nested named sections (:meth:`SimClock.section`) so
the per-step breakdowns of Figure 5 can be collected without threading a
profiler handle through every call site.
"""

from __future__ import annotations

from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Iterator

__all__ = ["SimClock"]


@dataclass
class SimClock:
    """A monotonically advancing simulated clock with named sections."""

    now: float = 0.0
    section_totals: dict[str, float] = field(default_factory=dict)
    _stack: list[str] = field(default_factory=list, repr=False)

    def advance(self, seconds: float) -> float:
        """Advance simulated time by *seconds* (must be non-negative).

        The duration is attributed to the innermost active section, if any.
        Returns the new simulated time.
        """
        if seconds < 0.0:
            raise ValueError(f"cannot advance clock by negative time {seconds}")
        self.now += seconds
        if self._stack:
            label = self._stack[-1]
            self.section_totals[label] = (
                self.section_totals.get(label, 0.0) + seconds
            )
        return self.now

    @property
    def current_section(self) -> str | None:
        """Label of the innermost active section, or ``None`` outside any."""
        return self._stack[-1] if self._stack else None

    @contextmanager
    def section(self, label: str) -> Iterator[None]:
        """Attribute clock advances inside the ``with`` body to *label*.

        Sections nest; time is charged to the innermost label only, so a
        parent section's total excludes its children (the harness sums them
        explicitly when it wants inclusive totals).
        """
        self._stack.append(label)
        try:
            yield
        finally:
            popped = self._stack.pop()
            assert popped == label, "section stack corrupted"

    def reset(self) -> None:
        """Zero the clock and drop all section totals."""
        self.now = 0.0
        self.section_totals.clear()
        self._stack.clear()

    def total(self, label: str) -> float:
        """Total seconds attributed to *label* (0.0 if never entered)."""
        return self.section_totals.get(label, 0.0)
